"""Tests for the Table Ib (QFT) harness sweep."""

import pytest

from repro.harness import run_table1b
from repro.noise import NoiseModel


class TestTable1b:
    def test_small_sweep_completes(self):
        report = run_table1b(qubit_range=(3, 4), trajectories=3, timeout=30.0)
        assert [label for label, _ in report.rows] == ["3", "4"]
        for _, runs in report.rows:
            assert runs["dd"].completed
            assert runs["statevector"].completed

    def test_uses_swap_free_qft(self):
        """The harness must sweep the swap-free QFT (finding #2): DD peak
        node counts stay linear."""
        report = run_table1b(
            qubit_range=(8,), trajectories=5, timeout=30.0, backends=("dd",)
        )
        _, runs = report.rows[0]
        result = runs["dd"].result
        assert result.peak_nodes <= 6 * 8 + 16

    def test_custom_noise_model(self):
        report = run_table1b(
            qubit_range=(3,),
            trajectories=3,
            timeout=30.0,
            noise_model=NoiseModel.noiseless(),
            backends=("dd",),
        )
        _, runs = report.rows[0]
        assert runs["dd"].result.errors_fired["depolarizing"] == 0

    def test_render_title(self):
        report = run_table1b(qubit_range=(3,), trajectories=2, timeout=30.0,
                             backends=("dd",))
        assert "Table Ib" in report.render()
