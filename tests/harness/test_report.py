"""Tests for the Markdown experiment-report generator."""

from repro.harness import report_markdown, run_table1a, table_markdown


def small_report():
    return run_table1a(qubit_range=(2, 3), trajectories=2, timeout=30.0)


class TestTableMarkdown:
    def test_contains_header_and_rows(self):
        text = table_markdown(small_report())
        assert text.startswith("### Table Ia")
        assert "| n |" in text
        assert "| 2 |" in text
        assert "| 3 |" in text

    def test_speedup_column(self):
        text = table_markdown(small_report())
        header_line = [line for line in text.splitlines() if line.startswith("| n")][0]
        assert "speedup" in header_line

    def test_markdown_table_well_formed(self):
        text = table_markdown(small_report())
        table_lines = [line for line in text.splitlines() if line.startswith("|")]
        column_counts = {line.count("|") for line in table_lines}
        assert len(column_counts) == 1  # consistent column count


class TestReportMarkdown:
    def test_full_document(self):
        text = report_markdown([small_report()], title="Smoke", notes="a note")
        assert text.startswith("# Smoke")
        assert "a note" in text
        assert "Python" in text
        assert "### Table Ia" in text

    def test_multiple_reports(self):
        report = small_report()
        text = report_markdown([report, report])
        assert text.count("### Table Ia") == 2
