"""Tests for the benchmark harness: timed runs, table reports, rendering."""

import pytest

from repro.circuits.library import ghz
from repro.harness import (
    TimedRun,
    format_cell,
    render_table,
    run_table1a,
    run_table1c,
    timed_stochastic_run,
)
from repro.noise import NoiseModel


class TestFormatting:
    def test_format_cell_values(self):
        assert format_cell(0.1234, 60) == "0.12"
        assert format_cell(123.456, 60) == "123.5"
        assert format_cell(None, 60) == ">60"
        assert format_cell(None, None) == "n/a"

    def test_render_table_alignment(self):
        text = render_table("Title", ["n", "t [s]"], [["4", "0.10"], ["16", "12.00"]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "n" in lines[1] and "t [s]" in lines[1]
        assert len(lines) == 5
        # All body rows equal width.
        assert len(lines[3]) == len(lines[4])


class TestTimedRun:
    def test_completes_within_budget(self):
        run = timed_stochastic_run(
            ghz(3), "dd", trajectories=5, noise_model=NoiseModel.noiseless(), timeout=30
        )
        assert run.completed
        assert run.seconds is not None and run.seconds < 30
        assert run.result.completed_trajectories == 5

    def test_timeout_marks_incomplete(self):
        run = timed_stochastic_run(
            ghz(12), "dd", trajectories=10**6, timeout=0.2
        )
        assert not run.completed
        assert run.seconds is None
        assert run.result is not None and run.result.timed_out

    def test_infeasible_statevector_width(self):
        run = timed_stochastic_run(ghz(64), "statevector", trajectories=1)
        assert run.infeasible
        assert not run.completed


class TestTableReports:
    def test_table1a_small(self):
        report = run_table1a(qubit_range=(2, 3), trajectories=3, timeout=30.0)
        assert len(report.rows) == 2
        rendered = report.render()
        assert "Table Ia" in rendered
        assert "statevector [s]" in rendered
        for label, runs in report.rows:
            assert set(runs) == {"statevector", "dd"}
            assert runs["dd"].completed

    def test_table1a_speedups(self):
        report = run_table1a(qubit_range=(2,), trajectories=3, timeout=30.0)
        ratios = report.speedups()
        assert "2" in ratios
        assert ratios["2"] is None or ratios["2"] > 0

    def test_monotone_sweep_skips_after_timeout(self):
        report = run_table1a(
            qubit_range=(10, 12), trajectories=10**6, timeout=0.1,
            backends=("dd",),
        )
        first = report.rows[0][1]["dd"]
        second = report.rows[1][1]["dd"]
        assert not first.completed
        # The larger case was skipped without running (no result object).
        assert second.result is None

    def test_table1c_runs_selected_rows(self):
        report = run_table1c(
            names=("seca",), trajectories=2, timeout=60.0, backends=("dd",)
        )
        assert len(report.rows) == 1
        label, runs = report.rows[0]
        assert label == "seca (11)"
        assert runs["dd"].completed

    def test_render_includes_timeout_marker(self):
        report = run_table1a(
            qubit_range=(12,), trajectories=10**6, timeout=0.1, backends=("dd",)
        )
        assert ">0.1" in report.render()
