"""Unit tests for RunResult and execute_circuit bookkeeping."""

import random

import pytest

from repro.circuits import QuantumCircuit
from repro.simulators import DDBackend, RunResult, execute_circuit


class TestRunResult:
    def test_classical_value_lsb_first(self):
        result = RunResult([1, 0, 1])
        assert result.classical_value() == 0b101

    def test_classical_value_empty(self):
        assert RunResult([]).classical_value() == 0

    def test_bitstring_msb_first(self):
        result = RunResult([1, 0, 1])
        assert result.bitstring() == "101"
        assert RunResult([0, 1]).bitstring() == "10"


class TestExecutorBookkeeping:
    def test_measured_qubits_recorded(self):
        circuit = QuantumCircuit(2, 2)
        circuit.x(0).measure(0, 1).measure(1, 0)
        backend = DDBackend(2)
        result = execute_circuit(backend, circuit, random.Random(0))
        assert result.measured_qubits == {0: 1, 1: 0}
        assert result.classical_bits == [0, 1]

    def test_barrier_does_not_count_as_gate(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).barrier()
        backend = DDBackend(1)
        result = execute_circuit(backend, circuit, random.Random(0))
        assert result.applied_gates == 1

    def test_skipped_conditional_not_counted(self):
        from repro.circuits.operations import ClassicalCondition

        circuit = QuantumCircuit(1, 1)
        circuit.gate("x", 0, condition=ClassicalCondition((0,), 1))
        backend = DDBackend(1)
        result = execute_circuit(backend, circuit, random.Random(0))
        assert result.applied_gates == 0
        assert backend.probability_of_basis([0]) == pytest.approx(1.0)

    def test_error_hook_called_for_measure_and_reset(self):
        calls = []

        def hook(backend, qubits, name):
            calls.append((name, qubits))

        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0).reset(0)
        backend = DDBackend(1)
        execute_circuit(backend, circuit, random.Random(0), error_hook=hook)
        names = [name for name, _ in calls]
        assert names == ["h", "measure", "reset"]

    def test_error_hook_receives_all_gate_qubits(self):
        captured = []

        def hook(backend, qubits, name):
            captured.append(qubits)

        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        backend = DDBackend(3)
        execute_circuit(backend, circuit, random.Random(0), error_hook=hook)
        assert captured == [(0, 1, 2)]
