"""Tests for Pauli-string expectation values on both backends."""

import math
import random

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, gates
from repro.circuits.library import ghz, random_circuit
from repro.simulators import DDBackend, StatevectorBackend, execute_circuit
from repro.stochastic import PauliExpectation, simulate_stochastic
from repro.noise import NoiseModel

from ..conftest import random_state


def dense_pauli(pauli: str) -> np.ndarray:
    matrices = {
        "I": np.eye(2),
        "X": np.array([[0, 1], [1, 0]]),
        "Y": np.array([[0, -1j], [1j, 0]]),
        "Z": np.array([[1, 0], [0, -1]]),
    }
    result = np.array([[1.0]], dtype=complex)
    for letter in pauli:
        result = np.kron(result, matrices[letter])
    return result


class TestBackendsAgree:
    @pytest.mark.parametrize(
        "pauli", ["ZIII", "XXII", "IYZI", "ZZZZ", "XYZX", "IIII"]
    )
    def test_matches_dense_on_random_state(self, np_rng, pauli):
        vector = random_state(np_rng, 4)
        dd = DDBackend(4)
        dd._replace_state(dd.package.from_state_vector(vector))
        sv = StatevectorBackend(4, initial_state=vector)
        expected = float(np.real(np.vdot(vector, dense_pauli(pauli) @ vector)))
        assert dd.pauli_expectation(pauli) == pytest.approx(expected, abs=1e-9)
        assert sv.pauli_expectation(pauli) == pytest.approx(expected, abs=1e-9)

    def test_ghz_parity(self):
        """GHZ: <ZZ...Z> = 1 for even n... actually <Z^n> = 0 for odd-n
        amplitudes?  For GHZ_n: Z^{(x)n}|GHZ> = (|0..0> + (-1)^n |1..1>)/sqrt2,
        so the expectation is 1 for even n and 0 for odd n."""
        for n, expected in ((2, 1.0), (3, 0.0), (4, 1.0)):
            backend = DDBackend(n)
            execute_circuit(backend, ghz(n), random.Random(0))
            assert backend.pauli_expectation("Z" * n) == pytest.approx(expected, abs=1e-9)

    def test_ghz_xx_coherence(self):
        """<X^n> on GHZ is 1 (the coherence witness)."""
        backend = DDBackend(3)
        execute_circuit(backend, ghz(3), random.Random(0))
        assert backend.pauli_expectation("XXX") == pytest.approx(1.0)

    def test_validation(self):
        backend = DDBackend(2)
        with pytest.raises(ValueError):
            backend.pauli_expectation("Z")
        with pytest.raises(ValueError):
            backend.pauli_expectation("ZW")
        sv = StatevectorBackend(2)
        with pytest.raises(ValueError):
            sv.pauli_expectation("ZZZ")


class TestPauliExpectationProperty:
    def test_name_and_validation(self):
        assert PauliExpectation("zzi").name == "<ZZI>"
        with pytest.raises(ValueError):
            PauliExpectation("ABC")
        with pytest.raises(ValueError):
            PauliExpectation("")

    def test_noisy_estimate_decays_toward_zero(self):
        """Under depolarizing noise the GHZ coherence witness <XXX> decays
        from 1; the stochastic estimate must land between."""
        result = simulate_stochastic(
            ghz(3),
            NoiseModel.uniform(depolarizing=0.1),
            [PauliExpectation("XXX")],
            trajectories=800,
            seed=3,
        )
        value = result.mean("<XXX>")
        assert 0.3 < value < 0.98

    def test_noiseless_estimate_exact(self):
        result = simulate_stochastic(
            ghz(3),
            NoiseModel.noiseless(),
            [PauliExpectation("XXX"), PauliExpectation("ZZZ")],
            trajectories=10,
        )
        assert result.mean("<XXX>") == pytest.approx(1.0)
        assert result.mean("<ZZZ>") == pytest.approx(0.0, abs=1e-9)

    def test_backends_identical(self, monkeypatch):
        # Stratified sampling engages only on the DD backend; pin it off so
        # both backends run the identical naive estimator (the stratified
        # equivalence gate lives in tests/stochastic/test_strata.py).
        monkeypatch.setenv("REPRO_STRATIFIED", "off")
        kwargs = dict(
            noise_model=NoiseModel.paper_defaults().scaled(10),
            properties=[PauliExpectation("ZZII"), PauliExpectation("XXXX")],
            trajectories=80,
            seed=5,
        )
        dd = simulate_stochastic(ghz(4), backend="dd", **kwargs)
        sv = simulate_stochastic(ghz(4), backend="statevector", **kwargs)
        for name in dd.estimates:
            assert dd.mean(name) == pytest.approx(sv.mean(name), abs=1e-9)
