"""Unit tests for the decision-diagram backend (and cross-validation)."""

import math
import random

import numpy as np
import pytest

from repro.circuits import gates
from repro.circuits.library import random_circuit
from repro.dd import DDPackage
from repro.noise.channels import amplitude_damping_kraus
from repro.simulators import DDBackend, StatevectorBackend, execute_circuit


class TestBasics:
    def test_initial_state(self):
        backend = DDBackend(3)
        assert backend.statevector()[0] == 1.0
        assert backend.probability_of_basis([0, 0, 0]) == 1.0

    def test_shared_package(self):
        package = DDPackage(2)
        a = DDBackend(2, package=package)
        b = DDBackend(2, package=package)
        a.apply_gate(gates.H, 0, {})
        # Gate cache is shared: building the same gate twice is one DD.
        assert package.gate(gates.H, 0) is package.gate(gates.H, 0)
        b.apply_gate(gates.H, 0, {})
        assert np.allclose(a.statevector(), b.statevector())

    def test_reset_all(self, rng):
        backend = DDBackend(2)
        backend.apply_gate(gates.H, 0, {})
        backend.apply_gate(gates.X, 1, {0: 1})
        backend.reset_all()
        assert backend.statevector()[0] == pytest.approx(1.0)

    def test_invalid_qubit_count(self):
        with pytest.raises(ValueError):
            DDBackend(0)


class TestEquivalenceWithStatevector:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_circuits_match(self, seed):
        circuit = random_circuit(4, 12, seed=seed)
        dd = DDBackend(4)
        sv = StatevectorBackend(4)
        execute_circuit(dd, circuit, random.Random(0))
        execute_circuit(sv, circuit, random.Random(0))
        assert np.allclose(dd.statevector(), sv.statevector(), atol=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuits_with_measurements_match(self, seed):
        circuit = random_circuit(4, 8, seed=seed, measure=True)
        dd = DDBackend(4)
        sv = StatevectorBackend(4)
        r1 = execute_circuit(dd, circuit, random.Random(seed))
        r2 = execute_circuit(sv, circuit, random.Random(seed))
        # Same seeds -> same measurement branches -> same classical record.
        assert r1.classical_bits == r2.classical_bits
        assert np.allclose(dd.statevector(), sv.statevector(), atol=1e-9)

    def test_kraus_branches_match(self):
        kraus = amplitude_damping_kraus(0.35)
        for seed in range(10):
            dd = DDBackend(2)
            sv = StatevectorBackend(2)
            for backend in (dd, sv):
                backend.apply_gate(gates.H, 0, {})
                backend.apply_gate(gates.X, 1, {0: 1})
            c1 = dd.apply_kraus_branch(kraus, 0, random.Random(seed))
            c2 = sv.apply_kraus_branch(kraus, 0, random.Random(seed))
            assert c1 == c2
            assert np.allclose(dd.statevector(), sv.statevector(), atol=1e-9)


class TestMeasurement:
    def test_measure_collapses(self):
        backend = DDBackend(2)
        backend.apply_gate(gates.H, 0, {})
        backend.apply_gate(gates.X, 1, {0: 1})
        outcome = backend.measure(0, random.Random(5))
        vector = backend.statevector()
        expected = np.zeros(4, dtype=complex)
        expected[0b11 if outcome else 0b00] = 1.0
        assert np.allclose(vector, expected)

    def test_reset_qubit(self, rng):
        backend = DDBackend(2)
        backend.apply_gate(gates.X, 0, {})
        backend.reset(0, rng)
        assert backend.statevector()[0] == pytest.approx(1.0)

    def test_probability_of_one(self):
        backend = DDBackend(1)
        backend.apply_gate(gates.ry(2 * math.asin(math.sqrt(0.7))), 0, {})
        assert backend.probability_of_one(0) == pytest.approx(0.7)


class TestSnapshots:
    def test_fidelity_with_snapshot(self):
        backend = DDBackend(2)
        backend.apply_gate(gates.H, 0, {})
        handle = backend.snapshot()
        assert backend.fidelity(handle) == pytest.approx(1.0)
        backend.apply_gate(gates.X, 1, {})
        assert backend.fidelity(handle) == pytest.approx(0.0, abs=1e-12)

    def test_snapshot_survives_gc_and_reset(self):
        backend = DDBackend(2)
        backend.apply_gate(gates.H, 0, {})
        handle = backend.snapshot()
        backend.package.garbage_collect(force=True)
        backend.reset_all()
        backend.apply_gate(gates.H, 0, {})
        assert backend.fidelity(handle) == pytest.approx(1.0)

    def test_release_snapshot(self):
        backend = DDBackend(2)
        handle = backend.snapshot()
        backend.release_snapshot(handle)  # must not raise


class TestDiagnostics:
    def test_peak_nodes_monotone(self):
        backend = DDBackend(5)
        initial_peak = backend.peak_nodes
        circuit = random_circuit(5, 10, seed=2)
        execute_circuit(backend, circuit, random.Random(0))
        assert backend.peak_nodes >= initial_peak
        assert backend.peak_nodes >= backend.current_nodes() or True

    def test_current_nodes_ghz(self):
        backend = DDBackend(6)
        backend.apply_gate(gates.H, 0, {})
        for qubit in range(5):
            backend.apply_gate(gates.X, qubit + 1, {qubit: 1})
        assert backend.current_nodes() == 2 * 6 - 1

    def test_release(self):
        backend = DDBackend(2)
        backend.apply_gate(gates.H, 0, {})
        backend.release()
        # After release, the package may collect everything.
        assert backend.package.garbage_collect(force=True) >= 0


class TestExecutorValidation:
    def test_wrong_width_rejected(self):
        from repro.circuits import QuantumCircuit

        backend = DDBackend(2)
        with pytest.raises(ValueError, match="qubits"):
            execute_circuit(backend, QuantumCircuit(3), random.Random(0))

    def test_applied_gate_count(self):
        from repro.circuits import QuantumCircuit

        circuit = QuantumCircuit(2, 1)
        circuit.h(0).cx(0, 1).measure(0, 0).barrier()
        backend = DDBackend(2)
        result = execute_circuit(backend, circuit, random.Random(0))
        assert result.applied_gates == 2

    def test_conditional_gate_respects_classical_bits(self):
        from repro.circuits import QuantumCircuit
        from repro.circuits.operations import ClassicalCondition

        circuit = QuantumCircuit(2, 1)
        circuit.x(0)
        circuit.measure(0, 0)
        circuit.gate("x", 1, condition=ClassicalCondition((0,), 1))
        backend = DDBackend(2)
        result = execute_circuit(backend, circuit, random.Random(0))
        assert result.classical_bits == [1]
        assert backend.statevector()[0b11] == pytest.approx(1.0)
