"""Unit tests for the dense state-vector backend."""

import math
import random

import numpy as np
import pytest

from repro.circuits import gates
from repro.noise.channels import amplitude_damping_kraus
from repro.simulators import StatevectorBackend

from ..conftest import random_unitary


class TestInitialisation:
    def test_default_is_all_zeros(self):
        backend = StatevectorBackend(3)
        vector = backend.statevector()
        assert vector[0] == 1.0
        assert np.allclose(vector[1:], 0.0)

    def test_custom_initial_state(self):
        initial = np.zeros(4)
        initial[2] = 1.0
        backend = StatevectorBackend(2, initial_state=initial)
        assert backend.statevector()[2] == 1.0

    def test_wrong_dimension_rejected(self):
        with pytest.raises(ValueError):
            StatevectorBackend(2, initial_state=np.ones(3))

    def test_memory_cap(self):
        with pytest.raises(ValueError, match="refusing"):
            StatevectorBackend(31)

    def test_invalid_qubit_count(self):
        with pytest.raises(ValueError):
            StatevectorBackend(0)


class TestGateApplication:
    def test_single_qubit_gate_on_each_target(self, np_rng):
        for target in range(3):
            backend = StatevectorBackend(3)
            unitary = random_unitary(np_rng)
            backend.apply_gate(unitary, target, {})
            expected = np.zeros(8, dtype=complex)
            # |0..0> -> column 0 of U placed at the target position.
            for amp_index, amplitude in enumerate(unitary[:, 0]):
                expected[amp_index << (2 - target)] = amplitude
            assert np.allclose(backend.statevector(), expected)

    def test_controlled_gate_inactive(self):
        backend = StatevectorBackend(2)
        backend.apply_gate(gates.X, 1, {0: 1})
        assert backend.statevector()[0] == 1.0

    def test_controlled_gate_active(self):
        backend = StatevectorBackend(2)
        backend.apply_gate(gates.X, 0, {})
        backend.apply_gate(gates.X, 1, {0: 1})
        assert backend.statevector()[0b11] == pytest.approx(1.0)

    def test_negative_control(self):
        backend = StatevectorBackend(2)
        backend.apply_gate(gates.X, 1, {0: 0})
        assert backend.statevector()[0b01] == pytest.approx(1.0)

    def test_norm_preserved(self, np_rng):
        backend = StatevectorBackend(4)
        for _ in range(20):
            target = int(np_rng.integers(4))
            backend.apply_gate(random_unitary(np_rng), target, {})
        assert np.linalg.norm(backend.statevector()) == pytest.approx(1.0)

    def test_diagonal_fast_path_matches_generic(self, np_rng):
        """Diagonal gates (rz/u1/z/s/t) take a scalar-multiply fast path;
        it must agree with the generic tensordot path exactly."""
        diagonal = np.diag([np.exp(0.31j), np.exp(-0.7j)])
        generic = np.array([[0, 1], [1, 0]], dtype=complex)  # forces slow path
        for controls in ({}, {0: 1}, {0: 0, 2: 1}):
            a = StatevectorBackend(3)
            b = StatevectorBackend(3)
            for backend in (a, b):
                backend.apply_gate(
                    np.array([[1, 1], [1, -1]]) / np.sqrt(2), 0, {}
                )
                backend.apply_gate(generic, 2, {})
            a.apply_gate(diagonal, 1, controls)
            # Emulate via the generic path: compose diag = P(a) then X-basis trick
            view_matrix = diagonal.copy()
            view_matrix[0, 1] = view_matrix[1, 0] = 1e-300  # defeat fast path
            b.apply_gate(view_matrix, 1, controls)
            assert np.allclose(a.statevector(), b.statevector(), atol=1e-12)

    def test_diagonal_controlled_phase(self):
        backend = StatevectorBackend(2)
        h_matrix = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        backend.apply_gate(h_matrix, 0, {})
        backend.apply_gate(h_matrix, 1, {})
        backend.apply_gate(np.diag([1, 1j]), 1, {0: 1})  # cs gate
        vector = backend.statevector()
        assert vector[0b11] == pytest.approx(0.5j)
        assert vector[0b10] == pytest.approx(0.5)


class TestMeasurement:
    def test_deterministic(self, rng):
        backend = StatevectorBackend(2)
        backend.apply_gate(gates.X, 0, {})
        assert backend.measure(0, rng) == 1
        assert backend.measure(1, rng) == 0

    def test_collapse_renormalises(self, rng):
        backend = StatevectorBackend(1)
        backend.apply_gate(gates.H, 0, {})
        backend.measure(0, rng)
        assert np.linalg.norm(backend.statevector()) == pytest.approx(1.0)

    def test_probability_of_one(self):
        backend = StatevectorBackend(1)
        backend.apply_gate(gates.ry(2 * math.asin(math.sqrt(0.3))), 0, {})
        assert backend.probability_of_one(0) == pytest.approx(0.3)

    def test_statistics(self):
        ones = 0
        for seed in range(400):
            backend = StatevectorBackend(1)
            backend.apply_gate(gates.H, 0, {})
            ones += backend.measure(0, random.Random(seed))
        assert ones / 400 == pytest.approx(0.5, abs=0.07)

    def test_reset(self, rng):
        backend = StatevectorBackend(2)
        backend.apply_gate(gates.X, 1, {})
        backend.reset(1, rng)
        assert backend.statevector()[0] == pytest.approx(1.0)


class TestKrausBranching:
    def test_damping_on_ground_state_is_identity(self, rng):
        backend = StatevectorBackend(1)
        chosen = backend.apply_kraus_branch(amplitude_damping_kraus(0.5), 0, rng)
        assert chosen == 0
        assert backend.statevector()[0] == pytest.approx(1.0)

    def test_damping_on_excited_state_statistics(self):
        decays = 0
        trials = 600
        for seed in range(trials):
            backend = StatevectorBackend(1)
            backend.apply_gate(gates.X, 0, {})
            chosen = backend.apply_kraus_branch(
                amplitude_damping_kraus(0.3), 0, random.Random(seed)
            )
            decays += chosen
        assert decays / trials == pytest.approx(0.3, abs=0.06)

    def test_branch_state_normalised(self, rng):
        backend = StatevectorBackend(1)
        backend.apply_gate(gates.H, 0, {})
        backend.apply_kraus_branch(amplitude_damping_kraus(0.4), 0, rng)
        assert np.linalg.norm(backend.statevector()) == pytest.approx(1.0)

    def test_zero_probability_branch_rejected(self, rng):
        backend = StatevectorBackend(1)
        zero = np.zeros((2, 2))
        with pytest.raises(ValueError):
            backend.apply_kraus_branch([zero, zero], 0, rng)


class TestPropertiesAndSampling:
    def test_probability_of_basis(self):
        backend = StatevectorBackend(2)
        backend.apply_gate(gates.H, 0, {})
        assert backend.probability_of_basis([0, 0]) == pytest.approx(0.5)
        assert backend.probability_of_basis([1, 0]) == pytest.approx(0.5)
        assert backend.probability_of_basis([0, 1]) == 0.0

    def test_snapshot_fidelity(self):
        backend = StatevectorBackend(2)
        backend.apply_gate(gates.H, 0, {})
        handle = backend.snapshot()
        assert backend.fidelity(handle) == pytest.approx(1.0)
        backend.apply_gate(gates.Z, 0, {})
        assert backend.fidelity(handle) == pytest.approx(0.0, abs=1e-12)

    def test_snapshot_is_copy(self):
        backend = StatevectorBackend(1)
        handle = backend.snapshot()
        backend.apply_gate(gates.X, 0, {})
        assert handle[0] == 1.0

    def test_sample_counts(self, rng):
        backend = StatevectorBackend(2)
        backend.apply_gate(gates.H, 0, {})
        backend.apply_gate(gates.X, 1, {0: 1})
        counts = backend.sample_counts(1000, rng)
        assert sum(counts.values()) == 1000
        assert set(counts) == {"00", "11"}
        assert counts["00"] == pytest.approx(500, abs=80)
