"""Tests for whole-circuit unitary DDs and DD-based equivalence checking."""

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.library import ghz, qft, random_circuit
from repro.circuits.optimize import fuse_single_qubit_runs
from repro.simulators import (
    circuit_unitary_dd,
    circuit_unitary_matrix,
    circuits_equivalent,
)


class TestUnitaryConstruction:
    def test_empty_circuit_is_identity(self):
        circuit = QuantumCircuit(3)
        assert np.allclose(circuit_unitary_matrix(circuit), np.eye(8))

    def test_single_gate(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        expected = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        assert np.allclose(circuit_unitary_matrix(circuit), expected)

    def test_gate_order(self):
        """Later gates multiply from the left."""
        circuit = QuantumCircuit(1)
        circuit.x(0).s(0)  # S @ X
        expected = np.diag([1, 1j]) @ np.array([[0, 1], [1, 0]])
        assert np.allclose(circuit_unitary_matrix(circuit), expected)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_circuit_matches_gate_product(self, seed):
        circuit = random_circuit(3, 8, seed=seed)
        expected = np.eye(8, dtype=complex)
        from tests.dd.test_package_matrices import dense_controlled

        for gate in circuit.gate_operations():
            expected = dense_controlled(
                gate.matrix(), gate.target, gate.control_dict(), 3
            ) @ expected
        assert np.allclose(circuit_unitary_matrix(circuit), expected, atol=1e-9)

    def test_unitary_dd_of_qft_is_unitary(self):
        matrix = circuit_unitary_matrix(qft(4))
        assert np.allclose(matrix @ matrix.conj().T, np.eye(16), atol=1e-9)

    def test_measurement_rejected(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        with pytest.raises(ValueError, match="non-unitary"):
            circuit_unitary_matrix(circuit)

    def test_conditioned_gate_rejected(self):
        from repro.circuits.operations import ClassicalCondition

        circuit = QuantumCircuit(1, 1)
        circuit.gate("x", 0, condition=ClassicalCondition((0,), 1))
        with pytest.raises(ValueError, match="conditioned"):
            circuit_unitary_matrix(circuit)

    def test_barriers_ignored(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().cx(0, 1)
        reference = QuantumCircuit(2)
        reference.h(0).cx(0, 1)
        assert np.allclose(
            circuit_unitary_matrix(circuit), circuit_unitary_matrix(reference)
        )


class TestEquivalenceChecking:
    def test_identical_circuits(self):
        assert circuits_equivalent(qft(4), qft(4))

    def test_different_circuits(self):
        assert not circuits_equivalent(qft(3), ghz(3))

    def test_width_mismatch(self):
        assert not circuits_equivalent(ghz(3), ghz(4))

    def test_circuit_vs_inverse_composition(self):
        circuit = random_circuit(3, 10, seed=5)
        identity_like = circuit.copy()
        identity_like.extend(circuit.inverse())
        assert circuits_equivalent(identity_like, QuantumCircuit(3))

    def test_swap_decompositions_equivalent(self):
        """swap == reversed-direction swap (three CNOTs either way)."""
        a = QuantumCircuit(2)
        a.swap(0, 1)
        b = QuantumCircuit(2)
        b.cx(1, 0).cx(0, 1).cx(1, 0)
        assert circuits_equivalent(a, b)

    def test_fused_circuit_equivalent_up_to_phase(self):
        circuit = random_circuit(3, 12, seed=7, two_qubit_probability=0.3)
        fused = fuse_single_qubit_runs(circuit)
        assert circuits_equivalent(circuit, fused)

    def test_global_phase_detected_in_strict_mode(self):
        a = QuantumCircuit(1)
        a.rz(math.pi, 0)  # = -i Z
        b = QuantumCircuit(1)
        b.z(0)
        assert circuits_equivalent(a, b, up_to_global_phase=True)
        assert not circuits_equivalent(a, b, up_to_global_phase=False)

    def test_detects_single_gate_difference(self):
        a = qft(4)
        b = qft(4)
        b.z(2)  # sneak in one extra gate
        assert not circuits_equivalent(a, b)

    def test_detects_parameter_perturbation(self):
        a = QuantumCircuit(2)
        a.h(0).crz(0.5, 0, 1)
        b = QuantumCircuit(2)
        b.h(0).crz(0.5001, 0, 1)
        assert not circuits_equivalent(a, b)

    def test_ghz_preparations_equivalent(self):
        """Chain CNOTs vs fan-out CNOTs build the same unitary?  They do
        not (different unitaries, same action on |0...0> only) — the check
        must distinguish state-preparation equality from unitary equality."""
        chain = ghz(3)
        fanout = QuantumCircuit(3)
        fanout.h(0).cx(0, 1).cx(0, 2)
        assert not circuits_equivalent(chain, fanout)
        # But both prepare the same state from |000>:
        import random as random_module

        from repro.simulators import DDBackend, execute_circuit

        s1, s2 = DDBackend(3), DDBackend(3)
        execute_circuit(s1, chain, random_module.Random(0))
        execute_circuit(s2, fanout, random_module.Random(0))
        assert np.allclose(s1.statevector(), s2.statevector())
