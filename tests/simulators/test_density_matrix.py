"""Unit tests for the exact density-matrix oracle."""

import math
import random

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, gates
from repro.circuits.library import ghz, random_circuit
from repro.noise.channels import (
    amplitude_damping_kraus,
    depolarizing_kraus,
    phase_flip_kraus,
)
from repro.simulators import DensityMatrixSimulator, StatevectorBackend, execute_circuit


class TestPureEvolution:
    def test_initial_state(self):
        simulator = DensityMatrixSimulator(2)
        rho = simulator.density_matrix()
        assert rho[0, 0] == 1.0
        assert np.trace(rho) == pytest.approx(1.0)

    @pytest.mark.parametrize("seed", range(4))
    def test_unitary_circuit_matches_outer_product(self, seed):
        circuit = random_circuit(3, 10, seed=seed)
        simulator = DensityMatrixSimulator(3)
        simulator.run_circuit(circuit)
        sv = StatevectorBackend(3)
        execute_circuit(sv, circuit, random.Random(0))
        psi = sv.statevector()
        assert np.allclose(simulator.density_matrix(), np.outer(psi, psi.conj()), atol=1e-9)

    def test_purity_preserved_by_unitaries(self):
        circuit = random_circuit(3, 15, seed=1)
        simulator = DensityMatrixSimulator(3)
        simulator.run_circuit(circuit)
        assert simulator.purity() == pytest.approx(1.0)

    def test_controlled_gates(self):
        simulator = DensityMatrixSimulator(2)
        simulator.apply_gate(gates.X, 0, {})
        simulator.apply_gate(gates.X, 1, {0: 1})
        probs = simulator.probabilities()
        assert probs[0b11] == pytest.approx(1.0)

    def test_safety_cap(self):
        with pytest.raises(ValueError, match="cap"):
            DensityMatrixSimulator(14)


class TestChannels:
    def test_trace_preserved_by_all_channels(self):
        for kraus in (
            depolarizing_kraus(0.2),
            amplitude_damping_kraus(0.3),
            phase_flip_kraus(0.1),
        ):
            simulator = DensityMatrixSimulator(2)
            simulator.apply_gate(gates.H, 0, {})
            simulator.apply_gate(gates.X, 1, {0: 1})
            simulator.apply_channel(kraus, 0)
            assert np.trace(simulator.density_matrix()) == pytest.approx(1.0)

    def test_depolarizing_reduces_purity(self):
        simulator = DensityMatrixSimulator(1)
        simulator.apply_gate(gates.H, 0, {})
        simulator.apply_channel(depolarizing_kraus(0.5), 0)
        assert simulator.purity() < 1.0

    def test_full_depolarizing_gives_maximally_mixed(self):
        simulator = DensityMatrixSimulator(1)
        simulator.apply_gate(gates.H, 0, {})
        simulator.apply_channel(depolarizing_kraus(1.0), 0)
        assert np.allclose(simulator.density_matrix(), np.eye(2) / 2)

    def test_amplitude_damping_fixed_point(self):
        """Repeated damping drives any state to |0>."""
        simulator = DensityMatrixSimulator(1)
        simulator.apply_gate(gates.X, 0, {})
        for _ in range(200):
            simulator.apply_channel(amplitude_damping_kraus(0.1), 0)
        assert simulator.probability_of_basis([0]) == pytest.approx(1.0, abs=1e-6)

    def test_phase_flip_kills_coherence(self):
        simulator = DensityMatrixSimulator(1)
        simulator.apply_gate(gates.H, 0, {})
        simulator.apply_channel(phase_flip_kraus(0.5), 0)
        rho = simulator.density_matrix()
        # p = 1/2 completely dephases.
        assert rho[0, 1] == pytest.approx(0.0, abs=1e-12)
        assert rho[0, 0] == pytest.approx(0.5)

    def test_damping_example6_probabilities(self):
        """Paper Example 6: damping the Bell state's first qubit."""
        p = 0.3
        simulator = DensityMatrixSimulator(2)
        simulator.run_circuit(ghz(2))
        simulator.apply_channel(amplitude_damping_kraus(p), 0)
        # The ensemble {(p/2, |01>), (1 - p/2, normalized no-decay state)}.
        probs = simulator.probabilities()
        assert probs[0b01] == pytest.approx(p / 2)
        assert probs[0b00] == pytest.approx(0.5)
        assert probs[0b11] == pytest.approx((1 - p) / 2)


class TestMeasurementStatistics:
    def test_probability_of_one(self):
        simulator = DensityMatrixSimulator(2)
        simulator.apply_gate(gates.ry(2 * math.asin(math.sqrt(0.3))), 1, {})
        assert simulator.probability_of_one(1) == pytest.approx(0.3)
        assert simulator.probability_of_one(0) == pytest.approx(0.0)

    def test_expectation_z(self):
        simulator = DensityMatrixSimulator(1)
        assert simulator.expectation_z(0) == pytest.approx(1.0)
        simulator.apply_gate(gates.X, 0, {})
        assert simulator.expectation_z(0) == pytest.approx(-1.0)

    def test_fidelity_with_pure(self):
        simulator = DensityMatrixSimulator(2)
        simulator.run_circuit(ghz(2))
        bell = np.zeros(4, dtype=complex)
        bell[0] = bell[3] = 1 / math.sqrt(2)
        assert simulator.fidelity_with_pure(bell) == pytest.approx(1.0)

    def test_dephase_measure(self):
        simulator = DensityMatrixSimulator(1)
        simulator.apply_gate(gates.H, 0, {})
        simulator.dephase_measure(0)
        rho = simulator.density_matrix()
        assert rho[0, 1] == pytest.approx(0.0, abs=1e-12)
        assert rho[0, 0] == pytest.approx(0.5)

    def test_reset_channel(self):
        simulator = DensityMatrixSimulator(1)
        simulator.apply_gate(gates.H, 0, {})
        simulator.reset_qubit(0)
        assert simulator.probability_of_basis([0]) == pytest.approx(1.0)


class TestRunCircuit:
    def test_measure_in_circuit_dephases(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        simulator = DensityMatrixSimulator(1)
        simulator.run_circuit(circuit)
        rho = simulator.density_matrix()
        assert rho[0, 1] == pytest.approx(0.0, abs=1e-12)

    def test_conditional_gate_rejected(self):
        from repro.circuits.operations import ClassicalCondition

        circuit = QuantumCircuit(1, 1)
        circuit.gate("x", 0, condition=ClassicalCondition((0,), 1))
        simulator = DensityMatrixSimulator(1)
        with pytest.raises(ValueError, match="conditioned"):
            simulator.run_circuit(circuit)

    def test_width_mismatch_rejected(self):
        simulator = DensityMatrixSimulator(2)
        with pytest.raises(ValueError):
            simulator.run_circuit(QuantumCircuit(3))

    def test_channel_factory_applied_per_qubit(self):
        applied = []

        def factory(gate_name, qubit):
            applied.append((gate_name, qubit))
            return []

        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        simulator = DensityMatrixSimulator(2)
        simulator.run_circuit(circuit, factory)
        assert ("h", 0) in applied
        assert ("x", 0) in applied and ("x", 1) in applied
