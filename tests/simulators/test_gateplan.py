"""Tests for compiled gate plans, single-qubit fusion, and the noise-operator
cache (``repro.simulators.gateplan``)."""

import random

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.library import ghz, qft
from repro.simulators.base import execute_circuit, execute_plan
from repro.simulators.ddsim import DDBackend
from repro.simulators.gateplan import NoiseOperatorCache, compile_plan
from repro.simulators.statevector import StatevectorBackend
from repro.simulators.unitary import circuit_unitary_matrix, circuits_equivalent

_X = np.array([[0, 1], [1, 0]], dtype=complex)


def single_qubit_run_circuit():
    circuit = QuantumCircuit(2, name="runs")
    circuit.h(0)
    circuit.rz(0.3, 0)
    circuit.x(1)
    circuit.cx(0, 1)
    circuit.h(1)
    circuit.h(1)
    return circuit


class TestCompile:
    def test_plan_mirrors_circuit(self):
        circuit = ghz(4, measure=True)
        plan = compile_plan(circuit)
        assert plan.num_qubits == 4
        assert plan.gate_step_count() == 4
        kinds = [step.kind for step in plan.steps]
        assert kinds.count("measure") == 4
        assert plan.package is None

    def test_package_resolves_edges_once(self):
        backend = DDBackend(4)
        plan = compile_plan(ghz(4), package=backend.package)
        assert all(
            step.gate_edge is not None for step in plan.steps if step.kind == "gate"
        )
        # GHZ-4 = one H + three structurally distinct CX gate DDs.
        assert plan.compiled_gates == 4
        # Recompiling the same circuit hits the package's gate cache.
        again = compile_plan(ghz(4), package=backend.package)
        assert again.compiled_gates == 0

    def test_execute_plan_matches_execute_circuit_dd(self):
        circuit = qft(4)
        direct = DDBackend(4)
        execute_circuit(direct, circuit, random.Random(0))
        planned = DDBackend(4)
        plan = compile_plan(circuit, package=planned.package)
        result = execute_plan(planned, plan, random.Random(0))
        assert result.applied_gates == plan.gate_step_count()
        assert np.array_equal(direct.statevector(), planned.statevector())

    def test_execute_plan_matches_execute_circuit_statevector(self):
        circuit = qft(3)
        direct = StatevectorBackend(3)
        execute_circuit(direct, circuit, random.Random(0))
        planned = StatevectorBackend(3)
        result = execute_plan(planned, compile_plan(circuit), random.Random(0))
        assert result.applied_gates > 0
        assert np.array_equal(direct.statevector(), planned.statevector())

    def test_measured_circuit_identical_outcomes(self):
        circuit = ghz(3, measure=True)
        direct = DDBackend(3)
        a = execute_circuit(direct, circuit, random.Random(42))
        planned = DDBackend(3)
        plan = compile_plan(circuit, package=planned.package)
        b = execute_plan(planned, plan, random.Random(42))
        assert a.classical_bits == b.classical_bits
        assert a.measured_qubits == b.measured_qubits

    def test_qubit_mismatch_rejected(self):
        backend = DDBackend(3)
        plan = compile_plan(ghz(4))
        with pytest.raises(ValueError, match="qubits"):
            execute_plan(backend, plan, random.Random(0))


class TestFusion:
    def test_adjacent_single_qubit_gates_fuse(self):
        plan = compile_plan(single_qubit_run_circuit(), fuse=True)
        # h+rz on wire 0 fuse, the trailing h+h on wire 1 fuse.
        assert plan.fused_gates == 2
        names = [step.name for step in plan.steps]
        assert any(name.startswith("fused[") for name in names)

    def test_fusion_preserves_unitary(self):
        circuit = single_qubit_run_circuit()
        fused = compile_plan(circuit, fuse=True)
        unfused = compile_plan(circuit, fuse=False)
        assert fused.gate_step_count() < unfused.gate_step_count()
        sv_a = StatevectorBackend(2)
        execute_plan(sv_a, fused, random.Random(0))
        sv_b = StatevectorBackend(2)
        execute_plan(sv_b, unfused, random.Random(0))
        assert np.allclose(sv_a.statevector(), sv_b.statevector())

    def test_barrier_fences_fusion(self):
        circuit = QuantumCircuit(1, name="fenced")
        circuit.h(0)
        circuit.barrier()
        circuit.h(0)
        plan = compile_plan(circuit, fuse=True)
        assert plan.fused_gates == 0
        assert plan.gate_step_count() == 2

    def test_unitary_path_uses_fusion(self):
        # circuit_unitary_matrix now compiles fused; equivalence and the
        # dense unitary must be unaffected.
        circuit = single_qubit_run_circuit()
        matrix = circuit_unitary_matrix(circuit)
        reference = np.eye(4, dtype=complex)
        sv = StatevectorBackend(2)
        execute_circuit(sv, circuit, random.Random(0))
        assert np.allclose(matrix @ np.array([1, 0, 0, 0]), sv.statevector())
        assert circuits_equivalent(circuit, circuit)
        assert np.allclose(matrix.conj().T @ matrix, reference)


class TestNoiseOperatorCache:
    def test_caches_by_key(self):
        backend = DDBackend(2)
        cache = NoiseOperatorCache(backend.package, 2)
        first = cache.single_qubit("pauli1", _X, 0)
        second = cache.single_qubit("pauli1", _X, 0)
        assert first is second
        other_qubit = cache.single_qubit("pauli1", _X, 1)
        assert other_qubit is not first

    def test_counts_compiles_and_hits(self):
        backend = DDBackend(2)
        cache = NoiseOperatorCache(backend.package, 2)
        cache.single_qubit("pauli1", _X, 0)
        cache.single_qubit("pauli1", _X, 0)
        counters = backend.package.metrics.snapshot()["counters"]
        assert counters["gateplan.noise_compiled"] == 1
        assert counters["gateplan.noise_hits"] == 1

    def test_kraus_pair_keys_per_branch(self):
        backend = DDBackend(1)
        cache = NoiseOperatorCache(backend.package, 1)
        decay = np.array([[0, 1], [0, 0]], dtype=complex)
        keep = np.array([[1, 0], [0, 0.9]], dtype=complex)
        edges = cache.kraus_pair("damping", (keep, decay), 0)
        assert len(edges) == 2
        again = cache.kraus_pair("damping", (keep, decay), 0)
        assert all(a is b for a, b in zip(edges, again))

    def test_cached_edge_applies_identically(self):
        direct = DDBackend(2)
        direct.apply_gate(_X, 1, {})
        cached = DDBackend(2)
        edge = cached.noise_ops.single_qubit("pauli1", _X, 1)
        cached.apply_gate_edge(edge)
        assert np.array_equal(direct.statevector(), cached.statevector())


class TestGcPacing:
    def test_skipped_counter_increments(self):
        backend = DDBackend(3)
        plan = compile_plan(ghz(3), package=backend.package)
        execute_plan(backend, plan, random.Random(0))
        counters = backend.package.metrics.snapshot()["counters"]
        # Small states stay far below the dead-node watermark: every
        # per-gate collection attempt is skipped (and counted).
        assert counters.get("dd.gc.skipped", 0) > 0

    def test_forced_sweep_still_collects(self):
        backend = DDBackend(3)
        plan = compile_plan(ghz(3), package=backend.package)
        execute_plan(backend, plan, random.Random(0))
        backend.package.garbage_collect(force=True)
        counters = backend.package.metrics.snapshot()["counters"]
        assert counters.get("dd.gc.sweeps", 0) >= 1
