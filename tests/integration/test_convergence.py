"""Integration: stochastic Monte-Carlo estimates converge to the exact
density-matrix oracle within Theorem 1's tolerance.

This is the central correctness claim of the paper's method (Section III):
the empirical average over stochastic trajectories approximates the true
ensemble property.  We run moderate M and assert agreement within the
Hoeffding half-width plus the oracle's own exactness.
"""

import random

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.library import ghz, qft, w_state
from repro.noise import NoiseModel, exact_channel_factory
from repro.simulators import (
    DensityMatrixSimulator,
    StatevectorBackend,
    execute_circuit,
)
from repro.stochastic import (
    BasisProbability,
    ExpectationZ,
    IdealFidelity,
    simulate_stochastic,
)

#: Exaggerated noise so effects dominate Monte-Carlo noise at moderate M.
#: The exact Kraus unravelling is used so the stochastic average equals the
#: oracle's channel *exactly* (the default "event" damping agrees only to
#: second order in the damping rate).
NOISE = NoiseModel.paper_defaults(damping_mode="exact").scaled(25)
M = 4000
#: Hoeffding 99.9% half-width at M samples — the assertion tolerance.
TOLERANCE = float(np.sqrt(np.log(2 / 0.001) / (2 * M)))


def exact_oracle(circuit):
    oracle = DensityMatrixSimulator(circuit.num_qubits)
    oracle.run_circuit(circuit, exact_channel_factory(NOISE))
    return oracle


def ideal_state(circuit):
    backend = StatevectorBackend(circuit.num_qubits)
    execute_circuit(backend, circuit, random.Random(0))
    return backend.statevector()


@pytest.mark.parametrize("make_circuit", [lambda: ghz(3), lambda: qft(3), lambda: w_state(3)])
def test_basis_probabilities_converge(make_circuit):
    circuit = make_circuit()
    n = circuit.num_qubits
    labels = ["0" * n, "1" * n, "01" + "0" * (n - 2)]
    result = simulate_stochastic(
        circuit,
        NOISE,
        [BasisProbability(bits) for bits in labels],
        trajectories=M,
        seed=17,
    )
    oracle = exact_oracle(circuit)
    for bits in labels:
        exact = oracle.probability_of_basis([int(b) for b in bits])
        estimate = result.mean(f"P(|{bits}>)")
        assert estimate == pytest.approx(exact, abs=TOLERANCE), bits


def test_ideal_fidelity_converges():
    circuit = ghz(3)
    result = simulate_stochastic(
        circuit, NOISE, [IdealFidelity()], trajectories=M, seed=23
    )
    oracle = exact_oracle(circuit)
    exact = oracle.fidelity_with_pure(ideal_state(circuit))
    assert result.mean("F(ideal)") == pytest.approx(exact, abs=TOLERANCE)


def test_expectation_z_converges():
    circuit = QuantumCircuit(2)
    circuit.h(0).cx(0, 1).rx(0.7, 0)
    result = simulate_stochastic(
        circuit, NOISE, [ExpectationZ(0), ExpectationZ(1)], trajectories=M, seed=29
    )
    oracle = exact_oracle(circuit)
    for qubit in range(2):
        # <Z> has range 2, so the Hoeffding width doubles.
        assert result.mean(f"<Z_{qubit}>") == pytest.approx(
            oracle.expectation_z(qubit), abs=2 * TOLERANCE
        )


def test_sampled_outcome_histogram_converges():
    """The per-trajectory samples approximate the oracle's diagonal."""
    circuit = ghz(3)
    result = simulate_stochastic(
        circuit, NOISE, [], trajectories=M, seed=31, sample_shots=1
    )
    oracle = exact_oracle(circuit)
    exact_probabilities = oracle.probabilities()
    distribution = result.outcome_distribution()
    for index in range(8):
        key = format(index, "03b")
        assert distribution.get(key, 0.0) == pytest.approx(
            exact_probabilities[index], abs=TOLERANCE * 1.5
        )


def test_damping_dominates_without_unitaries():
    """Idle damping only: P(1) after one noisy identity on |1> is 1 - p."""
    circuit = QuantumCircuit(1)
    circuit.x(0)
    circuit.i(0)
    noise = NoiseModel.uniform(amplitude_damping=0.2)
    result = simulate_stochastic(
        circuit, noise, [BasisProbability("1")], trajectories=M, seed=37
    )
    # Two noisy slots (the x and the id gates) each damp with p = 0.2.
    expected = (1 - 0.2) ** 2
    assert result.mean("P(|1>)") == pytest.approx(expected, abs=TOLERANCE)


def test_convergence_improves_with_m():
    """Error roughly halves when M quadruples (Monte-Carlo scaling)."""
    circuit = ghz(2)
    oracle = exact_oracle(circuit)
    exact = oracle.probability_of_basis([0, 0])

    def error_at(m, seed):
        result = simulate_stochastic(
            circuit, NOISE, [BasisProbability("00")], trajectories=m, seed=seed
        )
        return abs(result.mean("P(|00>)") - exact)

    small_errors = np.mean([error_at(100, seed) for seed in range(8)])
    large_errors = np.mean([error_at(1600, seed) for seed in range(8)])
    assert large_errors < small_errors
