"""Integration tests for the extended CLI commands (draw / equiv / fuse)."""

import pytest

from repro.cli import main
from repro.circuits import parse_qasm
from repro.circuits.library import ghz


class TestDrawCommand:
    def test_draw_ghz(self, capsys):
        assert main(["draw", "ghz:3"]) == 0
        output = capsys.readouterr().out
        assert "[H]" in output
        assert output.count("\n") >= 3

    def test_draw_qasm_file(self, capsys, tmp_path):
        path = tmp_path / "c.qasm"
        path.write_text(ghz(2).to_qasm(), encoding="utf-8")
        main(["draw", str(path)])
        assert "●" in capsys.readouterr().out


class TestEquivCommand:
    def test_equivalent_exit_zero(self, capsys):
        assert main(["equiv", "ghz:3", "ghz:3"]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_not_equivalent_exit_one(self, capsys):
        assert main(["equiv", "ghz:3", "qft:3"]) == 1
        assert "NOT equivalent" in capsys.readouterr().out

    def test_strict_mode(self, capsys, tmp_path):
        a = tmp_path / "a.qasm"
        b = tmp_path / "b.qasm"
        a.write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[1];\nrz(pi) q[0];\n',
            encoding="utf-8",
        )
        b.write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[1];\nz q[0];\n',
            encoding="utf-8",
        )
        assert main(["equiv", str(a), str(b)]) == 0
        assert main(["equiv", str(a), str(b), "--strict"]) == 1


class TestFuseCommand:
    def test_fuse_to_stdout(self, capsys, tmp_path):
        path = tmp_path / "c.qasm"
        source = (
            'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[1];\n'
            "h q[0]; t q[0]; h q[0];\n"
        )
        path.write_text(source, encoding="utf-8")
        assert main(["fuse", str(path)]) == 0
        output = capsys.readouterr().out
        fused = parse_qasm(output)
        assert fused.num_gates() == 1

    def test_fuse_to_file(self, capsys, tmp_path):
        source_path = tmp_path / "c.qasm"
        out_path = tmp_path / "fused.qasm"
        source_path.write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[1];\nh q[0]; s q[0];\n',
            encoding="utf-8",
        )
        main(["fuse", str(source_path), "-o", str(out_path)])
        assert "2 -> 1 gates" in capsys.readouterr().out
        assert parse_qasm(out_path.read_text(encoding="utf-8")).num_gates() == 1
