"""Integration tests for the remaining CLI table/report paths."""

import pytest

from repro.cli import main


class TestTableCommandVariants:
    def test_table_1b(self, capsys):
        assert main(["table", "1b", "-M", "2", "--timeout", "10"]) == 0
        assert "Table Ib" in capsys.readouterr().out

    # The full Table Ic CLI path is exercised by `repro-sim report` below and
    # by tests/harness (selected rows); running all ten rows here would cost
    # minutes because a single dense-row trajectory cannot be interrupted
    # mid-flight by the wall-clock budget.


class TestReportCommand:
    def test_report_table_a_b_sections(self, capsys, tmp_path, monkeypatch):
        # Patch the 1c sweep to a single structured row to keep this fast
        # while still exercising the full report assembly path.
        import repro.cli as cli
        from repro.harness import run_table1c

        monkeypatch_applied = {}

        def small_1c(trajectories, timeout):
            monkeypatch_applied["called"] = True
            return run_table1c(
                names=("seca",), trajectories=trajectories, timeout=timeout
            )

        import repro.harness as harness

        monkeypatch.setattr(
            harness, "run_table1c", lambda trajectories, timeout: small_1c(trajectories, timeout)
        )
        target = tmp_path / "report.md"
        assert main(
            ["report", "-M", "1", "--timeout", "5", "-o", str(target)]
        ) == 0
        text = target.read_text(encoding="utf-8")
        assert text.startswith("# Stochastic DD simulation")
        assert "### Table Ia" in text
        assert "### Table Ib" in text
        assert "### Table Ic" in text
        assert monkeypatch_applied.get("called")
