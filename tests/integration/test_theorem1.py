"""Integration: empirical validation of Theorem 1's sample-size guarantee.

We repeat the whole estimation experiment R times with independent seeds and
check that ``max_l |o_hat_l - o_l| <= epsilon`` holds in at least a
``1 - delta`` fraction of repetitions — the exact statement of Theorem 1.
The true values come from the exact density-matrix oracle.
"""

import numpy as np
import pytest

from repro.circuits.library import ghz
from repro.noise import NoiseModel, exact_channel_factory
from repro.simulators import DensityMatrixSimulator
from repro.stochastic import BasisProbability, hoeffding_samples, simulate_stochastic

NOISE = NoiseModel.paper_defaults(damping_mode="exact").scaled(30)


def test_theorem1_coverage():
    circuit = ghz(3)
    labels = ["000", "111", "010", "100"]
    properties = [BasisProbability(bits) for bits in labels]

    epsilon = 0.05
    delta = 0.1
    m = hoeffding_samples(len(labels), epsilon, delta)

    oracle = DensityMatrixSimulator(3)
    oracle.run_circuit(circuit, exact_channel_factory(NOISE))
    truth = {bits: oracle.probability_of_basis([int(b) for b in bits]) for bits in labels}

    repetitions = 10
    successes = 0
    for repetition in range(repetitions):
        result = simulate_stochastic(
            circuit, NOISE, properties, trajectories=m, seed=1000 + repetition
        )
        max_deviation = max(
            abs(result.mean(f"P(|{bits}>)") - truth[bits]) for bits in labels
        )
        if max_deviation <= epsilon:
            successes += 1
    # Theorem 1 guarantees success probability >= 1 - delta = 0.9; with the
    # conservative bound the empirical rate is essentially always 10/10, but
    # we assert the guaranteed level to keep the test sharp yet stable.
    assert successes >= int((1 - delta) * repetitions)


def test_single_run_unbiasedness():
    """E|<omega|psi_j>|^2 equals the ensemble value (proof of Theorem 1)."""
    circuit = ghz(2)
    oracle = DensityMatrixSimulator(2)
    oracle.run_circuit(circuit, exact_channel_factory(NOISE))
    exact = oracle.probability_of_basis([0, 0])

    estimates = [
        simulate_stochastic(
            circuit, NOISE, [BasisProbability("00")], trajectories=1, seed=seed
        ).mean("P(|00>)")
        for seed in range(600)
    ]
    assert np.mean(estimates) == pytest.approx(exact, abs=0.05)


def test_sample_size_independent_of_system_size():
    """Theorem 1's M depends on (L, eps, delta) only — not on qubit count.
    The *runtime* grows with n, but the statistical budget does not: the
    same M achieves the same accuracy on a larger register."""
    epsilon, delta = 0.08, 0.1
    m = hoeffding_samples(1, epsilon, delta)

    for n in (2, 5):
        circuit = ghz(n)
        oracle_noise = NOISE
        result = simulate_stochastic(
            circuit,
            oracle_noise,
            [BasisProbability("0" * n)],
            trajectories=m,
            seed=77,
        )
        if n <= 5:
            oracle = DensityMatrixSimulator(n)
            oracle.run_circuit(circuit, exact_channel_factory(oracle_noise))
            exact = oracle.probability_of_basis([0] * n)
            assert result.mean(f"P(|{'0' * n}>)") == pytest.approx(exact, abs=epsilon)
