"""Integration: the shipped example .qasm files parse and simulate correctly."""

import math
import os
import random

import pytest

from repro.circuits import parse_qasm_file
from repro.simulators import DDBackend, StatevectorBackend, execute_circuit

CIRCUITS_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "examples", "circuits")
)


def load(name):
    return parse_qasm_file(os.path.join(CIRCUITS_DIR, name))


class TestShippedQasmFiles:
    def test_all_files_parse(self):
        files = [f for f in os.listdir(CIRCUITS_DIR) if f.endswith(".qasm")]
        assert len(files) >= 4
        for name in files:
            circuit = load(name)
            assert circuit.num_qubits >= 2

    def test_teleport_preserves_payload(self):
        circuit = load("teleport.qasm")
        expected_p1 = math.sin(1.1 / 2) ** 2
        for seed in range(6):
            backend = DDBackend(3)
            execute_circuit(backend, circuit, random.Random(seed))
            assert backend.probability_of_one(2) == pytest.approx(expected_p1, abs=1e-9)

    def test_adder_computes_sum(self):
        circuit = load("adder_n10.qasm")
        backend = DDBackend(circuit.num_qubits)
        result = execute_circuit(backend, circuit, random.Random(0))
        assert result.classical_value() == 7 + 11

    def test_ghz_measurement_correlated(self):
        circuit = load("ghz_n8.qasm")
        for seed in range(5):
            backend = DDBackend(8)
            result = execute_circuit(backend, circuit, random.Random(seed))
            assert result.classical_bits in ([0] * 8, [1] * 8)

    def test_qpe_reads_phase(self):
        circuit = load("qpe_n5.qasm")
        backend = DDBackend(5)
        result = execute_circuit(backend, circuit, random.Random(0))
        assert result.classical_value() == 5

    def test_backends_agree_on_all_files(self):
        for name in os.listdir(CIRCUITS_DIR):
            if not name.endswith(".qasm"):
                continue
            circuit = load(name)
            dd = DDBackend(circuit.num_qubits)
            sv = StatevectorBackend(circuit.num_qubits)
            r1 = execute_circuit(dd, circuit, random.Random(3))
            r2 = execute_circuit(sv, circuit, random.Random(3))
            assert r1.classical_bits == r2.classical_bits, name
