"""Integration tests for ``repro chaos`` — the fault-injection smoke suite.

Kept deliberately small (few trajectories, no ``hang`` kind, short
timeouts) so the suite stays fast; the heavyweight configuration runs in
the CI ``chaos-smoke`` job instead.
"""

import json

from repro.cli import main

FAST = [
    "-M", "24", "--chunk-size", "8", "--chunk-timeout", "2.0",
    "--faults", "crash,corrupt-store",
]


class TestChaosCommand:
    def test_chaos_passes_and_reports_recovery(self, capsys):
        exit_code = main(["chaos", "--seed", "7"] + FAST)
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "chaos seed=7" in output
        assert "RESULT: PASS" in output
        assert "faults.injected." in output
        assert "faults.recovered." in output

    def test_chaos_json_payload(self, capsys):
        exit_code = main(["chaos", "--seed", "7", "--json"] + FAST)
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.chaos/v1"
        assert payload["ok"] is True
        assert payload["seed"] == 7
        assert sorted(payload["kinds"]) == ["bit-flip", "crash-before"]
        assert all(check["ok"] for check in payload["checks"])
        assert sum(payload["injected"].values()) >= 1
        assert sum(payload["recovered"].values()) >= 1
        # Both chaos passes reproduced the same bit-identical estimates.
        assert payload["pass_estimates"][0] == payload["pass_estimates"][1]
        assert payload["pass_estimates"][0] == payload["reference_estimates"]

    def test_same_seed_is_deterministic(self, capsys):
        main(["chaos", "--seed", "11", "--json"] + FAST)
        first = json.loads(capsys.readouterr().out)
        main(["chaos", "--seed", "11", "--json"] + FAST)
        second = json.loads(capsys.readouterr().out)
        assert first["plan"] == second["plan"]
        assert first["pass_estimates"] == second["pass_estimates"]

    def test_different_seed_changes_the_plan(self, capsys):
        main(["chaos", "--seed", "1", "--json"] + FAST)
        first = json.loads(capsys.readouterr().out)
        main(["chaos", "--seed", "2", "--json"] + FAST)
        second = json.loads(capsys.readouterr().out)
        assert first["plan"] != second["plan"]
        # Each run is internally consistent: both of its passes agree with
        # its own fault-free reference despite the differing schedules.
        for payload in (first, second):
            assert payload["pass_estimates"][0] == payload["reference_estimates"]

    def test_fault_aliases_accepted(self, capsys):
        exit_code = main(
            ["chaos", "--seed", "3", "-M", "16", "--chunk-size", "8",
             "--faults", "drop,torn", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload["kinds"]) == ["queue-drop", "torn-write"]
