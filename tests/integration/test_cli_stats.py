"""Integration tests for `repro-sim stats` and the table metrics sidecar."""

import json

from repro.cli import main


class TestStatsCommand:
    def test_json_schema(self, tmp_path):
        target = tmp_path / "stats.json"
        assert main(
            ["stats", "ghz:6", "-M", "12", "-w", "2", "--fidelity",
             "--json", "-o", str(target)]
        ) == 0
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro.stats/v1"
        assert payload["backend"] == "dd"
        assert payload["workers"] == 2
        assert payload["completed_trajectories"] == 12
        assert payload["timed_out"] is False
        assert payload["cpu_seconds"] > 0.0
        assert payload["peak_nodes"] > 0

        counters = payload["metrics"]["counters"]
        assert counters["trajectory.completed"] == 12
        assert counters["scheduler.retries"] == 0
        assert counters["scheduler.worker_respawns"] == 0

        histograms = payload["metrics"]["histograms"]
        assert histograms["trajectory.seconds"]["count"] == 12

        rates = payload["rates"]
        assert "dd.compute.mat_vec.hit_rate" in rates
        for name, value in rates.items():
            assert 0.0 <= value <= 1.0, name

    def test_human_output_mentions_key_sections(self, capsys):
        assert main(["stats", "ghz:4", "-M", "6"]) == 0
        out = capsys.readouterr().out
        assert "hit rates:" in out
        assert "dd.compute.mat_vec.hit_rate" in out
        assert "scheduler.retries: 0" in out
        assert "trajectory.seconds:" in out
        assert "peak DD nodes:" in out

    def test_statevector_backend(self, capsys):
        assert main(["stats", "ghz:3", "-M", "4", "-b", "statevector"]) == 0
        out = capsys.readouterr().out
        assert "statevector backend" in out
        assert "trajectory.seconds:" in out

    def test_trace_flag_with_workers(self, capsys):
        assert main(["stats", "ghz:4", "-M", "8", "-w", "2", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "trace (" in out
        assert "job.finalize" in out


class TestTableMetricsSidecar:
    def test_sidecar_schema(self, tmp_path, capsys):
        sidecar = tmp_path / "table.metrics.json"
        assert main(
            ["table", "1b", "-M", "2", "--timeout", "10",
             "--metrics", str(sidecar)]
        ) == 0
        assert "Table Ib" in capsys.readouterr().out
        payload = json.loads(sidecar.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro.table-metrics/v1"
        assert payload["rows"]
        some_row = next(iter(payload["rows"].values()))
        cell = some_row["dd"]
        assert cell["completed_trajectories"] > 0
        assert cell["cpu_seconds"] > 0.0
        assert "dd.compute.mat_vec.hit_rate" in cell["rates"]
        for value in cell["rates"].values():
            assert 0.0 <= value <= 1.0
