"""Integration tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.circuits.library import ghz


class TestRunCommand:
    def test_run_library_circuit(self, capsys):
        exit_code = main(["run", "ghz:4", "-M", "20", "--seed", "1"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "entanglement_4" in output
        assert "trajectories: 20/20" in output

    def test_run_with_properties(self, capsys):
        main(
            [
                "run", "ghz:3", "-M", "10",
                "--probability", "000",
                "--probability", "111",
                "--fidelity",
            ]
        )
        output = capsys.readouterr().out
        assert "P(|000>)" in output
        assert "P(|111>)" in output
        assert "F(ideal)" in output

    def test_run_qasmbench_name(self, capsys):
        main(["run", "seca", "-M", "5"])
        output = capsys.readouterr().out
        assert "seca_11" in output

    def test_run_noiseless(self, capsys):
        main(["run", "ghz:3", "-M", "10", "--noiseless", "--probability", "000"])
        output = capsys.readouterr().out
        assert "0.500000" in output

    def test_run_qasm_file(self, capsys, tmp_path):
        path = tmp_path / "circ.qasm"
        path.write_text(ghz(3).to_qasm(), encoding="utf-8")
        main(["run", str(path), "-M", "5"])
        output = capsys.readouterr().out
        assert "circ" in output

    def test_unknown_circuit_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "does_not_exist", "-M", "1"])

    def test_statevector_backend(self, capsys):
        main(["run", "ghz:3", "-M", "5", "-b", "statevector"])
        output = capsys.readouterr().out
        assert "statevector backend" in output

    def test_pauli_and_outcome_properties(self, capsys):
        main(
            ["run", "seca", "-M", "10", "--noiseless",
             "--pauli", "ZIIIIIIIIII", "--outcome", "0"]
        )
        output = capsys.readouterr().out
        assert "<ZIIIIIIIIII>" in output
        assert "P(c=0)" in output


class TestOtherCommands:
    def test_circuits_listing(self, capsys):
        assert main(["circuits"]) == 0
        output = capsys.readouterr().out
        assert "bv: 19" in output
        assert "ghz:<n>" in output

    def test_dot_to_stdout(self, capsys):
        assert main(["dot", "ghz:2"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("digraph")

    def test_dot_to_file(self, capsys, tmp_path):
        target = tmp_path / "out.dot"
        main(["dot", "ghz:2", "-o", str(target)])
        assert target.read_text(encoding="utf-8").startswith("digraph")

    def test_table_command_small(self, capsys):
        # Uses explicit tiny budget to stay fast.
        assert main(["table", "1a", "-M", "2", "--timeout", "5"]) == 0
        output = capsys.readouterr().out
        assert "Table Ia" in output


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "ghz:4"])
        assert args.trajectories == 1000
        assert args.backend == "dd"
        assert args.depolarizing == 0.001
        assert args.damping == 0.002
        assert args.phase_flip == 0.001
