"""Stress: correctness under aggressive garbage collection.

Forces the unique tables to collect constantly (tiny adaptive limit) while
running noisy trajectories — any node the GC wrongly drops, or any stale
compute-table entry surviving a collection, shows up as a wrong state.
"""

import random

import numpy as np
import pytest

from repro.circuits.library import ghz, qft, random_circuit
from repro.dd import DDPackage
from repro.noise import NoiseModel, StochasticErrorApplier
from repro.simulators import DDBackend, StatevectorBackend, execute_circuit


def run_with_gc_pressure(circuit, seed, gc_limit=8):
    package = DDPackage(circuit.num_qubits)
    package.vector_table.gc_limit = gc_limit
    package.matrix_table.gc_limit = gc_limit
    backend = DDBackend(circuit.num_qubits, package=package)
    rng = random.Random(seed)
    applier = StochasticErrorApplier(NoiseModel.paper_defaults().scaled(20), rng)
    result = execute_circuit(backend, circuit, rng, error_hook=applier)
    return backend, result, package


class TestGcStress:
    @pytest.mark.parametrize("seed", range(4))
    def test_noisy_trajectory_matches_statevector(self, seed):
        circuit = random_circuit(5, 12, seed=seed)
        dd_backend, _, package = run_with_gc_pressure(circuit, seed)
        assert package.vector_table.collections > 0  # pressure actually applied

        sv_backend = StatevectorBackend(5)
        rng = random.Random(seed)
        applier = StochasticErrorApplier(NoiseModel.paper_defaults().scaled(20), rng)
        execute_circuit(sv_backend, circuit, rng, error_hook=applier)
        assert np.allclose(
            dd_backend.statevector(), sv_backend.statevector(), atol=1e-9
        )

    def test_many_trajectories_reuse_one_pressured_package(self):
        package = DDPackage(6)
        package.vector_table.gc_limit = 8
        backend = DDBackend(6, package=package)
        circuit = ghz(6)
        for seed in range(15):
            rng = random.Random(seed)
            applier = StochasticErrorApplier(NoiseModel.paper_defaults(), rng)
            execute_circuit(backend, circuit, rng, error_hook=applier)
            backend.reset_all()
        # After reset, the state is exactly |000000>.
        assert backend.probability_of_basis([0] * 6) == pytest.approx(1.0)

    def test_gate_cache_survives_collections(self):
        circuit = qft(5, do_swaps=False)
        backend, _, package = run_with_gc_pressure(circuit, seed=1)
        # Gate DDs are pinned: re-running must not rebuild them from scratch.
        cached_before = len(package._gate_cache)
        backend.reset_all()
        execute_circuit(backend, circuit, random.Random(2))
        assert len(package._gate_cache) == cached_before

    def test_table_size_stays_bounded(self):
        """With constant collection, the unique table cannot grow without
        bound across trajectories."""
        package = DDPackage(5)
        package.vector_table.gc_limit = 16
        backend = DDBackend(5, package=package)
        circuit = random_circuit(5, 10, seed=3)
        sizes = []
        for seed in range(10):
            rng = random.Random(seed)
            applier = StochasticErrorApplier(NoiseModel.paper_defaults(), rng)
            execute_circuit(backend, circuit, rng, error_hook=applier)
            backend.reset_all()
            sizes.append(len(package.vector_table))
        # Bounded: the last runs are no bigger than a small multiple of the
        # state size (the adaptive limit may have grown a few doublings).
        assert sizes[-1] < 4096
