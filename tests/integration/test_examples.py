"""Integration: the fast example scripts run end-to-end.

Each example is executed in-process (runpy) with scaled-down arguments
where the script accepts them.  The slow studies (reproduce_tables,
device_noise_study, concurrency, noisy_algorithms, stochastic_vs_exact)
are exercised by the harness/bench suites instead.
"""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name, argv):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    old_argv = sys.argv
    sys.argv = [path] + argv
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py", ["5", "60"])
        output = capsys.readouterr().out
        assert "entanglement_5" in output
        assert "F(ideal)" in output
        assert "paper's budget" in output

    def test_figure1_decision_diagrams(self, capsys):
        run_example("figure1_decision_diagrams.py", [])
        output = capsys.readouterr().out
        assert "Fig. 1a" in output
        assert "amplitude(|11>) = 0.707107" in output
        assert "entry (2,2) = -1" in output
        assert "(0.150, |01>)" in output

    def test_qasm_workflow(self, capsys):
        run_example("qasm_workflow.py", [])
        output = capsys.readouterr().out
        assert "noiseless result: 18 (expected 18)" in output
        assert "P(correct sum)" in output
