"""Integration: OpenQASM source -> parse -> both simulators -> same physics."""

import random

import numpy as np
import pytest

from repro.circuits import parse_qasm, parse_qasm_file
from repro.circuits.library import bigadder, multiplier, qft
from repro.noise import NoiseModel
from repro.simulators import DDBackend, StatevectorBackend, execute_circuit
from repro.stochastic import ClassicalOutcome, simulate_stochastic

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def test_qasm_adder_runs_stochastically():
    """A QASM ripple adder produces the right sum in most noisy runs."""
    source = bigadder(10, a_value=5, b_value=9).to_qasm()
    circuit = parse_qasm(source)
    result = simulate_stochastic(
        circuit,
        NoiseModel.paper_defaults(),
        [ClassicalOutcome(14)],
        trajectories=300,
        seed=3,
    )
    # With the paper's mild error rates the correct result dominates.
    assert result.mean("P(c=14)") > 0.85


def test_qasm_file_round_trip(tmp_path):
    path = tmp_path / "mult.qasm"
    path.write_text(multiplier(2, a_value=2, b_value=3).to_qasm(), encoding="utf-8")
    circuit = parse_qasm_file(str(path))
    assert circuit.name == "mult"
    backend = DDBackend(circuit.num_qubits)
    result = execute_circuit(backend, circuit, random.Random(0))
    assert result.classical_value() == 6


def test_parsed_qft_matches_library_qft():
    library_circuit = qft(5)
    parsed = parse_qasm(library_circuit.to_qasm())
    dd1, dd2 = DDBackend(5), DDBackend(5)
    execute_circuit(dd1, library_circuit, random.Random(0))
    execute_circuit(dd2, parsed, random.Random(0))
    assert np.allclose(dd1.statevector(), dd2.statevector(), atol=1e-12)


def test_teleportation_program():
    """Classic teleportation: mid-circuit measurement + two conditionals."""
    source = HEADER + """
    qreg q[3];
    creg c0[1];
    creg c1[1];
    // prepare the payload state on q[0]
    ry(1.1) q[0];
    // Bell pair on q[1], q[2]
    h q[1];
    cx q[1], q[2];
    // Bell measurement
    cx q[0], q[1];
    h q[0];
    measure q[0] -> c0[0];
    measure q[1] -> c1[0];
    if (c1 == 1) x q[2];
    if (c0 == 1) z q[2];
    """
    import math

    circuit = parse_qasm(source)
    expected_p1 = math.sin(1.1 / 2) ** 2
    for seed in range(8):
        backend = DDBackend(3)
        execute_circuit(backend, circuit, random.Random(seed))
        assert backend.probability_of_one(2) == pytest.approx(expected_p1, abs=1e-9)


def test_noisy_simulation_of_parsed_circuit_both_backends():
    source = HEADER + "qreg q[3]; creg c[3];\nh q[0]; cx q[0], q[1]; ccx q[0], q[1], q[2];\nmeasure q -> c;"
    circuit = parse_qasm(source)
    noise = NoiseModel.paper_defaults().scaled(20)
    estimates = {}
    for backend in ("dd", "statevector"):
        result = simulate_stochastic(
            circuit,
            noise,
            [ClassicalOutcome(0), ClassicalOutcome(7)],
            trajectories=150,
            backend=backend,
            seed=5,
        )
        estimates[backend] = (result.mean("P(c=0)"), result.mean("P(c=7)"))
    assert estimates["dd"] == pytest.approx(estimates["statevector"], abs=1e-9)
