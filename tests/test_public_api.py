"""Tests for the package-level public API surface."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "0.1.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        for module in (
            "repro.dd",
            "repro.circuits",
            "repro.circuits.qasm",
            "repro.circuits.library",
            "repro.simulators",
            "repro.noise",
            "repro.stochastic",
            "repro.exact",
            "repro.harness",
            "repro.obs",
            "repro.cli",
        ):
            importlib.import_module(module)

    def test_subpackage_all_exports_resolve(self):
        for module_name in (
            "repro.dd",
            "repro.circuits",
            "repro.simulators",
            "repro.noise",
            "repro.stochastic",
            "repro.exact",
            "repro.harness",
            "repro.obs",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name}"

    def test_quickstart_docstring_flow(self):
        """The README/module-docstring quickstart must actually run."""
        from repro import BasisProbability, NoiseModel, ghz, simulate_stochastic

        circuit = ghz(4)
        result = simulate_stochastic(
            circuit,
            noise_model=NoiseModel.paper_defaults(),
            properties=[BasisProbability("0000")],
            trajectories=20,
        )
        assert "P(|0000>)" in result.summary()
