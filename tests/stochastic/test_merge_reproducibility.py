"""Merge algebra and seed-stride reproducibility of stochastic results.

The service layer leans on two invariants:

1. ``PropertyEstimate.merge`` / ``StochasticResult.merge`` are associative
   (and, for the summed fields, commutative), so chunk results can be
   folded in any grouping a scheduler produces;
2. per-trajectory seeds are derived from the absolute trajectory index, so
   the same master seed gives the same estimates no matter how the ``M``
   trajectories are sharded across 1, 2, or 4 workers.
"""

import pytest

from repro.circuits.library import ghz
from repro.noise import NoiseModel
from repro.stochastic import BasisProbability, IdealFidelity, StochasticSimulator
from repro.stochastic.results import PropertyEstimate, StochasticResult

NOISE = NoiseModel.paper_defaults().scaled(10)


def estimate_from(values, name="p"):
    estimate = PropertyEstimate(name)
    for value in values:
        estimate.add(value)
    return estimate


def result_from(values, name="p", outcomes=(), peak=0):
    result = StochasticResult(
        circuit_name="c", backend_kind="dd", requested_trajectories=len(values)
    )
    result.completed_trajectories = len(values)
    result.estimates[name] = estimate_from(values, name)
    for outcome in outcomes:
        result.outcome_counts[outcome] = result.outcome_counts.get(outcome, 0) + 1
    result.peak_nodes = peak
    return result


class TestPropertyEstimateMerge:
    def test_associativity_exact_on_dyadic_values(self):
        # Dyadic rationals add exactly in binary floating point, so the
        # associativity law holds bit-for-bit, not just approximately.
        parts = [
            estimate_from([0.5, 0.25]),
            estimate_from([0.125, 0.75]),
            estimate_from([0.0625]),
        ]
        left = estimate_from([])
        left.merge(parts[0]); left.merge(parts[1]); left.merge(parts[2])

        bc = estimate_from([])
        bc.merge(parts[1]); bc.merge(parts[2])
        right = estimate_from([])
        right.merge(parts[0]); right.merge(bc)

        assert left.count == right.count == 5
        assert left.total == right.total
        assert left.total_squared == right.total_squared

    def test_merge_equals_streaming_adds(self):
        values = [0.1, 0.9, 0.4, 0.7, 0.2, 0.5]
        streamed = estimate_from(values)
        merged = estimate_from(values[:3])
        merged.merge(estimate_from(values[3:]))
        assert merged.count == streamed.count
        assert merged.total == pytest.approx(streamed.total, rel=1e-15)
        assert merged.mean == pytest.approx(streamed.mean, rel=1e-12)
        assert merged.variance == pytest.approx(streamed.variance, rel=1e-12)

    def test_merge_rejects_different_properties(self):
        with pytest.raises(ValueError, match="different properties"):
            estimate_from([0.5], "a").merge(estimate_from([0.5], "b"))

    def test_round_trip_dict(self):
        original = estimate_from([0.25, 0.5, 0.125])
        restored = PropertyEstimate.from_dict(original.to_dict())
        assert restored == original


class TestStochasticResultMerge:
    def test_associativity(self):
        parts = [
            result_from([0.5, 0.25], outcomes=("00", "11"), peak=4),
            result_from([0.75], outcomes=("11",), peak=9),
            result_from([0.125, 0.0625, 0.5], outcomes=("00",), peak=2),
        ]

        def fold(*results):
            accumulator = result_from([])
            for result in results:
                accumulator.merge(result)
            return accumulator

        bc = fold(parts[1], parts[2])
        left = fold(parts[0], parts[1], parts[2])
        right = fold(parts[0], bc)

        assert left.completed_trajectories == right.completed_trajectories == 6
        assert left.estimates["p"].total == right.estimates["p"].total
        assert left.outcome_counts == right.outcome_counts == {"00": 2, "11": 2}
        assert left.peak_nodes == right.peak_nodes == 9
        assert left.errors_fired == right.errors_fired

    def test_timed_out_is_sticky(self):
        aggregate = result_from([0.5])
        partial = result_from([0.5])
        partial.timed_out = True
        aggregate.merge(partial)
        aggregate.merge(result_from([0.5]))
        assert aggregate.timed_out

    def test_round_trip_dict(self):
        original = result_from([0.5, 0.25], outcomes=("01",), peak=7)
        original.errors_fired["depolarizing"] = 3
        original.elapsed_seconds = 1.5
        original.workers = 4
        restored = StochasticResult.from_dict(original.to_dict())
        assert restored == original

    def test_copy_is_independent(self):
        original = result_from([0.5])
        duplicate = original.copy()
        duplicate.estimates["p"].add(1.0)
        duplicate.outcome_counts["11"] = 5
        assert original.estimates["p"].count == 1
        assert "11" not in original.outcome_counts


class TestSeedStrideReproducibility:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_count_does_not_change_estimates(self, workers):
        """Identical estimates for 1, 2, and 4 workers at a fixed master
        seed: trajectory i's RNG depends only on (seed, i)."""
        kwargs = dict(
            noise_model=NOISE,
            properties=[BasisProbability("0000"), IdealFidelity()],
            trajectories=24,
            seed=13,
            sample_shots=1,
        )
        with StochasticSimulator(backend="dd", workers=1) as serial:
            reference = serial.run(ghz(4), **kwargs)
        with StochasticSimulator(backend="dd", workers=workers) as parallel:
            sharded = parallel.run(ghz(4), **kwargs)

        assert sharded.completed_trajectories == 24
        for name in reference.estimates:
            assert sharded.mean(name) == pytest.approx(
                reference.mean(name), abs=1e-12
            )
        assert sharded.errors_fired == reference.errors_fired
        assert sharded.outcome_counts == reference.outcome_counts

    def test_repeated_runs_reuse_the_warm_pool(self):
        """The docstring's promise: one pool across .run() calls."""
        simulator = StochasticSimulator(backend="dd", workers=2)
        try:
            first = simulator.run(
                ghz(3), NOISE, [BasisProbability("000")],
                trajectories=12, seed=1, sample_shots=0,
            )
            scheduler = simulator._scheduler
            assert scheduler is not None
            pids = [h.process.pid for h in scheduler._workers]
            second = simulator.run(
                ghz(3), NOISE, [BasisProbability("000")],
                trajectories=18, seed=2, sample_shots=0,
            )
            assert simulator._scheduler is scheduler
            assert [h.process.pid for h in scheduler._workers] == pids
            assert first.completed_trajectories == 12
            assert second.completed_trajectories == 18
        finally:
            simulator.close()

    def test_close_is_safe_without_pool(self):
        StochasticSimulator(workers=1).close()
