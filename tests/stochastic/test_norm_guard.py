"""Tests for the DD norm-drift guard and the drift fault injection site.

The guard is the runner's last line of defence against numerical decay:
every trajectory's squared norm is checked *before* any property is
evaluated, so a drifted state can never silently bias an estimate.
"""

import pytest

from repro.circuits.library import ghz
from repro.errors import NumericalDriftError
from repro.faults import FaultPlan, FaultSpec, PLAN_ENV, reset_injector_cache
from repro.noise import NoiseModel
from repro.stochastic import BasisProbability
from repro.stochastic.runner import (
    NORM_GUARD_ENV,
    _resolve_norm_guard,
    run_trajectory_span,
)

NOISE = NoiseModel.paper_defaults().scaled(10)


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(PLAN_ENV, raising=False)
    monkeypatch.delenv(NORM_GUARD_ENV, raising=False)
    reset_injector_cache()
    yield
    reset_injector_cache()


def run_span(trajectories=6, **overrides):
    circuit = ghz(3)
    return run_trajectory_span(
        circuit,
        NOISE,
        [BasisProbability("000")],
        backend_kind="dd",
        first_trajectory=0,
        num_trajectories=trajectories,
        master_seed=7,
        **overrides,
    )


def arm_drift(monkeypatch, trajectory=2, factor=1.5, times=1):
    plan = FaultPlan(
        faults=(
            FaultSpec(kind="drift", trajectory=trajectory, factor=factor, times=times),
        )
    )
    monkeypatch.setenv(PLAN_ENV, plan.to_json())
    reset_injector_cache()


class TestResolveNormGuard:
    def test_defaults(self):
        assert _resolve_norm_guard(None, None) == ("raise", 1e-8)

    def test_env_action(self, monkeypatch):
        monkeypatch.setenv(NORM_GUARD_ENV, "renorm")
        assert _resolve_norm_guard(None, None) == ("renorm", 1e-8)

    def test_env_action_with_tolerance(self, monkeypatch):
        monkeypatch.setenv(NORM_GUARD_ENV, "renorm:1e-9")
        assert _resolve_norm_guard(None, None) == ("renorm", 1e-9)

    def test_env_off(self, monkeypatch):
        monkeypatch.setenv(NORM_GUARD_ENV, "off")
        assert _resolve_norm_guard(None, None)[0] == "off"

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv(NORM_GUARD_ENV, "renorm:1e-9")
        assert _resolve_norm_guard("raise", 1e-6) == ("raise", 1e-6)

    def test_garbage_env_falls_back_to_defaults(self, monkeypatch):
        monkeypatch.setenv(NORM_GUARD_ENV, "explode:soon")
        assert _resolve_norm_guard(None, None) == ("raise", 1e-8)

    def test_unknown_explicit_action_raises(self):
        with pytest.raises(ValueError, match="on_drift"):
            _resolve_norm_guard("explode", None)


class TestDriftGuard:
    def test_healthy_run_passes_the_guard(self):
        result = run_span()
        assert result.completed_trajectories == 6
        assert "faults.recovered.renorm" not in result.metrics["counters"]

    def test_injected_drift_raises_typed_error(self, monkeypatch):
        arm_drift(monkeypatch, trajectory=2, factor=1.5)
        with pytest.raises(NumericalDriftError, match="drifted beyond") as excinfo:
            run_span()
        error = excinfo.value
        assert error.trajectory == 2
        assert error.norm_squared == pytest.approx(1.5**2)
        assert error.tolerance == 1e-8

    def test_renorm_action_recovers_and_counts(self, monkeypatch):
        arm_drift(monkeypatch, trajectory=2, factor=1.5)
        result = run_span(on_drift="renorm")
        assert result.completed_trajectories == 6
        assert result.metrics["counters"]["faults.recovered.renorm"] == 1
        # Renormalisation exactly undoes a pure scaling, so the estimates
        # match a clean (no-fault) run bit for bit.
        monkeypatch.delenv(PLAN_ENV)
        reset_injector_cache()
        clean = run_span()
        for name, estimate in clean.estimates.items():
            assert result.estimates[name].mean == estimate.mean

    def test_off_action_lets_drift_through(self, monkeypatch):
        arm_drift(monkeypatch, trajectory=2, factor=1.5)
        result = run_span(on_drift="off")
        assert result.completed_trajectories == 6

    def test_env_renorm_applies_without_explicit_args(self, monkeypatch):
        arm_drift(monkeypatch, trajectory=1, factor=2.0)
        monkeypatch.setenv(NORM_GUARD_ENV, "renorm")
        result = run_span()
        assert result.metrics["counters"]["faults.recovered.renorm"] == 1

    def test_tolerance_wide_enough_accepts_small_drift(self, monkeypatch):
        arm_drift(monkeypatch, trajectory=1, factor=1.0 + 1e-10)
        result = run_span(norm_tolerance=1e-3)
        assert result.completed_trajectories == 6
