"""Tests for adaptive (run-until-precision) Monte-Carlo sampling."""

import pytest

from repro.circuits.library import ghz
from repro.noise import NoiseModel
from repro.stochastic import (
    BasisProbability,
    hoeffding_samples,
    run_until_precision,
)

NOISE = NoiseModel.paper_defaults().scaled(10)


class TestAdaptiveSampling:
    def test_reaches_target_precision(self):
        run = run_until_precision(
            ghz(3),
            [BasisProbability("000")],
            epsilon=0.08,
            delta=0.1,
            noise_model=NOISE,
            seed=1,
        )
        assert run.epsilon_achieved <= 0.08
        assert run.trajectories > 0

    def test_never_exceeds_theorem1_ceiling(self):
        run = run_until_precision(
            ghz(2),
            [BasisProbability("00"), BasisProbability("11")],
            epsilon=0.1,
            delta=0.1,
            noise_model=NOISE,
            seed=2,
        )
        ceiling = hoeffding_samples(2, 0.1, 0.1)
        assert run.ceiling == ceiling
        assert run.trajectories <= ceiling

    def test_savings_reported(self):
        run = run_until_precision(
            ghz(2),
            [BasisProbability("00")],
            epsilon=0.09,
            delta=0.1,
            noise_model=NOISE,
            seed=3,
        )
        assert 0.0 <= run.savings_vs_theorem1() < 1.0

    def test_tighter_epsilon_needs_more_samples(self):
        loose = run_until_precision(
            ghz(2), [BasisProbability("00")], epsilon=0.15, noise_model=NOISE, seed=4
        )
        tight = run_until_precision(
            ghz(2), [BasisProbability("00")], epsilon=0.05, noise_model=NOISE, seed=4
        )
        assert tight.trajectories > loose.trajectories

    def test_estimate_matches_batch_runner(self):
        """Index-derived trajectory seeds make the adaptive session
        bit-identical to one batch of the same total size."""
        from repro.stochastic import simulate_stochastic

        run = run_until_precision(
            ghz(3),
            [BasisProbability("000")],
            epsilon=0.1,
            noise_model=NOISE,
            seed=5,
            initial_batch=64,
        )
        batch = simulate_stochastic(
            ghz(3),
            NOISE,
            [BasisProbability("000")],
            trajectories=run.trajectories,
            seed=5,
            sample_shots=0,
        )
        assert run.result.mean("P(|000>)") == pytest.approx(
            batch.mean("P(|000>)"), abs=1e-12
        )

    def test_batches_grow_geometrically(self):
        run = run_until_precision(
            ghz(2),
            [BasisProbability("00")],
            epsilon=0.04,
            noise_model=NOISE,
            seed=6,
            initial_batch=16,
            growth_factor=4.0,
        )
        assert run.batches >= 2

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one property"):
            run_until_precision(ghz(2), [], epsilon=0.1)
        with pytest.raises(ValueError, match="epsilon"):
            run_until_precision(ghz(2), [BasisProbability("00")], epsilon=0.0)
        with pytest.raises(ValueError, match="growth_factor"):
            run_until_precision(
                ghz(2), [BasisProbability("00")], epsilon=0.1, growth_factor=1.0
            )
        with pytest.raises(ValueError, match="initial_batch"):
            run_until_precision(
                ghz(2), [BasisProbability("00")], epsilon=0.1, initial_batch=0
            )
