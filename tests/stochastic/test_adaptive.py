"""Tests for adaptive (run-until-precision) Monte-Carlo sampling."""

import math

import pytest

from repro.circuits.library import ghz
from repro.noise import NoiseModel
from repro.stochastic import (
    BasisProbability,
    IdealFidelity,
    hoeffding_samples,
    run_until_precision,
)

NOISE = NoiseModel.paper_defaults().scaled(10)


@pytest.fixture(autouse=True)
def _naive_estimator(monkeypatch):
    # This file pins the *naive* adaptive-loop mechanics (batch growth,
    # Theorem-1 ceiling, union-bound stopping); stratified sampling stops
    # far earlier by design and is covered separately in test_strata.py.
    monkeypatch.setenv("REPRO_STRATIFIED", "off")


class TestTheorem1Budget:
    """The a-priori sample bound of Theorem 1: M = log(2L/δ) / (2ε)²."""

    @pytest.mark.parametrize(
        "num_properties, epsilon, delta",
        [
            (1, 0.1, 0.05),
            (2, 0.1, 0.1),
            (3, 0.05, 0.05),
            (10, 0.01, 0.01),
            (1, 0.5, 0.5),
        ],
    )
    def test_paper_convention_matches_printed_formula(
        self, num_properties, epsilon, delta
    ):
        expected = math.ceil(
            math.log(2.0 * num_properties / delta) / (2.0 * epsilon) ** 2
        )
        assert (
            hoeffding_samples(num_properties, epsilon, delta, paper_convention=True)
            == expected
        )

    def test_rigorous_bound_is_twice_the_paper_value(self):
        # (2ε)² = 4ε² versus 2ε²: the conservative variant doubles M
        # (up to ±1 from the ceilings).
        paper = hoeffding_samples(4, 0.05, 0.05, paper_convention=True)
        rigorous = hoeffding_samples(4, 0.05, 0.05)
        assert paper <= rigorous <= 2 * paper + 1
        assert rigorous >= 2 * paper - 1

    def test_budget_grows_logarithmically_in_properties(self):
        # Doubling L adds log(2)/(2ε²) samples, independent of L.
        eps, delta = 0.1, 0.05
        increment = math.log(2.0) / (2.0 * eps**2)
        for L in (1, 2, 4, 8):
            gap = hoeffding_samples(2 * L, eps, delta) - hoeffding_samples(
                L, eps, delta
            )
            assert abs(gap - increment) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="num_properties"):
            hoeffding_samples(0, 0.1, 0.05)
        with pytest.raises(ValueError, match="epsilon"):
            hoeffding_samples(1, 1.0, 0.05)
        with pytest.raises(ValueError, match="delta"):
            hoeffding_samples(1, 0.1, 0.0)


class TestEarlyStopHonoursTheorem1:
    """Adaptive early stopping may save trajectories but never spend more
    than the a-priori ceiling, and the final interval always honours the
    requested (ε, δ) guarantee."""

    @pytest.mark.parametrize("epsilon, delta", [(0.12, 0.1), (0.06, 0.05)])
    def test_stops_at_or_under_ceiling(self, epsilon, delta):
        properties = [BasisProbability("000"), IdealFidelity()]
        run = run_until_precision(
            ghz(3),
            properties,
            epsilon=epsilon,
            delta=delta,
            noise_model=NOISE,
            seed=11,
            initial_batch=32,
        )
        ceiling = hoeffding_samples(len(properties), epsilon, delta)
        assert run.ceiling == ceiling
        assert 0 < run.trajectories <= ceiling
        assert run.epsilon_achieved <= epsilon

    def test_full_budget_caps_achieved_epsilon_at_target(self):
        # With a microscopic initial batch the union bound over many rounds
        # makes the adaptive half-width loose, so the loop runs to the
        # ceiling — where Theorem 1's a-priori guarantee takes over.
        run = run_until_precision(
            ghz(2),
            [BasisProbability("00")],
            epsilon=0.1,
            delta=0.05,
            noise_model=NOISE,
            seed=12,
            initial_batch=1,
        )
        assert run.trajectories == run.ceiling
        assert run.epsilon_achieved <= 0.1
        assert run.savings_vs_theorem1() == 0.0


class TestAdaptiveSampling:
    def test_reaches_target_precision(self):
        run = run_until_precision(
            ghz(3),
            [BasisProbability("000")],
            epsilon=0.08,
            delta=0.1,
            noise_model=NOISE,
            seed=1,
        )
        assert run.epsilon_achieved <= 0.08
        assert run.trajectories > 0

    def test_never_exceeds_theorem1_ceiling(self):
        run = run_until_precision(
            ghz(2),
            [BasisProbability("00"), BasisProbability("11")],
            epsilon=0.1,
            delta=0.1,
            noise_model=NOISE,
            seed=2,
        )
        ceiling = hoeffding_samples(2, 0.1, 0.1)
        assert run.ceiling == ceiling
        assert run.trajectories <= ceiling

    def test_savings_reported(self):
        run = run_until_precision(
            ghz(2),
            [BasisProbability("00")],
            epsilon=0.09,
            delta=0.1,
            noise_model=NOISE,
            seed=3,
        )
        assert 0.0 <= run.savings_vs_theorem1() < 1.0

    def test_tighter_epsilon_needs_more_samples(self):
        loose = run_until_precision(
            ghz(2), [BasisProbability("00")], epsilon=0.15, noise_model=NOISE, seed=4
        )
        tight = run_until_precision(
            ghz(2), [BasisProbability("00")], epsilon=0.05, noise_model=NOISE, seed=4
        )
        assert tight.trajectories > loose.trajectories

    def test_estimate_matches_batch_runner(self):
        """Index-derived trajectory seeds make the adaptive session
        bit-identical to one batch of the same total size."""
        from repro.stochastic import simulate_stochastic

        run = run_until_precision(
            ghz(3),
            [BasisProbability("000")],
            epsilon=0.1,
            noise_model=NOISE,
            seed=5,
            initial_batch=64,
        )
        batch = simulate_stochastic(
            ghz(3),
            NOISE,
            [BasisProbability("000")],
            trajectories=run.trajectories,
            seed=5,
            sample_shots=0,
        )
        assert run.result.mean("P(|000>)") == pytest.approx(
            batch.mean("P(|000>)"), abs=1e-12
        )

    def test_batches_grow_geometrically(self):
        run = run_until_precision(
            ghz(2),
            [BasisProbability("00")],
            epsilon=0.04,
            noise_model=NOISE,
            seed=6,
            initial_batch=16,
            growth_factor=4.0,
        )
        assert run.batches >= 2

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one property"):
            run_until_precision(ghz(2), [], epsilon=0.1)
        with pytest.raises(ValueError, match="epsilon"):
            run_until_precision(ghz(2), [BasisProbability("00")], epsilon=0.0)
        with pytest.raises(ValueError, match="growth_factor"):
            run_until_precision(
                ghz(2), [BasisProbability("00")], epsilon=0.1, growth_factor=1.0
            )
        with pytest.raises(ValueError, match="initial_batch"):
            run_until_precision(
                ghz(2), [BasisProbability("00")], epsilon=0.1, initial_batch=0
            )
