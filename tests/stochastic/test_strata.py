"""Gate for stratified trajectory sampling (:mod:`repro.stochastic.strata`).

Three pillars:

1. **Closed form**: the analytic ``p_clean`` must match the empirical
   clean-trajectory frequency of the rng dry-run (they mirror the same
   Bernoulli draw structure — any applier edit that breaks the mirror
   fails here).
2. **Equivalence**: the stratified estimator agrees with the unbiased
   naive estimator within combined confidence bounds, across backends,
   worker counts, and fault injection — and its own determinism contract
   (serial == parallel, bit-identical) holds exactly.
3. **Bound containment**: Hoeffding and empirical-Bernstein half-widths
   both contain the dense density-matrix oracle's exact value.
"""

import math
import random

import pytest

from repro.circuits.library import ghz, qft
from repro.exact import simulate_exact
from repro.faults import FaultPlan, FaultSpec, PLAN_ENV, reset_injector_cache
from repro.noise import NoiseModel
from repro.simulators.ddsim import DDBackend
from repro.simulators.gateplan import compile_plan
from repro.stochastic import BasisProbability, IdealFidelity, run_until_precision
from repro.stochastic.prefix import compile_prefix_plan
from repro.stochastic.properties import ExpectationZ, hoeffding_samples
from repro.stochastic.results import PropertyEstimate, StochasticResult
from repro.stochastic.runner import run_trajectory_span, simulate_stochastic
from repro.stochastic.strata import (
    STRATIFIED_ENV,
    StrataPlan,
    stratified_enabled,
    stratified_samples,
)

NOISE = NoiseModel.paper_defaults()
HOT_NOISE = NoiseModel.paper_defaults().scaled(40)


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(STRATIFIED_ENV, raising=False)
    monkeypatch.delenv(PLAN_ENV, raising=False)
    reset_injector_cache()
    yield
    reset_injector_cache()


def _prefix_plan(circuit, noise_model):
    backend = DDBackend(circuit.num_qubits)
    plan = compile_plan(circuit, package=backend.package)
    return compile_prefix_plan(backend, plan, noise_model)


class TestEnvironmentSwitch:
    def test_default_is_on(self):
        assert stratified_enabled() is True

    @pytest.mark.parametrize("raw", ["off", "0", "false", "no", " OFF "])
    def test_disabling_values(self, monkeypatch, raw):
        monkeypatch.setenv(STRATIFIED_ENV, raw)
        assert stratified_enabled() is False

    @pytest.mark.parametrize("raw", ["on", "1", "yes", "anything"])
    def test_enabling_values(self, monkeypatch, raw):
        monkeypatch.setenv(STRATIFIED_ENV, raw)
        assert stratified_enabled() is True

    def test_off_mode_payload_has_no_stratum_fields(self, monkeypatch):
        monkeypatch.setenv(STRATIFIED_ENV, "off")
        result = simulate_stochastic(
            ghz(4), noise_model=NOISE, properties=(IdealFidelity(),),
            trajectories=10, seed=2, sample_shots=1,
        )
        payload = result.to_dict()
        assert "strata" not in payload
        assert "clean_outcome_counts" not in payload
        assert all("p_clean" not in entry for entry in payload["estimates"].values())


class TestClosedFormPClean:
    def test_p_clean_matches_empirical_dry_run_frequency(self):
        # The whole engine rests on this: the analytic survival product
        # must equal the dry-run's clean probability.  10k rng-only dry
        # runs; assert within ~4 sigma of the binomial deviation.
        prefix = _prefix_plan(ghz(6), HOT_NOISE)
        plan = StrataPlan(prefix)
        assert plan.supported and plan.active
        draws = 10_000
        clean = 0
        scratch = {"depolarizing": 0, "amplitude_damping": 0, "phase_flip": 0}
        for i in range(draws):
            if prefix.first_divergence(random.Random(9_000_000 + i), scratch) is None:
                clean += 1
        sigma = math.sqrt(plan.p_clean * (1.0 - plan.p_clean) / draws)
        assert abs(clean / draws - plan.p_clean) <= 4.0 * sigma + 1e-12

    def test_first_error_site_distribution_sums_to_one(self):
        plan = StrataPlan(_prefix_plan(qft(4), NOISE))
        distribution = plan.first_error_site_distribution()
        assert len(distribution) == len(plan.prefix_plan.sites)
        assert sum(distribution) == pytest.approx(1.0)
        assert all(p >= 0.0 for p in distribution)

    def test_noiseless_is_inactive(self):
        plan = StrataPlan(_prefix_plan(ghz(4), NoiseModel.noiseless()))
        assert plan.p_clean == 1.0
        assert plan.active is False

    def test_exact_damping_mode_is_inactive(self):
        # The "exact" Kraus unravelling diverges on every damping slot:
        # no clean stratum exists, the naive loop is already optimal.
        plan = StrataPlan(
            _prefix_plan(ghz(4), NoiseModel.paper_defaults(damping_mode="exact"))
        )
        assert plan.p_clean == 0.0
        assert plan.active is False

    def test_measuring_circuit_is_unsupported(self):
        plan = StrataPlan(_prefix_plan(ghz(4, measure=True), NOISE))
        assert plan.supported is False
        assert plan.active is False

    def test_rejection_seed_search_is_deterministic(self):
        plan = StrataPlan(_prefix_plan(ghz(5), NOISE))
        first = plan.find_erring_seed(123456789)
        second = plan.find_erring_seed(123456789)
        assert first == second
        seed, divergence, attempts = first
        assert attempts >= 1
        # The accepted seed really does diverge at the reported site.
        scratch = {"depolarizing": 0, "amplitude_damping": 0, "phase_flip": 0}
        assert plan.prefix_plan.first_divergence(
            random.Random(seed), scratch
        ) == divergence

    def test_stratified_samples_budget(self):
        assert stratified_samples(10_000, 0.9) == 100
        assert stratified_samples(10_000, 0.0) == 10_000
        assert stratified_samples(3, 0.999999) == 1
        with pytest.raises(ValueError):
            stratified_samples(100, 1.5)


class TestEstimatorEquivalence:
    def test_agrees_with_naive_within_combined_bounds(self, monkeypatch):
        monkeypatch.setenv(STRATIFIED_ENV, "off")
        naive = simulate_stochastic(
            ghz(6), noise_model=NOISE,
            properties=(IdealFidelity(), ExpectationZ(0)),
            trajectories=4000, seed=11, sample_shots=0,
        )
        monkeypatch.setenv(STRATIFIED_ENV, "on")
        stratified = simulate_stochastic(
            ghz(6), noise_model=NOISE,
            properties=(IdealFidelity(), ExpectationZ(0)),
            trajectories=400, seed=11, sample_shots=0,
        )
        assert stratified.strata["erring_sampled"] == 400
        for name in naive.estimates:
            slack = (
                naive.estimates[name].hoeffding_halfwidth(0.01)
                + stratified.estimates[name].hoeffding_halfwidth(0.01)
            )
            assert abs(
                stratified.estimates[name].mean - naive.estimates[name].mean
            ) <= slack, name

    def test_agrees_with_statevector_naive(self, monkeypatch):
        # Cross-backend equivalence: stratified DD vs the dense naive
        # baseline (statevector has no prefix plan, hence no strata).
        monkeypatch.setenv(STRATIFIED_ENV, "on")
        dd = simulate_stochastic(
            ghz(5), backend="dd", noise_model=HOT_NOISE,
            properties=(BasisProbability("00000"),),
            trajectories=600, seed=3, sample_shots=0,
        )
        sv = simulate_stochastic(
            ghz(5), backend="statevector", noise_model=HOT_NOISE,
            properties=(BasisProbability("00000"),),
            trajectories=600, seed=3, sample_shots=0,
        )
        assert not sv.strata  # statevector stays naive
        name = "P(|00000>)"
        slack = (
            dd.estimates[name].hoeffding_halfwidth(0.01)
            + sv.estimates[name].hoeffding_halfwidth(0.01)
        )
        assert abs(dd.mean(name) - sv.mean(name)) <= slack

    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_is_bit_identical_to_serial(self, monkeypatch, workers):
        monkeypatch.setenv(STRATIFIED_ENV, "on")
        kwargs = dict(
            noise_model=NOISE,
            properties=(IdealFidelity(), BasisProbability("00000")),
            trajectories=48, seed=13, sample_shots=1,
        )
        serial = simulate_stochastic(ghz(5), workers=1, **kwargs)
        parallel = simulate_stochastic(ghz(5), workers=workers, **kwargs)
        for name, estimate in serial.estimates.items():
            other = parallel.estimates[name]
            assert estimate.count == other.count
            assert estimate.total == other.total
            assert estimate.total_squared == other.total_squared
            assert estimate.p_clean == other.p_clean
            assert estimate.clean_value == other.clean_value
        assert serial.outcome_counts == parallel.outcome_counts
        assert serial.clean_outcome_counts == parallel.clean_outcome_counts
        assert serial.strata == parallel.strata
        assert serial.errors_fired == parallel.errors_fired

    def test_drift_fault_recovers_under_stratification(self, monkeypatch):
        plan = FaultPlan(
            faults=(FaultSpec(kind="drift", trajectory=3, factor=1.5, times=1),)
        )
        monkeypatch.setenv(STRATIFIED_ENV, "on")
        monkeypatch.setenv(PLAN_ENV, plan.to_json())
        reset_injector_cache()
        result = run_trajectory_span(
            ghz(4), NOISE, [IdealFidelity()],
            backend_kind="dd", first_trajectory=0, num_trajectories=8,
            master_seed=7, sample_shots=1, on_drift="renorm",
        )
        assert result.completed_trajectories == 8
        assert result.strata["erring_sampled"] == 8
        assert result.metrics["counters"]["faults.recovered.renorm"] >= 1

    def test_outcome_distribution_recombines_pools(self, monkeypatch):
        monkeypatch.setenv(STRATIFIED_ENV, "on")
        result = simulate_stochastic(
            ghz(4), noise_model=NOISE, properties=(),
            trajectories=50, seed=5, sample_shots=4,
        )
        assert sum(result.clean_outcome_counts.values()) == 200
        distribution = result.outcome_distribution()
        assert sum(distribution.values()) == pytest.approx(1.0)
        # The clean pool dominates at paper noise: the GHZ poles carry
        # nearly all of the recombined weight.
        assert distribution["0000"] + distribution["1111"] > 0.9

    def test_effective_trajectories_scales_quadratically(self, monkeypatch):
        monkeypatch.setenv(STRATIFIED_ENV, "on")
        result = simulate_stochastic(
            ghz(6), noise_model=NOISE, properties=(IdealFidelity(),),
            trajectories=100, seed=1, sample_shots=0,
        )
        p_clean = result.strata["p_clean"]
        assert result.effective_trajectories() == pytest.approx(
            100 / (1.0 - p_clean) ** 2
        )
        assert result.effective_trajectories() > 100


class TestBoundContainment:
    def test_bounds_contain_dense_oracle(self, monkeypatch):
        # The exact density-matrix DD gives the true noisy value; both the
        # stratified Hoeffding and empirical-Bernstein 95% intervals must
        # contain it (statistical, but the failure probability over these
        # fixed seeds is ~delta per (seed, bound) and the seeds are pinned).
        oracle = simulate_exact(
            ghz(4), noise_model=HOT_NOISE, properties=(IdealFidelity(),)
        )
        truth = oracle.mean("F(ideal)")
        monkeypatch.setenv(STRATIFIED_ENV, "on")
        for seed in (1, 7, 23):
            run = simulate_stochastic(
                ghz(4), noise_model=HOT_NOISE, properties=(IdealFidelity(),),
                trajectories=400, seed=seed, sample_shots=0,
            )
            estimate = run.estimates["F(ideal)"]
            deviation = abs(estimate.mean - truth)
            assert deviation <= estimate.hoeffding_halfwidth(0.05), seed
            assert deviation <= estimate.bernstein_halfwidth(0.05), seed

    def test_bernstein_beats_hoeffding_at_low_variance(self, monkeypatch):
        # At paper noise the erring-sample variance is far below (R/2)^2,
        # which is exactly the regime the variance-adaptive bound wins in.
        monkeypatch.setenv(STRATIFIED_ENV, "on")
        run = simulate_stochastic(
            ghz(6), noise_model=NOISE, properties=(IdealFidelity(),),
            trajectories=800, seed=11, sample_shots=0,
        )
        estimate = run.estimates["F(ideal)"]
        assert estimate.bernstein_halfwidth() < estimate.hoeffding_halfwidth()
        assert estimate.halfwidth(bound="best") <= min(
            estimate.hoeffding_halfwidth(), estimate.bernstein_halfwidth()
        ) * 1.5  # best pays delta/2 on each side

    def test_bernstein_needs_two_samples(self):
        estimate = PropertyEstimate("x")
        assert estimate.bernstein_halfwidth() == float("inf")
        estimate.add(0.5)
        assert estimate.bernstein_halfwidth() == float("inf")
        estimate.add(0.5)
        assert estimate.bernstein_halfwidth() < float("inf")

    def test_unknown_bound_rejected(self):
        estimate = PropertyEstimate("x")
        estimate.add(0.5)
        with pytest.raises(ValueError, match="unknown concentration bound"):
            estimate.halfwidth(bound="chebyshev")


class TestMergeSemantics:
    def _span(self, first, count, monkeypatch):
        monkeypatch.setenv(STRATIFIED_ENV, "on")
        return run_trajectory_span(
            ghz(4), NOISE, [IdealFidelity()],
            backend_kind="dd", first_trajectory=first, num_trajectories=count,
            master_seed=5, sample_shots=1,
        )

    def test_merge_is_associative(self, monkeypatch):
        spans = [self._span(first, 8, monkeypatch) for first in (0, 8, 16)]

        def fold(order):
            base = StochasticResult(
                circuit_name="entanglement_4", backend_kind="dd",
                requested_trajectories=24,
            )
            base.estimates["F(ideal)"] = PropertyEstimate("F(ideal)")
            for index in order:
                base.merge(StochasticResult.from_dict(spans[index].to_dict()))
            return base

        left = fold([0, 1, 2])
        right = fold([2, 0, 1])
        assert left.strata == right.strata
        a, b = left.estimates["F(ideal)"], right.estimates["F(ideal)"]
        assert (a.count, a.total, a.total_squared) == (b.count, b.total, b.total_squared)
        assert a.p_clean == b.p_clean and a.clean_value == b.clean_value
        assert left.outcome_counts == right.outcome_counts
        assert left.clean_outcome_counts == right.clean_outcome_counts

    def test_empty_shell_adopts_stratum(self):
        shell = PropertyEstimate("f")
        partial = PropertyEstimate("f", count=3, total=1.5, total_squared=0.8,
                                   p_clean=0.9, clean_value=1.0)
        shell.merge(partial)
        assert shell.p_clean == 0.9 and shell.clean_value == 1.0
        assert shell.count == 3

    def test_p_clean_mismatch_raises(self):
        a = PropertyEstimate("f", count=1, total=0.5, total_squared=0.25,
                             p_clean=0.9, clean_value=1.0)
        b = PropertyEstimate("f", count=1, total=0.5, total_squared=0.25,
                             p_clean=0.8, clean_value=1.0)
        with pytest.raises(ValueError, match="stratum mismatch"):
            a.merge(b)

    def test_mixing_stratified_and_naive_samples_raises(self):
        stratified = PropertyEstimate("f", count=2, total=1.0, total_squared=0.5,
                                      p_clean=0.9, clean_value=1.0)
        naive = PropertyEstimate("f", count=2, total=1.0, total_squared=0.5)
        with pytest.raises(ValueError, match="unstratified"):
            stratified.merge(naive)
        with pytest.raises(ValueError, match="unstratified"):
            naive.merge(stratified)

    def test_result_strata_mismatch_raises(self):
        a = StochasticResult("c", "dd", 1, strata={"p_clean": 0.9, "erring_sampled": 1})
        b = StochasticResult("c", "dd", 1, strata={"p_clean": 0.8, "erring_sampled": 1})
        with pytest.raises(ValueError, match="stratum mismatch"):
            a.merge(b)

    def test_serialization_round_trip(self, monkeypatch):
        span = self._span(0, 6, monkeypatch)
        clone = StochasticResult.from_dict(span.to_dict())
        assert clone.strata == span.strata
        assert clone.clean_outcome_counts == span.clean_outcome_counts
        original = span.estimates["F(ideal)"]
        restored = clone.estimates["F(ideal)"]
        assert restored.p_clean == original.p_clean
        assert restored.clean_value == original.clean_value
        assert restored.mean == original.mean


class TestAdaptiveIntegration:
    def test_stratified_ceiling_shrinks_quadratically(self, monkeypatch):
        monkeypatch.setenv(STRATIFIED_ENV, "on")
        run = run_until_precision(
            ghz(4), [IdealFidelity()], epsilon=0.02, delta=0.05,
            noise_model=NOISE, seed=3, initial_batch=32,
        )
        naive_ceiling = hoeffding_samples(1, 0.02, 0.05)
        p_clean = run.result.estimates["F(ideal)"].p_clean
        assert p_clean is not None
        # The rebudgeted ceiling is (1 - p_clean)^2 of the naive budget,
        # clamped below by what the first batch already spent.
        assert run.ceiling == max(
            run.trajectories, stratified_samples(naive_ceiling, p_clean)
        )
        assert run.ceiling < naive_ceiling
        assert run.epsilon_achieved <= 0.02
        assert run.trajectories <= run.ceiling

    def test_bernstein_bound_stops_earlier_or_equal(self, monkeypatch):
        monkeypatch.setenv(STRATIFIED_ENV, "on")
        kwargs = dict(
            epsilon=0.01, delta=0.05, noise_model=NOISE,
            seed=9, initial_batch=64,
        )
        hoeffding = run_until_precision(ghz(4), [IdealFidelity()], **kwargs)
        best = run_until_precision(ghz(4), [IdealFidelity()], bound="best", **kwargs)
        assert best.trajectories <= hoeffding.trajectories
        assert best.epsilon_achieved <= 0.01

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError, match="unknown concentration bound"):
            run_until_precision(
                ghz(3), [IdealFidelity()], epsilon=0.1, bound="chernoff"
            )
