"""Unit tests for the Monte-Carlo runner."""

import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.library import ghz
from repro.noise import NoiseModel
from repro.stochastic import (
    BasisProbability,
    ClassicalOutcome,
    IdealFidelity,
    StochasticSimulator,
    simulate_stochastic,
)

NOISE = NoiseModel.paper_defaults().scaled(10)


class TestBasicRuns:
    def test_noiseless_ghz_estimates_half(self):
        result = simulate_stochastic(
            ghz(3),
            noise_model=NoiseModel.noiseless(),
            properties=[BasisProbability("000"), BasisProbability("111")],
            trajectories=20,
        )
        assert result.mean("P(|000>)") == pytest.approx(0.5)
        assert result.mean("P(|111>)") == pytest.approx(0.5)
        assert result.completed_trajectories == 20
        assert all(count == 0 for count in result.errors_fired.values())

    def test_requested_vs_completed(self):
        result = simulate_stochastic(ghz(2), trajectories=7)
        assert result.requested_trajectories == 7
        assert result.completed_trajectories == 7

    def test_sampling_disabled(self):
        result = simulate_stochastic(ghz(2), trajectories=5, sample_shots=0)
        assert result.outcome_counts == {}

    def test_multiple_sample_shots(self):
        result = simulate_stochastic(ghz(2), trajectories=5, sample_shots=4)
        assert sum(result.outcome_counts.values()) == 20

    def test_default_noise_is_paper_configuration(self):
        result = simulate_stochastic(ghz(2), trajectories=3)
        assert result.circuit_name == "entanglement_2"

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            simulate_stochastic(ghz(2), trajectories=0)
        with pytest.raises(ValueError):
            StochasticSimulator(backend="tensor-network")
        with pytest.raises(ValueError):
            StochasticSimulator(workers=0)


class TestReproducibility:
    def test_same_seed_identical_estimates(self):
        runs = [
            simulate_stochastic(
                ghz(3), NOISE, [BasisProbability("000")], trajectories=50, seed=9
            )
            for _ in range(2)
        ]
        assert runs[0].mean("P(|000>)") == runs[1].mean("P(|000>)")
        assert runs[0].errors_fired == runs[1].errors_fired

    def test_different_seed_different_trajectories(self):
        a = simulate_stochastic(
            ghz(3), NOISE.scaled(5), [BasisProbability("000")], trajectories=50, seed=1
        )
        b = simulate_stochastic(
            ghz(3), NOISE.scaled(5), [BasisProbability("000")], trajectories=50, seed=2
        )
        assert a.errors_fired != b.errors_fired or a.mean("P(|000>)") != b.mean("P(|000>)")

    def test_backends_give_identical_estimates(self, monkeypatch):
        """DD and statevector see identical RNG streams, so their Monte-Carlo
        estimates agree to floating-point accuracy — a strong cross-check.

        Stratified sampling is pinned off: it only engages on the DD
        backend (it needs the prefix plan), so the cross-backend check
        must compare the shared naive estimator.  The stratified-vs-naive
        agreement has its own statistical gate in test_strata.py.
        """
        monkeypatch.setenv("REPRO_STRATIFIED", "off")
        kwargs = dict(
            noise_model=NOISE,
            properties=[BasisProbability("0000"), IdealFidelity()],
            trajectories=60,
            seed=3,
        )
        dd = simulate_stochastic(ghz(4), backend="dd", **kwargs)
        sv = simulate_stochastic(ghz(4), backend="statevector", **kwargs)
        for name in dd.estimates:
            assert dd.mean(name) == pytest.approx(sv.mean(name), abs=1e-9)


class TestParallelExecution:
    def test_parallel_matches_serial(self):
        kwargs = dict(
            noise_model=NOISE,
            properties=[BasisProbability("000")],
            trajectories=24,
            seed=5,
        )
        serial = simulate_stochastic(ghz(3), workers=1, **kwargs)
        parallel = simulate_stochastic(ghz(3), workers=3, **kwargs)
        assert parallel.completed_trajectories == 24
        assert parallel.mean("P(|000>)") == pytest.approx(
            serial.mean("P(|000>)"), abs=1e-12
        )
        assert parallel.errors_fired == serial.errors_fired

    def test_more_workers_than_trajectories(self):
        result = simulate_stochastic(ghz(2), trajectories=2, workers=4)
        assert result.completed_trajectories == 2


class TestTimeout:
    def test_timeout_returns_partial_results(self):
        result = simulate_stochastic(
            ghz(14),
            NOISE,
            [BasisProbability("0" * 14)],
            trajectories=100000,
            timeout=0.3,
        )
        assert result.timed_out
        assert 0 < result.completed_trajectories < 100000

    def test_no_timeout_completes(self):
        result = simulate_stochastic(ghz(2), trajectories=10, timeout=60.0)
        assert not result.timed_out


class TestPropertyHandling:
    def test_ideal_fidelity_on_measured_circuit_rejected(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0).measure(0, 0)
        with pytest.raises(ValueError, match="IdealFidelity"):
            simulate_stochastic(circuit, properties=[IdealFidelity()], trajectories=2)

    def test_classical_outcome_property(self):
        circuit = QuantumCircuit(2, 2)
        circuit.x(0).measure(0, 0).measure(1, 1)
        result = simulate_stochastic(
            circuit,
            noise_model=NoiseModel.noiseless(),
            properties=[ClassicalOutcome(1), ClassicalOutcome(0)],
            trajectories=10,
        )
        assert result.mean("P(c=1)") == 1.0
        assert result.mean("P(c=0)") == 0.0

    def test_noisy_classical_outcome_below_one(self):
        circuit = QuantumCircuit(2, 2)
        circuit.x(0).measure(0, 0).measure(1, 1)
        result = simulate_stochastic(
            circuit,
            noise_model=NoiseModel.paper_defaults().scaled(100),
            properties=[ClassicalOutcome(1)],
            trajectories=200,
            seed=11,
        )
        assert 0.2 < result.mean("P(c=1)") < 0.999

    def test_peak_nodes_reported_for_dd(self):
        result = simulate_stochastic(ghz(5), trajectories=5, backend="dd")
        assert result.peak_nodes >= 5

    def test_statevector_reports_no_nodes(self):
        result = simulate_stochastic(ghz(3), trajectories=5, backend="statevector")
        assert result.peak_nodes == 0
