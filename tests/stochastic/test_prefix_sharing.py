"""Equivalence gate for the trajectory prefix-sharing engine.

The engine's whole contract is that ``REPRO_PREFIX_SHARING=off`` (the
naive per-trajectory loop) and the default shared path are **bit
identical**: same per-trajectory rng streams, same property estimate
totals, same fired-error tallies, same sampled outcome histograms.  Every
test here runs both modes and compares exactly — no tolerances.
"""

import pytest

from repro.circuits.library import ghz, qft
from repro.faults import FaultPlan, FaultSpec, PLAN_ENV, reset_injector_cache
from repro.noise import NoiseModel
from repro.stochastic import BasisProbability, IdealFidelity
from repro.stochastic.prefix import (
    PREFIX_INTERVAL_ENV,
    PREFIX_SHARING_ENV,
    compile_prefix_plan,
    prefix_sharing_enabled,
)
from repro.stochastic.properties import ExpectationZ
from repro.stochastic.runner import run_trajectory_span, simulate_stochastic
from repro.stochastic.strata import STRATIFIED_ENV

NOISE = NoiseModel.paper_defaults()
#: Scaled model where most trajectories err — exercises replay heavily.
HOT_NOISE = NoiseModel.paper_defaults().scaled(40)


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(PREFIX_SHARING_ENV, raising=False)
    monkeypatch.delenv(PREFIX_INTERVAL_ENV, raising=False)
    monkeypatch.delenv(PLAN_ENV, raising=False)
    # This file gates the prefix engine's naive<->shared *bit identity*;
    # stratified sampling changes the estimator by design and has its own
    # equivalence gate in test_strata.py.
    monkeypatch.setenv(STRATIFIED_ENV, "off")
    reset_injector_cache()
    yield
    reset_injector_cache()


def run_both(monkeypatch, **kwargs):
    """The same simulation in shared and naive mode."""
    results = {}
    for mode in ("on", "off"):
        monkeypatch.setenv(PREFIX_SHARING_ENV, mode)
        results[mode] = simulate_stochastic(**kwargs)
    return results["on"], results["off"]


def assert_identical(shared, naive):
    """Bitwise equality of everything user-visible in the two results."""
    assert set(shared.estimates) == set(naive.estimates)
    for name, estimate in shared.estimates.items():
        other = naive.estimates[name]
        assert estimate.count == other.count, name
        assert estimate.total == other.total, name
        assert estimate.total_squared == other.total_squared, name
    assert shared.errors_fired == naive.errors_fired
    assert shared.outcome_counts == naive.outcome_counts
    assert shared.completed_trajectories == naive.completed_trajectories


class TestEnvironmentSwitch:
    def test_default_is_on(self):
        assert prefix_sharing_enabled() is True

    @pytest.mark.parametrize("raw", ["off", "0", "false", "no", " OFF "])
    def test_disabling_values(self, monkeypatch, raw):
        monkeypatch.setenv(PREFIX_SHARING_ENV, raw)
        assert prefix_sharing_enabled() is False

    @pytest.mark.parametrize("raw", ["on", "1", "yes", "anything"])
    def test_enabling_values(self, monkeypatch, raw):
        monkeypatch.setenv(PREFIX_SHARING_ENV, raw)
        assert prefix_sharing_enabled() is True


class TestBitIdentity:
    def test_ghz_paper_noise(self, monkeypatch):
        shared, naive = run_both(
            monkeypatch,
            circuit=ghz(6),
            noise_model=NOISE,
            properties=(IdealFidelity(), ExpectationZ(0)),
            trajectories=120,
            seed=11,
            sample_shots=2,
        )
        assert_identical(shared, naive)

    def test_qft_hot_noise_replays_dominate(self, monkeypatch):
        shared, naive = run_both(
            monkeypatch,
            circuit=qft(4),
            noise_model=HOT_NOISE,
            properties=(IdealFidelity(),),
            trajectories=60,
            seed=3,
            sample_shots=1,
        )
        assert_identical(shared, naive)
        counters = shared.metrics["counters"]
        assert counters["prefix.replays"] > 0

    def test_exact_damping_mode(self, monkeypatch):
        # "exact" Kraus unravelling: every damping slot diverges, so the
        # engine degenerates to checkpointed replay — still bit-identical.
        shared, naive = run_both(
            monkeypatch,
            circuit=ghz(4),
            noise_model=NoiseModel.paper_defaults(damping_mode="exact"),
            properties=(IdealFidelity(),),
            trajectories=40,
            seed=5,
            sample_shots=1,
        )
        assert_identical(shared, naive)

    def test_measuring_circuit(self, monkeypatch):
        # Measurements are unconditional divergence points; clean
        # trajectories cannot exist, yet the prefix up to the first
        # measurement is still shared.
        shared, naive = run_both(
            monkeypatch,
            circuit=ghz(4, measure=True),
            noise_model=NOISE,
            properties=(),
            trajectories=50,
            seed=9,
            sample_shots=1,
        )
        assert_identical(shared, naive)

    def test_statevector_backend_unaffected(self, monkeypatch):
        shared, naive = run_both(
            monkeypatch,
            circuit=ghz(4),
            noise_model=NOISE,
            properties=(IdealFidelity(),),
            trajectories=30,
            backend="statevector",
            seed=2,
            sample_shots=1,
        )
        assert_identical(shared, naive)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_workers(self, monkeypatch, workers):
        shared, naive = run_both(
            monkeypatch,
            circuit=ghz(5),
            noise_model=NOISE,
            properties=(IdealFidelity(), BasisProbability("00000")),
            trajectories=48,
            workers=workers,
            seed=13,
            sample_shots=1,
        )
        assert_identical(shared, naive)

    def test_parallel_matches_serial_with_sharing(self, monkeypatch):
        monkeypatch.setenv(PREFIX_SHARING_ENV, "on")
        serial = simulate_stochastic(
            ghz(5), noise_model=NOISE, properties=(IdealFidelity(),),
            trajectories=48, workers=1, seed=21, sample_shots=1,
        )
        parallel = simulate_stochastic(
            ghz(5), noise_model=NOISE, properties=(IdealFidelity(),),
            trajectories=48, workers=3, seed=21, sample_shots=1,
        )
        assert_identical(serial, parallel)


class TestCheckpointReplay:
    def test_forced_small_interval(self, monkeypatch):
        monkeypatch.setenv(PREFIX_INTERVAL_ENV, "2")
        shared, naive = run_both(
            monkeypatch,
            circuit=ghz(5),
            noise_model=HOT_NOISE,
            properties=(IdealFidelity(),),
            trajectories=40,
            seed=17,
            sample_shots=1,
        )
        assert_identical(shared, naive)
        counters = shared.metrics["counters"]
        assert counters["prefix.replays"] > 0
        # interval 2 on a 5-gate GHZ pins checkpoints at steps 0, 2, 4
        assert counters["prefix.checkpoints"] == 3

    def test_replay_resumes_midway(self, monkeypatch):
        # With interval 1 every step is a checkpoint: any erring
        # trajectory resumes exactly at its divergence site.
        monkeypatch.setenv(PREFIX_INTERVAL_ENV, "1")
        shared, naive = run_both(
            monkeypatch,
            circuit=qft(4),
            noise_model=HOT_NOISE,
            properties=(IdealFidelity(),),
            trajectories=30,
            seed=29,
            sample_shots=0,
        )
        assert_identical(shared, naive)


class TestIntervalOverrideValidation:
    @pytest.mark.parametrize("raw", ["banana", "0", "-3", "2.5"])
    def test_invalid_override_warns_once_and_counts(self, monkeypatch, caplog, raw):
        import repro.stochastic.prefix as prefix_mod

        monkeypatch.setenv(PREFIX_INTERVAL_ENV, raw)
        monkeypatch.setattr(prefix_mod, "_warned_invalid_interval", False)
        with caplog.at_level("WARNING", logger="repro.stochastic.prefix"):
            result = run_trajectory_span(
                ghz(4), NOISE, [IdealFidelity()],
                backend_kind="dd", first_trajectory=0, num_trajectories=4,
                master_seed=1, sample_shots=0,
            )
        assert result.metrics["counters"]["prefix.interval_override_invalid"] == 1
        warnings = [
            record for record in caplog.records
            if PREFIX_INTERVAL_ENV in record.getMessage()
        ]
        assert len(warnings) == 1
        # The sqrt default still applies: the plan compiled and ran.
        assert result.completed_trajectories == 4
        # One-shot: a second compile in the same process stays silent.
        caplog.clear()
        with caplog.at_level("WARNING", logger="repro.stochastic.prefix"):
            run_trajectory_span(
                ghz(4), NOISE, [IdealFidelity()],
                backend_kind="dd", first_trajectory=0, num_trajectories=2,
                master_seed=2, sample_shots=0,
            )
        assert not [
            record for record in caplog.records
            if PREFIX_INTERVAL_ENV in record.getMessage()
        ]

    def test_valid_override_does_not_count(self, monkeypatch):
        monkeypatch.setenv(PREFIX_INTERVAL_ENV, "2")
        result = run_trajectory_span(
            ghz(4), NOISE, [IdealFidelity()],
            backend_kind="dd", first_trajectory=0, num_trajectories=4,
            master_seed=1, sample_shots=0,
        )
        assert "prefix.interval_override_invalid" not in result.metrics["counters"]


class TestFaultInjection:
    def test_drift_fault_materializes_and_matches(self, monkeypatch):
        plan = FaultPlan(
            faults=(FaultSpec(kind="drift", trajectory=3, factor=1.5, times=1),)
        )
        results = {}
        for mode in ("on", "off"):
            monkeypatch.setenv(PREFIX_SHARING_ENV, mode)
            monkeypatch.setenv(PLAN_ENV, plan.to_json())
            reset_injector_cache()
            results[mode] = run_trajectory_span(
                ghz(4), NOISE, [IdealFidelity()],
                backend_kind="dd", first_trajectory=0, num_trajectories=8,
                master_seed=7, sample_shots=1, on_drift="renorm",
            )
        assert_identical(results["on"], results["off"])
        counters = results["on"].metrics["counters"]
        assert counters["faults.recovered.renorm"] >= 1
        # The drifted trajectory cannot use the cached clean evaluation.
        assert counters["prefix.materialized"] >= 1


class TestCounters:
    def test_span_counter_accounting(self, monkeypatch):
        monkeypatch.setenv(PREFIX_SHARING_ENV, "on")
        result = run_trajectory_span(
            ghz(6), NOISE, [IdealFidelity()],
            backend_kind="dd", first_trajectory=0, num_trajectories=50,
            master_seed=19, sample_shots=1,
        )
        counters = result.metrics["counters"]
        assert counters["gateplan.compiled"] > 0
        assert counters["prefix.checkpoints"] >= 1
        hits = counters["prefix.hits"]
        replays = counters["prefix.replays"]
        assert hits + replays == result.completed_trajectories
        if replays:
            assert counters["prefix.replayed_gates"] > 0
        # Every trajectory still folds one value per property.
        assert counters["property.evaluations"] == result.completed_trajectories

    def test_prefix_plan_shape(self):
        from repro.simulators.ddsim import DDBackend
        from repro.simulators.gateplan import compile_plan

        circuit = ghz(6)
        backend = DDBackend(6)
        plan = compile_plan(circuit, package=backend.package)
        prefix = compile_prefix_plan(backend, plan, NOISE)
        assert prefix.stop_index is None
        assert prefix.ideal_final is not None
        assert len(prefix.sites) == len(plan.steps)
        assert prefix.checkpoints[0][0] == 0
        assert prefix.executed_before(len(plan.steps)) == len(plan.steps)
        assert prefix.ideal_norm_squared == pytest.approx(1.0)

    def test_prefix_plan_stops_at_measurement(self):
        from repro.simulators.ddsim import DDBackend
        from repro.simulators.gateplan import compile_plan

        circuit = ghz(3, measure=True)
        backend = DDBackend(3)
        plan = compile_plan(circuit, package=backend.package)
        prefix = compile_prefix_plan(backend, plan, NOISE)
        assert prefix.stop_index == 3  # h + 2 cx, then the first measure
        assert prefix.ideal_final is None
