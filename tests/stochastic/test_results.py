"""Unit tests for result aggregation and confidence intervals."""

import math

import pytest

from repro.stochastic.results import PropertyEstimate, StochasticResult


class TestPropertyEstimate:
    def test_mean(self):
        estimate = PropertyEstimate("p")
        for value in (0.2, 0.4, 0.6):
            estimate.add(value)
        assert estimate.mean == pytest.approx(0.4)

    def test_mean_of_empty_rejected(self):
        with pytest.raises(ValueError):
            PropertyEstimate("p").mean

    def test_variance_unbiased(self):
        estimate = PropertyEstimate("p")
        values = [0.0, 1.0, 0.0, 1.0]
        for value in values:
            estimate.add(value)
        assert estimate.variance == pytest.approx(1.0 / 3.0)

    def test_variance_single_sample_is_zero(self):
        estimate = PropertyEstimate("p")
        estimate.add(0.5)
        assert estimate.variance == 0.0

    def test_std_error(self):
        estimate = PropertyEstimate("p")
        for value in (0.0, 1.0, 0.0, 1.0):
            estimate.add(value)
        assert estimate.std_error == pytest.approx(math.sqrt((1 / 3) / 4))

    def test_merge(self):
        a = PropertyEstimate("p")
        b = PropertyEstimate("p")
        a.add(0.2)
        b.add(0.6)
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(0.4)

    def test_merge_name_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PropertyEstimate("p").merge(PropertyEstimate("q"))

    def test_hoeffding_halfwidth_shrinks_with_samples(self):
        small = PropertyEstimate("p")
        large = PropertyEstimate("p")
        for _ in range(10):
            small.add(0.5)
        for _ in range(1000):
            large.add(0.5)
        assert large.hoeffding_halfwidth() < small.hoeffding_halfwidth()

    def test_hoeffding_halfwidth_formula(self):
        estimate = PropertyEstimate("p")
        for _ in range(100):
            estimate.add(0.5)
        expected = math.sqrt(math.log(2 / 0.05) / 200)
        assert estimate.hoeffding_halfwidth(0.05) == pytest.approx(expected)

    def test_value_range_scales_interval(self):
        estimate = PropertyEstimate("z")
        estimate.add(0.0)
        assert estimate.hoeffding_halfwidth(value_range=2.0) == pytest.approx(
            2 * estimate.hoeffding_halfwidth(value_range=1.0)
        )

    def test_confidence_interval_brackets_mean(self):
        estimate = PropertyEstimate("p")
        for _ in range(50):
            estimate.add(0.3)
        low, high = estimate.confidence_interval()
        assert low < 0.3 < high


class TestStochasticResult:
    def make(self, n, mean_value):
        result = StochasticResult("c", "dd", n)
        estimate = PropertyEstimate("p")
        for _ in range(n):
            estimate.add(mean_value)
        result.estimates["p"] = estimate
        result.completed_trajectories = n
        result.outcome_counts = {"00": n}
        return result

    def test_merge_combines_everything(self):
        a = self.make(10, 0.2)
        b = self.make(30, 0.6)
        b.peak_nodes = 99
        b.timed_out = True
        a.merge(b)
        assert a.completed_trajectories == 40
        assert a.mean("p") == pytest.approx(0.5)
        assert a.outcome_counts["00"] == 40
        assert a.peak_nodes == 99
        assert a.timed_out

    def test_outcome_distribution(self):
        result = self.make(10, 0.5)
        result.outcome_counts = {"00": 8, "11": 2}
        distribution = result.outcome_distribution()
        assert distribution == {"00": 0.8, "11": 0.2}

    def test_outcome_distribution_empty(self):
        result = StochasticResult("c", "dd", 0)
        assert result.outcome_distribution() == {}

    def test_trajectories_per_second(self):
        result = self.make(100, 0.5)
        result.elapsed_seconds = 2.0
        assert result.trajectories_per_second() == 50.0

    def test_summary_mentions_key_facts(self):
        result = self.make(10, 0.25)
        result.elapsed_seconds = 1.0
        result.peak_nodes = 17
        text = result.summary()
        assert "10/10" in text
        assert "peak DD nodes: 17" in text
        assert "p: 0.25" in text

    def test_summary_flags_timeout(self):
        result = self.make(5, 0.1)
        result.timed_out = True
        assert "TIMED OUT" in result.summary()

    def test_merge_sums_cpu_seconds(self):
        a = self.make(10, 0.2)
        a.cpu_seconds = 1.5
        b = self.make(10, 0.2)
        b.cpu_seconds = 2.25
        a.merge(b)
        assert a.cpu_seconds == pytest.approx(3.75)

    def test_cpu_seconds_round_trips(self):
        result = self.make(10, 0.2)
        result.cpu_seconds = 4.5
        rebuilt = StochasticResult.from_dict(result.to_dict())
        assert rebuilt.cpu_seconds == pytest.approx(4.5)

    def test_from_dict_tolerates_missing_new_fields(self):
        # Results cached before cpu_seconds/metrics existed must still load.
        data = self.make(10, 0.2).to_dict()
        del data["cpu_seconds"]
        del data["metrics"]
        rebuilt = StochasticResult.from_dict(data)
        assert rebuilt.cpu_seconds == 0.0
        assert rebuilt.metrics == {}

    def test_merge_combines_metrics_snapshots(self):
        a = self.make(10, 0.2)
        a.metrics = {"counters": {"trajectory.completed": 10}, "gauges": {},
                     "histograms": {}}
        b = self.make(5, 0.2)
        b.metrics = {"counters": {"trajectory.completed": 5}, "gauges": {},
                     "histograms": {}}
        a.merge(b)
        assert a.metrics["counters"]["trajectory.completed"] == 15

    def test_metrics_round_trip_is_independent_copy(self):
        result = self.make(10, 0.2)
        result.metrics = {"counters": {"c": 1}, "gauges": {},
                          "histograms": {"h": {"bounds": [1.0], "counts": [1, 0],
                                               "sum": 0.5, "count": 1}}}
        rebuilt = StochasticResult.from_dict(result.to_dict())
        rebuilt.metrics["counters"]["c"] = 99
        rebuilt.metrics["histograms"]["h"]["counts"][0] = 99
        assert result.metrics["counters"]["c"] == 1
        assert result.metrics["histograms"]["h"]["counts"][0] == 1

    def test_summary_mentions_cpu_seconds(self):
        result = self.make(10, 0.2)
        result.elapsed_seconds = 1.0
        result.cpu_seconds = 3.0
        assert "3.000 cpu-s" in result.summary()
