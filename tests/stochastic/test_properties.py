"""Unit tests for property specifications and the Theorem 1 bounds."""

import math
import pickle

import numpy as np
import pytest

from repro.stochastic.properties import (
    BasisProbability,
    ClassicalOutcome,
    ExpectationZ,
    IdealFidelity,
    StateFidelity,
    hoeffding_epsilon,
    hoeffding_samples,
)


class TestHoeffdingSamples:
    def test_paper_example(self):
        """Paper Section V: L=1000, eps=0.01, delta=0.05 under the paper's
        (2 eps)^2 convention gives M <= 30 000."""
        m = hoeffding_samples(1000, 0.01, 0.05, paper_convention=True)
        assert m == 26492
        assert m <= 30000

    def test_standard_convention_is_twice_paper(self):
        paper = hoeffding_samples(10, 0.05, 0.05, paper_convention=True)
        standard = hoeffding_samples(10, 0.05, 0.05, paper_convention=False)
        assert standard == pytest.approx(2 * paper, abs=1)

    def test_logarithmic_in_properties(self):
        """Theorem 1's headline: M grows only logarithmically in L."""
        m1 = hoeffding_samples(1, 0.01, 0.05)
        m1000 = hoeffding_samples(1000, 0.01, 0.05)
        assert m1000 < 4 * m1

    def test_inverse_quadratic_in_epsilon(self):
        m1 = hoeffding_samples(1, 0.02, 0.05)
        m2 = hoeffding_samples(1, 0.01, 0.05)
        assert m2 == pytest.approx(4 * m1, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            hoeffding_samples(0, 0.1, 0.1)
        with pytest.raises(ValueError):
            hoeffding_samples(1, 0.0, 0.1)
        with pytest.raises(ValueError):
            hoeffding_samples(1, 0.1, 1.0)

    def test_epsilon_inversion_consistency(self):
        m = hoeffding_samples(50, 0.02, 0.05)
        epsilon = hoeffding_epsilon(50, m, 0.05)
        assert epsilon <= 0.02
        assert epsilon > 0.015

    def test_epsilon_paper_convention(self):
        assert hoeffding_epsilon(1, 100, 0.05, paper_convention=True) == pytest.approx(
            0.5 * hoeffding_epsilon(1, 100, 0.05) * math.sqrt(2), rel=1e-9
        )


class FakeBackend:
    """Minimal backend double for property evaluation."""

    def __init__(self):
        self.num_qubits = 2

    def probability_of_basis(self, bits):
        return 0.25 if bits == [1, 0] else 0.0

    def probability_of_one(self, qubit):
        return 0.3 if qubit == 0 else 0.9

    def fidelity(self, handle):
        return 0.5


class FakeRun:
    def classical_value(self):
        return 5


class FakeContext:
    def ideal_handle(self, backend):
        return "ideal"

    def target_handle(self, spec, backend):
        return "target"


class TestPropertySpecs:
    def test_basis_probability(self):
        spec = BasisProbability("10")
        assert spec.name == "P(|10>)"
        assert spec.evaluate(FakeBackend(), FakeRun(), FakeContext()) == 0.25

    def test_basis_probability_validation(self):
        with pytest.raises(ValueError):
            BasisProbability("")
        with pytest.raises(ValueError):
            BasisProbability("012")

    def test_expectation_z(self):
        spec = ExpectationZ(0)
        assert spec.name == "<Z_0>"
        assert spec.evaluate(FakeBackend(), FakeRun(), FakeContext()) == pytest.approx(0.4)

    def test_classical_outcome(self):
        hit = ClassicalOutcome(5)
        miss = ClassicalOutcome(6)
        assert hit.evaluate(FakeBackend(), FakeRun(), FakeContext()) == 1.0
        assert miss.evaluate(FakeBackend(), FakeRun(), FakeContext()) == 0.0

    def test_ideal_fidelity(self):
        spec = IdealFidelity()
        assert spec.name == "F(ideal)"
        assert spec.evaluate(FakeBackend(), FakeRun(), FakeContext()) == 0.5

    def test_state_fidelity_from_vector_normalises(self):
        spec = StateFidelity.from_vector([2.0, 0.0], label="zero")
        assert spec.name == "F(zero)"
        assert abs(spec.target[0]) == pytest.approx(1.0)

    def test_state_fidelity_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            StateFidelity.from_vector([0.0, 0.0])

    def test_all_specs_picklable(self):
        specs = [
            BasisProbability("01"),
            StateFidelity.from_vector([1, 0]),
            IdealFidelity(),
            ExpectationZ(1),
            ClassicalOutcome(3),
        ]
        for spec in specs:
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec
