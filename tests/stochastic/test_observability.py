"""Observability behaviour of the trajectory runner and simulator.

Covers the guarantees docs/OBSERVABILITY.md documents: every span reports a
metrics snapshot, trajectory-level counters are deterministic for a fixed
seed and worker count, the payload merges associatively, and a warm backend
never leaks the previous span's ``peak_nodes``.
"""

import pytest

from repro.circuits.library import ghz, qft
from repro.noise import NoiseModel
from repro.obs import merge_snapshots
from repro.simulators import DDBackend
from repro.stochastic import (
    BasisProbability,
    StochasticSimulator,
    run_trajectory_span,
    simulate_stochastic,
)

NOISE = NoiseModel.paper_defaults()


def span(circuit, n=6, backend=None, seed=0, properties=(), kind="dd"):
    return run_trajectory_span(
        circuit, NOISE, properties, kind, 0, n, seed,
        sample_shots=0, backend=backend,
    )


class TestSpanMetrics:
    def test_span_reports_trajectory_histogram_and_counters(self):
        result = span(ghz(4), n=8, properties=(BasisProbability("0000"),))
        counters = result.metrics["counters"]
        assert counters["trajectory.completed"] == 8
        assert counters["property.evaluations"] == 8
        latency = result.metrics["histograms"]["trajectory.seconds"]
        assert latency["count"] == 8
        evaluation = result.metrics["histograms"]["property.eval_seconds"]
        assert evaluation["count"] == 8

    def test_dd_span_reports_table_deltas(self):
        result = span(ghz(4), n=4)
        counters = result.metrics["counters"]
        assert counters["dd.unique.vector.misses"] > 0
        assert counters["dd.compute.mat_vec.misses"] > 0
        nodes = result.metrics["histograms"]["dd.state_nodes"]
        assert nodes["count"] > 0

    def test_statevector_span_reports_only_runner_metrics(self):
        result = span(ghz(4), n=4, kind="statevector")
        assert result.metrics["counters"]["trajectory.completed"] == 4
        assert not any(
            name.startswith("dd.") for name in result.metrics["counters"]
        )

    def test_warm_backend_reports_its_own_delta_not_lifetime_totals(self):
        backend = DDBackend(4)
        first = span(ghz(4), n=8, backend=backend)
        second = span(ghz(4), n=8, backend=backend)
        lifetime = backend.package.metrics_snapshot()["counters"]
        for name in ("dd.unique.vector.hits", "dd.compute.mat_vec.misses"):
            assert second.metrics["counters"][name] <= lifetime[name]
            assert (
                first.metrics["counters"][name] + second.metrics["counters"][name]
                <= lifetime[name]
            )

    def test_errors_fired_counters_match_result_field(self):
        result = span(ghz(6), n=50)
        counters = result.metrics["counters"]
        for kind, count in result.errors_fired.items():
            assert counters.get(f"errors.fired.{kind}", 0) == count


class TestDeterminism:
    def _trajectory_level(self, metrics):
        """The counters documented as seed-deterministic."""
        return {
            name: value
            for name, value in metrics["counters"].items()
            if name.startswith(("trajectory.completed", "property.evaluations",
                                "errors.fired."))
        }

    def test_serial_runs_repeat_exactly(self):
        a = span(ghz(6), n=20, seed=7, properties=(BasisProbability("0" * 6),))
        b = span(ghz(6), n=20, seed=7, properties=(BasisProbability("0" * 6),))
        assert self._trajectory_level(a.metrics) == self._trajectory_level(b.metrics)

    def test_parallel_runs_repeat_exactly(self):
        def run_once():
            with StochasticSimulator(backend="dd", workers=2) as simulator:
                return simulator.run(
                    ghz(6), noise_model=NOISE,
                    properties=(BasisProbability("0" * 6),),
                    trajectories=30, seed=3, sample_shots=0,
                )

        first, second = run_once(), run_once()
        assert self._trajectory_level(first.metrics) == self._trajectory_level(
            second.metrics
        )
        assert first.metrics["counters"]["trajectory.completed"] == 30

    def test_serial_and_parallel_agree_on_trajectory_counters(self):
        serial = simulate_stochastic(
            ghz(6), noise_model=NOISE, trajectories=30, seed=3,
            sample_shots=0, workers=1,
        )
        with StochasticSimulator(backend="dd", workers=2) as simulator:
            parallel = simulator.run(
                ghz(6), noise_model=NOISE, trajectories=30, seed=3,
                sample_shots=0,
            )
        serial_counters = self._trajectory_level(serial.metrics)
        parallel_counters = self._trajectory_level(parallel.metrics)
        assert serial_counters == parallel_counters


class TestMergeAssociativity:
    def test_chunked_metrics_merge_like_estimates(self):
        chunks = [
            run_trajectory_span(
                ghz(4), NOISE, (), "dd", first, 5, 0, sample_shots=0
            )
            for first in (0, 5, 10)
        ]
        left = merge_snapshots(
            merge_snapshots(chunks[0].metrics, chunks[1].metrics), chunks[2].metrics
        )
        right = merge_snapshots(
            chunks[0].metrics, merge_snapshots(chunks[1].metrics, chunks[2].metrics)
        )
        assert left["counters"] == right["counters"]
        for name, histogram in left["histograms"].items():
            assert histogram["counts"] == right["histograms"][name]["counts"]
            assert histogram["count"] == right["histograms"][name]["count"]
            assert histogram["sum"] == pytest.approx(right["histograms"][name]["sum"])
        assert left["counters"]["trajectory.completed"] == 15


class TestPeakNodesReset:
    def test_warm_backend_does_not_leak_previous_peak(self):
        # GHZ states are genuinely entangled (wide diagrams); the QFT of
        # |0...0> stays a product state, so its true peak is much smaller.
        backend = DDBackend(6)
        heavy = span(ghz(6), n=3, backend=backend)
        light = span(qft(6, do_swaps=False), n=3, backend=backend)
        fresh = span(qft(6, do_swaps=False), n=3)
        assert light.peak_nodes == fresh.peak_nodes
        assert light.peak_nodes < heavy.peak_nodes

    def test_back_to_back_jobs_of_different_widths(self):
        with StochasticSimulator(backend="dd", workers=2) as simulator:
            wide = simulator.run(
                ghz(12), noise_model=NOISE, trajectories=12, sample_shots=0,
            )
            narrow = simulator.run(
                ghz(4), noise_model=NOISE, trajectories=12, sample_shots=0,
            )
        assert narrow.peak_nodes < wide.peak_nodes
        # A 4-qubit GHZ trajectory can never exceed a handful of nodes; a
        # stale peak from the 12-qubit job would blow well past this.
        assert narrow.peak_nodes <= 10
