"""Unit tests for the QuantumCircuit IR."""

import math
import pickle
import random

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, parse_qasm
from repro.circuits.operations import GateOperation, MeasureOperation
from repro.simulators import DDBackend, execute_circuit


def simulate(circuit):
    backend = DDBackend(circuit.num_qubits)
    execute_circuit(backend, circuit, random.Random(0))
    return backend.statevector()


class TestConstruction:
    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)
        with pytest.raises(ValueError):
            QuantumCircuit(1, -1)

    def test_builder_methods_chain(self):
        circuit = QuantumCircuit(2)
        result = circuit.h(0).cx(0, 1).rz(0.5, 1)
        assert result is circuit
        assert len(circuit) == 3

    def test_out_of_range_qubit_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(IndexError):
            circuit.h(2)
        with pytest.raises(IndexError):
            circuit.cx(0, 5)

    def test_out_of_range_clbit_rejected(self):
        circuit = QuantumCircuit(2, 1)
        with pytest.raises(IndexError):
            circuit.measure(0, 1)

    def test_measure_all_grows_clbits(self):
        circuit = QuantumCircuit(3, 0)
        circuit.measure_all()
        assert circuit.num_clbits == 3
        assert sum(1 for op in circuit if isinstance(op, MeasureOperation)) == 3

    def test_extend(self):
        a = QuantumCircuit(3)
        a.h(0)
        b = QuantumCircuit(2)
        b.x(1)
        a.extend(b)
        assert len(a) == 2

    def test_extend_too_wide_rejected(self):
        a = QuantumCircuit(2)
        b = QuantumCircuit(3)
        with pytest.raises(ValueError):
            a.extend(b)

    def test_copy_is_independent(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = a.copy()
        b.x(1)
        assert len(a) == 1
        assert len(b) == 2

    def test_picklable(self):
        circuit = QuantumCircuit(3, 3)
        circuit.h(0).ccx(0, 1, 2).measure_all()
        clone = pickle.loads(pickle.dumps(circuit))
        assert clone.num_qubits == 3
        assert clone.operations == circuit.operations


class TestAnalysis:
    def test_count_ops(self):
        circuit = QuantumCircuit(3, 3)
        circuit.h(0).cx(0, 1).cx(1, 2).barrier().measure_all()
        counts = circuit.count_ops()
        assert counts == {"h": 1, "cx": 2, "barrier": 1, "measure": 3}

    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(4)
        circuit.h(0).h(1).h(2).h(3)
        assert circuit.depth() == 1

    def test_depth_serial_chain(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 2).cx(0, 1)
        assert circuit.depth() == 3

    def test_barriers_do_not_add_depth(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().h(1)
        assert circuit.depth() == 1

    def test_num_gates_excludes_measures(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0).measure_all()
        assert circuit.num_gates() == 1


class TestSwapDecompositions:
    def test_swap_is_three_cx(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        assert circuit.count_ops() == {"cx": 3}

    def test_swap_semantics(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.swap(0, 1)
        vector = simulate(circuit)
        assert vector[0b01] == pytest.approx(1.0)

    def test_cswap_semantics(self):
        circuit = QuantumCircuit(3)
        circuit.x(0)  # control on
        circuit.x(1)
        circuit.cswap(0, 1, 2)
        vector = simulate(circuit)
        assert vector[0b101] == pytest.approx(1.0)

    def test_cswap_control_off(self):
        circuit = QuantumCircuit(3)
        circuit.x(1)
        circuit.cswap(0, 1, 2)
        vector = simulate(circuit)
        assert vector[0b010] == pytest.approx(1.0)


class TestInverse:
    def test_inverse_undoes_unitary_circuit(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).t(1).rz(0.37, 2).u3(0.3, 0.2, 0.1, 0)
        circuit.u2(0.5, 0.6, 1).s(2).sx(0)
        full = circuit.copy()
        full.extend(circuit.inverse())
        vector = simulate(full)
        expected = np.zeros(8)
        expected[0] = 1.0
        assert np.allclose(vector, expected, atol=1e-9)

    def test_inverse_of_measurement_rejected(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        with pytest.raises(ValueError):
            circuit.inverse()

    def test_inverse_name(self):
        circuit = QuantumCircuit(1, name="foo")
        assert circuit.inverse().name == "foo_dg"


class TestQasmExport:
    def test_round_trip_gate_sequence(self):
        circuit = QuantumCircuit(3, 3)
        circuit.h(0).cx(0, 1).ccx(0, 1, 2).rz(0.25, 2)
        circuit.u3(0.1, 0.2, 0.3, 1).measure_all()
        reparsed = parse_qasm(circuit.to_qasm())
        assert reparsed.num_qubits == 3
        assert [op for op in reparsed.gate_operations()] == [
            op for op in circuit.gate_operations()
        ]

    def test_round_trip_preserves_semantics(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).t(1).sdg(2).cz(1, 2).u2(0.4, -0.3, 0)
        reparsed = parse_qasm(circuit.to_qasm())
        assert np.allclose(simulate(circuit), simulate(reparsed), atol=1e-12)

    def test_negative_control_export_wraps_with_x(self):
        circuit = QuantumCircuit(2)
        circuit.gate("x", 1, controls={0: 0})
        qasm = circuit.to_qasm()
        reparsed = parse_qasm(qasm)
        assert np.allclose(simulate(circuit), simulate(reparsed), atol=1e-12)

    def test_condition_export(self):
        circuit = QuantumCircuit(1, 2)
        from repro.circuits.operations import ClassicalCondition

        circuit.gate("x", 0, condition=ClassicalCondition((0, 1), 2))
        qasm = circuit.to_qasm()
        assert "if (c == 2)" in qasm
