"""Tests for the ASCII circuit renderer."""

import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.drawing import draw_circuit
from repro.circuits.library import ghz, qft


class TestDrawing:
    def test_one_line_per_qubit(self):
        text = draw_circuit(ghz(3))
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("q0:")
        assert lines[2].startswith("q2:")

    def test_gate_boxes_and_controls(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        text = draw_circuit(circuit)
        q0, q1 = text.splitlines()
        assert "[H]" in q0
        assert "●" in q0
        assert "[X]" in q1

    def test_negated_control_symbol(self):
        circuit = QuantumCircuit(2)
        circuit.gate("x", 1, controls={0: 0})
        text = draw_circuit(circuit)
        assert "○" in text.splitlines()[0]

    def test_parametrised_gate_label(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.5, 0)
        assert "[rz(0.5)]" in draw_circuit(circuit)

    def test_measure_and_reset(self):
        circuit = QuantumCircuit(2, 2)
        circuit.measure(0, 1).reset(1)
        text = draw_circuit(circuit)
        assert "M1" in text.splitlines()[0]
        assert "R" in text.splitlines()[1]

    def test_barrier_column(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().h(1)
        text = draw_circuit(circuit)
        assert text.count("▒") == 2

    def test_parallel_gates_share_slot(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1)
        q0, q1 = draw_circuit(circuit).splitlines()
        assert q0.index("[H]") == q1.index("[H]")

    def test_serial_gates_use_new_slots(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).x(0)
        line = draw_circuit(circuit).splitlines()[0]
        assert line.index("[H]") < line.index("[X]")

    def test_condition_footnote(self):
        from repro.circuits.operations import ClassicalCondition

        circuit = QuantumCircuit(1, 1)
        circuit.gate("x", 0, condition=ClassicalCondition((0,), 1))
        text = draw_circuit(circuit)
        assert "[X?]" in text or "[x?]" in text
        assert "if c[0..0] == 1" in text

    def test_empty_circuit(self):
        text = draw_circuit(QuantumCircuit(2))
        assert len(text.splitlines()) == 2

    def test_long_circuit_elided(self):
        circuit = QuantumCircuit(1)
        for _ in range(500):
            circuit.x(0)
        text = draw_circuit(circuit)
        assert "elided" in text

    def test_qft_renders_without_error(self):
        text = draw_circuit(qft(4))
        assert len(text.splitlines()) >= 4
