"""Unit tests for circuit operation dataclasses."""

import pickle

import numpy as np
import pytest

from repro.circuits.operations import (
    BarrierOperation,
    ClassicalCondition,
    GateOperation,
    MeasureOperation,
    ResetOperation,
)


class TestClassicalCondition:
    def test_satisfied_lsb_first(self):
        condition = ClassicalCondition((0, 1, 2), 0b101)
        assert condition.is_satisfied([1, 0, 1])
        assert not condition.is_satisfied([1, 1, 1])

    def test_subset_of_register(self):
        condition = ClassicalCondition((2, 3), 2)
        assert condition.is_satisfied([0, 0, 0, 1])
        assert not condition.is_satisfied([0, 0, 1, 1])

    def test_zero_value(self):
        condition = ClassicalCondition((0,), 0)
        assert condition.is_satisfied([0])
        assert not condition.is_satisfied([1])


class TestGateOperation:
    def test_qubits_includes_controls_then_target(self):
        gate = GateOperation("x", (), 3, ((0, 1), (1, 0)))
        assert gate.qubits == (0, 1, 3)
        assert gate.num_qubits == 3

    def test_matrix_resolution(self):
        gate = GateOperation("h", (), 0)
        assert np.allclose(gate.matrix(), np.array([[1, 1], [1, -1]]) / np.sqrt(2))

    def test_parametrised_matrix(self):
        gate = GateOperation("rz", (0.5,), 0)
        assert gate.matrix()[1, 1] == pytest.approx(np.exp(0.25j))

    def test_control_dict(self):
        gate = GateOperation("z", (), 2, ((0, 1), (1, 0)))
        assert gate.control_dict() == {0: 1, 1: 0}

    def test_target_in_controls_rejected(self):
        with pytest.raises(ValueError):
            GateOperation("x", (), 1, ((1, 1),))

    def test_duplicate_controls_rejected(self):
        with pytest.raises(ValueError):
            GateOperation("x", (), 2, ((0, 1), (0, 0)))

    def test_with_condition(self):
        gate = GateOperation("x", (), 0)
        condition = ClassicalCondition((0,), 1)
        conditioned = gate.with_condition(condition)
        assert conditioned.condition == condition
        assert gate.condition is None  # original untouched

    def test_label(self):
        assert GateOperation("x", (), 1, ((0, 1),)).label() == "cx q0, q1"
        assert GateOperation("rz", (0.5,), 3).label() == "rz(0.5) q3"

    def test_picklable(self):
        gate = GateOperation("u3", (0.1, 0.2, 0.3), 2, ((0, 1),), ClassicalCondition((0,), 1))
        clone = pickle.loads(pickle.dumps(gate))
        assert clone == gate

    def test_equality_and_hash(self):
        a = GateOperation("x", (), 0)
        b = GateOperation("x", (), 0)
        assert a == b
        assert hash(a) == hash(b)


class TestOtherOperations:
    def test_measure(self):
        op = MeasureOperation(3, 1)
        assert op.qubits == (3,)
        assert op.clbit == 1

    def test_reset(self):
        op = ResetOperation(2)
        assert op.qubits == (2,)

    def test_barrier(self):
        op = BarrierOperation((0, 1, 2))
        assert op.qubits == (0, 1, 2)

    def test_all_picklable(self):
        for op in (MeasureOperation(0, 0), ResetOperation(1), BarrierOperation((0,))):
            assert pickle.loads(pickle.dumps(op)) == op
