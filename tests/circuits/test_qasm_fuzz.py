"""Fuzzing the QASM front-end: junk input must fail cleanly.

Whatever bytes arrive, the lexer/parser must raise the documented error
types (QasmLexerError / QasmParserError / QasmExpressionError) — never
crash with an unrelated exception or hang.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.qasm import (
    QasmExpressionError,
    QasmLexerError,
    QasmParserError,
    parse_qasm,
    tokenize,
)

EXPECTED_ERRORS = (QasmLexerError, QasmParserError, QasmExpressionError)

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[3];\n'


@settings(max_examples=120, deadline=None)
@given(st.text(max_size=200))
def test_arbitrary_text_fails_cleanly(source):
    try:
        parse_qasm(source)
    except EXPECTED_ERRORS:
        pass
    # Valid programs are fine too (e.g. hypothesis shrinks to "").


@settings(max_examples=120, deadline=None)
@given(
    st.text(
        alphabet="qcxhz[]();,{}=->0123456789. \npi*/+-\"gateifmeasure",
        max_size=300,
    )
)
def test_qasm_like_text_fails_cleanly(body):
    try:
        parse_qasm(HEADER + body)
    except EXPECTED_ERRORS:
        pass


@settings(max_examples=120, deadline=None)
@given(st.text(max_size=300))
def test_lexer_never_hangs_or_crashes_unexpectedly(source):
    try:
        tokens = tokenize(source)
    except QasmLexerError:
        return
    assert isinstance(tokens, list)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from(
    ["h q[0];", "cx q[0], q[1];", "rz(pi/7) q[2];", "measure q[0] -> c[0];",
     "barrier q;", "reset q[1];", "ccx q[0], q[1], q[2];", "if (c == 1) x q[0];"]
), max_size=12))
def test_random_valid_statement_sequences_parse(statements):
    source = HEADER + "creg c[3];\n" + "\n".join(statements)
    circuit = parse_qasm(source)
    assert circuit.num_qubits == 3
