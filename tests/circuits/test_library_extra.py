"""Functional tests for the extended library: Deutsch-Jozsa, Simon, QAOA."""

import random
from collections import Counter

import numpy as np
import pytest

from repro.circuits.library import deutsch_jozsa, qaoa_maxcut, ring_graph, simon
from repro.simulators import DDBackend, execute_circuit


def run(circuit, seed=0):
    backend = DDBackend(circuit.num_qubits)
    result = execute_circuit(backend, circuit, random.Random(seed))
    return backend, result


class TestDeutschJozsa:
    def test_balanced_oracle_reads_nonzero(self):
        circuit = deutsch_jozsa(5, balanced=True)
        _, result = run(circuit)
        assert any(result.classical_bits)

    def test_balanced_reads_the_pattern(self):
        pattern = [1, 0, 1, 1]
        circuit = deutsch_jozsa(5, balanced=True, pattern=pattern)
        _, result = run(circuit)
        assert result.classical_bits == pattern

    def test_constant_oracle_reads_zero(self):
        circuit = deutsch_jozsa(5, balanced=False)
        _, result = run(circuit)
        assert result.classical_bits == [0, 0, 0, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            deutsch_jozsa(1)
        with pytest.raises(ValueError):
            deutsch_jozsa(4, pattern=[1, 1])


class TestSimon:
    def test_outputs_orthogonal_to_secret(self):
        secret = [1, 1, 0]
        circuit = simon(3, secret=secret)
        for seed in range(30):
            _, result = run(circuit, seed=seed)
            y = result.classical_bits
            dot = sum(a * b for a, b in zip(y, secret)) % 2
            assert dot == 0, (y, secret)

    def test_outputs_span_orthogonal_complement(self):
        """Over many runs the outcomes are not all zero — the algorithm
        gathers enough equations to solve for the secret."""
        circuit = simon(3, secret=[1, 0, 1])
        outcomes = Counter()
        for seed in range(60):
            _, result = run(circuit, seed=seed)
            outcomes[tuple(result.classical_bits)] += 1
        assert len(outcomes) >= 2

    def test_default_secret(self):
        circuit = simon(4)
        assert circuit.num_qubits == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            simon(1)
        with pytest.raises(ValueError):
            simon(3, secret=[0, 0, 0])
        with pytest.raises(ValueError):
            simon(3, secret=[1, 1])


class TestQaoa:
    def test_ring_graph(self):
        assert ring_graph(4) == ((0, 1), (1, 2), (2, 3), (3, 0))
        with pytest.raises(ValueError):
            ring_graph(2)

    def test_structure(self):
        circuit = qaoa_maxcut(5, layers=3, measure=False)
        counts = circuit.count_ops()
        assert counts["h"] == 5
        assert counts["cx"] == 2 * 5 * 3  # 5 ring edges, 3 layers
        assert counts["rx"] == 5 * 3

    def test_cuts_beat_random_guessing(self):
        """QAOA at p=1 on a ring must beat uniform sampling in expectation.

        Computed exactly from the noiseless final state (deterministic),
        not from samples.
        """
        edges = ring_graph(6)
        circuit = qaoa_maxcut(6, edges=edges, layers=1, measure=False)
        backend, _ = run(circuit)
        amplitudes = backend.statevector()

        def cut_value(index):
            bits = [(index >> (5 - q)) & 1 for q in range(6)]
            return sum(1 for a, b in edges if bits[a] != bits[b])

        expectation = sum(
            abs(amplitude) ** 2 * cut_value(index)
            for index, amplitude in enumerate(amplitudes)
        )
        # Uniform sampling averages |E|/2 = 3 on the 6-ring.
        assert expectation > 3.2

    def test_validation(self):
        with pytest.raises(ValueError):
            qaoa_maxcut(1)
        with pytest.raises(ValueError):
            qaoa_maxcut(4, layers=0)
        with pytest.raises(ValueError):
            qaoa_maxcut(4, edges=[(0, 0)])
        with pytest.raises(ValueError):
            qaoa_maxcut(4, gammas=[0.1], betas=[0.2, 0.3], layers=2)
