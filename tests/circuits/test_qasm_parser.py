"""Unit tests for the OpenQASM 2.0 parser."""

import math
import random

import numpy as np
import pytest

from repro.circuits import parse_qasm
from repro.circuits.operations import GateOperation, MeasureOperation
from repro.circuits.qasm import QasmParserError
from repro.simulators import DDBackend, StatevectorBackend, execute_circuit

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def simulate(circuit, seed=0):
    backend = DDBackend(circuit.num_qubits)
    result = execute_circuit(backend, circuit, random.Random(seed))
    return backend.statevector(), result


class TestHeaderAndRegisters:
    def test_minimal_program(self):
        circuit = parse_qasm(HEADER + "qreg q[3];")
        assert circuit.num_qubits == 3
        assert circuit.num_clbits == 0
        assert len(circuit) == 0

    def test_missing_header_rejected(self):
        with pytest.raises(QasmParserError):
            parse_qasm("qreg q[1];")

    def test_unsupported_version_rejected(self):
        with pytest.raises(QasmParserError, match="version"):
            parse_qasm("OPENQASM 3.0;\nqreg q[1];")

    def test_multiple_qregs_flattened(self):
        circuit = parse_qasm(HEADER + "qreg a[2]; qreg b[3]; x a[1]; x b[0];")
        assert circuit.num_qubits == 5
        ops = circuit.gate_operations()
        assert ops[0].target == 1
        assert ops[1].target == 2  # b[0] is global qubit 2

    def test_redeclared_register_rejected(self):
        with pytest.raises(QasmParserError, match="redeclared"):
            parse_qasm(HEADER + "qreg q[2]; creg q[2];")

    def test_no_qreg_rejected(self):
        with pytest.raises(QasmParserError, match="no qreg"):
            parse_qasm(HEADER + "creg c[2];")

    def test_zero_size_register_rejected(self):
        with pytest.raises(QasmParserError):
            parse_qasm(HEADER + "qreg q[0];")


class TestNativeGates:
    def test_u_and_cx_builtins_without_include(self):
        source = "OPENQASM 2.0;\nqreg q[2];\nU(pi/2, 0, pi) q[0];\nCX q[0], q[1];"
        circuit = parse_qasm(source)
        vector, _ = simulate(circuit)
        # U(pi/2, 0, pi) == H, so this is a Bell state.
        assert abs(vector[0]) == pytest.approx(1 / math.sqrt(2))
        assert abs(vector[3]) == pytest.approx(1 / math.sqrt(2))

    def test_qelib_single_qubit_gates(self):
        source = HEADER + "qreg q[1];\nh q[0]; t q[0]; tdg q[0]; h q[0];"
        vector, _ = simulate(parse_qasm(source))
        assert vector[0] == pytest.approx(1.0)

    def test_parameter_expressions(self):
        source = HEADER + "qreg q[1];\nrz(2*pi/4 - pi/2) q[0];"
        circuit = parse_qasm(source)
        assert circuit.gate_operations()[0].params[0] == pytest.approx(0.0)

    def test_expression_functions(self):
        source = HEADER + "qreg q[1];\nrz(cos(0) + sin(0) + sqrt(4) + ln(exp(1))) q[0];"
        circuit = parse_qasm(source)
        assert circuit.gate_operations()[0].params[0] == pytest.approx(4.0)

    def test_power_right_associative(self):
        source = HEADER + "qreg q[1];\nrz(2^3^2) q[0];"
        circuit = parse_qasm(source)
        assert circuit.gate_operations()[0].params[0] == pytest.approx(512.0)

    def test_unary_minus(self):
        source = HEADER + "qreg q[1];\nrz(-pi/2) q[0];"
        circuit = parse_qasm(source)
        assert circuit.gate_operations()[0].params[0] == pytest.approx(-math.pi / 2)

    def test_swap_expands_to_cx(self):
        source = HEADER + "qreg q[2];\nswap q[0], q[1];"
        circuit = parse_qasm(source)
        assert circuit.count_ops() == {"cx": 3}

    def test_rzz_semantics(self):
        source = HEADER + "qreg q[2];\nh q[0]; h q[1];\nrzz(pi/3) q[0], q[1];"
        vector, _ = simulate(parse_qasm(source))
        # rzz phases: e^{-i theta/2} on even parity, e^{+i theta/2} on odd.
        assert vector[0] / vector[3] == pytest.approx(1.0)
        assert vector[0] / vector[1] == pytest.approx(np.exp(-1j * math.pi / 3))

    def test_ccx(self):
        source = HEADER + "qreg q[3];\nx q[0]; x q[1];\nccx q[0], q[1], q[2];"
        vector, _ = simulate(parse_qasm(source))
        assert vector[0b111] == pytest.approx(1.0)

    def test_cu_gate(self):
        source = HEADER + "qreg q[2];\nx q[0];\ncu(0, 0, 0, pi/2) q[0], q[1];"
        vector, _ = simulate(parse_qasm(source))
        # gamma phase applies to the control branch.
        assert vector[0b10] == pytest.approx(1j)

    def test_wrong_qubit_count_rejected(self):
        with pytest.raises(QasmParserError, match="expects"):
            parse_qasm(HEADER + "qreg q[2];\nh q[0], q[1];")

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(QasmParserError, match="duplicate"):
            parse_qasm(HEADER + "qreg q[2];\ncx q[0], q[0];")


class TestBroadcasting:
    def test_single_gate_over_register(self):
        circuit = parse_qasm(HEADER + "qreg q[4];\nh q;")
        assert circuit.count_ops() == {"h": 4}

    def test_two_register_broadcast(self):
        circuit = parse_qasm(HEADER + "qreg a[3]; qreg b[3];\ncx a, b;")
        ops = circuit.gate_operations()
        assert len(ops) == 3
        assert ops[0].qubits == (0, 3)
        assert ops[2].qubits == (2, 5)

    def test_mixed_scalar_register_broadcast(self):
        circuit = parse_qasm(HEADER + "qreg a[1]; qreg b[3];\ncx a[0], b;")
        ops = circuit.gate_operations()
        assert len(ops) == 3
        assert all(op.qubits[0] == 0 for op in ops)

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(QasmParserError, match="broadcast"):
            parse_qasm(HEADER + "qreg a[2]; qreg b[3];\ncx a, b;")


class TestMeasureResetBarrier:
    def test_measure_single(self):
        circuit = parse_qasm(HEADER + "qreg q[2]; creg c[2];\nmeasure q[1] -> c[0];")
        (op,) = circuit.operations
        assert isinstance(op, MeasureOperation)
        assert op.qubit == 1 and op.clbit == 0

    def test_measure_register(self):
        circuit = parse_qasm(HEADER + "qreg q[3]; creg c[3];\nmeasure q -> c;")
        assert sum(1 for op in circuit if isinstance(op, MeasureOperation)) == 3

    def test_measure_size_mismatch_rejected(self):
        with pytest.raises(QasmParserError, match="sizes differ"):
            parse_qasm(HEADER + "qreg q[3]; creg c[2];\nmeasure q -> c;")

    def test_reset(self):
        source = HEADER + "qreg q[1];\nx q[0];\nreset q[0];"
        vector, _ = simulate(parse_qasm(source))
        assert vector[0] == pytest.approx(1.0)

    def test_barrier_noop(self):
        circuit = parse_qasm(HEADER + "qreg q[2];\nbarrier q;")
        assert circuit.count_ops() == {"barrier": 1}


class TestConditionals:
    def test_if_executes_on_match(self):
        source = (
            HEADER
            + "qreg q[2]; creg c[1];\nx q[0];\nmeasure q[0] -> c[0];\nif (c == 1) x q[1];"
        )
        vector, result = simulate(parse_qasm(source))
        assert result.classical_bits == [1]
        assert vector[0b11] == pytest.approx(1.0)

    def test_if_skips_on_mismatch(self):
        source = (
            HEADER
            + "qreg q[2]; creg c[1];\nmeasure q[0] -> c[0];\nif (c == 1) x q[1];"
        )
        vector, result = simulate(parse_qasm(source))
        assert vector[0b00] == pytest.approx(1.0)

    def test_conditional_measure_rejected(self):
        source = HEADER + "qreg q[1]; creg c[1];\nif (c == 0) measure q[0] -> c[0];"
        with pytest.raises(QasmParserError, match="conditional measure"):
            parse_qasm(source)

    def test_unknown_creg_in_condition_rejected(self):
        with pytest.raises(QasmParserError, match="unknown classical register"):
            parse_qasm(HEADER + "qreg q[1];\nif (c == 0) x q[0];")


class TestGateDefinitions:
    def test_simple_definition_expanded(self):
        source = HEADER + (
            "gate bell a, b { h a; cx a, b; }\n"
            "qreg q[2];\nbell q[0], q[1];"
        )
        circuit = parse_qasm(source)
        assert circuit.count_ops() == {"h": 1, "cx": 1}

    def test_parametrised_definition(self):
        source = HEADER + (
            "gate twist(theta) a { rz(theta/2) a; rz(theta/2) a; }\n"
            "qreg q[1];\ntwist(pi) q[0];"
        )
        circuit = parse_qasm(source)
        params = [op.params[0] for op in circuit.gate_operations()]
        assert params == pytest.approx([math.pi / 2, math.pi / 2])

    def test_nested_definitions(self):
        source = HEADER + (
            "gate inner a { x a; }\n"
            "gate outer a, b { inner a; inner b; }\n"
            "qreg q[2];\nouter q[0], q[1];"
        )
        circuit = parse_qasm(source)
        assert circuit.count_ops() == {"x": 2}

    def test_definition_shadows_native(self):
        source = HEADER + (
            "gate h a { x a; }\n"  # pathological but legal
            "qreg q[1];\nh q[0];"
        )
        circuit = parse_qasm(source)
        assert circuit.count_ops() == {"x": 1}

    def test_undeclared_qarg_in_body_rejected(self):
        with pytest.raises(QasmParserError, match="undeclared qubit"):
            parse_qasm(HEADER + "gate bad a { x b; }\nqreg q[1];")

    def test_wrong_arity_call_rejected(self):
        source = HEADER + "gate g2 a, b { cx a, b; }\nqreg q[3];\ng2 q[0];"
        with pytest.raises(QasmParserError, match="takes 2 qubit"):
            parse_qasm(source)

    def test_wrong_param_count_rejected(self):
        source = HEADER + "gate gp(t) a { rz(t) a; }\nqreg q[1];\ngp q[0];"
        with pytest.raises(QasmParserError, match="parameter"):
            parse_qasm(source)

    def test_barrier_inside_body_ignored(self):
        source = HEADER + "gate g a, b { h a; barrier a, b; h b; }\nqreg q[2];\ng q[0], q[1];"
        circuit = parse_qasm(source)
        assert circuit.count_ops() == {"h": 2}

    def test_unknown_identifier_in_expression_rejected(self):
        with pytest.raises(QasmParserError, match="unknown identifier"):
            parse_qasm(HEADER + "gate g(t) a { rz(u) a; }\nqreg q[1];")


class TestErrors:
    def test_unknown_gate(self):
        with pytest.raises(QasmParserError, match="unknown gate"):
            parse_qasm(HEADER + "qreg q[1];\nfrobnicate q[0];")

    def test_opaque_gate_call_rejected(self):
        source = HEADER + "opaque magic a;\nqreg q[1];\nmagic q[0];"
        with pytest.raises(QasmParserError, match="opaque"):
            parse_qasm(source)

    def test_unknown_register(self):
        with pytest.raises(QasmParserError, match="unknown quantum register"):
            parse_qasm(HEADER + "qreg q[1];\nx r[0];")

    def test_index_out_of_range(self):
        with pytest.raises(QasmParserError, match="out of range"):
            parse_qasm(HEADER + "qreg q[2];\nx q[5];")

    def test_unresolvable_include(self):
        with pytest.raises(QasmParserError, match="cannot resolve include"):
            parse_qasm('OPENQASM 2.0;\ninclude "missing_file.inc";\nqreg q[1];')


class TestEndToEnd:
    def test_qasmbench_style_program(self):
        """A program in the style of real QASMBench files."""
        source = HEADER + """
        gate majority a, b, c { cx c, b; cx c, a; ccx a, b, c; }
        gate unmaj a, b, c { ccx a, b, c; cx c, a; cx a, b; }
        qreg cin[1];
        qreg a[2];
        qreg b[2];
        qreg cout[1];
        creg ans[3];
        x a[0];
        x b;
        majority cin[0], b[0], a[0];
        majority a[0], b[1], a[1];
        cx a[1], cout[0];
        unmaj a[0], b[1], a[1];
        unmaj cin[0], b[0], a[0];
        measure b[0] -> ans[0];
        measure b[1] -> ans[1];
        measure cout[0] -> ans[2];
        """
        circuit = parse_qasm(source)
        _, result = simulate(circuit)
        # 1 + 3 = 4 -> ans = 100 (binary, lsb-first bits [0, 0, 1]).
        assert result.classical_bits == [0, 0, 1]

    def test_dd_and_statevector_agree_on_parsed_circuit(self):
        source = HEADER + """
        qreg q[4];
        h q;
        cu1(pi/4) q[0], q[1];
        crz(pi/8) q[1], q[2];
        ch q[2], q[3];
        u3(0.1, 0.2, 0.3) q[0];
        cy q[3], q[0];
        """
        circuit = parse_qasm(source)
        dd = DDBackend(4)
        sv = StatevectorBackend(4)
        execute_circuit(dd, circuit, random.Random(0))
        execute_circuit(sv, circuit, random.Random(0))
        assert np.allclose(dd.statevector(), sv.statevector(), atol=1e-10)
