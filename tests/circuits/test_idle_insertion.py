"""Tests for the idle-identity insertion pass (per-time-step decoherence)."""

import random

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.library import ghz
from repro.circuits.optimize import insert_idle_identities
from repro.noise import NoiseModel
from repro.simulators import DDBackend, execute_circuit
from repro.stochastic import BasisProbability, simulate_stochastic


class TestIdleInsertion:
    def test_idle_slots_filled(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).x(2)
        result = insert_idle_identities(circuit)
        # Layer 1: h(0) + x(2) busy, q1 idle -> 1 id.
        # Layer 2: cx(0,1) busy, q2 idle -> 1 id.
        assert result.count_ops()["id"] == 2

    def test_fully_parallel_layer_gets_no_ids(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1)
        result = insert_idle_identities(circuit)
        assert "id" not in result.count_ops()

    def test_serial_single_qubit_circuit(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(0).h(0)
        result = insert_idle_identities(circuit)
        assert result.count_ops()["id"] == 3  # q1 idles three layers

    def test_noiseless_semantics_unchanged(self):
        circuit = ghz(4)
        transformed = insert_idle_identities(circuit)
        a, b = DDBackend(4), DDBackend(4)
        execute_circuit(a, circuit, random.Random(0))
        execute_circuit(b, transformed, random.Random(0))
        assert np.allclose(a.statevector(), b.statevector())

    def test_measurements_participate_in_layers(self):
        circuit = QuantumCircuit(2, 2)
        circuit.measure(0, 0)
        result = insert_idle_identities(circuit)
        assert result.count_ops() == {"measure": 1, "id": 1}

    def test_idle_qubits_now_decay(self):
        """The point of the pass: an untouched qubit now suffers T1 when it
        idles during another qubit's long gate sequence."""
        circuit = QuantumCircuit(2)
        circuit.x(1)
        for _ in range(40):
            circuit.h(0)  # qubit 1 idles for 40 layers

        noise = NoiseModel.uniform(amplitude_damping=0.05)
        plain = simulate_stochastic(
            circuit, noise, [BasisProbability("01")], trajectories=600, seed=1
        )
        with_idle = simulate_stochastic(
            insert_idle_identities(circuit),
            noise,
            [BasisProbability("01")],
            trajectories=600,
            seed=1,
        )
        # Without idle errors q1 only decays at its single x slot (the
        # remaining loss comes from q0's own noisy h chain).
        assert plain.mean("P(|01>)") > 0.7
        # With idle errors q1 sees 41 damping slots: (1 - p)^41 ~ 0.12.
        assert with_idle.mean("P(|01>)") == pytest.approx(0.13, abs=0.05)
        assert plain.mean("P(|01>)") - with_idle.mean("P(|01>)") > 0.4

    def test_name_suffix(self):
        assert insert_idle_identities(ghz(2)).name == "entanglement_2_idle"

    def test_depth_preserved(self):
        circuit = ghz(5)
        assert insert_idle_identities(circuit).depth() == circuit.depth()
