"""Property-based round-trip: random circuits -> OpenQASM -> parse -> equal.

Exercises the exporter and parser together across the whole gate registry,
random control patterns, parameters, measurements and barriers.
"""

import math
import random

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuits import QuantumCircuit, parse_qasm
from repro.simulators import DDBackend, execute_circuit

NUM_QUBITS = 4

FIXED = ("x", "y", "z", "h", "s", "sdg", "t", "tdg")
PARAM1 = ("rx", "ry", "rz", "u1")

angle = st.floats(min_value=-6.25, max_value=6.25, allow_nan=False, width=32)


@st.composite
def operations(draw):
    kind = draw(st.sampled_from(("fixed", "param1", "u3", "controlled", "ccx")))
    target = draw(st.integers(0, NUM_QUBITS - 1))
    if kind == "fixed":
        return (draw(st.sampled_from(FIXED)), (), target, {})
    if kind == "param1":
        return (draw(st.sampled_from(PARAM1)), (draw(angle),), target, {})
    if kind == "u3":
        return ("u3", (draw(angle), draw(angle), draw(angle)), target, {})
    control = draw(st.integers(0, NUM_QUBITS - 1).filter(lambda c: c != target))
    if kind == "controlled":
        name = draw(st.sampled_from(("x", "y", "z", "h", "rz", "u1")))
        params = (draw(angle),) if name in ("rz", "u1") else ()
        return (name, params, target, {control: 1})
    # ccx
    second = draw(
        st.integers(0, NUM_QUBITS - 1).filter(lambda c: c not in (target, control))
    )
    return ("x", (), target, {control: 1, second: 1})


@st.composite
def circuits(draw):
    circuit = QuantumCircuit(NUM_QUBITS, NUM_QUBITS)
    for name, params, target, controls in draw(
        st.lists(operations(), min_size=1, max_size=12)
    ):
        circuit.gate(name, target, params, controls=controls or None)
    if draw(st.booleans()):
        circuit.barrier()
    return circuit


@settings(max_examples=40, deadline=None)
@given(circuit=circuits())
def test_qasm_roundtrip_preserves_operations(circuit):
    reparsed = parse_qasm(circuit.to_qasm())
    assert reparsed.num_qubits == circuit.num_qubits
    assert reparsed.gate_operations() == circuit.gate_operations()


@settings(max_examples=25, deadline=None)
@given(circuit=circuits())
def test_qasm_roundtrip_preserves_state(circuit):
    reparsed = parse_qasm(circuit.to_qasm())
    original = DDBackend(NUM_QUBITS)
    round_tripped = DDBackend(NUM_QUBITS)
    execute_circuit(original, circuit, random.Random(0))
    execute_circuit(round_tripped, reparsed, random.Random(0))
    assert np.allclose(
        original.statevector(), round_tripped.statevector(), atol=1e-9
    )
