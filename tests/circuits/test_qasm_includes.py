"""Tests for OpenQASM file-include splicing (non-qelib includes)."""

import random

import pytest

from repro.circuits import parse_qasm, parse_qasm_file
from repro.circuits.qasm import QasmParserError
from repro.simulators import DDBackend, execute_circuit


class TestFileIncludes:
    def test_include_of_gate_definitions(self, tmp_path):
        library = tmp_path / "mygates.inc"
        library.write_text(
            "gate bell a, b { h a; cx a, b; }\n", encoding="utf-8"
        )
        main_file = tmp_path / "main.qasm"
        main_file.write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\ninclude "mygates.inc";\n'
            "qreg q[2];\nbell q[0], q[1];\n",
            encoding="utf-8",
        )
        circuit = parse_qasm_file(str(main_file))
        assert circuit.count_ops() == {"h": 1, "cx": 1}

    def test_included_file_with_own_header(self, tmp_path):
        library = tmp_path / "withheader.inc"
        library.write_text(
            "OPENQASM 2.0;\ngate pair a, b { cx a, b; }\n", encoding="utf-8"
        )
        main_file = tmp_path / "main.qasm"
        main_file.write_text(
            'OPENQASM 2.0;\ninclude "withheader.inc";\nqreg q[2];\npair q[0], q[1];\n',
            encoding="utf-8",
        )
        circuit = parse_qasm_file(str(main_file))
        assert circuit.count_ops() == {"cx": 1}

    def test_include_resolved_relative_to_source(self, tmp_path):
        subdir = tmp_path / "lib"
        subdir.mkdir()
        (subdir / "inner.inc").write_text("gate g a { x a; }\n", encoding="utf-8")
        main_file = subdir / "main.qasm"
        main_file.write_text(
            'OPENQASM 2.0;\ninclude "inner.inc";\nqreg q[1];\ng q[0];\n',
            encoding="utf-8",
        )
        circuit = parse_qasm_file(str(main_file))
        assert circuit.count_ops() == {"x": 1}

    def test_missing_include_without_path_context(self):
        with pytest.raises(QasmParserError, match="cannot resolve"):
            parse_qasm('OPENQASM 2.0;\ninclude "nowhere.inc";\nqreg q[1];')

    def test_included_semantics_simulate(self, tmp_path):
        library = tmp_path / "prep.inc"
        library.write_text(
            "gate prep a, b { h a; cx a, b; x b; }\n", encoding="utf-8"
        )
        main_file = tmp_path / "main.qasm"
        main_file.write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\ninclude "prep.inc";\n'
            "qreg q[2];\nprep q[0], q[1];\n",
            encoding="utf-8",
        )
        circuit = parse_qasm_file(str(main_file))
        backend = DDBackend(2)
        execute_circuit(backend, circuit, random.Random(0))
        # (|01> + |10>)/sqrt(2)
        assert backend.probability_of_basis([0, 1]) == pytest.approx(0.5)
        assert backend.probability_of_basis([1, 0]) == pytest.approx(0.5)
