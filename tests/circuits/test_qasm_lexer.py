"""Unit tests for the OpenQASM lexer."""

import pytest

from repro.circuits.qasm.lexer import QasmLexerError, tokenize


class TestTokenKinds:
    def test_keywords(self):
        tokens = tokenize("OPENQASM qreg creg gate measure barrier if pi include opaque reset")
        assert all(token.kind == "KEYWORD" for token in tokens)

    def test_identifiers(self):
        tokens = tokenize("foo bar_baz q0 _x")
        assert [t.kind for t in tokens] == ["ID"] * 4

    def test_integers_and_reals(self):
        tokens = tokenize("42 3.14 .5 2. 1e5 1.5e-3 2E+4")
        kinds = [t.kind for t in tokens]
        assert kinds == ["INT", "REAL", "REAL", "REAL", "REAL", "REAL", "REAL"]

    def test_string_strips_quotes(self):
        (token,) = tokenize('"qelib1.inc"')
        assert token.kind == "STRING"
        assert token.text == "qelib1.inc"

    def test_arrow_and_equality(self):
        tokens = tokenize("-> ==")
        assert [t.kind for t in tokens] == ["ARROW", "EQ"]

    def test_symbols(self):
        tokens = tokenize("{ } ( ) [ ] ; , + - * / ^")
        assert all(t.kind == "SYMBOL" for t in tokens)

    def test_split_arrow_is_invalid(self):
        # "- >" is not an arrow; the stray '>' is not a legal token at all.
        with pytest.raises(QasmLexerError):
            tokenize("a - > b")


class TestCommentsAndWhitespace:
    def test_line_comments_skipped(self):
        tokens = tokenize("x q[0]; // apply x\ny q[1];")
        texts = [t.text for t in tokens]
        assert "apply" not in texts

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].column == 3

    def test_empty_source(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \n\t \n") == []


class TestErrors:
    def test_illegal_character(self):
        with pytest.raises(QasmLexerError, match="unexpected character"):
            tokenize("x q[0]; @")

    def test_error_reports_position(self):
        with pytest.raises(QasmLexerError, match="2:1"):
            tokenize("x q;\n$")
