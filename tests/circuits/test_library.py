"""Functional tests for the benchmark circuit library.

Each generator is checked for the *algorithmic* property it implements
(adders add, Grover finds the marked state, QPE reads the phase, ...), not
just for structural counts — these circuits are the paper's workloads, so
their semantics must be right for the tables to mean anything.
"""

import math
import random

import numpy as np
import pytest

from repro.circuits.library import (
    QASMBENCH_CIRCUITS,
    basis_trotter,
    bernstein_vazirani,
    bigadder,
    counterfeit_coin,
    ghz,
    grover,
    ising,
    multiplier,
    qasmbench_circuit,
    qft,
    qpe,
    random_circuit,
    ripple_carry_adder,
    sat,
    seca,
    vqe_uccsd,
    w_state,
)
from repro.simulators import DDBackend, execute_circuit


def final_state(circuit, seed=0):
    backend = DDBackend(circuit.num_qubits)
    result = execute_circuit(backend, circuit, random.Random(seed))
    return backend.statevector(), result


class TestGHZ:
    @pytest.mark.parametrize("n", [1, 2, 5, 10])
    def test_ghz_state(self, n):
        vector, _ = final_state(ghz(n))
        expected = np.zeros(2**n, dtype=complex)
        expected[0] = expected[-1] = 1 / math.sqrt(2)
        if n == 1:
            expected = np.array([1, 1]) / math.sqrt(2)
        assert np.allclose(vector, expected)

    def test_measure_flag(self):
        circuit = ghz(3, measure=True)
        assert "measure" in circuit.count_ops()


class TestQFT:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_qft_matches_dft_matrix(self, n):
        """QFT|k> must equal the DFT column for every basis input."""
        size = 2**n
        omega = np.exp(2j * math.pi / size)
        dft = np.array(
            [[omega ** (row * col) / math.sqrt(size) for col in range(size)] for row in range(size)]
        )
        for k in range(size):
            circuit = qft(n)
            prep = ghz(n).copy()  # reuse builder for X prep
            from repro.circuits import QuantumCircuit

            full = QuantumCircuit(n)
            for qubit in range(n):
                if (k >> (n - 1 - qubit)) & 1:
                    full.x(qubit)
            full.extend(circuit)
            vector, _ = final_state(full)
            assert np.allclose(vector, dft[:, k], atol=1e-9), f"k={k}"

    def test_inverse_qft_roundtrip(self):
        from repro.circuits import QuantumCircuit
        from repro.circuits.library import inverse_qft

        full = QuantumCircuit(4)
        full.x(1).x(3)
        full.extend(qft(4))
        full.extend(inverse_qft(4))
        vector, _ = final_state(full)
        assert vector[0b0101] == pytest.approx(1.0)


class TestBernsteinVazirani:
    def test_recovers_secret(self):
        secret = [1, 0, 0, 1, 1]
        circuit = bernstein_vazirani(6, secret=secret)
        _, result = final_state(circuit)
        assert result.classical_bits == secret

    def test_default_secret_alternating(self):
        circuit = bernstein_vazirani(5)
        _, result = final_state(circuit)
        assert result.classical_bits == [1, 0, 1, 0]

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            bernstein_vazirani(1)
        with pytest.raises(ValueError):
            bernstein_vazirani(4, secret=[1, 1])


class TestAdders:
    @pytest.mark.parametrize(
        "bits,a,b", [(2, 1, 2), (3, 5, 3), (4, 9, 11), (4, 15, 15)]
    )
    def test_ripple_carry_adds(self, bits, a, b):
        circuit = ripple_carry_adder(bits, a_value=a, b_value=b)
        _, result = final_state(circuit)
        assert result.classical_value() == a + b

    def test_bigadder_default(self):
        circuit = bigadder(18)
        assert circuit.num_qubits == 18
        _, result = final_state(circuit)
        assert result.classical_value() == 170 + 85

    def test_bigadder_width_validation(self):
        with pytest.raises(ValueError):
            bigadder(7)

    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (3, 5), (7, 7), (2, 6)])
    def test_multiplier_3bit(self, a, b):
        circuit = multiplier(3, a_value=a, b_value=b)
        assert circuit.num_qubits == 15
        _, result = final_state(circuit)
        assert result.classical_value() == a * b

    @pytest.mark.parametrize("a,b", [(0, 1), (1, 2), (3, 3), (2, 3)])
    def test_multiplier_2bit(self, a, b):
        circuit = multiplier(2, a_value=a, b_value=b)
        _, result = final_state(circuit)
        assert result.classical_value() == a * b


class TestGroverAndSat:
    def test_grover_finds_marked_state(self):
        circuit = grover(4, marked=0b1011)
        _, result = final_state(circuit)
        assert result.classical_value() is not None
        bits = result.classical_bits
        value = sum(bit << (4 - 1 - q) for q, bit in enumerate(bits))
        assert value == 0b1011

    def test_grover_success_probability_high(self):
        circuit = grover(4, marked=3, measure=False)
        vector, _ = final_state(circuit)
        assert abs(vector[3]) ** 2 > 0.9

    def test_sat_width(self):
        circuit = sat(11)
        assert circuit.num_qubits == 11

    def test_sat_amplifies_satisfying_assignments(self):
        """After one Grover iteration, satisfying assignments must hold more
        probability mass than uniform."""
        clauses = (((0, True), (1, True)), ((0, False), (2, True)))
        circuit = sat(6, clauses=clauses, iterations=1, measure=False)
        vector, _ = final_state(circuit)
        num_vars = 3

        def satisfies(assignment):
            def literal(variable, positive):
                bit = (assignment >> (num_vars - 1 - variable)) & 1
                return bool(bit) == positive

            return all(any(literal(v, pos) for v, pos in clause) for clause in clauses)

        # Marginal over the variable qubits (first 3 qubits = most significant).
        probabilities = np.abs(vector) ** 2
        mass = np.zeros(8)
        for index, probability in enumerate(probabilities):
            mass[index >> 3] += probability
        satisfying = [a for a in range(8) if satisfies(a)]
        for assignment in satisfying:
            assert mass[assignment] > 1.0 / 8.0

    def test_sat_clause_variable_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            sat(11, clauses=(((10, True),),))

    def test_sat_too_few_variables_rejected(self):
        with pytest.raises(ValueError, match="at least 2 variable"):
            sat(4, clauses=(((0, True),), ((0, False),), ((0, True),)))


class TestSeca:
    @pytest.mark.parametrize("error_kind", ["x", "y", "z"])
    @pytest.mark.parametrize("error_qubit", [0, 4, 8])
    def test_code_corrects_single_errors(self, error_kind, error_qubit):
        """With any single Pauli error injected, the decoded qubit must hold
        the original logical state: P(q0 = 1) == sin^2(theta/2)."""
        theta = math.pi / 3
        circuit = seca(11, theta=theta, error_qubit=error_qubit, error_kind=error_kind, measure=False)
        backend = DDBackend(11)
        execute_circuit(backend, circuit, random.Random(0))
        # After the Bell check, q0's marginal still reflects the logical state.
        expected = math.sin(theta / 2) ** 2
        assert backend.probability_of_one(0) == pytest.approx(expected, abs=1e-9)

    def test_no_error_case(self):
        circuit = seca(11, error_qubit=None, measure=False)
        backend = DDBackend(11)
        execute_circuit(backend, circuit, random.Random(0))
        assert backend.probability_of_one(0) == pytest.approx(
            math.sin(math.pi / 6) ** 2, abs=1e-9
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            seca(9)
        with pytest.raises(ValueError):
            seca(11, error_qubit=9)
        with pytest.raises(ValueError):
            seca(11, error_kind="w")


class TestCounterfeitCoin:
    @pytest.mark.parametrize("false_coin", [0, 3, 6])
    def test_finds_false_coin_with_high_probability(self, false_coin):
        circuit = counterfeit_coin(8, false_coin=false_coin)
        hits = 0
        trials = 40
        for seed in range(trials):
            _, result = final_state(circuit, seed=seed)
            coin_bits = result.classical_bits[1:]
            if (
                sum(coin_bits) == 1
                and coin_bits[false_coin] == 1
            ):
                hits += 1
        # The balanced branch (probability 1/2) reveals the coin exactly.
        assert hits >= trials * 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            counterfeit_coin(2)
        with pytest.raises(ValueError):
            counterfeit_coin(8, false_coin=7)


class TestStructuredGenerators:
    def test_ising_width_and_gates(self):
        circuit = ising(10, steps=3)
        assert circuit.num_qubits == 10
        counts = circuit.count_ops()
        assert counts["cx"] == 2 * 9 * 3
        assert counts["rx"] == 10 * 3

    def test_vqe_uccsd_has_excitations(self):
        circuit = vqe_uccsd(6)
        counts = circuit.count_ops()
        assert counts["x"] == 3  # Hartree-Fock occupation
        assert counts["cx"] > 100  # CNOT ladders
        assert counts["rz"] > 20

    def test_vqe_uccsd_deterministic(self):
        a = vqe_uccsd(6, seed=5)
        b = vqe_uccsd(6, seed=5)
        assert a.operations == b.operations

    def test_basis_trotter_gate_count_class(self):
        circuit = basis_trotter(4)
        assert circuit.num_qubits == 4
        assert 400 <= circuit.num_gates() <= 4000

    def test_w_state(self):
        vector, _ = final_state(w_state(4))
        expected_mass = {0b1000, 0b0100, 0b0010, 0b0001}
        for index in range(16):
            target = 0.25 if index in expected_mass else 0.0
            assert abs(vector[index]) ** 2 == pytest.approx(target, abs=1e-9)

    @pytest.mark.parametrize("phase,precision", [(0.5, 3), (0.25, 4), (0.6875, 4)])
    def test_qpe_reads_dyadic_phase(self, phase, precision):
        circuit = qpe(precision, phase)
        _, result = final_state(circuit)
        assert result.classical_value() == int(round(phase * 2**precision)) % 2**precision

    def test_random_circuit_deterministic_by_seed(self):
        a = random_circuit(4, 8, seed=3)
        b = random_circuit(4, 8, seed=3)
        assert a.operations == b.operations

    def test_random_circuit_seeds_differ(self):
        a = random_circuit(4, 8, seed=3)
        b = random_circuit(4, 8, seed=4)
        assert a.operations != b.operations


class TestQasmbenchRegistry:
    def test_all_registered_circuits_have_paper_widths(self):
        for name, (qubits, generator) in QASMBENCH_CIRCUITS.items():
            circuit = generator()
            assert circuit.num_qubits == qubits, name

    def test_lookup_helper(self):
        circuit = qasmbench_circuit("bv")
        assert circuit.num_qubits == 19

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown QASMBench circuit"):
            qasmbench_circuit("nope")
