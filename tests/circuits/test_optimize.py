"""Tests for the single-qubit gate-fusion pass."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import QuantumCircuit, gates
from repro.circuits.library import random_circuit
from repro.circuits.optimize import fuse_single_qubit_runs, matrix_to_u3_params
from repro.simulators import DDBackend, execute_circuit

from ..conftest import random_unitary


def states_equal_up_to_phase(a, b, atol=1e-9):
    overlap = np.vdot(a, b)
    return abs(abs(overlap) - 1.0) < atol


def simulate(circuit, seed=0):
    backend = DDBackend(circuit.num_qubits)
    execute_circuit(backend, circuit, random.Random(seed))
    return backend.statevector()


class TestU3Decomposition:
    @pytest.mark.parametrize(
        "matrix",
        [gates.X, gates.Y, gates.Z, gates.H, gates.S, gates.T, gates.SX,
         gates.rx(0.7), gates.ry(-1.3), gates.rz(2.2), gates.u2(0.4, -0.9)],
        ids=["x", "y", "z", "h", "s", "t", "sx", "rx", "ry", "rz", "u2"],
    )
    def test_standard_gates_round_trip(self, matrix):
        theta, phi, lam = matrix_to_u3_params(matrix)
        rebuilt = gates.u3(theta, phi, lam)
        # Equal up to global phase.
        ratio = None
        for row in range(2):
            for col in range(2):
                if abs(matrix[row, col]) > 1e-9:
                    ratio = rebuilt[row, col] / matrix[row, col]
                    break
            if ratio is not None:
                break
        assert ratio is not None
        assert np.allclose(rebuilt, ratio * matrix, atol=1e-9)
        assert abs(abs(ratio) - 1.0) < 1e-9

    def test_random_unitaries_round_trip(self, np_rng):
        for _ in range(20):
            matrix = random_unitary(np_rng)
            theta, phi, lam = matrix_to_u3_params(matrix)
            rebuilt = gates.u3(theta, phi, lam)
            product = rebuilt @ matrix.conj().T
            # Must be a global phase times identity.
            assert abs(abs(product[0, 0]) - 1.0) < 1e-9
            assert np.allclose(product, product[0, 0] * np.eye(2), atol=1e-9)

    def test_identity(self):
        theta, phi, lam = matrix_to_u3_params(np.eye(2))
        assert theta == 0.0

    def test_non_2x2_rejected(self):
        with pytest.raises(ValueError):
            matrix_to_u3_params(np.eye(4))


class TestFusion:
    def test_run_fuses_to_single_u3(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).t(0).h(0).s(0)
        fused = fuse_single_qubit_runs(circuit)
        assert fused.num_gates() == 1
        assert fused.gate_operations()[0].name == "u3"

    def test_singleton_runs_kept_verbatim(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).h(1)
        fused = fuse_single_qubit_runs(circuit)
        assert [op.name for op in fused.gate_operations()] == ["h", "x", "h"]

    def test_fusion_blocked_by_controlled_gate(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).t(0)
        fused = fuse_single_qubit_runs(circuit)
        # h and t cannot merge across the CX on qubit 0.
        assert fused.num_gates() == 3

    def test_fusion_blocked_by_measurement(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0).h(0)
        fused = fuse_single_qubit_runs(circuit)
        assert fused.num_gates() == 2

    def test_independent_qubits_fuse_separately(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1).t(0).t(1)
        fused = fuse_single_qubit_runs(circuit)
        assert fused.num_gates() == 2
        targets = {op.target for op in fused.gate_operations()}
        assert targets == {0, 1}

    def test_barrier_flushes(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).barrier().t(0)
        fused = fuse_single_qubit_runs(circuit)
        assert fused.num_gates() == 2

    @pytest.mark.parametrize("seed", range(5))
    def test_fusion_preserves_noiseless_semantics(self, seed):
        circuit = random_circuit(4, 15, seed=seed, two_qubit_probability=0.25)
        fused = fuse_single_qubit_runs(circuit)
        assert fused.num_gates() <= circuit.num_gates()
        assert states_equal_up_to_phase(simulate(circuit), simulate(fused))

    def test_original_untouched(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).t(0)
        before = len(circuit)
        fuse_single_qubit_runs(circuit)
        assert len(circuit) == before

    def test_fused_circuit_name(self):
        circuit = QuantumCircuit(1, name="foo")
        assert fuse_single_qubit_runs(circuit).name == "foo_fused"

    def test_deep_rotation_chain_collapses(self):
        circuit = QuantumCircuit(1)
        for k in range(50):
            circuit.rz(0.1, 0)
            circuit.rx(0.05, 0)
        fused = fuse_single_qubit_runs(circuit)
        assert fused.num_gates() == 1
        assert states_equal_up_to_phase(simulate(circuit), simulate(fused))
