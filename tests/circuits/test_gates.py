"""Unit tests for the standard gate registry."""

import cmath
import math

import numpy as np
import pytest

from repro.circuits import gates


ALL_FIXED = sorted(gates.FIXED_GATES)
ALL_PARAMETRIC = sorted(gates.PARAMETRIC_GATES)


class TestFixedGates:
    @pytest.mark.parametrize("name", ALL_FIXED)
    def test_all_fixed_gates_unitary(self, name):
        matrix = gates.gate_matrix(name)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(2))

    def test_x_is_not(self):
        assert np.allclose(gates.X, [[0, 1], [1, 0]])

    def test_y_equals_ixz(self):
        assert np.allclose(gates.Y, 1j * gates.X @ gates.Z)

    def test_h_squares_to_identity(self):
        assert np.allclose(gates.H @ gates.H, np.eye(2))

    def test_s_squares_to_z(self):
        assert np.allclose(gates.S @ gates.S, gates.Z)

    def test_t_squares_to_s(self):
        assert np.allclose(gates.T @ gates.T, gates.S)

    def test_sx_squares_to_x(self):
        assert np.allclose(gates.SX @ gates.SX, gates.X)

    def test_daggers(self):
        assert np.allclose(gates.SDG, gates.S.conj().T)
        assert np.allclose(gates.TDG, gates.T.conj().T)
        assert np.allclose(gates.SXDG, gates.SX.conj().T)

    def test_fixed_gate_rejects_params(self):
        with pytest.raises(ValueError):
            gates.gate_matrix("x", [0.5])


class TestParametricGates:
    @pytest.mark.parametrize("name", ALL_PARAMETRIC)
    def test_all_parametric_gates_unitary(self, name):
        arity, _ = gates.PARAMETRIC_GATES[name]
        matrix = gates.gate_matrix(name, [0.37 * (i + 1) for i in range(arity)])
        assert np.allclose(matrix @ matrix.conj().T, np.eye(2))

    def test_rx_pi_is_minus_i_x(self):
        assert np.allclose(gates.rx(math.pi), -1j * gates.X)

    def test_ry_pi_is_minus_i_y(self):
        assert np.allclose(gates.ry(math.pi), -1j * gates.Y)

    def test_rz_pi_is_minus_i_z(self):
        assert np.allclose(gates.rz(math.pi), -1j * gates.Z)

    def test_rotation_composition(self):
        assert np.allclose(gates.rx(0.3) @ gates.rx(0.4), gates.rx(0.7))

    def test_phase_gate(self):
        matrix = gates.phase(math.pi / 2)
        assert np.allclose(matrix, gates.S)

    def test_u3_special_cases(self):
        # u3(0, 0, lambda) == u1(lambda)
        assert np.allclose(gates.u3(0, 0, 0.7), gates.phase(0.7))
        # u3(pi/2, phi, lambda) == u2(phi, lambda)
        assert np.allclose(gates.u3(math.pi / 2, 0.3, 0.7), gates.u2(0.3, 0.7))

    def test_u2_hadamard(self):
        # u2(0, pi) == H up to nothing — exactly H.
        assert np.allclose(gates.u2(0, math.pi), gates.H)

    def test_parameter_arity_enforced(self):
        with pytest.raises(ValueError):
            gates.gate_matrix("rz", [])
        with pytest.raises(ValueError):
            gates.gate_matrix("u3", [1.0, 2.0])

    def test_unknown_gate_raises_keyerror(self):
        with pytest.raises(KeyError):
            gates.gate_matrix("quantum_supremacy")

    def test_is_known_gate(self):
        assert gates.is_known_gate("h")
        assert gates.is_known_gate("u3")
        assert not gates.is_known_gate("nope")

    def test_rz_phase_convention_symmetric(self):
        matrix = gates.rz(0.8)
        assert matrix[0, 0] == pytest.approx(cmath.exp(-0.4j))
        assert matrix[1, 1] == pytest.approx(cmath.exp(0.4j))
