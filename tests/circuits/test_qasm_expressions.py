"""Unit tests for the OpenQASM parameter-expression AST."""

import math

import pytest

from repro.circuits.qasm.expressions import (
    Binary,
    FunctionCall,
    Number,
    Parameter,
    QasmExpressionError,
    Unary,
)


class TestEvaluation:
    def test_number(self):
        assert Number(2.5).evaluate({}) == 2.5

    def test_parameter_binding(self):
        assert Parameter("theta").evaluate({"theta": 0.7}) == 0.7

    def test_unbound_parameter_raises(self):
        with pytest.raises(QasmExpressionError, match="unbound"):
            Parameter("theta").evaluate({})

    @pytest.mark.parametrize(
        "op,expected",
        [("+", 5.0), ("-", 1.0), ("*", 6.0), ("/", 1.5), ("^", 9.0)],
    )
    def test_binary_operators(self, op, expected):
        expression = Binary(op, Number(3.0), Number(2.0))
        assert expression.evaluate({}) == pytest.approx(expected)

    def test_division_by_zero(self):
        with pytest.raises(QasmExpressionError, match="division by zero"):
            Binary("/", Number(1.0), Number(0.0)).evaluate({})

    def test_unary_negation(self):
        assert Unary(Number(4.0)).evaluate({}) == -4.0

    def test_nested_expression(self):
        # -(theta / 2) + pi
        expression = Binary(
            "+",
            Unary(Binary("/", Parameter("theta"), Number(2.0))),
            Number(math.pi),
        )
        assert expression.evaluate({"theta": 1.0}) == pytest.approx(math.pi - 0.5)

    @pytest.mark.parametrize(
        "name,arg,expected",
        [
            ("sin", math.pi / 2, 1.0),
            ("cos", 0.0, 1.0),
            ("tan", 0.0, 0.0),
            ("exp", 1.0, math.e),
            ("ln", math.e, 1.0),
            ("sqrt", 9.0, 3.0),
        ],
    )
    def test_functions(self, name, arg, expected):
        assert FunctionCall(name, Number(arg)).evaluate({}) == pytest.approx(expected)

    def test_unknown_function(self):
        with pytest.raises(QasmExpressionError, match="unknown function"):
            FunctionCall("sinh", Number(0.0)).evaluate({})


class TestImmutability:
    def test_nodes_are_frozen(self):
        node = Number(1.0)
        with pytest.raises(Exception):
            node.value = 2.0

    def test_nodes_hashable(self):
        assert hash(Number(1.0)) == hash(Number(1.0))
        assert hash(Parameter("a")) == hash(Parameter("a"))
