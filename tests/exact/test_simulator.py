"""ExactSimulator result envelope, limits, and statistical consistency."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.library import ghz, qft
from repro.errors import ResourceLimitError
from repro.exact import DensityDDBackend, ExactSimulator, simulate_exact
from repro.noise import NoiseModel
from repro.stochastic import (
    BasisProbability,
    ClassicalOutcome,
    ExpectationZ,
    IdealFidelity,
    StochasticResult,
    simulate_stochastic,
)

PAPER_NOISE = NoiseModel.paper_defaults()


class TestResultEnvelope:
    """An exact result must be a drop-in StochasticResult."""

    def test_exact_result_shape(self):
        result = simulate_exact(
            ghz(4), PAPER_NOISE, [BasisProbability("0000"), IdealFidelity()]
        )
        assert result.method == "exact"
        assert result.backend_kind == "dd"
        assert result.completed_trajectories == 0
        assert result.peak_nodes > 0
        for estimate in result.estimates.values():
            assert estimate.exact
            assert estimate.count == 1
            assert estimate.hoeffding_halfwidth() == 0.0
            assert estimate.std_error == 0.0
            assert estimate.variance == 0.0

    def test_exact_flag_survives_serialisation(self):
        result = simulate_exact(ghz(3), PAPER_NOISE, [BasisProbability("000")])
        clone = StochasticResult.from_dict(result.to_dict())
        assert clone.method == "exact"
        estimate = clone.estimates["P(|000>)"]
        assert estimate.exact
        assert estimate.hoeffding_halfwidth() == 0.0
        assert clone.mean("P(|000>)") == result.mean("P(|000>)")

    def test_summary_reports_exact_method(self):
        result = simulate_exact(ghz(3), PAPER_NOISE, [BasisProbability("000")])
        summary = result.summary()
        assert "exact density-matrix method" in summary
        assert "halfwidth 0" in summary

    def test_exact_metrics_counters_present(self):
        result = simulate_exact(ghz(3), PAPER_NOISE, [BasisProbability("000")])
        counters = result.metrics["counters"]
        assert counters["exact.superop_applications"] > 0
        gauges = result.metrics["gauges"]
        assert gauges["exact.peak_rho_nodes"] == result.peak_nodes

    def test_noiseless_run(self):
        result = simulate_exact(ghz(3), None, [BasisProbability("000")])
        assert result.mean("P(|000>)") == pytest.approx(0.5, abs=1e-12)


class TestUnsupportedSpecs:
    def test_classical_outcome_rejected(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        with pytest.raises(ValueError, match="unsupported"):
            simulate_exact(circuit, PAPER_NOISE, [ClassicalOutcome(1)])

    def test_conditioned_gate_rejected(self):
        from repro.circuits.operations import ClassicalCondition

        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        circuit.gate("x", 0, condition=ClassicalCondition((0,), 1))
        with pytest.raises(ValueError, match="condition"):
            simulate_exact(circuit, PAPER_NOISE, [ExpectationZ(0)])

    def test_bad_channel_mode_rejected(self):
        with pytest.raises(ValueError, match="channel_mode"):
            ExactSimulator(channel_mode="dense")


class TestNodeCeiling:
    def test_ceiling_trips_with_structured_error(self):
        with pytest.raises(ResourceLimitError) as excinfo:
            simulate_exact(
                qft(5), PAPER_NOISE, [ExpectationZ(0)], node_ceiling=3
            )
        error = excinfo.value
        assert error.nodes is not None and error.nodes > 3
        assert error.ceiling == 3
        assert error.qubits == 5

    def test_env_ceiling_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXACT_NODE_CEILING", "3")
        with pytest.raises(ResourceLimitError):
            simulate_exact(qft(5), PAPER_NOISE, [ExpectationZ(0)])

    def test_bad_env_ceiling_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXACT_NODE_CEILING", "0")
        with pytest.raises(ValueError, match="REPRO_EXACT_NODE_CEILING"):
            ExactSimulator()

    def test_dense_backend_cap_names_resources(self):
        from repro.simulators.density_matrix import DensityMatrixSimulator

        with pytest.raises(ResourceLimitError) as excinfo:
            DensityMatrixSimulator(20)
        error = excinfo.value
        assert error.qubits == 20
        assert error.estimated_bytes == (2**20) ** 2 * 16
        assert "repro.exact" in str(error)


class TestHoeffdingContainment:
    """The stochastic interval must contain the exact value (paper noise).

    ``damping_mode="exact"`` keeps per-trajectory amplitude damping
    unbiased, so the 95% Hoeffding interval around the Monte-Carlo mean
    is a valid confidence interval for the exact expectation.
    """

    @pytest.mark.parametrize(
        "circuit", [ghz(4), ghz(6), qft(4)], ids=["ghz4", "ghz6", "qft4"]
    )
    def test_interval_contains_exact_value(self, circuit):
        model = NoiseModel.paper_defaults(damping_mode="exact")
        n = circuit.num_qubits
        properties = [BasisProbability("0" * n), IdealFidelity()]
        exact = simulate_exact(circuit, model, properties)
        sampled = simulate_stochastic(
            circuit, model, properties, trajectories=600, seed=11
        )
        for name, estimate in sampled.estimates.items():
            halfwidth = estimate.hoeffding_halfwidth()
            truth = exact.estimates[name].mean
            assert abs(estimate.mean - truth) <= halfwidth, (
                f"{name}: |{estimate.mean} - {truth}| > {halfwidth}"
            )


class TestBackendReadout:
    def test_probabilities_and_purity(self):
        backend = DensityDDBackend(2)
        try:
            h = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
            backend.apply_gate(h, 0, {})
            x = np.array([[0, 1], [1, 0]], dtype=complex)
            backend.apply_gate(x, 1, {0: 1})
            assert backend.trace() == pytest.approx(1.0, abs=1e-12)
            assert backend.purity() == pytest.approx(1.0, abs=1e-12)
            assert backend.probability_of_basis([0, 0]) == pytest.approx(0.5)
            assert backend.probability_of_basis([1, 1]) == pytest.approx(0.5)
            assert backend.probability_of_one(0) == pytest.approx(0.5)
            # A non-selective measurement mixes the state: purity drops.
            backend.dephase_measure(0)
            assert backend.purity() == pytest.approx(0.5, abs=1e-12)
            assert backend.probability_of_one(0) == pytest.approx(0.5)
        finally:
            backend.release()
