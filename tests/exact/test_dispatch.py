"""Hybrid scheduler dispatch: routing, fallback, spec/status plumbing."""

import json

import pytest

from repro.circuits.library import ghz
from repro.errors import SchedulerError
from repro.noise import NoiseModel
from repro.service import JobSpec, JobState, ResultStore, Scheduler
from repro.stochastic import BasisProbability, ClassicalOutcome, ExpectationZ

PAPER_NOISE = NoiseModel.paper_defaults()


def spec_for(n=3, trajectories=50, method="stochastic", **overrides) -> JobSpec:
    return JobSpec.build(
        ghz(n),
        PAPER_NOISE,
        [BasisProbability("0" * n), ExpectationZ(0)],
        trajectories=trajectories,
        seed=9,
        **overrides,
        method=method,
    )


class TestJobSpecMethod:
    def test_default_method_keeps_job_keys_stable(self):
        """Pre-hybrid specs must hash identically: no cache invalidation."""
        spec = spec_for()
        assert "method" not in spec.to_dict()
        data = json.loads(spec.canonical_json())
        assert "method" not in data
        clone = JobSpec.from_dict(spec.to_dict())
        assert clone.method == "stochastic"
        assert clone.job_key() == spec.job_key()

    def test_non_default_method_round_trips_and_changes_key(self):
        exact = spec_for(method="exact")
        assert exact.to_dict()["method"] == "exact"
        assert JobSpec.from_dict(exact.to_dict()).method == "exact"
        assert exact.job_key() != spec_for().job_key()

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            spec_for(method="dense")


class TestSchedulerRouting:
    def test_forced_exact_completes_with_exact_result(self):
        with Scheduler(workers=1) as scheduler:
            result = scheduler.run(spec_for(method="exact"), timeout=60)
            assert result.method == "exact"
            assert result.completed_trajectories == 0
            for estimate in result.estimates.values():
                assert estimate.exact
                assert estimate.hoeffding_halfwidth() == 0.0
            counters = scheduler.metrics_snapshot()["counters"]
            assert counters["dispatch.exact"] == 1
            assert counters["dispatch.stochastic"] == 0

    def test_auto_routes_one_job_each_way(self, monkeypatch):
        """The acceptance path: real JobSpecs land on both sides.

        Pinned with the stratified budget off: with it on (the default),
        the stochastic side shrinks by ``(1 - p_clean)^2`` and worst-case
        exact no longer wins at 50k trajectories (see test_cost.py).
        """
        monkeypatch.setenv("REPRO_STRATIFIED", "off")
        with Scheduler(workers=1) as scheduler:
            # Tiny trajectory budget: sampling is cheaper than 4^n evolution.
            cheap = scheduler.run(spec_for(trajectories=50, method="auto"), timeout=60)
            assert cheap.method == "stochastic"
            assert cheap.completed_trajectories == 50
            # Huge budget: one exact pass beats 50k trajectories.
            big = scheduler.run(
                spec_for(trajectories=50_000, method="auto"), timeout=60
            )
            assert big.method == "exact"
            counters = scheduler.metrics_snapshot()["counters"]
            assert counters["dispatch.exact"] == 1
            assert counters["dispatch.stochastic"] == 1
            assert counters["dispatch.fallback"] == 0

    def test_forced_exact_on_unsupported_spec_fails_submit(self):
        spec = JobSpec.build(
            ghz(3),
            PAPER_NOISE,
            [ClassicalOutcome(0)],
            trajectories=10,
            method="exact",
        )
        with Scheduler(workers=1) as scheduler:
            with pytest.raises(SchedulerError, match="unsupported"):
                scheduler.submit(spec)

    def test_auto_with_unsupported_property_samples(self):
        spec = JobSpec.build(
            ghz(3),
            PAPER_NOISE,
            [ClassicalOutcome(0)],
            trajectories=20,
            method="auto",
        )
        with Scheduler(workers=1) as scheduler:
            result = scheduler.run(spec, timeout=60)
            assert result.method == "stochastic"
            assert result.completed_trajectories == 20

    def test_status_reports_resolved_method(self):
        with Scheduler(workers=1) as scheduler:
            spec = spec_for(method="exact")
            key = scheduler.submit(spec)
            scheduler.result(key, timeout=60)
            status = scheduler.status(key)
            assert status.method == "exact"
            assert status.state == JobState.COMPLETED
            assert "method: exact" in status.render()
            assert "trajectories:" not in status.render()

    def test_exact_result_is_cached_and_method_survives(self, tmp_path):
        store = ResultStore(directory=str(tmp_path))
        spec = spec_for(method="exact")
        with Scheduler(workers=1, store=store) as first:
            first.run(spec, timeout=60)
        with Scheduler(workers=1, store=store) as second:
            key = second.submit(spec)
            result = second.result(key, timeout=60)
            assert result.method == "exact"
            assert second.status(key).cached
            assert second.status(key).method == "exact"
            # The cache answered; no dispatch decision was re-made.
            counters = second.metrics_snapshot()["counters"]
            assert counters["dispatch.exact"] == 0


class TestNodeCeilingFallback:
    def test_fallback_is_bit_identical_to_pure_stochastic(self):
        """An exact run tripping the ceiling re-runs stochastic, and the
        result matches a never-dispatched-exact job bit for bit."""
        spec = spec_for(n=4, trajectories=60, method="stochastic")
        with Scheduler(workers=2, chunk_size=16) as plain:
            baseline = plain.run(spec, timeout=60)
        forced = spec_for(n=4, trajectories=60, method="exact")
        with Scheduler(workers=2, chunk_size=16, exact_node_ceiling=2) as tripping:
            fallen = tripping.run(forced, timeout=60)
            counters = tripping.metrics_snapshot()["counters"]
            assert counters["dispatch.fallback"] == 1
            assert counters["dispatch.exact"] == 0
            assert tripping.status(forced.job_key()).method == "stochastic"
        assert fallen.method == "stochastic"
        assert fallen.completed_trajectories == baseline.completed_trajectories
        for name, estimate in baseline.estimates.items():
            other = fallen.estimates[name]
            assert (other.total, other.total_squared, other.count) == (
                estimate.total,
                estimate.total_squared,
                estimate.count,
            )
        assert fallen.outcome_counts == baseline.outcome_counts
        assert fallen.errors_fired == baseline.errors_fired

    def test_env_ceiling_reaches_scheduler(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXACT_NODE_CEILING", "2")
        with Scheduler(workers=1) as scheduler:
            assert scheduler.exact_node_ceiling == 2
            result = scheduler.run(spec_for(method="exact"), timeout=60)
            assert result.method == "stochastic"  # fell back


class TestServeQueue:
    def test_query_status_surfaces_method(self, tmp_path):
        from repro.service import enqueue_job
        from repro.service.serve import query_status, serve

        store = ResultStore(directory=str(tmp_path))
        key, cached = enqueue_job(store, spec_for(method="exact"))
        assert not cached
        processed = serve(store, workers=1, once=True, log=lambda *_: None)
        assert processed == 1
        status = query_status(store, key)
        assert status.state == JobState.COMPLETED
        assert status.method == "exact"
        for estimate in status.estimates.values():
            assert estimate.halfwidth == 0.0
