"""Cost model: multiply counting, dispatch boundary, unsupported specs."""

import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.library import ghz
from repro.exact import estimate_costs, exact_unsupported_reason
from repro.exact.cost import count_exact_multiplies
from repro.noise import NoiseModel
from repro.stochastic import BasisProbability, ClassicalOutcome

PAPER_NOISE = NoiseModel.paper_defaults()


class TestUnsupportedReason:
    def test_plain_circuit_supported(self):
        assert exact_unsupported_reason(ghz(3), [BasisProbability("000")]) is None

    def test_classical_outcome_unsupported(self):
        reason = exact_unsupported_reason(ghz(3), [ClassicalOutcome(0)])
        assert reason is not None and "classical" in reason

    def test_conditioned_gate_unsupported(self):
        from repro.circuits.operations import ClassicalCondition

        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        circuit.gate("x", 0, condition=ClassicalCondition((0,), 1))
        reason = exact_unsupported_reason(circuit, [])
        assert reason is not None and "condition" in reason


class TestMultiplyCount:
    def test_noiseless_gates_cost_two_multiplies_each(self):
        circuit = ghz(3)  # 1 H + 2 CX
        assert count_exact_multiplies(circuit, None) == 2 * 3

    def test_noise_adds_kraus_multiplies(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        # Paper stack per touched qubit: depolarizing(4) + damping(2) +
        # phase flip(2) = 8 Kraus terms = 16 multiplies, plus 2 for the gate.
        assert count_exact_multiplies(circuit, PAPER_NOISE) == 2 + 16


class TestDispatchBoundary:
    """exact wins iff 2(1+R) 2^n < M — the paper's trade-off, quantified."""

    def test_small_circuit_large_budget_routes_exact(self):
        decision = estimate_costs(
            ghz(10), PAPER_NOISE, [BasisProbability("0" * 10)], 50_000
        )
        assert decision.method == "exact"
        assert decision.exact_cost < decision.stochastic_cost

    def test_wide_circuit_routes_stochastic(self):
        decision = estimate_costs(
            ghz(12), PAPER_NOISE, [BasisProbability("0" * 12)], 30_000
        )
        assert decision.method == "stochastic"

    def test_small_budget_routes_stochastic(self):
        decision = estimate_costs(
            ghz(4), PAPER_NOISE, [BasisProbability("0000")], 50
        )
        assert decision.method == "stochastic"

    def test_unsupported_spec_routes_stochastic(self):
        decision = estimate_costs(
            ghz(4), PAPER_NOISE, [ClassicalOutcome(0)], 10**9
        )
        assert decision.method == "stochastic"
        assert decision.unsupported_reason is not None

    def test_render_mentions_both_costs(self):
        decision = estimate_costs(
            ghz(4), PAPER_NOISE, [BasisProbability("0000")], 500
        )
        text = decision.render()
        assert "exact" in text and "stochastic" in text
