"""Cost model: multiply counting, budgets, measured evidence, dispatch."""

import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.library import ghz
from repro.exact import estimate_costs, exact_unsupported_reason
from repro.exact.cost import (
    MEASURED_COST_ENV,
    MeasuredCostModel,
    count_exact_multiplies,
    static_clean_probability,
    stochastic_budget,
)
from repro.noise import ErrorRates, NoiseModel
from repro.obs.ledger import FamilyAggregate, circuit_fingerprint
from repro.stochastic import BasisProbability, ClassicalOutcome
from repro.stochastic.strata import STRATIFIED_ENV, stratified_samples

PAPER_NOISE = NoiseModel.paper_defaults()


class TestUnsupportedReason:
    def test_plain_circuit_supported(self):
        assert exact_unsupported_reason(ghz(3), [BasisProbability("000")]) is None

    def test_classical_outcome_unsupported(self):
        reason = exact_unsupported_reason(ghz(3), [ClassicalOutcome(0)])
        assert reason is not None and "classical" in reason

    def test_conditioned_gate_unsupported(self):
        from repro.circuits.operations import ClassicalCondition

        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        circuit.gate("x", 0, condition=ClassicalCondition((0,), 1))
        reason = exact_unsupported_reason(circuit, [])
        assert reason is not None and "condition" in reason


class TestMultiplyCount:
    def test_noiseless_gates_cost_two_multiplies_each(self):
        circuit = ghz(3)  # 1 H + 2 CX
        assert count_exact_multiplies(circuit, None) == 2 * 3

    def test_noise_adds_kraus_multiplies(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        # Paper stack per touched qubit: depolarizing(4) + damping(2) +
        # phase flip(2) = 8 Kraus terms = 16 multiplies, plus 2 for the gate.
        assert count_exact_multiplies(circuit, PAPER_NOISE) == 2 + 16


class TestCrosstalkAccounting:
    """Pin the crosstalk multiply count to what the backend really applies.

    Both the cost model and :class:`DensityDDBackend` charge crosstalk per
    *adjacent* touched-qubit pair — ``zip(qubits, qubits[1:])``, rate
    resolved on the pair's second qubit — with 16 two-qubit Pauli-pair
    Kraus terms (32 multiplies) each.  A 3-qubit gate therefore has two
    crosstalk pairs, not three (no (q0, q2) pair).
    """

    CROSSTALK = NoiseModel(
        default=ErrorRates(crosstalk=0.01),
        noisy_measure=False,
    )

    def test_adjacent_pairs_only(self):
        circuit = QuantumCircuit(3)
        circuit.gate("x", 2, controls={0: 1, 1: 1})  # Toffoli
        # One gate (2) + two adjacent pairs x 32.
        assert count_exact_multiplies(circuit, self.CROSSTALK) == 2 + 2 * 32

    def test_two_qubit_gate_single_pair(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        assert count_exact_multiplies(circuit, self.CROSSTALK) == 2 + 32

    def test_single_qubit_gate_has_no_pair(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        assert count_exact_multiplies(circuit, self.CROSSTALK) == 2

    def test_matches_backend_application_count(self):
        """The predicted Kraus work equals what the exact backend does."""
        from repro.exact import simulate_exact

        circuit = QuantumCircuit(3)
        circuit.gate("x", 2, controls={0: 1, 1: 1})  # Toffoli
        result = simulate_exact(circuit, noise_model=self.CROSSTALK)
        counters = result.metrics.get("counters", {})
        applications = counters.get("exact.kraus_applications", 0)
        # Two adjacent crosstalk channels x 16 composite Pauli terms each —
        # exactly the pair structure count_exact_multiplies charges for.
        predicted_pairs = (count_exact_multiplies(circuit, self.CROSSTALK) - 2) // 32
        assert predicted_pairs == 2
        assert applications == 16 * predicted_pairs


class TestStochasticBudget:
    """Satellite: dispatch scores the stratified budget, not naive M."""

    def test_static_p_clean_matches_closed_form(self):
        # ghz(4): 1 H (1 qubit slot) + 3 CX (2 slots each) = 7 slots, no
        # crosstalk at paper rates; survival per slot:
        # (1 - .75*.001) * (1 - .002) * (1 - .001)  [p_one = 1 worst case]
        per_slot = (1 - 0.75 * 0.001) * (1 - 0.002) * (1 - 0.001)
        expected = per_slot**7
        assert static_clean_probability(ghz(4), PAPER_NOISE) == pytest.approx(
            expected
        )

    def test_noiseless_is_certainly_clean(self):
        assert static_clean_probability(ghz(4), None) == 1.0

    def test_measure_is_not_stratifiable(self):
        assert static_clean_probability(ghz(3, measure=True), PAPER_NOISE) is None

    def test_exact_damping_kills_the_clean_stratum(self):
        model = NoiseModel.paper_defaults(damping_mode="exact")
        assert static_clean_probability(ghz(4), model) == 0.0

    def test_budget_is_stratified_when_enabled(self, monkeypatch):
        monkeypatch.delenv(STRATIFIED_ENV, raising=False)
        budget, p_clean = stochastic_budget(ghz(10), PAPER_NOISE, 50_000)
        assert p_clean is not None and 0.0 < p_clean < 1.0
        assert budget == stratified_samples(50_000, p_clean)
        assert budget < 50_000

    def test_budget_is_naive_when_disabled(self, monkeypatch):
        monkeypatch.setenv(STRATIFIED_ENV, "off")
        budget, p_clean = stochastic_budget(ghz(10), PAPER_NOISE, 50_000)
        assert budget == 50_000
        assert p_clean is None

    def test_budget_is_naive_for_measured_circuits(self, monkeypatch):
        monkeypatch.delenv(STRATIFIED_ENV, raising=False)
        budget, p_clean = stochastic_budget(
            ghz(4, measure=True), PAPER_NOISE, 1_000
        )
        assert budget == 1_000 and p_clean is None


class TestDispatchBoundary:
    """exact wins iff 2(1+R) 2^n < M — the paper's trade-off, quantified.

    The historical boundary assumed the naive trajectory budget; with the
    stratified budget (default on) the stochastic side shrinks by
    ``(1 - p_clean)^2`` and worst-case exact essentially never wins, so
    the classic boundary is pinned with stratification off.
    """

    def test_small_circuit_large_budget_routes_exact(self, monkeypatch):
        monkeypatch.setenv(STRATIFIED_ENV, "off")
        decision = estimate_costs(
            ghz(10), PAPER_NOISE, [BasisProbability("0" * 10)], 50_000
        )
        assert decision.method == "exact"
        assert decision.exact_cost < decision.stochastic_cost

    def test_stratified_budget_tilts_the_same_spec_stochastic(self, monkeypatch):
        # Identical spec as above, stratification on: the stochastic side
        # is ~100x cheaper at paper rates and wins on worst-case sizes.
        monkeypatch.delenv(STRATIFIED_ENV, raising=False)
        decision = estimate_costs(
            ghz(10), PAPER_NOISE, [BasisProbability("0" * 10)], 50_000
        )
        assert decision.method == "stochastic"
        assert decision.stochastic_budget < 50_000
        assert decision.evidence == "worst_case"

    def test_wide_circuit_routes_stochastic(self):
        decision = estimate_costs(
            ghz(12), PAPER_NOISE, [BasisProbability("0" * 12)], 30_000
        )
        assert decision.method == "stochastic"

    def test_small_budget_routes_stochastic(self):
        decision = estimate_costs(
            ghz(4), PAPER_NOISE, [BasisProbability("0000")], 50
        )
        assert decision.method == "stochastic"

    def test_unsupported_spec_routes_stochastic(self):
        decision = estimate_costs(
            ghz(4), PAPER_NOISE, [ClassicalOutcome(0)], 10**9
        )
        assert decision.method == "stochastic"
        assert decision.unsupported_reason is not None

    def test_render_mentions_both_costs(self):
        decision = estimate_costs(
            ghz(4), PAPER_NOISE, [BasisProbability("0000")], 500
        )
        text = decision.render()
        assert "exact" in text and "stochastic" in text


def _seeded_history(circuit, model, exact_peak=0, state_peak=0, fallbacks=0):
    fingerprint = circuit_fingerprint(circuit, model)
    aggregate = FamilyAggregate(fingerprint)
    if exact_peak:
        aggregate.observe_run(
            {"rec": "run", "fp": fingerprint, "method": "exact",
             "qubits": circuit.num_qubits, "depth": circuit.depth(),
             "peak_nodes": exact_peak}
        )
    if state_peak:
        aggregate.observe_run(
            {"rec": "run", "fp": fingerprint, "method": "stochastic",
             "qubits": circuit.num_qubits, "depth": circuit.depth(),
             "peak_nodes": state_peak, "trajectories_per_second": 100.0}
        )
    for _ in range(fallbacks):
        aggregate.observe_fallback(
            {"rec": "fallback", "fp": fingerprint, "nodes": exact_peak * 4}
        )
    return {fingerprint: aggregate}


class TestMeasuredCostModel:
    def test_empty_history_is_worst_case(self):
        model = MeasuredCostModel({})
        evidence = model.exact_size("deadbeef", 10)
        assert evidence.source == "worst_case"
        assert evidence.nodes == float(4**10)

    def test_measured_exact_size_uses_observed_peak_with_headroom(self):
        history = _seeded_history(ghz(12), PAPER_NOISE, exact_peak=500)
        (fingerprint,) = history
        evidence = MeasuredCostModel(history).exact_size(fingerprint, 12)
        assert evidence.source == "measured"
        assert evidence.nodes == 1000.0  # 2x headroom
        assert evidence.observations == 1
        assert not evidence.censored

    def test_measured_size_never_exceeds_worst_case(self):
        history = _seeded_history(ghz(3), PAPER_NOISE, exact_peak=10**6)
        (fingerprint,) = history
        evidence = MeasuredCostModel(history).exact_size(fingerprint, 3)
        assert evidence.nodes == float(4**3)

    def test_confidence_floor_demands_min_observations(self):
        history = _seeded_history(ghz(12), PAPER_NOISE, exact_peak=500)
        (fingerprint,) = history
        strict = MeasuredCostModel(history, min_observations=2)
        assert strict.exact_size(fingerprint, 12).source == "worst_case"

    def test_fallbacks_are_censored_evidence(self):
        history = _seeded_history(
            ghz(12), PAPER_NOISE, exact_peak=500, fallbacks=1
        )
        (fingerprint,) = history
        evidence = MeasuredCostModel(history).exact_size(fingerprint, 12)
        assert evidence.censored
        # The fallback's nodes (2000) dominate the completed run's 500.
        assert evidence.nodes == 4000.0

    def test_stochastic_side_measured_independently(self):
        history = _seeded_history(ghz(12), PAPER_NOISE, state_peak=30)
        (fingerprint,) = history
        model = MeasuredCostModel(history)
        assert model.stochastic_size(fingerprint, 12).source == "measured"
        assert model.exact_size(fingerprint, 12).source == "worst_case"


class TestMeasuredDispatch:
    """The feedback loop: rho evidence flips a wide circuit back to exact."""

    def test_measured_rho_evidence_flips_to_exact(self):
        history = _seeded_history(ghz(14), PAPER_NOISE, exact_peak=8_000)
        decision = estimate_costs(
            ghz(14), PAPER_NOISE, [BasisProbability("0" * 14)], 30_000,
            history=history,
        )
        assert decision.method == "exact"
        assert decision.evidence == "measured"
        assert decision.exact_observations == 1
        assert decision.fingerprint in history
        text = decision.render()
        assert "measured evidence" in text and decision.fingerprint in text

    def test_escape_hatch_restores_worst_case_bit_identically(self, monkeypatch):
        spec = (ghz(14), PAPER_NOISE, [BasisProbability("0" * 14)], 30_000)
        history = _seeded_history(ghz(14), PAPER_NOISE, exact_peak=8_000)
        baseline = estimate_costs(*spec)
        monkeypatch.setenv(MEASURED_COST_ENV, "off")
        hatched = estimate_costs(*spec, history=history)
        assert (hatched.method, hatched.exact_cost, hatched.stochastic_cost) == (
            baseline.method, baseline.exact_cost, baseline.stochastic_cost
        )
        assert hatched.evidence == "worst_case"

    def test_fingerprint_invariant_to_budget_and_seed_axes(self):
        # Same family regardless of trajectory budget — only structure
        # (qubits, depth, gates, noise mechanisms) enters the key.
        first = estimate_costs(ghz(8), PAPER_NOISE, [], 100)
        second = estimate_costs(ghz(8), PAPER_NOISE, [], 100_000)
        assert first.fingerprint == second.fingerprint
        other = estimate_costs(ghz(9), PAPER_NOISE, [], 100)
        assert other.fingerprint != first.fingerprint
