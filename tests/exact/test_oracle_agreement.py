"""DD-exact vs dense-oracle agreement under the paper's noise model.

The two exact backends — :class:`repro.simulators.density_matrix.
DensityMatrixSimulator` (dense arrays, the oracle) and
:class:`repro.exact.DensityDDBackend` (matrix decision diagrams) — run the
same circuits under the same noise and must agree to 1e-10 per property,
both per-property and on the full reconstructed rho.

Heavy paper circuits (``vqe_uccsd_6/8``, ``ising``) take minutes each on
the DD side — the mixed rho saturates toward the dense node bound, which is
exactly the degradation the paper's stochastic method exists to avoid — so
they run only with ``REPRO_EXACT_ORACLE=full`` in the environment (the CI
``exact-oracle`` job covers the fast set on every push).
"""

import os

import numpy as np
import pytest

from repro.circuits.library import QASMBENCH_CIRCUITS, basis_trotter, ghz, qft
from repro.exact import simulate_exact
from repro.noise import ErrorRates, NoiseModel
from repro.simulators import circuit_unitary_matrix
from repro.simulators.density_matrix import DensityMatrixSimulator
from repro.stochastic import BasisProbability, ExpectationZ, IdealFidelity

PAPER_NOISE = NoiseModel.paper_defaults()

TOLERANCE = 1e-10

heavy = pytest.mark.skipif(
    os.environ.get("REPRO_EXACT_ORACLE") != "full",
    reason="heavy DD-exact oracle circuit (minutes of CPU); "
    "set REPRO_EXACT_ORACLE=full to include",
)


def dense_oracle(circuit, model) -> DensityMatrixSimulator:
    simulator = DensityMatrixSimulator(circuit.num_qubits)
    simulator.run_circuit_with_model(circuit, model)
    return simulator


def assert_matches_dense(circuit, model, channel_mode, tolerance=TOLERANCE):
    """Property-level and full-rho agreement between the exact backends."""
    n = circuit.num_qubits
    has_measure = any(op.__class__.__name__ == "MeasureOperation" for op in circuit)
    properties = [BasisProbability("0" * n), ExpectationZ(0)]
    if not has_measure:
        properties.append(IdealFidelity())

    result = simulate_exact(
        circuit, model, properties, channel_mode=channel_mode
    )
    dense = dense_oracle(circuit, model)

    zeros = result.estimates[f"P(|{'0' * n}>)"].mean
    assert zeros == pytest.approx(
        dense.probability_of_basis([0] * n), abs=tolerance
    )
    assert result.estimates["<Z_0>"].mean == pytest.approx(
        dense.expectation_z(0), abs=tolerance
    )
    if not has_measure:
        ideal = circuit_unitary_matrix(circuit)[:, 0]
        assert result.estimates["F(ideal)"].mean == pytest.approx(
            dense.fidelity_with_pure(ideal), abs=tolerance
        )
    return result


def assert_rho_matches_dense(circuit, model, channel_mode, tolerance=TOLERANCE):
    """The full reconstructed density matrices agree entrywise."""
    from repro.exact import DensityDDBackend, ExactSimulator
    from repro.simulators.gateplan import compile_plan

    backend = DensityDDBackend(circuit.num_qubits)
    try:
        simulator = ExactSimulator(channel_mode=channel_mode)
        plan = compile_plan(circuit, package=backend.package, adjoints=True)
        from repro.noise.stochastic import exact_channel_factory

        simulator._evolve(backend, plan, exact_channel_factory(model), model)
        rho_dd = backend.to_density_matrix()
    finally:
        backend.release()
    rho_dense = dense_oracle(circuit, model).density_matrix()
    assert np.max(np.abs(rho_dd - rho_dense)) < tolerance
    # rho stays a physical state: trace one, Hermitian.
    assert np.trace(rho_dd).real == pytest.approx(1.0, abs=tolerance)
    assert np.max(np.abs(rho_dd - rho_dd.conj().T)) < tolerance


class TestFastCircuits:
    """ghz / qft / basis_trotter(4): always on, both channel modes."""

    @pytest.mark.parametrize("mode", ["superop", "kraus"])
    @pytest.mark.parametrize("qubits", [2, 4, 6])
    def test_ghz_matches_dense(self, qubits, mode):
        assert_matches_dense(ghz(qubits), PAPER_NOISE, mode)

    @pytest.mark.parametrize("mode", ["superop", "kraus"])
    @pytest.mark.parametrize("qubits", [2, 5])
    def test_qft_matches_dense(self, qubits, mode):
        assert_matches_dense(qft(qubits), PAPER_NOISE, mode)

    @pytest.mark.parametrize("mode", ["superop", "kraus"])
    def test_basis_trotter_paper_circuit_matches_dense(self, mode):
        # The one paper circuit small enough for tier-1 (n=4, 512 ops).
        assert_matches_dense(basis_trotter(4), PAPER_NOISE, mode)

    @pytest.mark.parametrize("mode", ["superop", "kraus"])
    def test_ghz_full_rho_matches_dense(self, mode):
        assert_rho_matches_dense(ghz(4), PAPER_NOISE, mode)

    def test_qft_full_rho_matches_dense(self):
        assert_rho_matches_dense(qft(4), PAPER_NOISE, "superop")


class TestNoiseSiteCoverage:
    """Every noise site the oracle exercises: measure, reset, crosstalk."""

    def test_measure_and_reset_sites_match_dense(self):
        from repro.circuits import QuantumCircuit

        circuit = QuantumCircuit(2, 2, name="measure-reset")
        circuit.h(0).cx(0, 1).measure(0, 0).reset(1).h(1).measure(1, 1)
        assert_rho_matches_dense(circuit, PAPER_NOISE, "superop")
        assert_rho_matches_dense(circuit, PAPER_NOISE, "kraus")

    def test_readout_noise_matches_dense(self):
        from repro.circuits import QuantumCircuit

        model = NoiseModel(default=ErrorRates(readout=0.03))
        circuit = QuantumCircuit(2, 2, name="readout")
        circuit.h(0).cx(0, 1).measure(0, 0).measure(1, 1)
        assert_rho_matches_dense(circuit, model, "superop")

    def test_crosstalk_matches_dense(self):
        from repro.circuits import QuantumCircuit

        model = NoiseModel(default=ErrorRates(crosstalk=0.05))
        circuit = QuantumCircuit(3, name="crosstalk")
        circuit.h(0).cx(0, 1).cx(1, 2).cx(0, 2)
        assert_rho_matches_dense(circuit, model, "superop")
        assert_rho_matches_dense(circuit, model, "kraus")

    def test_exact_damping_mode_matches_dense(self):
        model = NoiseModel.paper_defaults(damping_mode="exact")
        assert_matches_dense(ghz(4), model, "superop")


class TestChannelModesAgree:
    """The superop fast path is the same linear map as the Kraus path."""

    @pytest.mark.parametrize("circuit", [ghz(5), qft(4)], ids=["ghz5", "qft4"])
    def test_modes_agree(self, circuit):
        n = circuit.num_qubits
        properties = [BasisProbability("0" * n), ExpectationZ(0), IdealFidelity()]
        fast = simulate_exact(
            circuit, PAPER_NOISE, properties, channel_mode="superop"
        )
        slow = simulate_exact(
            circuit, PAPER_NOISE, properties, channel_mode="kraus"
        )
        for name in fast.estimates:
            assert fast.estimates[name].mean == pytest.approx(
                slow.estimates[name].mean, abs=TOLERANCE
            )


class TestHeavyPaperCircuits:
    """Every remaining paper circuit <= 10 qubits, oracle-checked.

    Env-gated: the mixed rho saturates to ~4^n/3 DD nodes under the paper
    noise, so these take minutes (vqe_uccsd_6) to much longer (ising at
    n=10) — the very blow-up the paper's stochastic method sidesteps.
    """

    @heavy
    @pytest.mark.parametrize("name", ["vqe_uccsd_6", "vqe_uccsd_8", "ising"])
    def test_heavy_paper_circuit_matches_dense(self, name):
        _, factory = QASMBENCH_CIRCUITS[name]
        assert_matches_dense(factory(), PAPER_NOISE, "superop")
