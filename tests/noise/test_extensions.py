"""Tests for the noise extensions: thermal relaxation and crosstalk."""

import math
import random

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, gates
from repro.noise import ErrorRates, NoiseModel, StochasticErrorApplier
from repro.noise.channels import (
    TWO_QUBIT_PAULIS,
    thermal_relaxation_kraus,
    validate_kraus,
)
from repro.simulators import DDBackend, DensityMatrixSimulator, execute_circuit
from repro.stochastic import BasisProbability, simulate_stochastic


class TestThermalRelaxation:
    @pytest.mark.parametrize(
        "t1,t2,duration", [(50.0, 70.0, 0.1), (50.0, 100.0, 1.0), (30.0, 30.0, 5.0)]
    )
    def test_completeness(self, t1, t2, duration):
        assert validate_kraus(thermal_relaxation_kraus(t1, t2, duration))

    def test_population_decay_matches_t1(self):
        t1, duration = 40.0, 8.0
        simulator = DensityMatrixSimulator(1)
        simulator.apply_gate(gates.X, 0, {})
        simulator.apply_channel(thermal_relaxation_kraus(t1, 2 * t1, duration), 0)
        expected = math.exp(-duration / t1)
        assert simulator.probability_of_one(0) == pytest.approx(expected)

    def test_coherence_decay_matches_t2(self):
        t1, t2, duration = 50.0, 30.0, 10.0
        simulator = DensityMatrixSimulator(1)
        simulator.apply_gate(gates.H, 0, {})
        simulator.apply_channel(thermal_relaxation_kraus(t1, t2, duration), 0)
        rho = simulator.density_matrix()
        assert abs(rho[0, 1]) == pytest.approx(0.5 * math.exp(-duration / t2))

    def test_excited_population_steady_state(self):
        kraus = thermal_relaxation_kraus(10.0, 10.0, 1000.0, excited_population=0.25)
        simulator = DensityMatrixSimulator(1)
        simulator.apply_channel(kraus, 0)
        assert simulator.probability_of_one(0) == pytest.approx(0.25, abs=1e-6)

    def test_unphysical_t2_rejected(self):
        with pytest.raises(ValueError, match="T2"):
            thermal_relaxation_kraus(10.0, 25.0, 1.0)

    def test_invalid_times_rejected(self):
        with pytest.raises(ValueError):
            thermal_relaxation_kraus(-1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            thermal_relaxation_kraus(1.0, 1.0, 1.0, excited_population=2.0)

    def test_zero_duration_is_identity(self):
        kraus = thermal_relaxation_kraus(50.0, 70.0, 0.0)
        simulator = DensityMatrixSimulator(1)
        simulator.apply_gate(gates.H, 0, {})
        before = simulator.density_matrix()
        simulator.apply_channel(kraus, 0)
        assert np.allclose(simulator.density_matrix(), before)


class TestCrosstalkStochastic:
    def crosstalk_model(self, p):
        return NoiseModel(default=ErrorRates(crosstalk=p))

    def test_fires_only_on_multi_qubit_gates(self, rng):
        backend = DDBackend(2)
        applier = StochasticErrorApplier(self.crosstalk_model(1.0), rng)
        applier(backend, (0,), "h")
        assert applier.fired.get("crosstalk", 0) == 0
        applier(backend, (0, 1), "x")
        assert applier.fired.get("crosstalk", 0) == 1

    def test_fire_rate(self):
        fires = 0
        trials = 800
        for seed in range(trials):
            backend = DDBackend(2)
            applier = StochasticErrorApplier(self.crosstalk_model(0.3), random.Random(seed))
            applier(backend, (0, 1), "x")
            fires += applier.fired.get("crosstalk", 0)
        assert fires / trials == pytest.approx(0.3, abs=0.05)

    def test_pauli_pair_statistics(self):
        """The 16 outcomes are uniform; 12/16 move |00> off itself."""
        moved = 0
        trials = 800
        for seed in range(trials):
            backend = DDBackend(2)
            applier = StochasticErrorApplier(self.crosstalk_model(1.0), random.Random(seed))
            applier(backend, (0, 1), "x")
            if backend.probability_of_basis([0, 0]) < 0.5:
                moved += 1
        # I(x)I, I(x)Z, Z(x)I, Z(x)Z leave |00> invariant: 12/16 move it.
        assert moved / trials == pytest.approx(12 / 16, abs=0.05)

    def test_two_qubit_paulis_constant(self):
        assert len(TWO_QUBIT_PAULIS) == 15


class TestCrosstalkOracle:
    def test_channel_preserves_trace(self):
        simulator = DensityMatrixSimulator(2)
        simulator.apply_gate(gates.H, 0, {})
        simulator.apply_gate(gates.X, 1, {0: 1})
        simulator.apply_correlated_pauli_channel(0.4, 0, 1)
        assert np.trace(simulator.density_matrix()) == pytest.approx(1.0)

    def test_full_strength_mixes_completely(self):
        simulator = DensityMatrixSimulator(2)
        simulator.apply_gate(gates.H, 0, {})
        simulator.apply_gate(gates.X, 1, {0: 1})
        simulator.apply_correlated_pauli_channel(1.0, 0, 1)
        # p=1 random two-qubit Pauli leaves the Bell state's diagonal mixed.
        probabilities = simulator.probabilities()
        assert probabilities.max() < 0.5

    def test_invalid_probability_rejected(self):
        simulator = DensityMatrixSimulator(2)
        with pytest.raises(ValueError):
            simulator.apply_correlated_pauli_channel(1.5, 0, 1)

    def test_stochastic_matches_oracle(self):
        """Monte-Carlo crosstalk converges onto the exact channel."""
        p = 0.3
        model = NoiseModel(default=ErrorRates(crosstalk=p))
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)

        oracle = DensityMatrixSimulator(2)
        oracle.run_circuit_with_model(circuit, model)
        exact = oracle.probability_of_basis([0, 0])

        result = simulate_stochastic(
            circuit, model, [BasisProbability("00")], trajectories=4000, seed=2
        )
        assert result.mean("P(|00>)") == pytest.approx(exact, abs=0.03)

    def test_run_circuit_with_model_matches_factory_path(self):
        """Without crosstalk, run_circuit_with_model equals the factory API."""
        from repro.noise import exact_channel_factory

        model = NoiseModel.paper_defaults(damping_mode="exact").scaled(10)
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        a = DensityMatrixSimulator(2)
        a.run_circuit(circuit, exact_channel_factory(model))
        b = DensityMatrixSimulator(2)
        b.run_circuit_with_model(circuit, model)
        assert np.allclose(a.density_matrix(), b.density_matrix())
