"""Tests for calibration-style heterogeneous noise models."""

import math

import pytest

from repro.noise import ErrorRates, NoiseModel
from repro.noise.calibration import from_calibration_table, heterogeneous_model


class TestHeterogeneousModel:
    def test_every_qubit_has_override(self):
        model = heterogeneous_model(5, seed=3)
        rates = {q: model.rates_for("x", q) for q in range(5)}
        assert len({r.depolarizing for r in rates.values()}) > 1

    def test_deterministic_by_seed(self):
        a = heterogeneous_model(5, seed=3)
        b = heterogeneous_model(5, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = heterogeneous_model(5, seed=3)
        b = heterogeneous_model(5, seed=4)
        assert a != b

    def test_bad_qubit_is_worst(self):
        model = heterogeneous_model(8, seed=2, worst_qubit_factor=10.0)
        bad = 2 % 8
        bad_rate = model.rates_for("x", bad).depolarizing
        others = [model.rates_for("x", q).depolarizing for q in range(8) if q != bad]
        assert bad_rate > max(others)

    def test_rates_stay_in_range(self):
        model = heterogeneous_model(20, base=ErrorRates(0.3, 0.3, 0.3), seed=1,
                                    worst_qubit_factor=100.0)
        for qubit in range(20):
            rates = model.rates_for("x", qubit)
            assert 0.0 <= rates.depolarizing <= 1.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            heterogeneous_model(0)

    def test_usable_by_simulator(self):
        from repro.circuits.library import ghz
        from repro.stochastic import simulate_stochastic

        model = heterogeneous_model(3, seed=1)
        result = simulate_stochastic(ghz(3), model, [], trajectories=5)
        assert result.completed_trajectories == 5


class TestFromCalibrationTable:
    def test_t1_maps_to_damping(self):
        model = from_calibration_table({0: {"t1_us": 50.0}}, gate_time_ns=100.0)
        expected = 1.0 - math.exp(-0.1 / 50.0)
        assert model.rates_for("x", 0).amplitude_damping == pytest.approx(expected)

    def test_t2_maps_to_phase_flip(self):
        model = from_calibration_table({0: {"t2_us": 30.0}}, gate_time_ns=60.0)
        expected = 1.0 - math.exp(-0.06 / 30.0)
        assert model.rates_for("x", 0).phase_flip == pytest.approx(expected)

    def test_direct_rates(self):
        model = from_calibration_table(
            {1: {"gate_error": 0.004, "readout_error": 0.02}}
        )
        rates = model.rates_for("h", 1)
        assert rates.depolarizing == 0.004
        assert rates.readout == 0.02

    def test_uncalibrated_qubits_use_default(self):
        default = ErrorRates(0.001, 0.002, 0.001)
        model = from_calibration_table({0: {"gate_error": 0.1}}, default=default)
        assert model.rates_for("x", 5) == default

    def test_longer_gates_are_noisier(self):
        short = from_calibration_table({0: {"t1_us": 50.0}}, gate_time_ns=30.0)
        long = from_calibration_table({0: {"t1_us": 50.0}}, gate_time_ns=300.0)
        assert (
            long.rates_for("x", 0).amplitude_damping
            > short.rates_for("x", 0).amplitude_damping
        )

    def test_invalid_t1_rejected(self):
        with pytest.raises(ValueError):
            from_calibration_table({0: {"t1_us": -1.0}})
