"""Unit tests for noise models and rate resolution."""

import pickle

import pytest

from repro.noise import ErrorRates, NoiseModel


class TestErrorRates:
    def test_defaults_are_noiseless(self):
        assert ErrorRates().is_noiseless

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ErrorRates(depolarizing=1.5)
        with pytest.raises(ValueError):
            ErrorRates(amplitude_damping=-0.1)

    def test_scaled(self):
        rates = ErrorRates(0.001, 0.002, 0.001).scaled(10)
        assert rates.depolarizing == pytest.approx(0.01)
        assert rates.amplitude_damping == pytest.approx(0.02)

    def test_scaled_clamps(self):
        rates = ErrorRates(0.5, 0.5, 0.5).scaled(10)
        assert rates.depolarizing == 1.0

    def test_frozen(self):
        rates = ErrorRates()
        with pytest.raises(Exception):
            rates.depolarizing = 0.5


class TestNoiseModel:
    def test_paper_defaults(self):
        model = NoiseModel.paper_defaults()
        rates = model.rates_for("h", 0)
        assert rates.depolarizing == 0.001
        assert rates.amplitude_damping == 0.002
        assert rates.phase_flip == 0.001

    def test_noiseless(self):
        assert NoiseModel.noiseless().is_noiseless

    def test_uniform(self):
        model = NoiseModel.uniform(depolarizing=0.01)
        assert model.rates_for("x", 3).depolarizing == 0.01

    def test_gate_override(self):
        model = NoiseModel.build(
            default=ErrorRates(0.001, 0, 0),
            gate_overrides={"measure": ErrorRates(0.05, 0, 0)},
        )
        assert model.rates_for("measure", 0).depolarizing == 0.05
        assert model.rates_for("h", 0).depolarizing == 0.001

    def test_qubit_override_beats_gate_override(self):
        model = NoiseModel.build(
            default=ErrorRates(0.001, 0, 0),
            gate_overrides={"h": ErrorRates(0.01, 0, 0)},
            qubit_overrides={2: ErrorRates(0.1, 0, 0)},
        )
        assert model.rates_for("h", 2).depolarizing == 0.1
        assert model.rates_for("h", 1).depolarizing == 0.01

    def test_is_noiseless_checks_overrides(self):
        model = NoiseModel.build(
            default=ErrorRates(),
            qubit_overrides={0: ErrorRates(0.1, 0, 0)},
        )
        assert not model.is_noiseless

    def test_scaled_model(self):
        model = NoiseModel.paper_defaults().scaled(2)
        assert model.rates_for("h", 0).depolarizing == pytest.approx(0.002)

    def test_scaled_to_zero_is_noiseless(self):
        assert NoiseModel.paper_defaults().scaled(0).is_noiseless

    def test_picklable(self):
        model = NoiseModel.build(
            default=ErrorRates(0.001, 0.002, 0.001),
            gate_overrides={"x": ErrorRates(0.01, 0, 0)},
            qubit_overrides={1: ErrorRates(0, 0.05, 0)},
            noisy_measure=False,
        )
        clone = pickle.loads(pickle.dumps(model))
        assert clone == model
        assert clone.rates_for("x", 0).depolarizing == 0.01
