"""Tests for the readout-error extension (pre-measurement bit flip)."""

import random

import pytest

from repro.circuits import QuantumCircuit
from repro.noise import ErrorRates, NoiseModel, StochasticErrorApplier, exact_channel_factory
from repro.simulators import DDBackend, DensityMatrixSimulator, execute_circuit
from repro.stochastic import ClassicalOutcome, simulate_stochastic


def readout_model(p):
    return NoiseModel(default=ErrorRates(readout=p))


class TestStochasticReadout:
    def test_flip_statistics_on_zero_state(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        p = 0.25
        flips = 0
        trials = 800
        for seed in range(trials):
            rng = random.Random(seed)
            backend = DDBackend(1)
            applier = StochasticErrorApplier(readout_model(p), rng)
            result = execute_circuit(backend, circuit, rng, error_hook=applier)
            flips += result.classical_bits[0]
        assert flips / trials == pytest.approx(p, abs=0.05)

    def test_no_readout_error_without_rate(self, rng):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        backend = DDBackend(1)
        applier = StochasticErrorApplier(NoiseModel.paper_defaults(), rng)
        result = execute_circuit(backend, circuit, rng, error_hook=applier)
        assert result.classical_bits == [0]

    def test_fired_counter_includes_readout(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        rng = random.Random(0)
        backend = DDBackend(1)
        applier = StochasticErrorApplier(readout_model(1.0), rng)
        execute_circuit(backend, circuit, rng, error_hook=applier)
        assert applier.fired["readout"] == 1

    def test_runner_aggregates_readout_fires(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        result = simulate_stochastic(
            circuit,
            readout_model(1.0),
            [ClassicalOutcome(1)],
            trajectories=20,
            seed=0,
        )
        assert result.errors_fired.get("readout") == 20
        assert result.mean("P(c=1)") == 1.0


class TestOracleAgreement:
    def test_oracle_matches_stochastic_readout(self):
        """Readout on |+>: measured-one probability shifts from 0.5 by the
        misassignment asymmetry... for a bit-flip model P(1) stays 0.5 on
        |+>, so use |0> where P(1) = p exactly."""
        p = 0.3
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)

        oracle = DensityMatrixSimulator(1)
        oracle.run_circuit(circuit, exact_channel_factory(readout_model(p)))
        assert oracle.probability_of_one(0) == pytest.approx(p)

        result = simulate_stochastic(
            circuit,
            readout_model(p),
            [ClassicalOutcome(1)],
            trajectories=3000,
            seed=1,
        )
        assert result.mean("P(c=1)") == pytest.approx(p, abs=0.03)

    def test_rates_validation(self):
        with pytest.raises(ValueError):
            ErrorRates(readout=1.2)

    def test_scaled_includes_readout(self):
        rates = ErrorRates(readout=0.01).scaled(10)
        assert rates.readout == pytest.approx(0.1)

    def test_is_noiseless_includes_readout(self):
        assert not ErrorRates(readout=0.01).is_noiseless
