"""Tests for the two amplitude-damping unravellings (event vs exact).

``exact`` reproduces the paper's Example 6 verbatim (two-Kraus branch
selection with the no-decay tilt); ``event`` is the first-order error-event
model whose no-fire branch leaves the state untouched.  Both fire with the
same state-dependent probability ``p * P(qubit = 1)``; they differ only in
what the no-fire branch does — and, consequently, in decision-diagram size
on circuits where per-qubit tilts interleave (see DESIGN.md).
"""

import random

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, gates
from repro.circuits.library import bernstein_vazirani, ghz
from repro.noise import ErrorRates, NoiseModel, StochasticErrorApplier, exact_channel_factory
from repro.simulators import DDBackend, DensityMatrixSimulator
from repro.stochastic import BasisProbability, simulate_stochastic


def model(p, mode):
    return NoiseModel.uniform(amplitude_damping=p, damping_mode=mode)


class TestModeSelection:
    def test_default_is_event(self):
        assert NoiseModel.paper_defaults().damping_mode == "event"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="damping_mode"):
            NoiseModel(damping_mode="sometimes")

    def test_with_damping_mode(self):
        base = NoiseModel.paper_defaults()
        exact = base.with_damping_mode("exact")
        assert exact.damping_mode == "exact"
        assert exact.default == base.default

    def test_scaled_preserves_mode(self):
        assert NoiseModel.paper_defaults(damping_mode="exact").scaled(2).damping_mode == "exact"


class TestFiringProbabilities:
    @pytest.mark.parametrize("mode", ["event", "exact"])
    def test_same_firing_rate_on_excited_state(self, mode):
        p = 0.3
        fires = 0
        trials = 600
        for seed in range(trials):
            backend = DDBackend(1)
            backend.apply_gate(gates.X, 0, {})
            applier = StochasticErrorApplier(model(p, mode), random.Random(seed))
            applier(backend, (0,), "x")
            fires += applier.fired["amplitude_damping"]
        assert fires / trials == pytest.approx(p, abs=0.06)

    @pytest.mark.parametrize("mode", ["event", "exact"])
    def test_ground_state_never_fires(self, mode, rng):
        backend = DDBackend(1)
        applier = StochasticErrorApplier(model(0.9, mode), rng)
        applier(backend, (0,), "x")
        assert applier.fired["amplitude_damping"] == 0


class TestBranchStates:
    def test_event_no_fire_leaves_state_untouched(self):
        """The defining property of event mode."""
        backend = DDBackend(1)
        backend.apply_gate(gates.H, 0, {})
        before = backend.state
        # seed chosen so the event does not fire (p tiny).
        applier = StochasticErrorApplier(model(1e-9, "event"), random.Random(1))
        applier(backend, (0,), "h")
        assert backend.state.node is before.node
        assert backend.state.weight is before.weight

    def test_exact_no_fire_tilts_state(self):
        """Exact mode's no-decay branch applies diag(1, sqrt(1-p))."""
        p = 0.4
        backend = DDBackend(1)
        backend.apply_gate(gates.H, 0, {})
        applier = StochasticErrorApplier(model(p, "exact"), random.Random(1))
        applier(backend, (0,), "h")
        if applier.fired["amplitude_damping"] == 0:
            vector = backend.statevector()
            ratio = abs(vector[1]) / abs(vector[0])
            assert ratio == pytest.approx(np.sqrt(1 - p), abs=1e-9)

    def test_fired_event_collapses_to_zero(self):
        backend = DDBackend(1)
        backend.apply_gate(gates.X, 0, {})
        applier = StochasticErrorApplier(model(1.0, "event"), random.Random(0))
        applier(backend, (0,), "x")
        assert applier.fired["amplitude_damping"] == 1
        assert backend.probability_of_basis([0]) == pytest.approx(1.0)


class TestDDSizeImpact:
    def test_event_mode_keeps_bv_compact(self):
        result = simulate_stochastic(
            bernstein_vazirani(13),
            NoiseModel.uniform(amplitude_damping=0.002, damping_mode="event"),
            [],
            trajectories=2,
            seed=0,
            sample_shots=0,
        )
        assert result.peak_nodes <= 3 * 13

    def test_exact_mode_blows_bv_up(self):
        """The documented pathology: interleaved A1 tilts break sub-vector
        sharing and the DD grows far beyond linear."""
        result = simulate_stochastic(
            bernstein_vazirani(13),
            NoiseModel.uniform(amplitude_damping=0.002, damping_mode="exact"),
            [],
            trajectories=1,
            seed=0,
            sample_shots=0,
        )
        assert result.peak_nodes > 10 * 13


class TestEventModelBias:
    """The event model's bias structure (DESIGN.md §5): exact on basis
    states, O(p) per slot on superposition observables."""

    def test_event_matches_oracle_at_small_p(self):
        """At small p the O(p)-per-slot deviation stays inside a loose
        Monte-Carlo tolerance on a shallow circuit."""
        p = 0.02
        circuit = ghz(3)
        event = NoiseModel.uniform(amplitude_damping=p, damping_mode="event")
        oracle = DensityMatrixSimulator(3)
        oracle.run_circuit(circuit, exact_channel_factory(event))
        exact_value = oracle.probability_of_basis([0, 0, 0])
        result = simulate_stochastic(
            circuit, event, [BasisProbability("000")], trajectories=4000, seed=5
        )
        assert result.mean("P(|000>)") == pytest.approx(exact_value, abs=0.03)

    def test_modes_agree_statistically_at_small_p(self):
        p = 0.01
        circuit = ghz(3)
        estimates = {}
        for mode in ("event", "exact"):
            result = simulate_stochastic(
                circuit,
                NoiseModel.uniform(amplitude_damping=p, damping_mode=mode),
                [BasisProbability("111")],
                trajectories=3000,
                seed=9,
            )
            estimates[mode] = result.mean("P(|111>)")
        assert estimates["event"] == pytest.approx(estimates["exact"], abs=0.03)

    def test_basis_state_populations_are_exact(self):
        """On |1>, both semantics give P(1) = (1 - p)^k after k slots —
        the event model is exact for computational basis states."""
        from repro.circuits import QuantumCircuit

        p = 0.2
        circuit = QuantumCircuit(1)
        circuit.x(0).i(0)
        for mode in ("event", "exact"):
            result = simulate_stochastic(
                circuit,
                NoiseModel.uniform(amplitude_damping=p, damping_mode=mode),
                [BasisProbability("1")],
                trajectories=4000,
                seed=3,
            )
            assert result.mean("P(|1>)") == pytest.approx((1 - p) ** 2, abs=0.03), mode

    def test_superposition_bias_is_first_order_and_measurable(self):
        """The documented deviation: on |+> a single damping slot gives
        <P1> = 0.5(1 - p/2) under the event model but 0.5(1 - p) under the
        true channel — O(p), clearly visible at large p."""
        from repro.circuits import QuantumCircuit
        from repro.stochastic import ExpectationZ

        p = 0.4
        circuit = QuantumCircuit(1)
        circuit.h(0)
        event = simulate_stochastic(
            circuit,
            NoiseModel.uniform(amplitude_damping=p, damping_mode="event"),
            [ExpectationZ(0)],
            trajectories=6000,
            seed=11,
        )
        exact = simulate_stochastic(
            circuit,
            NoiseModel.uniform(amplitude_damping=p, damping_mode="exact"),
            [ExpectationZ(0)],
            trajectories=6000,
            seed=11,
        )
        # <Z> = 1 - 2 <P1>: event -> 1 - (1 - p/2) = p/2; exact -> p.
        assert event.mean("<Z_0>") == pytest.approx(p / 2, abs=0.04)
        assert exact.mean("<Z_0>") == pytest.approx(p, abs=0.04)
