"""Unit tests for the stochastic error insertion hook."""

import random

import numpy as np
import pytest

from repro.circuits import gates
from repro.circuits.library import ghz
from repro.noise import ErrorRates, NoiseModel, StochasticErrorApplier
from repro.simulators import DDBackend, StatevectorBackend, execute_circuit


class TestNoiselessPassthrough:
    def test_no_errors_no_state_change(self, rng):
        backend = DDBackend(2)
        backend.apply_gate(gates.H, 0, {})
        before = backend.statevector()
        applier = StochasticErrorApplier(NoiseModel.noiseless(), rng)
        applier(backend, (0, 1), "h")
        assert np.allclose(backend.statevector(), before)
        assert all(count == 0 for count in applier.fired.values())


class TestDepolarizing:
    def test_fire_rate_statistics(self):
        model = NoiseModel.uniform(depolarizing=0.25)
        fired = 0
        trials = 1000
        for seed in range(trials):
            backend = DDBackend(1)
            applier = StochasticErrorApplier(model, random.Random(seed))
            applier(backend, (0,), "h")
            fired += applier.fired["depolarizing"]
        assert fired / trials == pytest.approx(0.25, abs=0.04)

    def test_uniform_pauli_choice(self):
        """Conditioned on firing, X/Y/Z each occur ~1/4 of the time (I is a
        no-op and also counts as fired, per paper Example 3)."""
        model = NoiseModel.uniform(depolarizing=1.0)
        changed = 0
        trials = 800
        for seed in range(trials):
            backend = DDBackend(1)
            applier = StochasticErrorApplier(model, random.Random(seed))
            applier(backend, (0,), "h")
            # X or Y moves |0> off itself; Z and I leave P(|0>) = 1.
            if backend.probability_of_basis([0]) < 0.5:
                changed += 1
        assert changed / trials == pytest.approx(0.5, abs=0.06)


class TestAmplitudeDamping:
    def test_ground_state_unaffected(self, rng):
        model = NoiseModel.uniform(amplitude_damping=0.9)
        backend = DDBackend(1)
        applier = StochasticErrorApplier(model, rng)
        applier(backend, (0,), "x")
        assert backend.probability_of_basis([0]) == pytest.approx(1.0)
        assert applier.fired["amplitude_damping"] == 0

    def test_excited_state_decay_statistics(self):
        p = 0.35
        model = NoiseModel.uniform(amplitude_damping=p)
        decays = 0
        trials = 800
        for seed in range(trials):
            backend = DDBackend(1)
            backend.apply_gate(gates.X, 0, {})
            applier = StochasticErrorApplier(model, random.Random(seed))
            applier(backend, (0,), "x")
            decays += applier.fired["amplitude_damping"]
        assert decays / trials == pytest.approx(p, abs=0.05)

    def test_superposition_branch_probability(self):
        """On |+>, the decay branch fires with probability p/2 (Example 6
        logic on a single qubit)."""
        p = 0.5
        model = NoiseModel.uniform(amplitude_damping=p)
        decays = 0
        trials = 1000
        for seed in range(trials):
            backend = DDBackend(1)
            backend.apply_gate(gates.H, 0, {})
            applier = StochasticErrorApplier(model, random.Random(seed))
            applier(backend, (0,), "h")
            decays += applier.fired["amplitude_damping"]
        assert decays / trials == pytest.approx(p / 2, abs=0.05)


class TestPhaseFlip:
    def test_phase_flip_applies_z(self):
        model = NoiseModel.build(
            default=ErrorRates(phase_flip=1.0), noisy_measure=True
        )
        backend = DDBackend(1)
        backend.apply_gate(gates.H, 0, {})
        applier = StochasticErrorApplier(model, random.Random(0))
        applier(backend, (0,), "h")
        vector = backend.statevector()
        # |+> -> |->
        assert vector[0] * vector[1] < 0 or abs(vector[0] + vector[1]) < 1e-9

    def test_invisible_on_basis_states(self, rng):
        model = NoiseModel.uniform(phase_flip=1.0)
        backend = DDBackend(1)
        applier = StochasticErrorApplier(model, rng)
        applier(backend, (0,), "x")
        assert backend.probability_of_basis([0]) == pytest.approx(1.0)


class TestMeasurementNoiseFlag:
    def test_noisy_measure_disabled(self, rng):
        model = NoiseModel.build(
            default=ErrorRates(1.0, 1.0, 1.0), noisy_measure=False
        )
        backend = DDBackend(1)
        applier = StochasticErrorApplier(model, rng)
        applier(backend, (0,), "measure")
        assert all(count == 0 for count in applier.fired.values())

    def test_noisy_measure_enabled_by_default(self, rng):
        model = NoiseModel.uniform(depolarizing=1.0)
        backend = DDBackend(1)
        applier = StochasticErrorApplier(model, rng)
        applier(backend, (0,), "measure")
        assert applier.fired["depolarizing"] == 1


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        model = NoiseModel.paper_defaults().scaled(50)
        circuit = ghz(4)
        states = []
        for _ in range(2):
            rng = random.Random(123)
            backend = DDBackend(4)
            applier = StochasticErrorApplier(model, rng)
            execute_circuit(backend, circuit, rng, error_hook=applier)
            states.append(backend.statevector())
        assert np.allclose(states[0], states[1])

    def test_backends_agree_given_same_seed(self):
        model = NoiseModel.paper_defaults().scaled(50)
        circuit = ghz(4)
        results = {}
        for kind, backend in (("dd", DDBackend(4)), ("sv", StatevectorBackend(4))):
            rng = random.Random(7)
            applier = StochasticErrorApplier(model, rng)
            execute_circuit(backend, circuit, rng, error_hook=applier)
            results[kind] = backend.statevector()
        assert np.allclose(results["dd"], results["sv"], atol=1e-9)
