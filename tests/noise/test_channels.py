"""Unit tests for the Kraus channel definitions."""

import math

import numpy as np
import pytest

from repro.noise.channels import (
    DEPOLARIZING_PAULIS,
    amplitude_damping_kraus,
    depolarizing_kraus,
    phase_flip_kraus,
    validate_kraus,
)


@pytest.mark.parametrize("p", [0.0, 0.001, 0.1, 0.5, 1.0])
class TestCompleteness:
    def test_depolarizing_complete(self, p):
        assert validate_kraus(depolarizing_kraus(p))

    def test_amplitude_damping_complete(self, p):
        assert validate_kraus(amplitude_damping_kraus(p))

    def test_phase_flip_complete(self, p):
        assert validate_kraus(phase_flip_kraus(p))


class TestForms:
    def test_depolarizing_weights(self):
        p = 0.2
        kraus = depolarizing_kraus(p)
        assert np.allclose(kraus[0], math.sqrt(1 - 3 * p / 4) * np.eye(2))
        assert np.allclose(kraus[1], math.sqrt(p / 4) * np.array([[0, 1], [1, 0]]))

    def test_damping_decay_operator_maps_one_to_zero(self):
        p = 0.4
        _, decay = amplitude_damping_kraus(p)
        one = np.array([0, 1], dtype=complex)
        result = decay @ one
        assert result[0] == pytest.approx(math.sqrt(p))
        assert result[1] == 0.0

    def test_damping_no_decay_preserves_zero(self):
        no_decay, _ = amplitude_damping_kraus(0.4)
        zero = np.array([1, 0], dtype=complex)
        assert np.allclose(no_decay @ zero, zero)

    def test_damping_uses_corrected_paper_matrix(self):
        """The paper prints A_1 with sqrt(p); the correct entry is sqrt(1-p)."""
        p = 0.19
        no_decay, _ = amplitude_damping_kraus(p)
        assert no_decay[1, 1] == pytest.approx(math.sqrt(1 - p))

    def test_phase_flip_operators(self):
        p = 0.3
        kraus = phase_flip_kraus(p)
        assert np.allclose(kraus[0], math.sqrt(1 - p) * np.eye(2))
        assert np.allclose(kraus[1], math.sqrt(p) * np.diag([1, -1]))

    def test_paulis_are_the_four_frames(self):
        assert len(DEPOLARIZING_PAULIS) == 4
        identity, x, y, z = DEPOLARIZING_PAULIS
        assert np.allclose(identity, np.eye(2))
        assert np.allclose(x @ x, np.eye(2))
        assert np.allclose(y, 1j * x @ z)


class TestValidation:
    @pytest.mark.parametrize("p", [-0.1, 1.5])
    def test_out_of_range_probability_rejected(self, p):
        with pytest.raises(ValueError):
            depolarizing_kraus(p)
        with pytest.raises(ValueError):
            amplitude_damping_kraus(p)
        with pytest.raises(ValueError):
            phase_flip_kraus(p)

    def test_validate_kraus_detects_incomplete(self):
        assert not validate_kraus([np.eye(2) * 0.5])


class TestChannelEquivalences:
    def test_depolarizing_is_random_pauli_average(self):
        """sum_k K rho K^dag == (1-p) rho + p/4 sum_P P rho P."""
        p = 0.23
        rho = np.array([[0.7, 0.2 - 0.1j], [0.2 + 0.1j, 0.3]], dtype=complex)
        kraus = depolarizing_kraus(p)
        channel = sum(k @ rho @ k.conj().T for k in kraus)
        average = (1 - p) * rho + (p / 4) * sum(
            pauli @ rho @ pauli.conj().T for pauli in DEPOLARIZING_PAULIS
        )
        assert np.allclose(channel, average)

    def test_phase_flip_is_stochastic_z(self):
        p = 0.4
        rho = np.array([[0.6, 0.3], [0.3, 0.4]], dtype=complex)
        kraus = phase_flip_kraus(p)
        channel = sum(k @ rho @ k.conj().T for k in kraus)
        z = np.diag([1.0, -1.0])
        stochastic = (1 - p) * rho + p * z @ rho @ z
        assert np.allclose(channel, stochastic)
