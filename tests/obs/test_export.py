"""Unit tests for repro.obs.export: OpenMetrics exposition, the HTTP
exporter, and the JSONL event stream."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    CONTENT_TYPE,
    EventLogWriter,
    MetricsExporter,
    MetricsRegistry,
    escape_label_value,
    read_event_log,
    to_openmetrics,
)


def _snapshot():
    return {
        "counters": {"dd.unique.hits": 7, "service.jobs": 2},
        "gauges": {"service.queue.depth": 3.0},
        "histograms": {
            "trajectory.seconds": {
                "bounds": [0.1, 1.0],
                "counts": [4, 1, 2],
                "sum": 3.5,
                "count": 7,
            }
        },
    }


class TestFormatter:
    def test_counters_get_total_suffix(self):
        text = to_openmetrics(_snapshot())
        assert "# TYPE repro_dd_unique_hits counter" in text
        assert "repro_dd_unique_hits_total 7" in text

    def test_help_lines_carry_dotted_source_names(self):
        text = to_openmetrics(_snapshot())
        # Operators grep for the registry name, mangling notwithstanding.
        assert "# HELP repro_service_queue_depth source=service.queue.depth" in text
        assert "repro_service_queue_depth 3" in text

    def test_histogram_buckets_are_cumulative(self):
        text = to_openmetrics(_snapshot())
        assert 'repro_trajectory_seconds_bucket{le="0.1"} 4' in text
        assert 'repro_trajectory_seconds_bucket{le="1"} 5' in text
        assert 'repro_trajectory_seconds_bucket{le="+Inf"} 7' in text
        assert "repro_trajectory_seconds_sum 3.5" in text
        assert "repro_trajectory_seconds_count 7" in text

    def test_terminates_with_eof(self):
        assert to_openmetrics(None).rstrip("\n").endswith("# EOF")
        assert to_openmetrics(_snapshot()).rstrip("\n").endswith("# EOF")

    def test_metric_name_mangling(self):
        text = to_openmetrics({"counters": {"1weird-name.x": 1}, "gauges": {},
                               "histograms": {}})
        assert "repro__1weird_name_x_total 1" in text

    def test_labeled_gauges_grouped_per_metric(self):
        text = to_openmetrics(
            None,
            labeled_gauges=[
                ("job.estimate.halfwidth", {"property": "fidelity"}, 0.25),
                ("job.estimate.halfwidth", {"property": "p0"}, 0.5),
            ],
        )
        assert text.count("# TYPE repro_job_estimate_halfwidth gauge") == 1
        assert 'repro_job_estimate_halfwidth{property="fidelity"} 0.25' in text
        assert 'repro_job_estimate_halfwidth{property="p0"} 0.5' in text


class TestLabelEscaping:
    def test_escape_rules(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_escaped_values_in_exposition(self):
        text = to_openmetrics(
            None,
            labeled_gauges=[
                ("g", {"circuit": 'ghz"4\\v1\nx'}, 1.0),
            ],
        )
        assert 'circuit="ghz\\"4\\\\v1\\nx"' in text


class TestExporter:
    def test_serves_collect_output(self):
        registry = MetricsRegistry()
        with MetricsExporter(
            lambda: to_openmetrics(_snapshot()), port=0, registry=registry
        ) as exporter:
            response = urllib.request.urlopen(exporter.url, timeout=5)
            body = response.read().decode("utf-8")
            assert response.headers["Content-Type"] == CONTENT_TYPE
            assert "repro_dd_unique_hits_total 7" in body
            assert body.rstrip("\n").endswith("# EOF")
            assert registry.counter("export.scrapes").value == 1

    def test_unknown_path_is_404(self):
        with MetricsExporter(lambda: to_openmetrics(None), port=0) as exporter:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    exporter.url.replace("/metrics", "/nope"), timeout=5
                )
            assert excinfo.value.code == 404

    def test_collect_failure_is_500_and_server_survives(self):
        calls = {"n": 0}

        def collect():
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("boom")
            return to_openmetrics(None)

        with MetricsExporter(collect, port=0) as exporter:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(exporter.url, timeout=5)
            assert excinfo.value.code == 500
            body = urllib.request.urlopen(exporter.url, timeout=5).read()
            assert b"# EOF" in body


class TestEventLog:
    def test_appends_jsonl(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        registry = MetricsRegistry()
        with EventLogWriter(path, registry=registry) as writer:
            writer.write({"event": "job.start", "job": "abc"})
            writer.write({"event": "heartbeat", "queue_depth": 2})
        with open(path, encoding="utf-8") as handle:
            events = [json.loads(line) for line in handle]
        assert [e["event"] for e in events] == ["job.start", "heartbeat"]
        assert registry.counter("export.events.written").value == 2

    def test_close_is_idempotent_and_writes_after_close_are_dropped(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        writer = EventLogWriter(path)
        writer.write({"event": "one"})
        writer.close()
        writer.close()
        writer.write({"event": "late"})  # silently dropped, no crash
        with open(path, encoding="utf-8") as handle:
            assert len(handle.readlines()) == 1

    def test_fsync_interval_batches_durability_not_visibility(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLogWriter(path, fsync_interval=60.0) as writer:
            writer.write({"event": "one"})
            writer.write({"event": "two"})
            # Flushed per event even when the fsync is amortised.
            with open(path, encoding="utf-8") as handle:
                assert len(handle.readlines()) == 2
            writer.flush()


class TestReadEventLog:
    def test_missing_file_reads_empty(self, tmp_path):
        assert read_event_log(str(tmp_path / "absent.jsonl")) == []

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLogWriter(path) as writer:
            writer.write({"event": "serve.start", "pid": 42})
            writer.write({"event": "job.done", "job": "abc"})
        events = read_event_log(path)
        assert [e["event"] for e in events] == ["serve.start", "job.done"]

    def test_crash_torn_trailing_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLogWriter(path) as writer:
            writer.write({"event": "one"})
            writer.write({"event": "two"})
        with open(path, "r+b") as handle:
            size = handle.seek(0, 2)
            handle.truncate(size - 5)  # kill -9 mid-append
        events = read_event_log(path)
        assert [e["event"] for e in events] == ["one"]

    def test_unterminated_but_parseable_tail_is_skipped(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"event": "one"}) + "\n")
            handle.write(json.dumps({"event": "tail"}))  # no newline
        assert [e["event"] for e in read_event_log(path)] == ["one"]

    def test_non_object_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"event": "one"}\n[1, 2, 3]\nnot json\n')
        assert [e["event"] for e in read_event_log(path)] == ["one"]
