"""Unit and acceptance tests for the DD hot-loop profiler.

The acceptance property (ISSUE/PR 5): with profiling on, the folded-stack
exclusive times must sum to within 10% of the measured span wall time, and
profiling must not change any simulation result.
"""

import time

import pytest

from repro.circuits.library import ghz
from repro.noise import NoiseModel
from repro.obs import (
    HotLoopProfiler,
    attributed_seconds,
    folded_lines,
    merge_profiles,
    profiling_enabled,
)
from repro.obs.profile import PROFILE_ENV
from repro.stochastic import BasisProbability, simulate_stochastic


class TestEnvGate:
    @pytest.mark.parametrize("value", ["off", "0", "false", "no", ""])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(PROFILE_ENV, value)
        assert not profiling_enabled()

    @pytest.mark.parametrize("value", ["on", "1", "true", "yes"])
    def test_enabled_values(self, monkeypatch, value):
        monkeypatch.setenv(PROFILE_ENV, value)
        assert profiling_enabled()

    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert not profiling_enabled()


class TestFrames:
    def test_exclusive_time_excludes_children(self):
        profiler = HotLoopProfiler()
        profiler.push("outer")
        time.sleep(0.01)
        profiler.push("inner")
        time.sleep(0.02)
        profiler.pop()
        profiler.pop()
        frames = profiler.snapshot()["frames"]
        assert set(frames) == {"outer", "outer;inner"}
        assert frames["outer;inner"]["seconds"] >= 0.015
        # The outer frame keeps only its own ~10ms, not the child's 20ms.
        assert frames["outer"]["seconds"] < frames["outer;inner"]["seconds"]

    def test_ops_are_leaf_frames_and_non_reentrant(self):
        profiler = HotLoopProfiler()
        profiler.push("gate")
        token = profiler.op_begin("multiply")
        assert token is not None
        # A nested public DD call must not double count.
        assert profiler.op_begin("add") is None
        profiler.op_end(None, "add")  # no-op token
        profiler.op_end(token, "multiply")
        profiler.pop()
        frames = profiler.snapshot()["frames"]
        assert "gate;dd.multiply" in frames
        assert "gate;dd.add" not in frames
        # Another op may start once the first finished.
        assert profiler.op_begin("add") is not None

    def test_record_nodes_growth_and_peak(self):
        profiler = HotLoopProfiler()
        profiler.push("g0")
        profiler.record_nodes(5)
        profiler.record_nodes(9)   # +4
        profiler.record_nodes(3)   # shrink: no growth, peak stays
        profiler.pop()
        nodes = profiler.snapshot()["nodes"]
        assert nodes["g0"] == {"growth": 9, "peak": 9}

    def test_folded_lines_sum_to_attributed_time(self):
        profiler = HotLoopProfiler()
        profiler.push("span")
        profiler.push("trajectory")
        time.sleep(0.005)
        profiler.pop()
        profiler.pop()
        profile = profiler.snapshot()
        lines = folded_lines(profile)
        assert all(" " in line for line in lines)
        total_us = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        assert total_us == pytest.approx(attributed_seconds(profile) * 1e6, abs=len(lines))


class TestMerge:
    def test_counts_and_seconds_add_peaks_max(self):
        first = {
            "version": 1, "wall_seconds": 1.0,
            "frames": {"span": {"count": 2, "seconds": 0.5}},
            "nodes": {"span": {"growth": 3, "peak": 10}},
        }
        second = {
            "version": 1, "wall_seconds": 2.0,
            "frames": {"span": {"count": 1, "seconds": 0.25},
                       "span;g1": {"count": 4, "seconds": 0.1}},
            "nodes": {"span": {"growth": 1, "peak": 7}},
        }
        merged = merge_profiles(first, None, {}, second)
        assert merged["wall_seconds"] == pytest.approx(3.0)
        assert merged["frames"]["span"] == {"count": 3, "seconds": 0.75}
        assert merged["frames"]["span;g1"]["count"] == 4
        assert merged["nodes"]["span"] == {"growth": 4, "peak": 10}


class TestEndToEnd:
    NOISE = NoiseModel.paper_defaults().scaled(10)

    def _run(self, trajectories=60):
        return simulate_stochastic(
            ghz(6),
            self.NOISE,
            [BasisProbability("0" * 6)],
            trajectories=trajectories,
            seed=11,
            sample_shots=0,
        )

    def test_profile_off_by_default(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert self._run().profile == {}

    def test_profile_attribution_within_ten_percent_of_wall(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "on")
        profile = self._run().profile
        assert profile["frames"], "profiling enabled but no frames collected"
        wall = profile["wall_seconds"]
        assert wall > 0
        # The PR's acceptance gate: folded exclusive times explain the
        # whole span wall time (no unattributed or double-counted time).
        assert attributed_seconds(profile) == pytest.approx(wall, rel=0.10)

    def test_per_gate_frames_present(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "on")
        profile = self._run().profile
        gate_frames = [p for p in profile["frames"] if ";trajectory;g" in p]
        assert gate_frames, sorted(profile["frames"])
        dd_ops = {p.rsplit(";", 1)[-1] for p in profile["frames"]
                  if p.rsplit(";", 1)[-1].startswith("dd.")}
        assert "dd.multiply" in dd_ops

    def test_profiling_does_not_change_results(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        plain = self._run()
        monkeypatch.setenv(PROFILE_ENV, "on")
        profiled = self._run()
        for name, estimate in plain.estimates.items():
            assert profiled.estimates[name].mean == estimate.mean  # bit-identical
        assert profiled.completed_trajectories == plain.completed_trajectories
