"""Unit tests for repro.obs.context: deterministic span ids, stitching,
and Chrome trace_event conversion."""

import json

from repro.obs import (
    TraceContext,
    derive_span_id,
    job_trace_context,
    stitch_trace,
    to_chrome_trace,
    write_chrome_trace,
)


class TestSpanIds:
    def test_derivation_is_deterministic(self):
        first = derive_span_id("abcd", "chunk", 3, 0)
        second = derive_span_id("abcd", "chunk", 3, 0)
        assert first == second
        assert len(first) == 16
        assert int(first, 16) >= 0  # hex

    def test_disambiguators_separate_siblings(self):
        base = derive_span_id("abcd", "chunk", 0, 0)
        assert derive_span_id("abcd", "chunk", 1, 0) != base
        assert derive_span_id("abcd", "chunk", 0, 1) != base  # retry attempt

    def test_job_root_context(self):
        key = "f" * 64
        root = job_trace_context(key)
        assert root.trace_id == key[:16]
        assert root.parent_id is None
        assert root == job_trace_context(key)  # content-addressed

    def test_child_links_to_parent(self):
        root = job_trace_context("a" * 64)
        child = root.child("chunk", 2, 0)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id
        # Same derivation on a rerun — the propagation determinism tests
        # in tests/service lean on exactly this.
        assert child == root.child("chunk", 2, 0)

    def test_to_dict_round_trip(self):
        context = TraceContext("t", "s", "p")
        assert context.to_dict() == {
            "trace_id": "t", "span_id": "s", "parent_id": "p",
        }


def _span(name, span_id, parent_id=None, start=0.0, duration=1.0, **attrs):
    return {
        "name": name,
        "start": start,
        "duration": duration,
        "attrs": attrs,
        "trace_id": "t",
        "span_id": span_id,
        "parent_id": parent_id,
    }


class TestStitch:
    def test_builds_single_tree(self):
        events = [
            _span("chunk", "c2", "root", start=2.0),
            _span("job", "root", None, start=0.0, duration=5.0),
            _span("chunk", "c1", "root", start=1.0),
            _span("traj", "g1", "c1", start=1.5),
        ]
        tree = stitch_trace(events)
        assert tree["spans"] == 4
        assert tree["orphans"] == []
        (root,) = tree["roots"]
        assert root["name"] == "job"
        assert [c["span_id"] for c in root["children"]] == ["c1", "c2"]
        assert root["children"][0]["children"][0]["span_id"] == "g1"

    def test_orphans_are_reported(self):
        tree = stitch_trace([_span("chunk", "c1", "missing-parent")])
        assert tree["roots"] == []
        assert [o["span_id"] for o in tree["orphans"]] == ["c1"]

    def test_duplicate_span_ids_keep_first(self):
        events = [
            _span("job", "root", None),
            _span("chunk", "c1", "root", start=1.0),
            _span("chunk", "c1", "root", start=9.0),  # checkpoint replay
        ]
        tree = stitch_trace(events)
        assert tree["spans"] == 2
        (root,) = tree["roots"]
        assert len(root["children"]) == 1
        assert root["children"][0]["start"] == 1.0

    def test_events_without_span_id_are_ignored(self):
        tree = stitch_trace([{"name": "housekeeping", "attrs": {}}])
        assert tree == {"roots": [], "orphans": [], "spans": 0}


class TestChromeTrace:
    def test_slices_and_instants(self):
        doc = to_chrome_trace([
            _span("chunk", "c1", "root", start=1.0, duration=0.5, worker=3),
            _span("mark", "m1", "root", start=2.0, duration=0.0),
        ])
        assert doc["displayTimeUnit"] == "ms"
        slice_event, instant = doc["traceEvents"]
        assert slice_event["ph"] == "X"
        assert slice_event["ts"] == 1.0e6
        assert slice_event["dur"] == 0.5e6
        assert slice_event["tid"] == 3  # worker attr selects the track
        assert slice_event["args"]["span_id"] == "c1"
        assert instant["ph"] == "i"
        assert instant["s"] == "t"
        assert "dur" not in instant

    def test_events_sorted_by_timestamp(self):
        doc = to_chrome_trace([
            _span("b", "s2", start=5.0),
            _span("a", "s1", start=1.0),
        ])
        assert [e["name"] for e in doc["traceEvents"]] == ["a", "b"]

    def test_non_numeric_tid_falls_back_to_zero(self):
        doc = to_chrome_trace([_span("x", "s1", worker="dispatcher")])
        assert doc["traceEvents"][0]["tid"] == 0

    def test_write_round_trips_as_json(self, tmp_path):
        path = str(tmp_path / "job.trace.json")
        write_chrome_trace(path, [_span("job", "root", duration=2.0)])
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["traceEvents"][0]["name"] == "job"
        assert data["traceEvents"][0]["dur"] == 2.0e6
