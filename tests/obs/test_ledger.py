"""Run ledger: torn tails, rotation idempotency, aggregate merge algebra."""

import json
import os
import random

import pytest

from repro.circuits.library import ghz
from repro.faults import FaultPlan, FaultSpec, PLAN_ENV, reset_injector_cache
from repro.noise import NoiseModel
from repro.obs.ledger import (
    FamilyAggregate,
    LEDGER_SCHEMA,
    RunLedger,
    circuit_fingerprint,
    ledger_path,
    replay_ledger,
)
from repro.obs.metrics import MetricsRegistry

PAPER_NOISE = NoiseModel.paper_defaults()
FP = "a" * 16
OTHER_FP = "b" * 16
KEY = "c" * 64


def _record_run(ledger, fp=FP, method="stochastic", peak=30, key=KEY, rate=120.0):
    ledger.record_run(
        key=key,
        fingerprint=fp,
        method=method,
        qubits=5,
        depth=6,
        peak_nodes=peak,
        cpu_seconds=1.5,
        elapsed_seconds=2.0,
        trajectories=100,
        effective_trajectories=90.0,
        trajectories_per_second=rate,
        p_clean=0.9,
        halfwidths={"P(00000)": 0.01},
    )


@pytest.fixture
def wal(tmp_path):
    return ledger_path(str(tmp_path))


class TestRoundTrip:
    def test_runs_replay_into_family_aggregates(self, wal):
        with RunLedger(wal) as ledger:
            _record_run(ledger, method="stochastic", peak=30)
            _record_run(ledger, method="exact", peak=500)
            ledger.record_fallback(KEY, FP, nodes=4000, ceiling=1000)
        state = replay_ledger(wal)
        family = state.aggregates[FP]
        assert family.runs == 2
        assert family.exact_runs == 1 and family.stochastic_runs == 1
        assert family.fallbacks == 1
        assert family.exact_peak_nodes == 500
        assert family.state_peak_nodes == 30
        assert family.fallback_peak_nodes == 4000
        assert family.mean_p_clean() == pytest.approx(0.9)
        assert family.median_rate() > 0.0

    def test_missing_file_replays_empty(self, tmp_path):
        state = replay_ledger(str(tmp_path / "nope" / "runs.jsonl"))
        assert state.aggregates == {}

    def test_recent_window_keeps_raw_records(self, wal):
        with RunLedger(wal) as ledger:
            for i in range(12):
                _record_run(ledger, rate=float(i + 1))
        state = replay_ledger(wal)
        window = state.recent[FP]
        assert len(window) == 8  # DEFAULT_RECENT_RECORDS
        assert window[-1]["trajectories_per_second"] == 12.0
        # The aggregate still counted every run, not just the window.
        assert state.aggregates[FP].runs == 12


class TestTornTail:
    def test_truncated_final_record_is_skipped(self, wal):
        with RunLedger(wal) as ledger:
            _record_run(ledger)
            _record_run(ledger, method="exact", peak=500)
        with open(wal, "rb") as handle:
            raw = handle.read()
        lines = raw.rstrip(b"\n").split(b"\n")
        torn = b"\n".join(lines[:-1]) + b"\n" + lines[-1][: len(lines[-1]) // 2]
        with open(wal, "wb") as handle:
            handle.write(torn)
        metrics = MetricsRegistry()
        state = replay_ledger(wal, metrics)
        assert state.aggregates[FP].runs == 1
        assert state.aggregates[FP].exact_runs == 0
        assert metrics.snapshot()["counters"]["ledger.replay.torn_skipped"] == 1

    def test_unterminated_but_parseable_tail_is_skipped(self, wal):
        """A tail that happens to parse is still untrusted without its \\n."""
        with RunLedger(wal) as ledger:
            _record_run(ledger)
        record = json.dumps(
            {"rec": "run", "job": KEY, "fp": FP, "method": "exact",
             "qubits": 5, "depth": 6, "peak_nodes": 9999},
            separators=(",", ":"),
        )
        with open(wal, "ab") as handle:
            handle.write(record.encode("utf-8"))  # no trailing newline
        state = replay_ledger(wal)
        assert state.aggregates[FP].exact_runs == 0
        assert state.aggregates[FP].exact_peak_nodes == 0

    def test_bad_interior_line_is_skipped(self, wal):
        with RunLedger(wal) as ledger:
            _record_run(ledger)
            _record_run(ledger)
        with open(wal, "rb") as handle:
            lines = handle.read().rstrip(b"\n").split(b"\n")
        lines.insert(1, b"\x00garbage not json\x00")
        with open(wal, "wb") as handle:
            handle.write(b"\n".join(lines) + b"\n")
        metrics = MetricsRegistry()
        state = replay_ledger(wal, metrics)
        assert state.aggregates[FP].runs == 2
        assert metrics.snapshot()["counters"]["ledger.replay.bad_skipped"] == 1

    def test_open_time_rotation_heals_torn_tail(self, wal):
        with RunLedger(wal) as ledger:
            _record_run(ledger)
            _record_run(ledger)
        with open(wal, "r+b") as handle:
            handle.truncate(os.path.getsize(wal) - 7)
        with RunLedger(wal) as reopened:
            assert reopened.aggregates()[FP].runs == 1
        with open(wal, "rb") as handle:
            raw = handle.read()
        assert raw.endswith(b"\n")
        assert json.loads(raw.split(b"\n")[0])["schema"] == LEDGER_SCHEMA


class TestRotation:
    def test_reopen_twice_never_double_counts(self, wal):
        """Folded carry-over records must not re-enter the aggregates."""
        with RunLedger(wal) as ledger:
            _record_run(ledger, peak=30)
            _record_run(ledger, method="exact", peak=500)
            ledger.record_fallback(KEY, FP, nodes=4000, ceiling=1000)
            baseline = ledger.aggregates()[FP].to_dict()
        for _ in range(3):  # each open rotates
            with RunLedger(wal) as reopened:
                family = reopened.aggregates()[FP]
                assert family.to_dict() == baseline
                # Raw records survive rotation for trend display...
                assert len(reopened.recent(FP)) == 3
                # ...stamped folded so replay keeps them out of the sums.
                assert all(r.get("folded") for r in reopened.recent(FP))

    def test_size_rotation_compacts_but_preserves_telemetry(self, wal):
        with RunLedger(wal, max_bytes=2_000) as ledger:
            for i in range(100):
                _record_run(ledger, rate=float(i + 1))
            assert ledger.aggregates()[FP].runs == 100
            rotations = ledger.metrics.snapshot()["counters"]["ledger.rotations"]
            assert rotations > 1  # open-time plus at least one size-triggered
        assert os.path.getsize(wal) < 10_000
        assert replay_ledger(wal).aggregates[FP].runs == 100

    def test_multiple_families_kept_apart(self, wal):
        with RunLedger(wal) as ledger:
            _record_run(ledger, fp=FP, peak=30)
            _record_run(ledger, fp=OTHER_FP, method="exact", peak=700)
        with RunLedger(wal) as reopened:
            assert reopened.aggregates()[FP].stochastic_runs == 1
            assert reopened.aggregates()[OTHER_FP].exact_peak_nodes == 700
            assert reopened.family("f" * 16) is None


def _assert_close(left, right):
    """Structural equality with float tolerance (sums reassociate)."""
    assert type(left) is type(right) or (
        isinstance(left, (int, float)) and isinstance(right, (int, float))
    )
    if isinstance(left, dict):
        assert left.keys() == right.keys()
        for key in left:
            _assert_close(left[key], right[key])
    elif isinstance(left, (list, tuple)):
        assert len(left) == len(right)
        for a, b in zip(left, right):
            _assert_close(a, b)
    elif isinstance(left, float):
        assert left == pytest.approx(right)
    else:
        assert left == right


class TestAggregateMergeAlgebra:
    """Aggregates must be associative so rotation order never matters."""

    @staticmethod
    def _random_records(rng, count):
        records = []
        for i in range(count):
            if rng.random() < 0.2:
                records.append(
                    {"rec": "fallback", "fp": FP,
                     "nodes": rng.randrange(1, 10**6),
                     "ceiling": rng.randrange(1, 10**5)}
                )
            else:
                records.append(
                    {"rec": "run", "fp": FP,
                     "method": rng.choice(["exact", "stochastic"]),
                     "qubits": rng.randrange(2, 20),
                     "depth": rng.randrange(1, 50),
                     "peak_nodes": rng.randrange(1, 10**6),
                     "cpu_seconds": rng.random() * 10,
                     "elapsed_seconds": rng.random() * 10,
                     "trajectories": rng.randrange(0, 10**4),
                     "effective_trajectories": rng.random() * 10**4,
                     "trajectories_per_second": rng.random() * 10**5,
                     "p_clean": rng.random()}
                )
        return records

    @staticmethod
    def _fold(records):
        aggregate = FamilyAggregate(FP)
        for record in records:
            if record["rec"] == "run":
                aggregate.observe_run(record)
            else:
                aggregate.observe_fallback(record)
        return aggregate

    @pytest.mark.parametrize("seed", range(5))
    def test_any_partition_merges_to_the_same_aggregate(self, seed):
        rng = random.Random(seed)
        records = self._random_records(rng, 40)
        whole = self._fold(records)
        # Split at two random cut points into three chunks, merge pairwise
        # in both association orders: (a+b)+c and a+(b+c).
        i, j = sorted(rng.sample(range(1, 40), 2))
        parts = [records[:i], records[i:j], records[j:]]
        left = self._fold(parts[0])
        left.merge(self._fold(parts[1]))
        left.merge(self._fold(parts[2]))
        bc = self._fold(parts[1])
        bc.merge(self._fold(parts[2]))
        right = self._fold(parts[0])
        right.merge(bc)
        _assert_close(left.to_dict(), right.to_dict())
        _assert_close(left.to_dict(), whole.to_dict())

    def test_roundtrip_through_dict(self):
        rng = random.Random(99)
        aggregate = self._fold(self._random_records(rng, 25))
        clone = FamilyAggregate.from_dict(aggregate.to_dict())
        clone.fingerprint = FP
        assert clone.to_dict() == aggregate.to_dict()


class TestFingerprint:
    def test_stable_across_rates_and_budgets(self):
        base = circuit_fingerprint(ghz(5), PAPER_NOISE)
        assert circuit_fingerprint(ghz(5), PAPER_NOISE.scaled(0.5)) == base
        assert circuit_fingerprint(ghz(5), PAPER_NOISE) == base

    def test_sensitive_to_structure(self):
        base = circuit_fingerprint(ghz(5), PAPER_NOISE)
        assert circuit_fingerprint(ghz(6), PAPER_NOISE) != base
        assert circuit_fingerprint(ghz(5), None) != base
        assert circuit_fingerprint(ghz(5), PAPER_NOISE, "dense") != base
        measured = circuit_fingerprint(ghz(5, measure=True), PAPER_NOISE)
        assert measured != base

    def test_is_short_hex(self):
        fingerprint = circuit_fingerprint(ghz(3), None)
        assert len(fingerprint) == 16
        int(fingerprint, 16)  # parses as hex


class TestFaultSites:
    @pytest.fixture(autouse=True)
    def _clean_injector(self, monkeypatch):
        monkeypatch.delenv(PLAN_ENV, raising=False)
        reset_injector_cache()
        yield
        reset_injector_cache()

    def _arm(self, monkeypatch, kind):
        plan = FaultPlan(faults=(FaultSpec(kind=kind, operation="run"),), seed=0)
        monkeypatch.setenv(PLAN_ENV, plan.to_json())
        reset_injector_cache()

    def test_enospc_degrades_but_mirror_advances(self, wal, monkeypatch):
        self._arm(monkeypatch, "enospc-ledger")
        with RunLedger(wal) as ledger:
            _record_run(ledger)  # ENOSPC injected
            assert ledger.degraded
            _record_run(ledger)  # shed during cooldown
            counters = ledger.metrics.snapshot()["counters"]
            assert counters["ledger.write.errors"] == 1
            assert counters["ledger.degraded.skipped"] == 1
            # The running process still dispatches on fresh history.
            assert ledger.aggregates()[FP].runs == 2
        # Crash durability for the shed records is what was lost.
        assert FP not in replay_ledger(wal).aggregates

    def test_torn_ledger_fault_tears_the_tail(self, wal, monkeypatch):
        self._arm(monkeypatch, "torn-ledger")
        with RunLedger(wal) as ledger:
            _record_run(ledger)
        metrics = MetricsRegistry()
        state = replay_ledger(wal, metrics)
        assert FP not in state.aggregates
        assert metrics.snapshot()["counters"]["ledger.replay.torn_skipped"] == 1


class TestMetricsSurface:
    def test_snapshot_refreshes_occupancy_gauges(self, wal):
        with RunLedger(wal) as ledger:
            _record_run(ledger, fp=FP)
            _record_run(ledger, fp=OTHER_FP)
            snapshot = ledger.metrics_snapshot()
            assert snapshot["gauges"]["ledger.families"] == 2.0
            assert snapshot["gauges"]["ledger.runs.total"] == 2.0
            assert snapshot["counters"]["ledger.records.written"] == 2
