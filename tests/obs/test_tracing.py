"""Unit tests for repro.obs.tracing: spans, events, bounded buffering."""

import json

from repro.obs import NULL_TRACER, Tracer


class TestTracer:
    def test_event_records_attrs(self):
        tracer = Tracer()
        tracer.event("job.submit", job="abc", chunks=4)
        (entry,) = tracer.export()
        assert entry["name"] == "job.submit"
        assert entry["attrs"] == {"job": "abc", "chunks": 4}
        assert entry["duration"] == 0.0

    def test_span_stamps_duration(self):
        tracer = Tracer()
        with tracer.span("chunk.execute", chunk=1):
            pass
        (entry,) = tracer.export()
        assert entry["duration"] >= 0.0
        assert entry["attrs"] == {"chunk": 1}

    def test_span_records_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert len(tracer) == 1

    def test_export_is_json_able_and_start_ordered(self):
        tracer = Tracer()
        for index in range(5):
            tracer.event("tick", index=index)
        events = tracer.export()
        json.dumps(events)  # must not raise
        starts = [event["start"] for event in events]
        assert starts == sorted(starts)

    def test_bounded_buffer_evicts_oldest(self):
        tracer = Tracer(max_events=3)
        for index in range(5):
            tracer.event("tick", index=index)
        events = tracer.export()
        assert len(events) == 3
        assert [event["attrs"]["index"] for event in events] == [2, 3, 4]
        assert tracer.dropped == 2

    def test_clear(self):
        tracer = Tracer(max_events=1)
        tracer.event("a")
        tracer.event("b")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0


class TestNullTracer:
    def test_records_nothing(self):
        NULL_TRACER.event("ignored")
        with NULL_TRACER.span("also.ignored"):
            pass
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.export() == []
