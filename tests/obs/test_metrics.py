"""Unit tests for repro.obs.metrics: instruments, snapshots, merge algebra."""

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TIME_BUCKETS,
    delta_snapshots,
    derive_rates,
    format_histogram,
    merge_snapshots,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_set_and_max(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.max(1.0)
        assert gauge.value == 3.0
        gauge.max(7.0)
        assert gauge.value == 7.0

    def test_histogram_bucketing(self):
        hist = Histogram("h", (1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1, 1]  # last is the +inf overflow
        assert hist.count == 4
        assert hist.total == pytest.approx(105.0)
        assert hist.mean() == pytest.approx(105.0 / 4)

    def test_histogram_boundary_goes_to_lower_bucket(self):
        hist = Histogram("h", (1.0, 2.0))
        hist.observe(1.0)
        assert hist.counts == [1, 0, 0]

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (2.0, 1.0))


class TestRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_histogram_bounds_conflict(self):
        registry = MetricsRegistry()
        registry.histogram("z", (1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("z", (1.0, 3.0))

    def test_timer_records_into_histogram(self):
        registry = MetricsRegistry()
        with registry.timer("op.seconds"):
            pass
        hist = registry.histogram("op.seconds", TIME_BUCKETS)
        assert hist.count == 1
        assert hist.total >= 0.0

    def test_snapshot_is_json_like(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.5)
        registry.histogram("h", (1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must not raise
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["gauges"] == {"g": 2.5}
        assert snapshot["histograms"]["h"]["counts"] == [1, 0]


def _snap(counters=None, gauges=None, hist=None):
    snapshot = {"counters": counters or {}, "gauges": gauges or {}, "histograms": {}}
    if hist is not None:
        snapshot["histograms"]["h"] = hist
    return snapshot


def _hist(counts, total):
    return {"bounds": [1.0, 2.0], "counts": list(counts), "sum": total,
            "count": sum(counts)}


class TestMergeAlgebra:
    def test_counters_add_gauges_max(self):
        merged = merge_snapshots(
            _snap({"c": 2}, {"g": 1.0}), _snap({"c": 3}, {"g": 5.0})
        )
        assert merged["counters"] == {"c": 5}
        assert merged["gauges"] == {"g": 5.0}

    def test_histograms_add_elementwise(self):
        merged = merge_snapshots(
            _snap(hist=_hist([1, 0, 2], 3.0)), _snap(hist=_hist([0, 4, 1], 7.0))
        )
        assert merged["histograms"]["h"]["counts"] == [1, 4, 3]
        assert merged["histograms"]["h"]["sum"] == pytest.approx(10.0)
        assert merged["histograms"]["h"]["count"] == 8

    def test_bounds_mismatch_pads_to_union(self):
        """Histograms with different bucket sets merge onto the sorted
        union of bounds — counts follow their upper bound, overflow stays
        overflow, and no observations are dropped."""
        other = {"bounds": [9.0], "counts": [2, 1], "sum": 12.0, "count": 3}
        merged = merge_snapshots(
            _snap(hist=_hist([1, 0, 4], 0.5)),
            {"counters": {}, "gauges": {}, "histograms": {"h": other}},
        )
        hist = merged["histograms"]["h"]
        assert hist["bounds"] == [1.0, 2.0, 9.0]
        # [1,0,4] on (1,2,+inf) lands at (<=1, <=2, overflow); [2,1] on
        # (9,+inf) lands at (<=9, overflow).
        assert hist["counts"] == [1, 0, 2, 5]
        assert hist["count"] == 8
        assert hist["sum"] == pytest.approx(12.5)

    def test_bounds_mismatch_merge_is_associative(self):
        a = _snap(hist=_hist([1, 2, 0], 3.0))
        b = {"counters": {}, "gauges": {},
             "histograms": {"h": {"bounds": [0.5], "counts": [4, 1],
                                  "sum": 2.0, "count": 5}}}
        c = {"counters": {}, "gauges": {},
             "histograms": {"h": {"bounds": [2.0, 9.0], "counts": [0, 3, 1],
                                  "sum": 30.0, "count": 4}}}
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert left["histograms"]["h"] == right["histograms"]["h"]
        assert left["histograms"]["h"]["count"] == 12

    def test_merge_is_associative_and_commutative(self):
        a = _snap({"c": 1, "x": 7}, {"g": 2.0}, _hist([1, 0, 0], 0.5))
        b = _snap({"c": 2}, {"g": 9.0}, _hist([0, 3, 0], 4.5))
        c = _snap({"y": 4}, {"g": 1.0}, _hist([0, 0, 2], 20.0))
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        flat = merge_snapshots(a, b, c)
        swapped = merge_snapshots(c, a, b)
        for variant in (right, flat, swapped):
            assert variant["counters"] == left["counters"]
            assert variant["gauges"] == left["gauges"]
            assert variant["histograms"]["h"]["counts"] == left["histograms"]["h"]["counts"]
            assert variant["histograms"]["h"]["count"] == left["histograms"]["h"]["count"]
            # Float addition reorders across variants; identical up to ulps.
            assert variant["histograms"]["h"]["sum"] == pytest.approx(
                left["histograms"]["h"]["sum"]
            )

    def test_single_argument_is_deep_copy(self):
        original = _snap({"c": 1}, hist=_hist([1, 0, 0], 0.5))
        copy = merge_snapshots(original)
        copy["counters"]["c"] = 99
        copy["histograms"]["h"]["counts"][0] = 99
        assert original["counters"]["c"] == 1
        assert original["histograms"]["h"]["counts"][0] == 1

    def test_merge_ignores_none_and_empty(self):
        merged = merge_snapshots(None, {}, _snap({"c": 1}))
        assert merged["counters"] == {"c": 1}


class TestDelta:
    def test_counters_subtract_clamped(self):
        delta = delta_snapshots(_snap({"c": 5, "new": 2}), _snap({"c": 3, "gone": 9}))
        assert delta["counters"] == {"c": 2, "new": 2, "gone": 0}

    def test_gauges_keep_after_level(self):
        delta = delta_snapshots(_snap(gauges={"g": 4.0}), _snap(gauges={"g": 9.0}))
        assert delta["gauges"] == {"g": 4.0}

    def test_histograms_subtract(self):
        delta = delta_snapshots(
            _snap(hist=_hist([3, 1, 0], 5.0)), _snap(hist=_hist([1, 1, 0], 2.0))
        )
        assert delta["histograms"]["h"]["counts"] == [2, 0, 0]
        assert delta["histograms"]["h"]["sum"] == pytest.approx(3.0)

    def test_none_before_is_identity(self):
        after = _snap({"c": 5})
        assert delta_snapshots(after, None)["counters"] == {"c": 5}

    def test_delta_then_merge_roundtrip(self):
        """merge(before, delta(after, before)) == after for counters."""
        before = _snap({"c": 3}, hist=_hist([1, 0, 0], 1.0))
        after = _snap({"c": 8}, hist=_hist([2, 2, 0], 6.0))
        rebuilt = merge_snapshots(before, delta_snapshots(after, before))
        assert rebuilt["counters"] == after["counters"]
        assert rebuilt["histograms"]["h"]["counts"] == after["histograms"]["h"]["counts"]


class TestDeriveRates:
    def test_rates_from_hit_miss_pairs(self):
        rates = derive_rates(_snap({"t.hits": 3, "t.misses": 1, "lone.hits": 5}))
        assert rates == {"t.hit_rate": pytest.approx(0.75)}

    def test_zero_total_is_zero_rate(self):
        rates = derive_rates(_snap({"t.hits": 0, "t.misses": 0}))
        assert rates["t.hit_rate"] == 0.0

    def test_empty_snapshot(self):
        assert derive_rates(None) == {}
        assert derive_rates({}) == {}

    def test_rates_always_in_unit_interval(self):
        rates = derive_rates(
            _snap({"a.hits": 100, "a.misses": 0, "b.hits": 0, "b.misses": 50})
        )
        for value in rates.values():
            assert 0.0 <= value <= 1.0

    def test_duration_adds_per_second_rates(self):
        rates = derive_rates(_snap({"work.done": 10}), duration=4.0)
        assert rates["work.done.per_second"] == pytest.approx(2.5)

    def test_zero_duration_yields_zero_not_inf(self):
        """Zero-length delta windows must not divide by zero; rates clamp
        to 0.0 rather than raising or returning inf."""
        for duration in (0.0, -1.0):
            rates = derive_rates(_snap({"work.done": 10}), duration=duration)
            assert rates["work.done.per_second"] == 0.0

    def test_no_duration_means_no_per_second_keys(self):
        rates = derive_rates(_snap({"work.done": 10}))
        assert not any(key.endswith(".per_second") for key in rates)


class TestFormatHistogram:
    def test_skips_empty_buckets_and_labels_overflow(self):
        lines = format_histogram(
            {"bounds": [1.0, 2.0], "counts": [3, 0, 1], "sum": 9.0, "count": 4}
        )
        text = "\n".join(lines)
        assert "count=4" in text
        assert "<=        1" in text
        assert "2" not in text.split("\n")[1]  # the empty 2.0 bucket is skipped
        assert "+inf" in text

    def test_empty_histogram(self):
        lines = format_histogram(
            {"bounds": [1.0], "counts": [0, 0], "sum": 0.0, "count": 0}
        )
        assert "count=0" in lines[0]
        assert len(lines) == 1
