"""Tests for the LRU + on-disk content-addressed result store."""

import os

import pytest

from repro.service import ResultStore
from repro.stochastic.results import PropertyEstimate, StochasticResult


def make_result(n: int = 10, name: str = "c") -> StochasticResult:
    result = StochasticResult(
        circuit_name=name, backend_kind="dd", requested_trajectories=n
    )
    result.completed_trajectories = n
    estimate = PropertyEstimate("P(|0>)")
    for index in range(n):
        estimate.add((index % 2) * 1.0)
    result.estimates["P(|0>)"] = estimate
    result.outcome_counts = {"0": n}
    return result


class TestMemoryStore:
    def test_get_miss_returns_none(self):
        store = ResultStore(directory=None)
        assert store.get("a" * 64) is None
        assert store.misses == 1

    def test_put_get_round_trip(self):
        store = ResultStore(directory=None)
        store.put("k1", make_result())
        fetched = store.get("k1")
        assert fetched.completed_trajectories == 10
        assert fetched.mean("P(|0>)") == pytest.approx(0.5)

    def test_reads_are_independent_copies(self):
        store = ResultStore(directory=None)
        store.put("k1", make_result())
        first = store.get("k1")
        first.completed_trajectories = 999
        first.estimates["P(|0>)"].count = 999
        second = store.get("k1")
        assert second.completed_trajectories == 10
        assert second.estimates["P(|0>)"].count == 10

    def test_lru_eviction(self):
        store = ResultStore(directory=None, capacity=2)
        store.put("k1", make_result())
        store.put("k2", make_result())
        assert store.get("k1") is not None  # k1 now most-recent
        store.put("k3", make_result())  # evicts k2
        assert store.get("k2") is None
        assert store.get("k1") is not None
        assert store.get("k3") is not None

    def test_partials_are_noop_without_disk(self):
        store = ResultStore(directory=None)
        store.put_partial("k1", [(0, 5)], make_result(5))
        assert store.get_partial("k1") is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ResultStore(capacity=0)


class TestDiskStore:
    def test_results_persist_across_instances(self, tmp_path):
        ResultStore(directory=str(tmp_path)).put("k1", make_result())
        fresh = ResultStore(directory=str(tmp_path))
        assert fresh.get("k1").completed_trajectories == 10

    def test_spec_dict_stored_alongside_result(self, tmp_path):
        store = ResultStore(directory=str(tmp_path))
        store.put("k1", make_result(), spec_dict={"circuit_name": "ghz_3"})
        assert store.get_spec_dict("k1")["circuit_name"] == "ghz_3"

    def test_partial_checkpoint_lifecycle(self, tmp_path):
        store = ResultStore(directory=str(tmp_path))
        store.put_partial("k1", [(0, 5), (10, 5)], make_result(10))
        spans, partial = store.get_partial("k1")
        assert spans == [(0, 5), (10, 5)]
        assert partial.completed_trajectories == 10
        # Storing the final result supersedes (and removes) the checkpoint.
        store.put("k1", make_result(20))
        assert store.get_partial("k1") is None

    def test_eviction_falls_back_to_disk(self, tmp_path):
        store = ResultStore(directory=str(tmp_path), capacity=1)
        store.put("k1", make_result())
        store.put("k2", make_result())  # evicts k1 from memory
        assert store.get("k1") is not None  # re-read from disk

    def test_torn_write_is_a_miss_not_an_error(self, tmp_path):
        store = ResultStore(directory=str(tmp_path))
        path = os.path.join(str(tmp_path), "results", "bad.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"result": {"circ')
        assert store.get("bad") is None

    def test_resolve_key_prefix(self, tmp_path):
        store = ResultStore(directory=str(tmp_path))
        store.put("abcdef" + "0" * 58, make_result())
        store.put("abzzzz" + "0" * 58, make_result())
        assert store.resolve_key("abc") == "abcdef" + "0" * 58
        with pytest.raises(KeyError, match="ambiguous"):
            store.resolve_key("ab")
        with pytest.raises(KeyError, match="no job"):
            store.resolve_key("ffff")

    def test_clear_removes_everything(self, tmp_path):
        store = ResultStore(directory=str(tmp_path))
        store.put("k1", make_result())
        store.put_partial("k2", [(0, 5)], make_result(5))
        removed = store.clear()
        assert removed >= 2
        assert store.get("k1") is None
        assert store.get_partial("k2") is None

    def test_stats(self, tmp_path):
        store = ResultStore(directory=str(tmp_path))
        store.put("k1", make_result())
        store.put_partial("k2", [(0, 5)], make_result(5))
        stats = store.stats()
        assert stats["results"] == 1
        assert stats["partials"] == 1
        assert stats["queued"] == 0
        assert stats["disk_bytes"] > 0
