"""Cross-process trace correlation tests.

A job's spans are recorded in three places — the scheduler (root), the
dispatch stamping, and the forked workers (chunk spans) — and must stitch
into ONE tree with no orphans.  Span ids are content-derived, so reruns of
the same job must produce the identical tree shape, including under
deterministic worker-crash injection (the retry dispatch carries the
attempt number as a disambiguator).
"""

import os

import pytest

from repro.circuits.library import ghz
from repro.faults import FaultPlan, FaultSpec, PLAN_ENV, reset_injector_cache
from repro.noise import NoiseModel
from repro.obs import stitch_trace, to_chrome_trace
from repro.service import JobSpec, Scheduler
from repro.stochastic import BasisProbability, simulate_stochastic

NOISE = NoiseModel.paper_defaults().scaled(10)


@pytest.fixture(autouse=True)
def _clean_injector(monkeypatch):
    monkeypatch.delenv(PLAN_ENV, raising=False)
    reset_injector_cache()
    yield
    reset_injector_cache()


def ghz_spec(trajectories=24, seed=5) -> JobSpec:
    return JobSpec.build(
        ghz(4),
        NOISE,
        [BasisProbability("0000")],
        trajectories=trajectories,
        seed=seed,
        sample_shots=0,
    )


def tree_shape(events):
    """(name, span_id, parent_id) triples — the rerun-stable signature."""
    return sorted(
        (e["name"], e["span_id"], e.get("parent_id"))
        for e in events
        if e.get("span_id")
    )


class TestSerialPath:
    def test_serial_run_emits_stitched_tree(self):
        result = simulate_stochastic(
            ghz(4), NOISE, [BasisProbability("0000")],
            trajectories=10, seed=3, sample_shots=0,
        )
        tree = stitch_trace(result.trace_events)
        assert tree["orphans"] == []
        (root,) = tree["roots"]
        assert root["name"] == "job.run"
        assert [c["name"] for c in root["children"]] == ["chunk.execute"]


class TestParallelPath:
    def test_two_worker_job_is_one_tree_no_orphans(self):
        spec = ghz_spec()
        with Scheduler(workers=2, chunk_size=6) as scheduler:
            result = scheduler.run(spec, timeout=60)
        tree = stitch_trace(result.trace_events)
        assert tree["orphans"] == []
        (root,) = tree["roots"]
        assert root["name"] == "job"
        chunks = root["children"]
        assert len(chunks) == 4  # 24 trajectories / chunk_size 6
        assert {c["name"] for c in chunks} == {"chunk.execute"}
        assert {c["trace_id"] for c in chunks} == {root["trace_id"]}
        # Worker pids exercise the Chrome conversion's track selection.
        doc = to_chrome_trace(result.trace_events)
        assert len(doc["traceEvents"]) == len(result.trace_events)

    def test_tree_shape_is_deterministic_across_reruns(self):
        shapes = []
        for _ in range(2):
            with Scheduler(workers=2, chunk_size=6) as scheduler:
                result = scheduler.run(ghz_spec(), timeout=60)
            shapes.append(tree_shape(result.trace_events))
        assert shapes[0] == shapes[1]

    def test_deterministic_under_worker_crash_injection(self, monkeypatch, tmp_path):
        shapes = []
        for attempt in range(2):
            state_dir = str(tmp_path / f"fault-state-{attempt}")
            os.makedirs(state_dir, exist_ok=True)
            plan = FaultPlan(
                faults=(FaultSpec(kind="crash-before", chunk_index=0),),
                state_dir=state_dir,
            )
            monkeypatch.setenv(PLAN_ENV, plan.to_json())
            reset_injector_cache()
            with Scheduler(workers=2, chunk_size=6) as scheduler:
                result = scheduler.run(ghz_spec(), timeout=60)
            tree = stitch_trace(result.trace_events)
            assert tree["orphans"] == []
            (root,) = tree["roots"]
            # The crashed dispatch never reports; the retry's span (fresh
            # attempt disambiguator) covers chunk 0 — still 4 chunk spans.
            assert len(root["children"]) == 4
            shapes.append(tree_shape(result.trace_events))
        assert shapes[0] == shapes[1]
        # The retried chunk's span id differs from the no-fault run's
        # chunk-0 span id (attempt 1 vs 0) — crashes stay distinguishable.
        monkeypatch.delenv(PLAN_ENV)
        reset_injector_cache()
        with Scheduler(workers=2, chunk_size=6) as scheduler:
            clean = scheduler.run(ghz_spec(), timeout=60)
        assert tree_shape(clean.trace_events) != shapes[0]
