"""Tests for the sharded scheduler: streaming, caching, resume, faults."""

import os
import time

import pytest

from repro.circuits.library import ghz
from repro.noise import NoiseModel
from repro.service import (
    JobCancelledError,
    JobFailedError,
    JobSpec,
    JobState,
    ResultStore,
    Scheduler,
)
from repro.service.scheduler import _remaining_spans
from repro.service.worker import CRASH_ONCE_ENV
from repro.stochastic import BasisProbability, simulate_stochastic

NOISE = NoiseModel.paper_defaults().scaled(10)


def ghz_spec(n=4, trajectories=40, seed=5, **overrides) -> JobSpec:
    return JobSpec.build(
        ghz(n),
        NOISE,
        [BasisProbability("0" * n)],
        trajectories=trajectories,
        seed=seed,
        sample_shots=0,
        **overrides,
    )


def reference(spec: JobSpec):
    """Single-process ground truth for a spec (same master seed)."""
    return simulate_stochastic(
        spec.circuit,
        spec.noise_model,
        spec.properties,
        trajectories=spec.trajectories,
        seed=spec.seed,
        sample_shots=spec.sample_shots,
    )


class TestRemainingSpans:
    def test_nothing_done(self):
        assert _remaining_spans(10, []) == [(0, 10)]

    def test_everything_done(self):
        assert _remaining_spans(10, [(0, 10)]) == []

    def test_holes_are_found(self):
        assert _remaining_spans(10, [(0, 2), (5, 3)]) == [(2, 3), (8, 2)]

    def test_unsorted_and_overlapping_input(self):
        assert _remaining_spans(10, [(5, 3), (0, 6)]) == [(8, 2)]


class TestSchedulerBasics:
    def test_matches_single_process_reference(self):
        spec = ghz_spec()
        ref = reference(spec)
        with Scheduler(workers=2, chunk_size=7) as scheduler:
            result = scheduler.run(spec)
        assert result.completed_trajectories == spec.trajectories
        name = spec.properties[0].name
        assert result.mean(name) == pytest.approx(ref.mean(name), abs=1e-12)
        assert result.errors_fired == ref.errors_fired

    def test_final_result_deterministic_across_worker_counts(self):
        """Fixed chunk plan + index-ordered final merge → bit-identical
        results no matter how many workers raced over the chunks."""
        spec = ghz_spec(trajectories=30)
        name = spec.properties[0].name
        means = []
        for workers in (1, 3):
            with Scheduler(workers=workers, chunk_size=4) as scheduler:
                means.append(scheduler.run(spec).mean(name))
        assert means[0] == means[1]

    def test_submit_is_idempotent_while_live(self):
        spec = ghz_spec()
        with Scheduler(workers=1, chunk_size=10) as scheduler:
            key_a = scheduler.submit(spec)
            key_b = scheduler.submit(spec)
            assert key_a == key_b
            scheduler.result(key_a, timeout=60)

    def test_unknown_key_raises(self):
        with Scheduler(workers=1) as scheduler:
            with pytest.raises(KeyError):
                scheduler.status("nope")
            with pytest.raises(KeyError):
                scheduler.result("nope")


class TestStreaming:
    def test_streaming_estimates_before_completion(self):
        spec = ghz_spec(n=12, trajectories=30, seed=2)
        name = spec.properties[0].name
        with Scheduler(workers=2, chunk_size=1) as scheduler:
            key = scheduler.submit(spec)
            snapshots = []
            deadline = time.time() + 120
            while time.time() < deadline:
                status = scheduler.status(key)
                snapshots.append(status)
                if status.state == JobState.COMPLETED:
                    break
                time.sleep(0.001)
            final = scheduler.result(key, timeout=60)

        partials = [
            s for s in snapshots
            if 0 < s.completed_trajectories < spec.trajectories
        ]
        assert partials, "never observed a streaming (partial) estimate"
        probe = partials[-1]
        assert probe.state == JobState.RUNNING
        assert name in probe.estimates
        estimate = probe.estimates[name]
        assert 0.0 <= estimate.mean <= 1.0
        assert estimate.count == probe.completed_trajectories
        # Hoeffding half-width shrinks as trajectories accumulate.
        assert final.completed_trajectories == spec.trajectories
        assert (
            final.estimates[name].hoeffding_halfwidth() < estimate.halfwidth
        )

    def test_status_render_smoke(self):
        spec = ghz_spec(trajectories=10)
        with Scheduler(workers=1) as scheduler:
            key = scheduler.submit(spec)
            scheduler.result(key, timeout=60)
            text = scheduler.status(key).render()
        assert "completed" in text
        assert "10/10" in text


class TestCaching:
    def test_resubmission_is_a_cache_hit_with_zero_trajectories(self):
        spec = ghz_spec()
        store = ResultStore(directory=None)
        with Scheduler(workers=2, store=store, chunk_size=5) as scheduler:
            first = scheduler.run(spec)
            executed = scheduler.trajectories_executed
            assert executed == spec.trajectories
            again = scheduler.run(spec)
            # Zero new trajectories: the store answered the resubmission.
            assert scheduler.trajectories_executed == executed
            assert scheduler.status(spec.job_key()).cached
            name = spec.properties[0].name
            assert again.mean(name) == first.mean(name)

    def test_cache_hit_across_scheduler_instances_via_disk(self, tmp_path):
        spec = ghz_spec()
        with Scheduler(workers=1, store=ResultStore(directory=str(tmp_path))) as a:
            a.run(spec)
        with Scheduler(workers=1, store=ResultStore(directory=str(tmp_path))) as b:
            result = b.run(spec)
            assert b.trajectories_executed == 0
        assert result.completed_trajectories == spec.trajectories

    def test_resume_from_checkpoint_not_from_zero(self, tmp_path):
        spec = ghz_spec(n=8, trajectories=60, seed=3)
        ref = reference(spec)
        name = spec.properties[0].name
        store = ResultStore(directory=str(tmp_path))
        with Scheduler(workers=2, store=store, chunk_size=3) as first:
            key = first.submit(spec)
            deadline = time.time() + 120
            while (
                first.status(key).completed_trajectories < 9
                and time.time() < deadline
            ):
                time.sleep(0.002)
            first.cancel(key)
            assert first.status(key).state == JobState.CANCELLED
            with pytest.raises(JobCancelledError):
                first.result(key, timeout=5)
        spans, partial = store.get_partial(spec.job_key())
        assert partial.completed_trajectories >= 9
        assert spans

        with Scheduler(
            workers=2, store=ResultStore(directory=str(tmp_path)), chunk_size=3
        ) as second:
            result = second.run(spec)
            # Strictly fewer than M trajectories ran the second time around.
            assert 0 < second.trajectories_executed < spec.trajectories
        assert result.completed_trajectories == spec.trajectories
        assert result.mean(name) == pytest.approx(ref.mean(name), abs=1e-12)
        # Final result replaces the checkpoint.
        assert store.get_partial(spec.job_key()) is None


class TestFaultTolerance:
    def test_injected_worker_crash_is_retried(self, tmp_path, monkeypatch):
        marker = str(tmp_path / "crash-marker")
        monkeypatch.setenv(CRASH_ONCE_ENV, marker)
        spec = ghz_spec(n=8, trajectories=60, seed=3)
        ref = reference(spec)
        name = spec.properties[0].name
        with Scheduler(workers=2, chunk_size=5) as scheduler:
            result = scheduler.run(spec)
            status = scheduler.status(spec.job_key())
        assert os.path.exists(marker), "the crash was never triggered"
        assert status.retries >= 1
        assert result.completed_trajectories == spec.trajectories
        assert result.mean(name) == pytest.approx(ref.mean(name), abs=1e-12)
        assert result.errors_fired == ref.errors_fired

    def test_externally_killed_worker_does_not_fail_the_job(self):
        spec = ghz_spec(n=12, trajectories=40, seed=9)
        ref = reference(spec)
        name = spec.properties[0].name
        with Scheduler(workers=2, chunk_size=1) as scheduler:
            key = scheduler.submit(spec)
            time.sleep(0.05)  # let chunks get in flight
            scheduler._workers[0].process.terminate()
            result = scheduler.result(key, timeout=120)
        assert result.completed_trajectories == spec.trajectories
        assert result.mean(name) == pytest.approx(ref.mean(name), abs=1e-12)

    def test_poisoned_job_fails_after_bounded_retries(self):
        # A 48-qubit dense state vector is refused by the backend, so every
        # attempt at the chunk errors out and the retry budget is consumed.
        spec = JobSpec.build(
            ghz(48),
            NOISE,
            [],
            trajectories=4,
            backend_kind="statevector",
            sample_shots=0,
        )
        with Scheduler(workers=1, max_retries=1, chunk_size=4) as scheduler:
            with pytest.raises(JobFailedError, match="attempts"):
                scheduler.run(spec, timeout=120)
            assert scheduler.status(spec.job_key()).state == JobState.FAILED

    def test_timed_out_job_returns_partial_and_is_not_cached_final(self):
        spec = ghz_spec(n=14, trajectories=100000, timeout=0.4)
        store = ResultStore(directory=None)
        with Scheduler(workers=2, store=store, chunk_size=8) as scheduler:
            result = scheduler.run(spec, timeout=120)
        assert result.timed_out
        assert 0 < result.completed_trajectories < spec.trajectories
        # Partial outcomes must never satisfy future cache lookups.
        assert store.get(spec.job_key()) is None


class TestShutdown:
    def test_shutdown_is_idempotent_and_rejects_new_work(self):
        scheduler = Scheduler(workers=1)
        scheduler.shutdown()
        scheduler.shutdown()
        with pytest.raises(Exception):
            scheduler.submit(ghz_spec())
