"""Lease-based chunk ownership: fencing tokens, renewal, expiry reclaim."""

import pytest

from repro.circuits.library import ghz
from repro.faults import FaultPlan, FaultSpec, PLAN_ENV, reset_injector_cache
from repro.noise import NoiseModel
from repro.service.job import JobSpec
from repro.service.scheduler import Scheduler
from repro.service.store import ResultStore
from repro.service.worker import ChunkOutcome
from repro.stochastic import IdealFidelity, simulate_stochastic


def _spec(trajectories=8, num_qubits=3, seed=0):
    return JobSpec(
        circuit=ghz(num_qubits),
        noise_model=NoiseModel.paper_defaults(),
        properties=(IdealFidelity(),),
        trajectories=trajectories,
        seed=seed,
        backend_kind="dd",
        sample_shots=0,
    )


def _counters(scheduler):
    return scheduler.metrics_snapshot().get("counters", {})


@pytest.fixture(autouse=True)
def _clean_injector(monkeypatch):
    monkeypatch.delenv(PLAN_ENV, raising=False)
    reset_injector_cache()
    yield
    reset_injector_cache()


def _real_chunk_result(spec, first, count):
    """A genuine chunk result (passes the scheduler's outcome validation)."""
    from repro.stochastic.runner import run_trajectory_span

    return run_trajectory_span(
        spec.circuit,
        spec.noise_model,
        spec.properties,
        spec.backend_kind,
        first,
        count,
        spec.seed,
        sample_shots=0,
    )


class TestFencing:
    def test_stale_token_rejected_current_token_commits(self):
        spec = _spec(trajectories=8)
        with Scheduler(workers=1, store=ResultStore(directory=None)) as scheduler:
            # Drain mode parks the job: chunks stay pending, never leased,
            # so the test can inject outcomes with chosen tokens.
            scheduler._draining = True
            key = scheduler.submit_resumed(
                spec, [(0, 0, 4), (1, 4, 4)], {}, token_base=5
            )
            with scheduler._lock:
                job = scheduler._jobs[key]
                job.lease_tokens[0] = 5
            result = _real_chunk_result(spec, 0, 4)

            stale = ChunkOutcome(
                worker_id=0, job_key=key, chunk_index=0,
                first_trajectory=0, num_trajectories=4,
                result=result, error=None, fencing_token=3,
            )
            with scheduler._lock:
                scheduler._handle_outcome(stale)
                assert 0 not in job.completed
            assert _counters(scheduler)["lease.fenced"] == 1

            current = ChunkOutcome(
                worker_id=0, job_key=key, chunk_index=0,
                first_trajectory=0, num_trajectories=4,
                result=result, error=None, fencing_token=5,
            )
            with scheduler._lock:
                scheduler._handle_outcome(current)
                assert 0 in job.completed
                committed = _counters(scheduler)["scheduler.chunks_completed"]
                # A duplicate of an already-committed chunk is a no-op.
                scheduler._handle_outcome(current)
            assert (
                _counters(scheduler)["scheduler.chunks_completed"] == committed
            )

    def test_pre_lease_outcomes_are_not_fenced(self):
        """Tasks dispatched before leasing existed (token None) still commit."""
        spec = _spec(trajectories=4)
        with Scheduler(workers=1, store=ResultStore(directory=None)) as scheduler:
            scheduler._draining = True
            key = scheduler.submit_resumed(spec, [(0, 0, 4)], {}, token_base=0)
            outcome = ChunkOutcome(
                worker_id=0, job_key=key, chunk_index=0,
                first_trajectory=0, num_trajectories=4,
                result=_real_chunk_result(spec, 0, 4), error=None,
                fencing_token=None,
            )
            with scheduler._lock:
                scheduler._handle_outcome(outcome)
            result = scheduler.result(key, timeout=5.0)
        assert result.completed_trajectories == 4


class TestLeaseLifecycle:
    def test_renewal_keeps_a_slow_chunk_owned(self, monkeypatch):
        plan = FaultPlan(
            faults=(FaultSpec(kind="slow-chunk", chunk_index=0, seconds=0.5),),
            seed=0,
        )
        monkeypatch.setenv(PLAN_ENV, plan.to_json())
        reset_injector_cache()
        spec = _spec(trajectories=4)
        with Scheduler(
            workers=1,
            store=ResultStore(directory=None),
            chunk_size=4,
            lease_duration=0.15,
        ) as scheduler:
            result = scheduler.run(spec, timeout=60.0)
            counters = _counters(scheduler)
        assert result.completed_trajectories == 4
        assert counters.get("lease.renewed", 0) >= 1
        assert counters.get("lease.expired", 0) == 0

    def test_expired_lease_is_reclaimed_and_zombie_fenced(self, monkeypatch):
        # lease-expiry stops renewal for chunk 0; slow-chunk keeps its
        # holder busy past the lease, so the reaper reclaims it and the
        # original holder's late report arrives with a dead token.
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="lease-expiry", chunk_index=0),
                FaultSpec(kind="slow-chunk", chunk_index=0, seconds=0.6),
            ),
            seed=0,
        )
        monkeypatch.setenv(PLAN_ENV, plan.to_json())
        reset_injector_cache()
        spec = _spec(trajectories=8, seed=3)
        reference = simulate_stochastic(
            spec.circuit,
            noise_model=spec.noise_model,
            properties=spec.properties,
            trajectories=8,
            backend="dd",
            workers=1,
            seed=3,
            sample_shots=0,
        )
        with Scheduler(
            workers=1,
            store=ResultStore(directory=None),
            chunk_size=4,
            lease_duration=0.1,
        ) as scheduler:
            result = scheduler.run(spec, timeout=60.0)
            counters = _counters(scheduler)
        assert result.completed_trajectories == 8
        assert counters.get("lease.expired", 0) >= 1
        assert counters.get("lease.fenced", 0) >= 1
        # Re-execution is value-identical: per-trajectory seeds derive
        # from absolute indices, merges fold in chunk-index order.
        for name, estimate in result.estimates.items():
            assert abs(estimate.mean - reference.estimates[name].mean) <= 1e-12
