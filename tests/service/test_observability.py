"""Scheduler observability: metrics snapshots, traces, deadline budgets."""

import time

import pytest

from repro.circuits.library import ghz
from repro.noise import NoiseModel
from repro.service import JobSpec, ResultStore, Scheduler
from repro.stochastic import BasisProbability, StochasticSimulator

NOISE = NoiseModel.paper_defaults().scaled(10)


def ghz_spec(n=4, trajectories=40, seed=5, **overrides) -> JobSpec:
    return JobSpec.build(
        ghz(n),
        NOISE,
        [BasisProbability("0" * n)],
        trajectories=trajectories,
        seed=seed,
        sample_shots=0,
        **overrides,
    )


class TestSchedulerMetrics:
    def test_counters_are_preseeded(self):
        with Scheduler(workers=1) as scheduler:
            counters = scheduler.metrics_snapshot()["counters"]
        for name in (
            "scheduler.retries",
            "scheduler.worker_respawns",
            "scheduler.chunks_completed",
            "scheduler.checkpoint_writes",
            "store.hits",
            "store.misses",
        ):
            assert counters[name] == 0

    def test_run_updates_scheduler_counters(self):
        spec = ghz_spec(trajectories=20)
        with Scheduler(workers=2, chunk_size=5) as scheduler:
            scheduler.run(spec, timeout=120)
            counters = scheduler.metrics_snapshot()["counters"]
            assert counters["scheduler.chunks_completed"] == 4
            assert counters["scheduler.trajectories_executed"] == 20
            assert counters["store.misses"] == 1
            # Resubmission answers from the cache.
            scheduler.run(spec, timeout=120)
            counters = scheduler.metrics_snapshot()["counters"]
            assert counters["store.hits"] == 1
            assert counters["scheduler.chunks_completed"] == 4

    def test_result_carries_merged_worker_metrics(self):
        spec = ghz_spec(trajectories=20)
        with Scheduler(workers=2, chunk_size=5) as scheduler:
            result = scheduler.run(spec, timeout=120)
        counters = result.metrics["counters"]
        assert counters["trajectory.completed"] == 20
        assert counters["dd.unique.vector.misses"] > 0
        latency = result.metrics["histograms"]["trajectory.seconds"]
        assert latency["count"] == 20

    def test_status_exposes_metrics(self):
        spec = ghz_spec(trajectories=20)
        with Scheduler(workers=2, chunk_size=5) as scheduler:
            key = scheduler.submit(spec)
            scheduler.result(key, timeout=120)
            status = scheduler.status(key)
        assert status.metrics["counters"]["trajectory.completed"] == 20

    def test_trace_records_job_lifecycle(self):
        spec = ghz_spec(trajectories=10)
        with Scheduler(workers=1, chunk_size=5) as scheduler:
            scheduler.run(spec, timeout=120)
            names = {event["name"] for event in scheduler.trace_events()}
        assert "job.finalize" in names

    def test_respawn_counter_tracks_worker_death(self):
        spec = ghz_spec(n=6, trajectories=60, seed=2)
        with Scheduler(workers=2, chunk_size=2) as scheduler:
            key = scheduler.submit(spec)
            time.sleep(0.05)
            scheduler._workers[0].process.terminate()
            scheduler.result(key, timeout=120)
            counters = scheduler.metrics_snapshot()["counters"]
        assert counters["scheduler.worker_respawns"] >= 1


class TestSharedDeadline:
    def test_parallel_job_respects_one_wall_clock_budget(self):
        """N workers share the job budget instead of burning it each."""
        spec = ghz_spec(n=14, trajectories=10_000_000, timeout=1.0)
        started = time.monotonic()
        with Scheduler(workers=2, chunk_size=1000) as scheduler:
            result = scheduler.run(spec, timeout=120)
        wall = time.monotonic() - started
        assert result.timed_out
        assert wall < 3.0  # ~budget + drain grace + dispatch slack
        assert 0 < result.completed_trajectories < spec.trajectories

    def test_in_flight_partials_are_counted_not_dropped(self):
        spec = ghz_spec(n=12, trajectories=10_000_000, timeout=0.8)
        with Scheduler(workers=2, chunk_size=5000) as scheduler:
            result = scheduler.run(spec, timeout=120)
        assert result.timed_out
        # Both workers were mid-chunk at the deadline; each returns its
        # partial trajectories, which must appear in the final result.
        assert result.completed_trajectories > 0
        assert result.metrics["counters"]["trajectory.completed"] == (
            result.completed_trajectories
        )

    def test_chunk_deadline_is_absolute_not_relative(self):
        spec = ghz_spec(trajectories=10, timeout=300.0)
        with Scheduler(workers=1, chunk_size=5) as scheduler:
            key = scheduler.submit(spec)
            job = scheduler._jobs[key]
            deadlines = {task.deadline for task in job.chunks.values()}
            scheduler.result(key, timeout=120)
        # Every chunk shares the single job deadline instant.
        assert len(deadlines) == 1
        (deadline,) = deadlines
        assert deadline == pytest.approx(time.monotonic() + 300.0, abs=30.0)


class TestSimulatorIntegration:
    def test_parallel_run_includes_scheduler_delta(self):
        with StochasticSimulator(backend="dd", workers=2) as simulator:
            result = simulator.run(
                ghz(6), noise_model=NOISE, trajectories=20, sample_shots=0,
            )
            counters = result.metrics["counters"]
            assert counters["scheduler.chunks_completed"] > 0
            assert counters["scheduler.retries"] == 0
            assert simulator.trace_events()  # the pool traced the job

    def test_second_run_reports_only_its_own_scheduler_activity(self):
        with StochasticSimulator(backend="dd", workers=2) as simulator:
            first = simulator.run(
                ghz(6), noise_model=NOISE, trajectories=20, sample_shots=0,
            )
            second = simulator.run(
                ghz(6), noise_model=NOISE, trajectories=20, seed=1, sample_shots=0,
            )
        first_chunks = first.metrics["counters"]["scheduler.chunks_completed"]
        second_chunks = second.metrics["counters"]["scheduler.chunks_completed"]
        assert second_chunks == first_chunks  # delta, not lifetime total
