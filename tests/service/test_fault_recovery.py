"""Recovery-path tests: every injected fault class must heal end to end.

Each test arms a deterministic :class:`FaultPlan` through the environment
(the only channel that reaches forked workers), runs a real job through the
scheduler, and asserts BOTH that the job succeeded with reference-equal
results AND that the expected recovery counters moved — a fault that is
silently swallowed is as much a bug as one that kills the job.
"""

import os

import pytest

from repro.circuits.library import ghz
from repro.errors import PoisonChunkError, WorkerPoolBrokenError
from repro.faults import FaultPlan, FaultSpec, PLAN_ENV, reset_injector_cache
from repro.noise import NoiseModel
from repro.service import JobSpec, ResultStore, Scheduler
from repro.stochastic import BasisProbability, simulate_stochastic

NOISE = NoiseModel.paper_defaults().scaled(10)


@pytest.fixture(autouse=True)
def _clean_injector(monkeypatch):
    monkeypatch.delenv(PLAN_ENV, raising=False)
    reset_injector_cache()
    yield
    reset_injector_cache()


def ghz_spec(n=4, trajectories=24, seed=5, **overrides) -> JobSpec:
    return JobSpec.build(
        ghz(n),
        NOISE,
        [BasisProbability("0" * n)],
        trajectories=trajectories,
        seed=seed,
        sample_shots=0,
        **overrides,
    )


def reference(spec: JobSpec):
    return simulate_stochastic(
        spec.circuit,
        spec.noise_model,
        spec.properties,
        trajectories=spec.trajectories,
        seed=spec.seed,
        sample_shots=spec.sample_shots,
    )


def arm(monkeypatch, tmp_path, *specs, coordinate=True) -> FaultPlan:
    """Activate a fault plan for this test (and any forked workers)."""
    state_dir = None
    if coordinate:
        state_dir = str(tmp_path / "fault-state")
        os.makedirs(state_dir, exist_ok=True)
    plan = FaultPlan(faults=tuple(specs), state_dir=state_dir)
    monkeypatch.setenv(PLAN_ENV, plan.to_json())
    reset_injector_cache()
    return plan


def counters(scheduler) -> dict:
    return scheduler.metrics_snapshot()["counters"]


def wait_counter(scheduler, name, minimum=1, timeout=5.0) -> dict:
    """Counters snapshot once ``name`` reaches ``minimum`` (respawns land
    asynchronously, shortly after the job that triggered them finishes)."""
    import time

    deadline = time.time() + timeout
    while True:
        snap = counters(scheduler)
        if snap.get(name, 0) >= minimum or time.time() >= deadline:
            return snap
        time.sleep(0.02)


def assert_reference_equal(result, spec):
    expected = reference(spec)
    assert result.completed_trajectories == spec.trajectories
    for name, estimate in expected.estimates.items():
        assert result.estimates[name].mean == pytest.approx(
            estimate.mean, abs=1e-12
        )


class TestWorkerFaultRecovery:
    def test_crash_before_is_respawned_and_retried(self, monkeypatch, tmp_path):
        plan = arm(monkeypatch, tmp_path, FaultSpec(kind="crash-before", chunk_index=0))
        spec = ghz_spec()
        with Scheduler(workers=2, chunk_size=8) as scheduler:
            result = scheduler.run(spec, timeout=60)
            snap = wait_counter(scheduler, "faults.recovered.respawn")
        assert_reference_equal(result, spec)
        assert snap["faults.recovered.respawn"] >= 1
        assert snap["faults.recovered.requeue"] >= 1
        assert plan.claimed_counts() == {"faults.injected.crash-before": 1}

    def test_crash_mid_chunk_discards_partial_work(self, monkeypatch, tmp_path):
        arm(monkeypatch, tmp_path, FaultSpec(kind="crash-mid-chunk", chunk_index=1))
        spec = ghz_spec()
        with Scheduler(workers=2, chunk_size=8) as scheduler:
            result = scheduler.run(spec, timeout=60)
            snap = wait_counter(scheduler, "scheduler.worker_respawns")
        # The retry re-derives per-trajectory seeds, so the partially
        # executed chunk leaves no trace in the merged estimates.
        assert_reference_equal(result, spec)
        assert snap["scheduler.worker_respawns"] >= 1

    def test_hang_is_reaped_by_chunk_timeout(self, monkeypatch, tmp_path):
        arm(
            monkeypatch, tmp_path,
            FaultSpec(kind="hang", chunk_index=0, seconds=30.0),
        )
        spec = ghz_spec()
        with Scheduler(workers=2, chunk_size=8, chunk_timeout=1.0) as scheduler:
            result = scheduler.run(spec, timeout=60)
            snap = wait_counter(scheduler, "faults.recovered.respawn")
        assert_reference_equal(result, spec)
        assert snap["faults.recovered.respawn"] >= 1

    def test_slow_chunk_adds_latency_not_failure(self, monkeypatch, tmp_path):
        plan = arm(
            monkeypatch, tmp_path,
            FaultSpec(kind="slow-chunk", chunk_index=0, seconds=0.2),
        )
        spec = ghz_spec()
        with Scheduler(workers=2, chunk_size=8) as scheduler:
            result = scheduler.run(spec, timeout=60)
            snap = counters(scheduler)
        assert_reference_equal(result, spec)
        assert snap["scheduler.retries"] == 0
        assert plan.claimed_counts() == {"faults.injected.slow-chunk": 1}

    def test_corrupt_outcome_is_rejected_and_reexecuted(self, monkeypatch, tmp_path):
        arm(monkeypatch, tmp_path, FaultSpec(kind="corrupt-outcome", chunk_index=0))
        spec = ghz_spec()
        with Scheduler(workers=2, chunk_size=8) as scheduler:
            result = scheduler.run(spec, timeout=60)
            snap = counters(scheduler)
        assert_reference_equal(result, spec)
        assert snap["scheduler.outcomes.rejected"] == 1
        assert snap["faults.recovered.outcome_rejected"] == 1


class TestSchedulerFaultRecovery:
    def test_queue_drop_requeues_the_chunk(self, monkeypatch, tmp_path):
        arm(monkeypatch, tmp_path, FaultSpec(kind="queue-drop", chunk_index=1))
        spec = ghz_spec()
        with Scheduler(workers=2, chunk_size=8) as scheduler:
            result = scheduler.run(spec, timeout=60)
            snap = counters(scheduler)
        assert_reference_equal(result, spec)
        assert snap["faults.injected.queue-drop"] == 1
        assert snap["faults.recovered.requeue"] >= 1

    def test_queue_delay_holds_then_delivers(self, monkeypatch, tmp_path):
        arm(
            monkeypatch, tmp_path,
            FaultSpec(kind="queue-delay", chunk_index=1, seconds=0.3),
        )
        spec = ghz_spec()
        with Scheduler(workers=2, chunk_size=8) as scheduler:
            result = scheduler.run(spec, timeout=60)
            snap = counters(scheduler)
        assert_reference_equal(result, spec)
        assert snap["faults.injected.queue-delay"] == 1
        assert snap["scheduler.retries"] == 0  # a delay is not a failure


class TestStoreFaultRecovery:
    def test_enospc_on_checkpoint_degrades_not_fails(self, monkeypatch, tmp_path):
        arm(
            monkeypatch, tmp_path,
            FaultSpec(kind="enospc", operation="put_partial"),
        )
        spec = ghz_spec()
        store = ResultStore(directory=str(tmp_path / "store"))
        with Scheduler(workers=2, chunk_size=8, store=store) as scheduler:
            result = scheduler.run(spec, timeout=60)
            snap = counters(scheduler)
        assert_reference_equal(result, spec)
        assert snap["store.write.errors"] == 1
        assert snap["faults.recovered.write_skipped"] == 1

    def test_bit_flip_on_final_write_is_caught_by_the_next_reader(
        self, monkeypatch, tmp_path
    ):
        arm(monkeypatch, tmp_path, FaultSpec(kind="bit-flip", operation="put"))
        spec = ghz_spec()
        store_dir = str(tmp_path / "store")
        with Scheduler(workers=2, chunk_size=8,
                       store=ResultStore(directory=store_dir)) as scheduler:
            first = scheduler.run(spec, timeout=60)
        # A fresh store (cold memory cache) must detect the corrupted disk
        # entry by checksum, quarantine it, and report a miss — after which
        # a re-run reproduces the identical result.
        reset_injector_cache()
        fresh = ResultStore(directory=store_dir)
        assert fresh.get(spec.job_key()) is None
        assert fresh.stats()["corrupt"] == 1
        snap = fresh.metrics.snapshot()["counters"]
        assert snap["store.corruption.quarantined"] == 1
        assert snap["faults.recovered.store_quarantine"] == 1
        monkeypatch.delenv(PLAN_ENV)
        reset_injector_cache()
        with Scheduler(workers=2, chunk_size=8, store=fresh) as scheduler:
            again = scheduler.run(spec, timeout=60)
        for name, estimate in first.estimates.items():
            assert again.estimates[name].mean == estimate.mean


class TestSelfProtection:
    def test_poison_chunk_is_quarantined_with_diagnosis(self, monkeypatch, tmp_path):
        # A chunk that kills its worker on every attempt must not retry
        # forever: after poison_retries fatal attempts the job fails fast
        # with a structured diagnosis.
        arm(
            monkeypatch, tmp_path,
            FaultSpec(kind="crash-before", chunk_index=0, times=10),
        )
        spec = ghz_spec()
        with Scheduler(workers=2, chunk_size=8, max_retries=5,
                       poison_retries=2) as scheduler:
            key = scheduler.submit(spec)
            with pytest.raises(PoisonChunkError, match="quarantined") as excinfo:
                scheduler.result(key, timeout=60)
            snap = counters(scheduler)
        diagnosis = excinfo.value.diagnosis
        assert diagnosis["chunk_index"] == 0
        assert diagnosis["worker_deaths"] == 3
        assert diagnosis["first_trajectory"] == 0
        assert diagnosis["num_trajectories"] == 8
        assert any("worker died" in reason for reason in diagnosis["reasons"])
        assert snap["scheduler.poison_quarantined"] == 1

    def test_respawn_storm_trips_the_circuit_breaker(self, monkeypatch, tmp_path):
        # Every chunk kills every worker: a storm.  The breaker must fail
        # the job with a pool-level error before the per-chunk poison or
        # retry budgets are reached.
        arm(
            monkeypatch, tmp_path,
            FaultSpec(kind="crash-before", times=50),
        )
        spec = ghz_spec()
        with Scheduler(workers=2, chunk_size=8, max_retries=20,
                       poison_retries=20, breaker_threshold=3,
                       breaker_window=30.0) as scheduler:
            key = scheduler.submit(spec)
            with pytest.raises(WorkerPoolBrokenError, match="circuit breaker"):
                scheduler.result(key, timeout=60)
            snap = counters(scheduler)
        assert snap["scheduler.breaker.trips"] == 1

    def test_drain_errors_are_counted_not_swallowed(self):
        # Satellite fix: a failing result-queue read must leave evidence.
        class _ExplodingQueue:
            def get_nowait(self):
                raise RuntimeError("feeder died mid-put")

        class _Handle:
            worker_id = 99
            result_queue = _ExplodingQueue()

        with Scheduler(workers=1) as scheduler:
            drained = scheduler._drain_results(_Handle())
            snap = counters(scheduler)
            events = scheduler.trace_events()
        assert drained == 0
        assert snap["scheduler.drain.errors"] == 1
        assert any(event["name"] == "drain.error" for event in events)


class TestLegacyCrashOnceAlias:
    def test_marker_env_still_crashes_exactly_once(self, monkeypatch, tmp_path):
        from repro.service.worker import CRASH_ONCE_ENV

        marker = str(tmp_path / "crash-marker")
        monkeypatch.setenv(CRASH_ONCE_ENV, marker)
        reset_injector_cache()
        spec = ghz_spec()
        with Scheduler(workers=2, chunk_size=8) as scheduler:
            result = scheduler.run(spec, timeout=60)
            snap = wait_counter(scheduler, "scheduler.worker_respawns")
        assert os.path.exists(marker)
        assert snap["scheduler.worker_respawns"] == 1
        assert_reference_equal(result, spec)
