"""Durable execution end to end: drain, resume, and restart bit-identity."""

import os
import signal
import subprocess
import time

import pytest

from repro.circuits.library import ghz
from repro.faults import FaultPlan, FaultSpec, PLAN_ENV, reset_injector_cache
from repro.noise import NoiseModel
from repro.service.job import JobSpec
from repro.service.journal import JobJournal, journal_path, replay_journal
from repro.service.scheduler import Scheduler
from repro.service.serve import enqueue_job, serve
from repro.service.store import ResultStore
from repro.stochastic import IdealFidelity
from repro.stochastic.results import StochasticResult


def _spec(trajectories, num_qubits=3, seed=7):
    return JobSpec(
        circuit=ghz(num_qubits),
        noise_model=NoiseModel.paper_defaults(),
        properties=(IdealFidelity(),),
        trajectories=trajectories,
        seed=seed,
        backend_kind="dd",
        sample_shots=0,
    )


def _estimates(result):
    return {name: est.mean for name, est in result.estimates.items()}


def _slow_all_chunks_plan(seconds):
    """Sleep-only latency on every chunk — widens windows, changes no value."""
    return FaultPlan(
        faults=(FaultSpec(kind="slow-chunk", seconds=seconds, times=1_000_000),),
        seed=0,
    )


@pytest.fixture(autouse=True)
def _clean_injector(monkeypatch):
    monkeypatch.delenv(PLAN_ENV, raising=False)
    reset_injector_cache()
    yield
    reset_injector_cache()


class TestDrainResumeBitIdentity:
    def test_drain_midjob_then_journal_resume_is_bit_identical(
        self, tmp_path, monkeypatch
    ):
        spec = _spec(trajectories=40)

        # Uninterrupted reference through the same chunked pipeline.
        ref_store = ResultStore(directory=str(tmp_path / "ref"))
        with Scheduler(workers=2, store=ref_store, chunk_size=4) as scheduler:
            reference = scheduler.run(spec, timeout=120.0)
        assert reference.completed_trajectories == 40

        # Interrupted run: slow chunks, drain after the first commit.
        monkeypatch.setenv(PLAN_ENV, _slow_all_chunks_plan(0.2).to_json())
        reset_injector_cache()
        store_dir = str(tmp_path / "store")
        store = ResultStore(directory=store_dir)
        journal = JobJournal(journal_path(store_dir))
        scheduler = Scheduler(
            workers=2, store=store, chunk_size=4, journal=journal
        )
        try:
            key = scheduler.submit(spec)
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                journaled = journal.job(key)
                if journaled is not None and journaled.completed:
                    break
                time.sleep(0.005)
            assert journal.job(key).completed, "no chunk committed in time"
            clean = scheduler.drain(timeout=10.0)
            assert clean, "in-flight chunks failed to land inside the drain"
        finally:
            scheduler.shutdown()
            journal.close()

        journaled = replay_journal(journal_path(store_dir))[key]
        assert not journaled.done
        assert 0 < len(journaled.completed) < len(journaled.plan)

        # Resume from the journal alone (fresh scheduler, no fault plan).
        monkeypatch.delenv(PLAN_ENV, raising=False)
        reset_injector_cache()
        resume_journal = JobJournal(journal_path(store_dir))
        (incomplete,) = resume_journal.incomplete_jobs()
        completed = {
            index: StochasticResult.from_dict(payload)
            for index, payload in incomplete.completed.items()
        }
        with Scheduler(
            workers=2,
            store=ResultStore(directory=store_dir),
            chunk_size=4,
            journal=resume_journal,
        ) as scheduler:
            scheduler.submit_resumed(
                spec,
                incomplete.plan,
                completed,
                base_spans=incomplete.base_spans,
                token_base=incomplete.max_token + 1,
            )
            resumed = scheduler.result(key, timeout=120.0)
            assert resume_journal.incomplete_jobs() == []
        resume_journal.close()

        assert resumed.completed_trajectories == 40
        # Bit-identical, not merely close: same chunk plan, same per-
        # trajectory seeds, same chunk-index merge order.
        assert _estimates(resumed) == _estimates(reference)

    def test_resume_when_final_result_landed_before_the_crash(self, tmp_path):
        """Crash between store.put and the job-done record: the store wins."""
        spec = _spec(trajectories=8, num_qubits=2, seed=1)
        key = spec.job_key()
        store_dir = str(tmp_path)
        store = ResultStore(directory=store_dir)
        with Scheduler(workers=1, store=store, chunk_size=8) as scheduler:
            stored = scheduler.run(spec, timeout=120.0)
        # Forge the crash window: journal says incomplete, store says done.
        with JobJournal(journal_path(store_dir)) as journal:
            journal.job_submitted(key, spec.to_dict())
            journal.plan_recorded(key, [(0, 0, 8)], [])
        resume_journal = JobJournal(journal_path(store_dir))
        assert [j.key for j in resume_journal.incomplete_jobs()] == [key]
        with Scheduler(
            workers=1,
            store=ResultStore(directory=store_dir),
            journal=resume_journal,
        ) as scheduler:
            scheduler.submit_resumed(spec, [(0, 0, 8)], {}, token_base=0)
            resumed = scheduler.result(key, timeout=30.0)
            # Answered by the cache — and the journal entry is settled.
            assert resume_journal.incomplete_jobs() == []
        resume_journal.close()
        assert _estimates(resumed) == _estimates(stored)

    def test_submit_resumed_converges_with_prepopulated_results(self, tmp_path):
        """Replaying chunk results the store already merged stays idempotent:
        resuming with every chunk already committed recomputes nothing."""
        spec = _spec(trajectories=16, seed=2)
        key = spec.job_key()
        store_dir = str(tmp_path / "a")
        store = ResultStore(directory=store_dir)
        journal = JobJournal(journal_path(store_dir))
        with Scheduler(
            workers=2, store=store, chunk_size=4, journal=journal
        ) as scheduler:
            direct = scheduler.run(spec, timeout=120.0)
        journal.close()

        # Rebuild purely from journaled chunk results (ignore the store).
        journaled = replay_journal(journal_path(store_dir))[key]
        completed = {
            index: StochasticResult.from_dict(payload)
            for index, payload in journaled.completed.items()
        }
        assert len(completed) == len(journaled.plan)
        fresh_dir = str(tmp_path / "b")
        with Scheduler(
            workers=2, store=ResultStore(directory=fresh_dir), chunk_size=4
        ) as scheduler:
            scheduler.submit_resumed(
                spec, journaled.plan, completed, token_base=journaled.max_token + 1
            )
            rebuilt = scheduler.result(key, timeout=30.0)
        assert rebuilt.completed_trajectories == 16
        assert _estimates(rebuilt) == _estimates(direct)


class TestSignalDrain:
    def test_sigterm_drains_with_exit_zero_and_resume_finishes(self, tmp_path):
        from repro.faults.chaos import _SERVE_SNIPPET, _serve_subprocess_env
        import sys as _sys

        spec = _spec(trajectories=100, seed=11)
        store_dir = str(tmp_path / "store")
        events = str(tmp_path / "events.jsonl")
        key, cached = enqueue_job(ResultStore(directory=store_dir), spec)
        assert not cached

        plan_json = _slow_all_chunks_plan(0.1).to_json()
        proc = subprocess.Popen(
            [_sys.executable, "-c", _SERVE_SNIPPET,
             store_dir, "2", "4", events, "0"],
            env=_serve_subprocess_env(plan_json),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        try:
            wal = journal_path(store_dir)
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline and proc.poll() is None:
                try:
                    with open(wal, "rb") as handle:
                        if handle.read().count(b'"chunk-done"') >= 1:
                            break
                except OSError:
                    pass
                time.sleep(0.005)
            assert proc.poll() is None, "serve finished before SIGTERM"
            proc.send_signal(signal.SIGTERM)
            _, stderr = proc.communicate(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, stderr.decode(errors="replace")

        journaled = replay_journal(journal_path(store_dir))[key]
        assert not journaled.done
        assert journaled.completed  # the drained chunks were not lost

        from repro.obs.export import read_event_log

        names = [event.get("event") for event in read_event_log(events)]
        assert "serve.start" in names
        assert "serve.drain" in names

        # A --resume restart completes the job bit-identically to an
        # uninterrupted serve pass over the same spec.
        ref_dir = str(tmp_path / "ref")
        enqueue_job(ResultStore(directory=ref_dir), spec)
        assert serve(
            ResultStore(directory=ref_dir), workers=2, once=True,
            chunk_size=4, install_signal_handlers=False, log=lambda _: None,
        ) == 1
        reference = ResultStore(directory=ref_dir).get(key)

        assert serve(
            ResultStore(directory=store_dir), workers=2, once=True,
            chunk_size=4, resume=True, install_signal_handlers=False,
            log=lambda _: None,
        ) == 1
        resumed = ResultStore(directory=store_dir).get(key)
        assert resumed is not None
        assert resumed.completed_trajectories == 100
        assert _estimates(resumed) == _estimates(reference)
        # Nothing left to resume.
        assert [
            j for j in replay_journal(journal_path(store_dir)).values()
            if not j.done
        ] == []


class TestKillServeScenario:
    def test_sigkill_resume_is_bit_identical(self):
        from repro.faults.chaos import run_kill_serve

        report = run_kill_serve(
            seed=5,
            trajectories=96,
            num_qubits=3,
            workers=2,
            chunk_size=4,
            slow_chunk_seconds=0.05,
        )
        assert report.ok, "\n" + report.render()
