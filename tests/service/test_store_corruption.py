"""Integrity tests for the checksummed store: corruption is never silent.

Every corrupted entry must (a) be reported as a cache miss, (b) be
quarantined to a ``*.corrupt`` sibling that survives for post-mortem,
and (c) move the ``store.corruption.*`` counters — no path may hand a
caller ``None`` without leaving evidence.
"""

import json
import os

import pytest

from repro.service import ResultStore, STORE_SCHEMA
from repro.service.store import _payload_digest
from repro.stochastic.results import PropertyEstimate, StochasticResult

KEY = "a" * 64


def make_result(n: int = 10) -> StochasticResult:
    result = StochasticResult(
        circuit_name="c", backend_kind="dd", requested_trajectories=n
    )
    result.completed_trajectories = n
    estimate = PropertyEstimate("P(|0>)")
    for index in range(n):
        estimate.add((index % 2) * 1.0)
    result.estimates["P(|0>)"] = estimate
    return result


def entry_path(tmp_path, kind="results", key=KEY) -> str:
    return os.path.join(str(tmp_path), kind, f"{key}.json")


def fresh(tmp_path) -> ResultStore:
    """A cold store instance (empty memory cache) over the same directory."""
    return ResultStore(directory=str(tmp_path))


class TestChecksummedEnvelope:
    def test_writes_are_v2_envelopes_with_matching_digest(self, tmp_path):
        ResultStore(directory=str(tmp_path)).put(KEY, make_result())
        with open(entry_path(tmp_path), encoding="utf-8") as handle:
            envelope = json.load(handle)
        assert envelope["schema"] == STORE_SCHEMA
        assert envelope["sha256"] == _payload_digest(envelope["payload"])

    def test_round_trip_through_disk(self, tmp_path):
        ResultStore(directory=str(tmp_path)).put(KEY, make_result())
        assert fresh(tmp_path).get(KEY).completed_trajectories == 10

    def test_legacy_v1_bare_payload_still_readable(self, tmp_path):
        store = fresh(tmp_path)
        with open(entry_path(tmp_path), "w", encoding="utf-8") as handle:
            json.dump({"result": make_result().to_dict()}, handle)
        assert store.get(KEY).completed_trajectories == 10
        assert store.stats()["quarantined"] == 0


class TestCorruptionQuarantine:
    def _corrupt_counters(self, store):
        return store.metrics.snapshot()["counters"]

    def assert_quarantined(self, store, tmp_path, kind="results", key=KEY):
        path = entry_path(tmp_path, kind, key)
        assert not os.path.exists(path)
        assert os.path.exists(f"{path}.corrupt")
        snap = self._corrupt_counters(store)
        assert snap["store.corruption.quarantined"] == 1
        assert snap["faults.recovered.store_quarantine"] == 1
        assert store.last_corruption is not None

    def test_flipped_bit_fails_the_checksum(self, tmp_path):
        ResultStore(directory=str(tmp_path)).put(KEY, make_result())
        path = entry_path(tmp_path)
        with open(path, "r+b") as handle:
            raw = handle.read()
            # Flip the low bit of a digit: '1' <-> '0' keeps the JSON
            # valid, so only the checksum can catch the corruption.
            token = b'"completed_trajectories": '
            position = raw.index(token) + len(token) + 1  # '10' -> '11'
            handle.seek(position)
            handle.write(bytes([raw[position] ^ 0x01]))
        store = fresh(tmp_path)
        assert store.get(KEY) is None
        self.assert_quarantined(store, tmp_path)
        assert "checksum mismatch" in store.last_corruption

    def test_invalid_utf8_is_quarantined_not_raised(self, tmp_path):
        ResultStore(directory=str(tmp_path)).put(KEY, make_result())
        path = entry_path(tmp_path)
        with open(path, "r+b") as handle:
            size = len(handle.read())
            handle.seek(size // 2)
            handle.write(b"\x8c\xff")
        store = fresh(tmp_path)
        assert store.get(KEY) is None
        self.assert_quarantined(store, tmp_path)
        assert "undecodable bytes" in store.last_corruption

    def test_torn_write_truncation_is_quarantined(self, tmp_path):
        ResultStore(directory=str(tmp_path)).put(KEY, make_result())
        path = entry_path(tmp_path)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        store = fresh(tmp_path)
        assert store.get(KEY) is None
        self.assert_quarantined(store, tmp_path)
        assert "unparsable JSON" in store.last_corruption

    def test_unknown_schema_is_quarantined(self, tmp_path):
        store = fresh(tmp_path)  # constructor lays out the subdirectories
        with open(entry_path(tmp_path), "w", encoding="utf-8") as handle:
            json.dump({"schema": "repro.store/v99", "payload": {}}, handle)
        assert store.get(KEY) is None
        self.assert_quarantined(store, tmp_path)
        assert "unknown store schema" in store.last_corruption

    def test_structurally_broken_partial_is_quarantined(self, tmp_path):
        # Valid envelope + checksum, but the payload lacks the fields a
        # checkpoint needs (schema skew): resume must quarantine, not crash.
        store = fresh(tmp_path)
        payload = {"spans": "not-a-list-of-pairs"}
        envelope = {
            "schema": STORE_SCHEMA,
            "sha256": _payload_digest(payload),
            "payload": payload,
        }
        with open(entry_path(tmp_path, "partials"), "w", encoding="utf-8") as handle:
            json.dump(envelope, handle)
        assert store.get_partial(KEY) is None
        self.assert_quarantined(store, tmp_path, kind="partials")

    def test_quarantined_entries_listed_and_counted_in_stats(self, tmp_path):
        ResultStore(directory=str(tmp_path)).put(KEY, make_result())
        with open(entry_path(tmp_path), "r+b") as handle:
            handle.truncate(3)
        store = fresh(tmp_path)
        store.get(KEY)
        assert store.corrupt_entries() == [
            os.path.join("results", f"{KEY}.json.corrupt")
        ]
        stats = store.stats()
        assert stats["corrupt"] == 1
        assert stats["quarantined"] == 1

    def test_rerun_after_quarantine_repopulates_the_entry(self, tmp_path):
        ResultStore(directory=str(tmp_path)).put(KEY, make_result())
        with open(entry_path(tmp_path), "r+b") as handle:
            handle.truncate(3)
        store = fresh(tmp_path)
        assert store.get(KEY) is None  # quarantines
        store.put(KEY, make_result())  # recomputed result re-stored
        assert fresh(tmp_path).get(KEY).completed_trajectories == 10
        # the post-mortem file is untouched by the rewrite
        assert len(store.corrupt_entries()) == 1

    def test_clear_removes_corrupt_files_too(self, tmp_path):
        ResultStore(directory=str(tmp_path)).put(KEY, make_result())
        with open(entry_path(tmp_path), "r+b") as handle:
            handle.truncate(3)
        store = fresh(tmp_path)
        store.get(KEY)
        assert store.corrupt_entries()
        store.clear()
        assert store.corrupt_entries() == []


class TestResolveKeyDiagnostics:
    def test_ambiguous_prefix_lists_truncated_matches(self, tmp_path):
        store = fresh(tmp_path)
        keys = [f"ab{i}{'0' * 61}" for i in range(3)]
        for key in keys:
            store.put(key, make_result())
        with pytest.raises(KeyError) as excinfo:
            store.resolve_key("ab")
        message = str(excinfo.value)
        assert "ambiguous key prefix 'ab'" in message
        assert "use a longer prefix" in message
        for key in keys:
            assert key[:12] in message  # truncated, not the full 64 chars
            assert key not in message

    def test_ambiguous_prefix_caps_the_listing(self, tmp_path):
        store = fresh(tmp_path)
        for i in range(12):
            store.put(f"ab{i:02d}{'0' * 60}", make_result())
        with pytest.raises(KeyError, match=r"\+4 more"):
            store.resolve_key("ab")

    def test_missing_prefix_raises(self, tmp_path):
        with pytest.raises(KeyError, match="no job matching 'dead'"):
            fresh(tmp_path).resolve_key("dead")

    def test_unique_prefix_resolves_across_entry_kinds(self, tmp_path):
        store = fresh(tmp_path)
        store.put("aa" + "0" * 62, make_result())
        store.put_partial("bb" + "0" * 62, [(0, 5)], make_result(5))
        store.put_queued("cc" + "0" * 62, {"circuit_name": "x"})
        assert store.resolve_key("aa") == "aa" + "0" * 62
        assert store.resolve_key("bb") == "bb" + "0" * 62
        assert store.resolve_key("cc") == "cc" + "0" * 62
