"""Tests for the content-addressed job model."""

import pytest

from repro.circuits.library import ghz, qft
from repro.noise import ErrorRates, NoiseModel
from repro.service import JobSpec
from repro.service.job import (
    noise_from_dict,
    noise_to_dict,
    property_from_dict,
    property_to_dict,
)
from repro.stochastic import (
    BasisProbability,
    ClassicalOutcome,
    ExpectationZ,
    IdealFidelity,
    PauliExpectation,
    StateFidelity,
)

ALL_PROPERTIES = (
    BasisProbability("010"),
    StateFidelity.from_vector([1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0], label="ghz"),
    IdealFidelity(),
    ExpectationZ(1),
    PauliExpectation("ZZI"),
    ClassicalOutcome(3),
)


def spec(**overrides) -> JobSpec:
    defaults = dict(
        circuit=ghz(3),
        noise_model=NoiseModel.paper_defaults(),
        properties=(BasisProbability("000"),),
        trajectories=50,
        seed=7,
        backend_kind="dd",
        sample_shots=1,
        timeout=None,
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


class TestJobKey:
    def test_key_is_deterministic(self):
        assert spec().job_key() == spec().job_key()

    def test_key_is_hex_sha256(self):
        key = spec().job_key()
        assert len(key) == 64
        int(key, 16)  # raises if not hex

    def test_key_survives_serialisation_round_trip(self):
        original = spec(properties=ALL_PROPERTIES)
        restored = JobSpec.from_dict(original.to_dict())
        assert restored.job_key() == original.job_key()

    @pytest.mark.parametrize(
        "change",
        [
            dict(trajectories=51),
            dict(seed=8),
            dict(backend_kind="statevector"),
            dict(sample_shots=0),
            dict(timeout=1.0),
            dict(circuit=qft(3)),
            dict(noise_model=NoiseModel.noiseless()),
            dict(properties=(BasisProbability("111"),)),
        ],
    )
    def test_any_field_change_changes_key(self, change):
        assert spec(**change).job_key() != spec().job_key()

    def test_equivalent_circuits_same_key(self):
        # Two independently built but identical circuits hash equally:
        # the key addresses content, not object identity.
        assert spec(circuit=ghz(3)).job_key() == spec(circuit=ghz(3)).job_key()


class TestSerialisation:
    def test_round_trip_preserves_fields(self):
        original = spec(properties=ALL_PROPERTIES, timeout=2.5)
        restored = JobSpec.from_dict(original.to_dict())
        assert restored.trajectories == 50
        assert restored.seed == 7
        assert restored.backend_kind == "dd"
        assert restored.timeout == 2.5
        assert restored.circuit.num_qubits == 3
        assert [p.name for p in restored.properties] == [
            p.name for p in original.properties
        ]

    def test_unknown_version_rejected(self):
        data = spec().to_dict()
        data["version"] = 999
        with pytest.raises(ValueError, match="version"):
            JobSpec.from_dict(data)

    def test_invalid_trajectories_rejected(self):
        with pytest.raises(ValueError, match="trajectories"):
            spec(trajectories=0)

    @pytest.mark.parametrize("prop", ALL_PROPERTIES, ids=lambda p: type(p).__name__)
    def test_property_round_trip(self, prop):
        restored = property_from_dict(property_to_dict(prop))
        assert restored == prop

    def test_unknown_property_type_rejected(self):
        with pytest.raises(ValueError, match="unknown property"):
            property_from_dict({"type": "entropy"})

    def test_noise_round_trip_with_overrides(self):
        model = NoiseModel.build(
            default=ErrorRates(depolarizing=0.01),
            gate_overrides={"cx": ErrorRates(depolarizing=0.02, phase_flip=0.003)},
            qubit_overrides={2: ErrorRates(amplitude_damping=0.05)},
            noisy_measure=False,
            damping_mode="exact",
        )
        restored = noise_from_dict(noise_to_dict(model))
        assert restored == model
