"""Measured dispatch: the ledger feedback loop through the scheduler.

The acceptance scenario for the run ledger: a circuit family wide enough
that worst-case sizing (4^n rho nodes) routes it stochastic, whose *actual*
rho DD stays tiny.  An empty ledger reproduces today's worst-case routing;
after one forced-exact run seeds the family's observed peak, the same spec
resubmitted under ``method=auto`` flips to exact citing measured evidence.
"""

import os

import pytest

from repro.circuits.library import ghz
from repro.exact.cost import MEASURED_COST_ENV
from repro.noise import NoiseModel
from repro.obs.ledger import RunLedger, circuit_fingerprint, ledger_path, replay_ledger
from repro.service import JobSpec, ResultStore, Scheduler
from repro.stochastic import BasisProbability

PAPER_NOISE = NoiseModel.paper_defaults()
QUBITS = 12  # above the worst-case dense boundary at 30k trajectories


def spec_for(method="auto", seed=9, trajectories=30_000, n=QUBITS) -> JobSpec:
    return JobSpec.build(
        ghz(n),
        PAPER_NOISE,
        [BasisProbability("0" * n)],
        trajectories=trajectories,
        seed=seed,
        method=method,
    )


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "store"))


@pytest.fixture
def ledger(store):
    with RunLedger(ledger_path(store.directory)) as ledger:
        yield ledger


class TestColdLedger:
    def test_empty_history_routes_worst_case_stochastic(self, store, ledger):
        with Scheduler(workers=1, store=store, ledger=ledger) as scheduler:
            key = scheduler.submit(spec_for(trajectories=200))
            decision = scheduler.decision_for(key)
            assert decision.method == "stochastic"
            assert decision.evidence == "worst_case"
            scheduler.cancel(key)
            counters = scheduler.metrics_snapshot()["counters"]
            assert counters["dispatch.worst_case"] == 1
            assert counters["dispatch.measured"] == 0


class TestMeasuredFlip:
    def test_exact_evidence_flips_auto_to_exact(self, store, ledger):
        fingerprint = circuit_fingerprint(ghz(QUBITS), PAPER_NOISE)
        with Scheduler(workers=1, store=store, ledger=ledger) as scheduler:
            # Phase B: force one exact run to seed the family's rho peak.
            seeded = scheduler.run(spec_for(method="exact", seed=1), timeout=120)
            assert seeded.method == "exact"
            family = ledger.family(fingerprint)
            assert family is not None and family.exact_runs == 1
            assert 0 < family.exact_peak_nodes < 4**QUBITS

            # Phase C: the same family under auto now dispatches exact on
            # measured rho evidence (fresh seed dodges the result cache).
            key = scheduler.submit(spec_for(method="auto", seed=2))
            decision = scheduler.decision_for(key)
            assert decision.method == "exact"
            assert decision.evidence == "measured"
            assert decision.fingerprint == fingerprint
            assert decision.exact_observations == 1
            rendered = decision.render()
            assert "measured evidence" in rendered and fingerprint in rendered
            result = scheduler.result(key, timeout=120)
            assert result.method == "exact"
            counters = scheduler.metrics_snapshot()["counters"]
            assert counters["dispatch.measured"] == 1

        # Both completed runs are durably in the ledger on disk.
        state = replay_ledger(ledger_path(store.directory))
        assert state.aggregates[fingerprint].exact_runs == 2

    def test_escape_hatch_reproduces_worst_case_routing(
        self, store, ledger, monkeypatch
    ):
        with Scheduler(workers=1, store=store, ledger=ledger) as scheduler:
            scheduler.run(spec_for(method="exact", seed=1), timeout=120)
            baseline = scheduler.submit(spec_for(method="auto", seed=3))
            measured = scheduler.decision_for(baseline)
            assert measured.method == "exact"  # evidence changed the route
            scheduler.cancel(baseline)

            # Phase D: REPRO_MEASURED_COST=off restores today's decision
            # bit-identically even with a warm ledger.
            monkeypatch.setenv(MEASURED_COST_ENV, "off")
            key = scheduler.submit(spec_for(method="auto", seed=4))
            decision = scheduler.decision_for(key)
            assert decision.method == "stochastic"
            assert decision.evidence == "worst_case"
            assert decision.exact_cost == float(4**QUBITS) * measured_multiplies()
            scheduler.cancel(key)


def measured_multiplies() -> int:
    from repro.exact.cost import count_exact_multiplies

    return count_exact_multiplies(ghz(QUBITS), PAPER_NOISE)


class TestFallbackFeedback:
    def test_node_ceiling_fallback_is_recorded_censored(self, store, ledger):
        fingerprint = circuit_fingerprint(ghz(QUBITS), PAPER_NOISE)
        with Scheduler(
            workers=1, store=store, ledger=ledger, exact_node_ceiling=16
        ) as scheduler:
            result = scheduler.run(
                spec_for(method="exact", seed=5, trajectories=40), timeout=120
            )
            # The exact attempt blew the ceiling and fell back to sampling.
            assert result.method == "stochastic"
            counters = scheduler.metrics_snapshot()["counters"]
            assert counters["dispatch.fallback"] == 1
        family = ledger.family(fingerprint)
        assert family is not None
        assert family.fallbacks == 1
        assert family.fallback_peak_nodes > 16
        # The completed stochastic retry also landed as a run record.
        assert family.stochastic_runs == 1
        # Censored evidence keeps measured dispatch honest: the measured
        # exact size is floored at the fallback peak, not the ceiling.
        from repro.exact.cost import MeasuredCostModel

        evidence = MeasuredCostModel(ledger.aggregates()).exact_size(
            fingerprint, QUBITS
        )
        assert evidence.censored
        assert evidence.nodes >= family.fallback_peak_nodes


class TestLedgerContents:
    def test_run_record_captures_throughput_and_precision(self, store, ledger):
        fingerprint = circuit_fingerprint(ghz(4), PAPER_NOISE)
        spec = JobSpec.build(
            ghz(4),
            PAPER_NOISE,
            [BasisProbability("0000")],
            trajectories=50,
            seed=6,
            method="stochastic",
        )
        with Scheduler(workers=1, store=store, ledger=ledger) as scheduler:
            scheduler.run(spec, timeout=60)
        (record,) = ledger.recent(fingerprint)
        assert record["method"] == "stochastic"
        assert record["qubits"] == 4
        assert record["trajectories"] == 50
        assert record["peak_nodes"] > 0
        assert record["elapsed_seconds"] > 0.0
        assert record["trajectories_per_second"] > 0.0
        assert 0.0 < record["p_clean"] <= 1.0
        assert "P(|0000>)" in record["halfwidths"]
        family = ledger.family(fingerprint)
        assert family.state_peak_nodes == record["peak_nodes"]
