"""Cancellation and shutdown edge cases: races and store hygiene."""

import os
import time

import pytest

from repro.circuits.library import ghz
from repro.faults import FaultPlan, FaultSpec, PLAN_ENV, reset_injector_cache
from repro.noise import NoiseModel
from repro.service import (
    JobCancelledError,
    JobSpec,
    JobState,
    ResultStore,
    Scheduler,
    SchedulerError,
)
from repro.stochastic import BasisProbability

NOISE = NoiseModel.paper_defaults().scaled(10)


@pytest.fixture(autouse=True)
def _clean_injector(monkeypatch):
    monkeypatch.delenv(PLAN_ENV, raising=False)
    reset_injector_cache()
    yield
    reset_injector_cache()


def ghz_spec(n=4, trajectories=40, seed=5, **overrides) -> JobSpec:
    return JobSpec.build(
        ghz(n),
        NOISE,
        [BasisProbability("0" * n)],
        trajectories=trajectories,
        seed=seed,
        sample_shots=0,
        **overrides,
    )


def _slow_plan(monkeypatch, tmp_path, seconds=0.5, times=8):
    """Make every chunk slow so a cancel reliably races in-flight work."""
    state_dir = str(tmp_path / "fault-state")
    os.makedirs(state_dir, exist_ok=True)
    plan = FaultPlan(
        faults=(FaultSpec(kind="slow-chunk", seconds=seconds, times=times),),
        state_dir=state_dir,
    )
    monkeypatch.setenv(PLAN_ENV, plan.to_json())
    reset_injector_cache()


class TestCancelRacingInFlightChunks:
    def test_cancel_while_chunks_are_in_flight(self, monkeypatch, tmp_path):
        _slow_plan(monkeypatch, tmp_path)
        store = ResultStore(directory=str(tmp_path / "store"))
        with Scheduler(workers=2, chunk_size=8, store=store) as scheduler:
            key = scheduler.submit(ghz_spec(trajectories=64))
            # Wait until at least one chunk has actually been dispatched.
            deadline = time.time() + 10
            while time.time() < deadline:
                if scheduler.status(key).state == JobState.RUNNING:
                    break
                time.sleep(0.01)
            assert scheduler.cancel(key) is True
            with pytest.raises(JobCancelledError):
                scheduler.result(key, timeout=10)
            assert scheduler.status(key).state == JobState.CANCELLED
            # The in-flight chunk finishes AFTER the cancel; its late
            # outcome must be ignored, not resurrect the job.
            time.sleep(1.0)
            assert scheduler.status(key).state == JobState.CANCELLED

    def test_cancel_is_idempotent_and_false_when_finished(self, tmp_path):
        store = ResultStore(directory=str(tmp_path / "store"))
        with Scheduler(workers=2, chunk_size=8, store=store) as scheduler:
            key = scheduler.submit(ghz_spec(trajectories=8))
            scheduler.result(key, timeout=60)
            assert scheduler.cancel(key) is False

    def test_cancelled_partial_checkpoint_resumes_cleanly(
        self, monkeypatch, tmp_path
    ):
        _slow_plan(monkeypatch, tmp_path, seconds=0.3)
        store_dir = str(tmp_path / "store")
        spec = ghz_spec(trajectories=64)
        with Scheduler(workers=2, chunk_size=8,
                       store=ResultStore(directory=store_dir)) as scheduler:
            key = scheduler.submit(spec)
            deadline = time.time() + 20
            while time.time() < deadline:
                if scheduler.status(key).completed_trajectories > 0:
                    break
                time.sleep(0.02)
            scheduler.cancel(key)
        # A cancel mid-run leaves a valid checkpoint; a fresh scheduler
        # resumes from it and completes with every trajectory accounted.
        monkeypatch.delenv(PLAN_ENV)
        reset_injector_cache()
        store = ResultStore(directory=store_dir)
        checkpoint = store.get_partial(spec.job_key())
        assert checkpoint is not None
        spans, partial = checkpoint
        assert sum(count for _, count in spans) == partial.completed_trajectories
        with Scheduler(workers=2, chunk_size=8, store=store) as scheduler:
            result = scheduler.run(spec, timeout=60)
        assert result.completed_trajectories == spec.trajectories


class TestShutdownHygiene:
    def test_shutdown_with_queued_unstarted_jobs_leaves_no_stale_partials(
        self, monkeypatch, tmp_path
    ):
        # Two slow jobs saturate both workers; a third job is queued but
        # never dispatches a single chunk.  Shutdown must not write a
        # partial checkpoint for work that never produced anything.
        _slow_plan(monkeypatch, tmp_path, seconds=1.0, times=32)
        store = ResultStore(directory=str(tmp_path / "store"))
        scheduler = Scheduler(workers=1, chunk_size=8, store=store)
        try:
            running = scheduler.submit(ghz_spec(trajectories=64, seed=1))
            queued = scheduler.submit(ghz_spec(trajectories=64, seed=2))
            deadline = time.time() + 10
            while time.time() < deadline:
                if scheduler.status(running).state == JobState.RUNNING:
                    break
                time.sleep(0.01)
        finally:
            scheduler.shutdown()
        assert scheduler.status(queued).state == JobState.CANCELLED
        # The never-started job must have no partial entry on disk or in
        # memory — a stale zero-trajectory checkpoint would poison resume.
        fresh = ResultStore(directory=str(tmp_path / "store"))
        queued_key = ghz_spec(trajectories=64, seed=2).job_key()
        assert fresh.get_partial(queued_key) is None
        assert fresh.stats()["corrupt"] == 0

    def test_submit_after_shutdown_raises(self, tmp_path):
        scheduler = Scheduler(workers=1)
        scheduler.shutdown()
        with pytest.raises(SchedulerError, match="shut down"):
            scheduler.submit(ghz_spec())

    def test_shutdown_is_idempotent(self):
        scheduler = Scheduler(workers=1)
        scheduler.shutdown()
        scheduler.shutdown()
