"""Write-ahead job journal: replay idempotency, torn tails, compaction."""

import json
import os

import pytest

from repro.faults import FaultPlan, FaultSpec, PLAN_ENV, reset_injector_cache
from repro.obs.metrics import MetricsRegistry
from repro.service.journal import (
    JOURNAL_SCHEMA,
    JobJournal,
    journal_path,
    replay_journal,
)

KEY = "a" * 64
OTHER = "b" * 64


def _result_payload(first, count):
    """A stand-in chunk-result payload (replay never parses it)."""
    return {"completed_trajectories": count, "first": first}


def _populate(journal, key=KEY, chunks=2):
    journal.job_submitted(key, {"circuit_name": "ghz-3", "trajectories": 8})
    plan = [(i, 4 * i, 4) for i in range(chunks)]
    journal.plan_recorded(key, plan, [])
    for i in range(chunks):
        journal.lease_granted(key, i, "host:1", i, 99.0)
        journal.chunk_done(key, i, 4 * i, 4, i, _result_payload(4 * i, 4))
    return plan


@pytest.fixture
def wal(tmp_path):
    return journal_path(str(tmp_path))


class TestReplayIdempotency:
    def test_replay_twice_yields_identical_state(self, wal):
        with JobJournal(wal) as journal:
            _populate(journal)
        first = replay_journal(wal)
        second = replay_journal(wal)
        assert first.keys() == second.keys() == {KEY}
        assert first[KEY].plan == second[KEY].plan == [(0, 0, 4), (1, 4, 4)]
        assert first[KEY].completed == second[KEY].completed
        assert first[KEY].max_token == second[KEY].max_token == 1
        assert not first[KEY].done

    def test_records_are_absorbing(self, wal):
        """Duplicate chunk-done / job-done records fold to the same state."""
        with JobJournal(wal) as journal:
            _populate(journal, chunks=1)
            journal.chunk_done(KEY, 0, 0, 4, 0, _result_payload(0, 4))
            journal.job_done(KEY, "completed")
            journal.job_done(KEY, "completed")
        jobs = replay_journal(wal)
        # The open-time compaction of a *new* journal drops the finished job.
        with JobJournal(wal) as reopened:
            assert reopened.incomplete_jobs() == []
        assert jobs == {} or jobs[KEY].done

    def test_missing_file_replays_empty(self, tmp_path):
        assert replay_journal(str(tmp_path / "nope" / "wal.jsonl")) == {}


class TestTornTail:
    def test_truncated_final_record_is_skipped(self, wal):
        with JobJournal(wal) as journal:
            _populate(journal)
        with open(wal, "rb") as handle:
            raw = handle.read()
        lines = raw.rstrip(b"\n").split(b"\n")
        torn = b"\n".join(lines[:-1]) + b"\n" + lines[-1][: len(lines[-1]) // 2]
        with open(wal, "wb") as handle:
            handle.write(torn)
        metrics = MetricsRegistry()
        jobs = replay_journal(wal, metrics)
        # The second chunk-done was torn: only chunk 0 replays as committed.
        assert set(jobs[KEY].completed) == {0}
        assert metrics.snapshot()["counters"]["journal.replay.torn_skipped"] == 1

    def test_unterminated_but_parseable_tail_is_skipped(self, wal):
        """A tail that happens to parse is still untrusted without its \\n."""
        with JobJournal(wal) as journal:
            _populate(journal, chunks=1)
        record = json.dumps(
            {"rec": "job-done", "job": KEY, "status": "completed"},
            separators=(",", ":"),
        )
        with open(wal, "ab") as handle:
            handle.write(record.encode("utf-8"))  # no trailing newline
        jobs = replay_journal(wal)
        assert not jobs[KEY].done

    def test_bad_interior_line_is_skipped(self, wal):
        with JobJournal(wal) as journal:
            _populate(journal, chunks=1)
        with open(wal, "rb") as handle:
            lines = handle.read().rstrip(b"\n").split(b"\n")
        lines.insert(2, b"\x00garbage not json\x00")
        with open(wal, "wb") as handle:
            handle.write(b"\n".join(lines) + b"\n")
        metrics = MetricsRegistry()
        jobs = replay_journal(wal, metrics)
        assert set(jobs[KEY].completed) == {0}
        assert metrics.snapshot()["counters"]["journal.replay.bad_skipped"] == 1

    def test_open_time_compaction_removes_torn_tail(self, wal):
        with JobJournal(wal) as journal:
            _populate(journal)
        with open(wal, "r+b") as handle:
            size = os.path.getsize(wal)
            handle.truncate(size - 7)
        with JobJournal(wal) as reopened:
            jobs = reopened.incomplete_jobs()
            assert len(jobs) == 1 and set(jobs[0].completed) == {0}
        # After the atomic rotation the file is fully newline-terminated.
        with open(wal, "rb") as handle:
            raw = handle.read()
        assert raw.endswith(b"\n")
        assert json.loads(raw.split(b"\n")[0])["schema"] == JOURNAL_SCHEMA


class TestCompaction:
    def test_finished_jobs_are_dropped_incomplete_kept(self, wal):
        with JobJournal(wal) as journal:
            _populate(journal, key=OTHER, chunks=1)
            journal.job_done(OTHER, "completed")
            _populate(journal)
        with JobJournal(wal) as reopened:
            assert [j.key for j in reopened.incomplete_jobs()] == [KEY]
        with open(wal, "rb") as handle:
            raw = handle.read()
        assert OTHER.encode() not in raw
        assert KEY.encode() in raw

    def test_rotation_preserves_plan_base_and_token_horizon(self, wal):
        with JobJournal(wal) as journal:
            journal.job_submitted(KEY, {"trajectories": 12})
            journal.plan_recorded(
                KEY, [(0, 4, 4), (1, 8, 4)], [(0, 4)],
                base_result={"completed_trajectories": 4},
            )
            journal.lease_granted(KEY, 1, "host:1", 7, 99.0)
            journal.chunk_done(KEY, 0, 4, 4, 2, _result_payload(4, 4))
        with JobJournal(wal) as reopened:
            (job,) = reopened.incomplete_jobs()
            assert job.plan == [(0, 4, 4), (1, 8, 4)]
            assert job.base_spans == [(0, 4)]
            assert job.base_result == {"completed_trajectories": 4}
            assert job.max_token == 7
            assert set(job.completed) == {0}


class TestFaultSites:
    @pytest.fixture(autouse=True)
    def _clean_injector(self, monkeypatch):
        monkeypatch.delenv(PLAN_ENV, raising=False)
        reset_injector_cache()
        yield
        reset_injector_cache()

    def _arm(self, monkeypatch, kind):
        plan = FaultPlan(
            faults=(FaultSpec(kind=kind, operation="chunk-done"),), seed=0
        )
        monkeypatch.setenv(PLAN_ENV, plan.to_json())
        reset_injector_cache()

    def test_enospc_journal_degrades_but_mirror_advances(
        self, wal, monkeypatch
    ):
        self._arm(monkeypatch, "enospc-journal")
        with JobJournal(wal) as journal:
            journal.job_submitted(KEY, {"trajectories": 8})
            journal.plan_recorded(KEY, [(0, 0, 4), (1, 4, 4)], [])
            journal.chunk_done(KEY, 0, 0, 4, 0, _result_payload(0, 4))  # ENOSPC
            assert journal.degraded
            journal.chunk_done(KEY, 1, 4, 4, 1, _result_payload(4, 4))  # shed
            counters = journal.metrics.snapshot()["counters"]
            assert counters["journal.write.errors"] == 1
            assert counters["journal.degraded.skipped"] == 1
            # The running process stays correct: the mirror has both chunks.
            assert set(journal.job(KEY).completed) == {0, 1}
        # Crash durability for the shed records is what was lost.
        assert replay_journal(wal)[KEY].completed == {}

    def test_torn_journal_fault_tears_the_tail(self, wal, monkeypatch):
        self._arm(monkeypatch, "torn-journal")
        with JobJournal(wal) as journal:
            journal.job_submitted(KEY, {"trajectories": 4})
            journal.plan_recorded(KEY, [(0, 0, 4)], [])
            journal.chunk_done(KEY, 0, 0, 4, 0, _result_payload(0, 4))
        jobs = replay_journal(wal)
        # The chunk-done record was cut mid-line: submit/plan survive.
        assert jobs[KEY].plan == [(0, 0, 4)]
        assert jobs[KEY].completed == {}
