"""End-to-end CLI tests: submit → serve → status/result → cached resubmit."""

import os
import threading

import pytest

from repro.cli import main
from repro.service import ResultStore, query_status
from repro.service.job import JobState

GHZ_QASM = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "circuits", "ghz_n8.qasm"
)


def submit(store_dir, capsys, extra=()):
    exit_code = main(
        [
            "submit", GHZ_QASM, "-M", "40", "--seed", "4",
            "--probability", "00000000", "--probability", "11111111",
            "--store", store_dir, *extra,
        ]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    return output.splitlines()[0].strip(), output


class TestVersionFlag:
    def test_version_prints_and_exits(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro-sim" in capsys.readouterr().out


class TestSubmitServeRoundTrip:
    def test_full_round_trip(self, tmp_path, capsys):
        store_dir = str(tmp_path)
        key, output = submit(store_dir, capsys)
        assert len(key) == 64
        assert "queued" in output

        # Before serving: the job is visible as queued.
        assert main(["status", key[:12], "--store", store_dir]) == 0
        assert "[queued]" in capsys.readouterr().out

        # result without --wait reports not-ready.
        assert main(["result", key[:12], "--store", store_dir]) == 1
        capsys.readouterr()

        # Drain the queue with the batch runner.
        assert main(
            ["serve", "--once", "-w", "2", "--chunk-size", "5",
             "--store", store_dir]
        ) == 0
        serve_output = capsys.readouterr().out
        assert "processed 1 job(s)" in serve_output

        # Status now shows completion with estimates.
        assert main(["status", key[:12], "--store", store_dir]) == 0
        status_output = capsys.readouterr().out
        assert "[completed]" in status_output
        assert "40/40" in status_output
        assert "P(|00000000>)" in status_output

        # Full result renders the standard summary.
        assert main(["result", key[:12], "--store", store_dir]) == 0
        result_output = capsys.readouterr().out
        assert "trajectories: 40/40" in result_output
        assert "P(|11111111>)" in result_output

    def test_resubmission_is_answered_by_cache(self, tmp_path, capsys):
        store_dir = str(tmp_path)
        key, _ = submit(store_dir, capsys)
        main(["serve", "--once", "--store", store_dir])
        capsys.readouterr()

        key_again, output = submit(store_dir, capsys)
        assert key_again == key
        assert "cache hit" in output
        # Nothing was re-queued, so another serve pass finds no work.
        assert main(["serve", "--once", "--store", store_dir]) == 0
        assert "processed 0 job(s)" in capsys.readouterr().out

    def test_streaming_estimates_visible_while_serving(self, tmp_path, capsys):
        """A status poller in a separate thread (standing in for a separate
        process) observes RUNNING checkpoints while `serve` executes."""
        store_dir = str(tmp_path)
        exit_code = main(
            ["submit", "ghz:12", "-M", "30", "--seed", "2", "--shots", "0",
             "--probability", "0" * 12, "--store", store_dir]
        )
        assert exit_code == 0
        key = capsys.readouterr().out.splitlines()[0].strip()

        store = ResultStore(directory=store_dir)
        seen = []
        done = threading.Event()

        def poll():
            while not done.is_set():
                try:
                    status = query_status(store, key)
                except KeyError:
                    continue
                seen.append(
                    (status.state, status.completed_trajectories,
                     dict(status.estimates))
                )

        poller = threading.Thread(target=poll)
        poller.start()
        try:
            assert main(
                ["serve", "--once", "-w", "2", "--chunk-size", "1",
                 "--store", store_dir]
            ) == 0
        finally:
            done.set()
            poller.join(timeout=30)
        capsys.readouterr()

        partial = [
            entry for entry in seen
            if entry[0] == JobState.RUNNING and 0 < entry[1] < 30
        ]
        assert partial, "no streaming (mid-run) status was observed"
        # The streaming snapshot carries a live Hoeffding estimate.
        state, count, estimates = partial[-1]
        estimate = estimates["P(|000000000000>)"]
        assert estimate.count == count
        assert estimate.halfwidth > 0

    def test_unknown_key_fails_cleanly(self, tmp_path, capsys):
        with pytest.raises(SystemExit, match="no job"):
            main(["status", "beef", "--store", str(tmp_path)])


class TestCacheCommand:
    def test_show_and_clear(self, tmp_path, capsys):
        store_dir = str(tmp_path)
        key, _ = submit(store_dir, capsys)
        main(["serve", "--once", "--store", store_dir])
        capsys.readouterr()

        assert main(["cache", "show", "--store", store_dir]) == 0
        shown = capsys.readouterr().out
        assert "final results: 1" in shown
        assert key[:16] in shown
        assert "ghz_n8" in shown

        assert main(["cache", "clear", "--store", store_dir]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["cache", "show", "--store", store_dir]) == 0
        assert "final results: 0" in capsys.readouterr().out


class TestJobsCommand:
    def test_empty_store_reports_nothing_resumable(self, tmp_path, capsys):
        assert main(["jobs", "--store", str(tmp_path)]) == 0
        assert "no resumable work" in capsys.readouterr().out

    def test_queued_and_journaled_work_is_listed(self, tmp_path, capsys):
        store_dir = str(tmp_path)
        key, _ = submit(store_dir, capsys)
        assert main(["jobs", "--store", store_dir]) == 0
        listing = capsys.readouterr().out
        assert key[:16] in listing
        assert "[queued]" in listing
        assert "serve --once --resume" in listing

        # A journal entry takes precedence over the queue row for its key.
        from repro.service.journal import JobJournal, journal_path

        with JobJournal(journal_path(store_dir)) as journal:
            journal.job_submitted(key, {"circuit_name": "ghz-8",
                                        "trajectories": 40})
            journal.plan_recorded(key, [(0, 0, 20), (1, 20, 20)], [])
            journal.chunk_done(key, 0, 0, 20, 0,
                               {"completed_trajectories": 20})
        assert main(["jobs", "--json", "--store", store_dir]) == 0
        import json as _json

        payload = _json.loads(capsys.readouterr().out)
        (row,) = [r for r in payload["jobs"] if r["key"] == key]
        assert row["source"] == "journal"
        assert row["completed_chunks"] == 1
        assert row["planned_chunks"] == 2

    def test_serve_accepts_resume_and_drain_flags(self, tmp_path, capsys):
        store_dir = str(tmp_path)
        assert main(
            ["serve", "--once", "--resume", "--drain-timeout", "2",
             "--lease-duration", "5", "--store", store_dir]
        ) == 0
        assert "processed 0 job(s)" in capsys.readouterr().out
