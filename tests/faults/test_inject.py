"""Tests for FaultInjector: budgets, marker claiming, env activation."""

import os

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    LEGACY_CRASH_ONCE_ENV,
    PLAN_ENV,
    get_injector,
    reset_injector_cache,
)


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(PLAN_ENV, raising=False)
    monkeypatch.delenv(LEGACY_CRASH_ONCE_ENV, raising=False)
    reset_injector_cache()
    yield
    reset_injector_cache()


class TestFiringBudgets:
    def test_in_process_budget_is_consumed(self):
        injector = FaultInjector(FaultPlan(faults=(FaultSpec(kind="hang"),)))
        assert injector.fire("hang") is not None
        assert injector.fire("hang") is None

    def test_times_allows_multiple_firings(self):
        injector = FaultInjector(FaultPlan(faults=(FaultSpec(kind="hang", times=3),)))
        assert sum(injector.fire("hang") is not None for _ in range(5)) == 3

    def test_non_matching_site_leaves_budget_intact(self):
        spec = FaultSpec(kind="hang", chunk_index=7)
        injector = FaultInjector(FaultPlan(faults=(spec,)))
        assert injector.fire("hang", chunk_index=1) is None
        assert injector.fire("hang", chunk_index=7) is spec

    def test_firing_increments_injected_counter(self):
        injector = FaultInjector(FaultPlan(faults=(FaultSpec(kind="hang"),)))
        injector.fire("hang")
        assert injector.snapshot()["counters"]["faults.injected.hang"] == 1

    def test_counters_are_preregistered_at_zero(self):
        injector = FaultInjector(FaultPlan(faults=(FaultSpec(kind="hang"),)))
        assert injector.snapshot()["counters"]["faults.injected.hang"] == 0


class TestMarkerClaiming:
    def test_markers_coordinate_budgets_across_injectors(self, tmp_path):
        plan = FaultPlan(
            faults=(FaultSpec(kind="crash-before"),), state_dir=str(tmp_path)
        )
        first = FaultInjector(plan)
        second = FaultInjector(plan)  # a "different process"
        assert first.fire("crash-before") is not None
        assert second.fire("crash-before") is None

    def test_each_marker_firing_claimed_once(self, tmp_path):
        plan = FaultPlan(
            faults=(FaultSpec(kind="hang", times=2),), state_dir=str(tmp_path)
        )
        injectors = [FaultInjector(plan) for _ in range(4)]
        fired = sum(i.fire("hang") is not None for i in injectors)
        assert fired == 2

    def test_vanished_state_dir_injects_nothing(self, tmp_path):
        gone = tmp_path / "gone"
        plan = FaultPlan(
            faults=(FaultSpec(kind="hang"),), state_dir=str(gone)
        )
        assert FaultInjector(plan).fire("hang") is None


class TestEnvActivation:
    def test_no_env_no_injector(self):
        assert get_injector() is None

    def test_inline_json_plan(self, monkeypatch):
        plan = FaultPlan(faults=(FaultSpec(kind="hang"),))
        monkeypatch.setenv(PLAN_ENV, plan.to_json())
        injector = get_injector()
        assert injector is not None
        assert injector.plan == plan

    def test_injector_is_cached_per_plan_string(self, monkeypatch):
        plan = FaultPlan(faults=(FaultSpec(kind="hang"),))
        monkeypatch.setenv(PLAN_ENV, plan.to_json())
        assert get_injector() is get_injector()

    def test_file_indirection(self, monkeypatch, tmp_path):
        plan = FaultPlan(faults=(FaultSpec(kind="hang"),))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        monkeypatch.setenv(PLAN_ENV, f"@{path}")
        injector = get_injector()
        assert injector is not None and injector.plan == plan

    def test_missing_plan_file_injects_nothing(self, monkeypatch, tmp_path):
        monkeypatch.setenv(PLAN_ENV, f"@{tmp_path}/absent.json")
        assert get_injector() is None

    def test_unparsable_plan_injects_nothing(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "{not json")
        assert get_injector() is None

    def test_legacy_crash_once_alias(self, monkeypatch, tmp_path):
        marker = str(tmp_path / "crashed")
        monkeypatch.setenv(LEGACY_CRASH_ONCE_ENV, marker)
        injector = get_injector()
        assert injector is not None
        spec = injector.fire("crash-before", worker_id=0, chunk_index=0)
        assert spec is not None
        # The legacy contract: the marker file records the claim, and the
        # fault never fires twice (even from a fresh injector).
        assert os.path.exists(marker)
        reset_injector_cache()
        assert get_injector().fire("crash-before") is None

    def test_plan_env_wins_over_legacy(self, monkeypatch, tmp_path):
        plan = FaultPlan(faults=(FaultSpec(kind="hang"),))
        monkeypatch.setenv(PLAN_ENV, plan.to_json())
        monkeypatch.setenv(LEGACY_CRASH_ONCE_ENV, str(tmp_path / "m"))
        assert get_injector().plan == plan
