"""Tests for FaultPlan / FaultSpec: determinism, serialisation, matching."""

import json
import os

import pytest

from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec
from repro.faults.plan import KIND_ALIASES, canonical_kind


class TestCanonicalKind:
    def test_every_kind_is_its_own_canonical_form(self):
        for kind in FAULT_KINDS:
            assert canonical_kind(kind) == kind

    def test_aliases_resolve(self):
        assert canonical_kind("crash") == "crash-before"
        assert canonical_kind("corrupt-store") == "bit-flip"
        assert canonical_kind("torn") == "torn-write"

    def test_every_alias_targets_a_real_kind(self):
        for target in KIND_ALIASES.values():
            assert target in FAULT_KINDS

    def test_unknown_kind_raises_with_choices(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            canonical_kind("meteor-strike")


class TestFaultSpec:
    def test_unknown_kind_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="nope")

    def test_times_must_be_positive(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec(kind="hang", times=0)

    def test_kind_must_match(self):
        spec = FaultSpec(kind="crash-before")
        assert spec.matches("crash-before")
        assert not spec.matches("hang")

    def test_unset_keys_match_anything(self):
        spec = FaultSpec(kind="crash-before")
        assert spec.matches("crash-before", worker_id=3, chunk_index=9)

    def test_set_keys_match_exactly(self):
        spec = FaultSpec(kind="crash-before", chunk_index=2)
        assert spec.matches("crash-before", chunk_index=2)
        assert not spec.matches("crash-before", chunk_index=3)

    def test_set_key_does_not_match_a_site_without_the_attribute(self):
        spec = FaultSpec(kind="drift", trajectory=5)
        assert not spec.matches("drift")
        assert spec.matches("drift", trajectory=5)

    def test_job_key_is_a_prefix_match(self):
        spec = FaultSpec(kind="bit-flip", job_key="abc")
        assert spec.matches("bit-flip", job_key="abcdef0123")
        assert not spec.matches("bit-flip", job_key="xyz")
        assert not spec.matches("bit-flip")

    def test_roundtrip(self):
        spec = FaultSpec(
            kind="queue-delay", chunk_index=4, times=2, seconds=0.25,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultPlanSerialisation:
    def test_roundtrip(self):
        plan = FaultPlan.generate(
            seed=3, kinds=("crash", "hang", "drift"), num_chunks=5,
            trajectories=100, state_dir="/tmp/x",
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_json_is_canonical(self):
        plan = FaultPlan.generate(seed=3, kinds=("crash",), num_chunks=5)
        # sorted keys, compact separators: byte-stable across runs
        assert plan.to_json() == json.dumps(
            plan.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def test_unsupported_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            FaultPlan.from_dict({"version": 99, "faults": []})


class TestFaultPlanGenerate:
    def test_same_seed_same_schedule(self):
        args = dict(kinds=("crash", "hang", "bit-flip", "drift"),
                    num_chunks=7, trajectories=50)
        assert (
            FaultPlan.generate(seed=11, **args).to_json()
            == FaultPlan.generate(seed=11, **args).to_json()
        )

    def test_different_seed_different_schedule(self):
        kinds = ("crash", "hang")
        plans = {
            FaultPlan.generate(seed=s, kinds=kinds, num_chunks=100).to_json()
            for s in range(8)
        }
        assert len(plans) > 1

    def test_every_kind_is_generatable(self):
        plan = FaultPlan.generate(seed=0, kinds=FAULT_KINDS, num_chunks=3)
        assert sorted(plan.kinds()) == sorted(FAULT_KINDS)

    def test_chunk_targets_in_range(self):
        plan = FaultPlan.generate(seed=5, kinds=("crash", "hang"), num_chunks=4)
        for spec in plan.faults:
            assert 0 <= spec.chunk_index < 4

    def test_num_chunks_must_be_positive(self):
        with pytest.raises(ValueError, match="num_chunks"):
            FaultPlan.generate(seed=0, kinds=("crash",), num_chunks=0)


class TestMarkerCoordination:
    def test_no_state_dir_means_no_markers(self):
        plan = FaultPlan(faults=(FaultSpec(kind="hang"),))
        assert plan.marker_path(0, 0) is None

    def test_state_dir_markers_are_per_spec_and_firing(self, tmp_path):
        plan = FaultPlan(
            faults=(FaultSpec(kind="hang"), FaultSpec(kind="crash-before", times=2)),
            state_dir=str(tmp_path),
        )
        paths = {
            plan.marker_path(0, 0),
            plan.marker_path(1, 0),
            plan.marker_path(1, 1),
        }
        assert len(paths) == 3
        assert all(path.startswith(str(tmp_path)) for path in paths)

    def test_explicit_marker_is_used_verbatim_for_first_firing(self, tmp_path):
        marker = str(tmp_path / "crashed")
        plan = FaultPlan.crash_once(marker)
        assert plan.marker_path(0, 0) == marker

    def test_claimed_counts_reflect_marker_files(self, tmp_path):
        plan = FaultPlan(
            faults=(FaultSpec(kind="hang"), FaultSpec(kind="crash-before", times=2)),
            state_dir=str(tmp_path),
        )
        assert plan.claimed_counts() == {}
        for path in (plan.marker_path(1, 0), plan.marker_path(1, 1)):
            with open(path, "w"):
                pass
        assert plan.claimed_counts() == {"faults.injected.crash-before": 2}
