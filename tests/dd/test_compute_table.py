"""Unit tests for the memoisation compute table."""

from repro.dd.compute_table import ComputeTable


class TestComputeTable:
    def test_miss_then_hit(self):
        table = ComputeTable("test")
        assert table.lookup(("a", "b")) is None
        table.insert(("a", "b"), 42)
        assert table.lookup(("a", "b")) == 42
        assert table.hits == 1
        assert table.misses == 1

    def test_insert_returns_value(self):
        table = ComputeTable("test")
        assert table.insert("k", "v") == "v"

    def test_clear(self):
        table = ComputeTable("test")
        table.insert("k", 1)
        table.clear()
        assert table.lookup("k") is None
        assert len(table) == 0

    def test_eviction_at_capacity(self):
        table = ComputeTable("test", max_entries=4)
        for index in range(4):
            table.insert(index, index)
        assert len(table) == 4
        table.insert(99, 99)  # triggers wholesale eviction first
        assert table.evictions == 1
        assert len(table) == 1
        assert table.lookup(99) == 99
        assert table.lookup(0) is None

    def test_hit_ratio(self):
        table = ComputeTable("test")
        assert table.hit_ratio() == 0.0
        table.insert("k", 1)
        table.lookup("k")
        table.lookup("missing")
        assert table.hit_ratio() == 0.5

    def test_stats_shape(self):
        table = ComputeTable("test")
        stats = table.stats()
        assert set(stats) == {"entries", "hits", "misses", "evictions", "hit_ratio"}

    def test_overwrite_same_key(self):
        table = ComputeTable("test")
        table.insert("k", 1)
        table.insert("k", 2)
        assert table.lookup("k") == 2
