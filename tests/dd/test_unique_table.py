"""Unit tests for the unique table: hash-consing, refcounts, collection."""

import pytest

from repro.dd.complex_table import ComplexTable
from repro.dd.edge import Edge
from repro.dd.node import TERMINAL_VAR, Node
from repro.dd.unique_table import UniqueTable


@pytest.fixture
def setup():
    table = ComplexTable()
    unique = UniqueTable()
    terminal = Node(TERMINAL_VAR, ())
    one = Edge(terminal, table.one)
    zero = Edge(terminal, table.zero)
    return table, unique, terminal, one, zero


class TestHashConsing:
    def test_identical_lookups_return_same_node(self, setup):
        _, unique, _, one, zero = setup
        a = unique.lookup(0, (one, zero))
        b = unique.lookup(0, (one, zero))
        assert a is b

    def test_different_var_gives_different_node(self, setup):
        _, unique, _, one, zero = setup
        a = unique.lookup(0, (one, zero))
        b = unique.lookup(1, (one, zero))
        assert a is not b

    def test_different_children_give_different_node(self, setup):
        _, unique, _, one, zero = setup
        a = unique.lookup(0, (one, zero))
        b = unique.lookup(0, (zero, one))
        assert a is not b

    def test_hit_statistics(self, setup):
        _, unique, _, one, zero = setup
        unique.lookup(0, (one, zero))
        assert unique.misses == 1
        unique.lookup(0, (one, zero))
        assert unique.hits == 1

    def test_len(self, setup):
        _, unique, _, one, zero = setup
        unique.lookup(0, (one, zero))
        unique.lookup(1, (one, zero))
        assert len(unique) == 2


class TestReferenceCounting:
    def test_inc_ref_pins_transitively(self, setup):
        _, unique, _, one, zero = setup
        child = unique.lookup(1, (one, zero))
        child_edge = Edge(child, ComplexTable().one)
        parent = unique.lookup(0, (child_edge, child_edge))
        unique.inc_ref(Edge(parent, ComplexTable().one))
        assert parent.ref == 1
        assert child.ref == 2  # referenced through both parent edges

    def test_dec_ref_releases_transitively(self, setup):
        table, unique, _, one, zero = setup
        child = unique.lookup(1, (one, zero))
        child_edge = Edge(child, table.one)
        parent = unique.lookup(0, (child_edge, child_edge))
        root = Edge(parent, table.one)
        unique.inc_ref(root)
        unique.dec_ref(root)
        assert parent.ref == 0
        assert child.ref == 0

    def test_second_inc_ref_does_not_reincrement_children(self, setup):
        table, unique, _, one, zero = setup
        child = unique.lookup(1, (one, zero))
        child_edge = Edge(child, table.one)
        parent = unique.lookup(0, (child_edge, zero))
        root = Edge(parent, table.one)
        unique.inc_ref(root)
        unique.inc_ref(root)
        assert parent.ref == 2
        assert child.ref == 1

    def test_terminal_edge_ref_is_noop(self, setup):
        _, unique, _, one, _ = setup
        unique.inc_ref(one)
        unique.dec_ref(one)  # must not raise

    def test_dec_ref_underflow_raises(self, setup):
        table, unique, _, one, zero = setup
        node = unique.lookup(0, (one, zero))
        with pytest.raises(RuntimeError):
            unique.dec_ref(Edge(node, table.one))


class TestGarbageCollection:
    def test_collects_unreferenced_nodes(self, setup):
        _, unique, _, one, zero = setup
        unique.lookup(0, (one, zero))
        unique.lookup(1, (one, zero))
        collected = unique.garbage_collect()
        assert collected == 2
        assert len(unique) == 0

    def test_referenced_nodes_survive(self, setup):
        table, unique, _, one, zero = setup
        keep = unique.lookup(0, (one, zero))
        unique.lookup(1, (one, zero))
        unique.inc_ref(Edge(keep, table.one))
        unique.garbage_collect()
        assert len(unique) == 1
        assert unique.lookup(0, (one, zero)) is keep

    def test_should_collect_threshold(self, setup):
        _, unique, _, one, zero = setup
        unique.gc_limit = 1
        assert not unique.should_collect()
        unique.lookup(0, (one, zero))
        unique.lookup(1, (one, zero))
        assert unique.should_collect()

    def test_adaptive_limit_grows_on_ineffective_collection(self, setup):
        table, unique, _, one, zero = setup
        node = unique.lookup(0, (one, zero))
        unique.inc_ref(Edge(node, table.one))
        limit = unique.gc_limit
        unique.garbage_collect()  # nothing collectable
        assert unique.gc_limit == 2 * limit

    def test_stats_shape(self, setup):
        _, unique, _, _, _ = setup
        stats = unique.stats()
        assert set(stats) == {
            "entries", "hits", "misses", "collections", "gc_limit", "dead"
        }
