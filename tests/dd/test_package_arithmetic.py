"""Tests for DD arithmetic: add, multiply, kron, inner products."""

import numpy as np
import pytest

from repro.circuits import gates
from repro.dd import DDPackage

from ..conftest import random_state


class TestAddition:
    def test_vector_addition_matches_numpy(self, package, np_rng):
        a = random_state(np_rng, 4)
        b = random_state(np_rng, 4)
        result = package.add(package.from_state_vector(a), package.from_state_vector(b))
        assert np.allclose(package.to_state_vector(result), a + b)

    def test_add_zero_left_and_right(self, package, np_rng):
        edge = package.from_state_vector(random_state(np_rng, 4))
        assert package.add(package.zero_edge, edge) is edge
        assert package.add(edge, package.zero_edge) is edge

    def test_cancellation_gives_zero_edge(self, package, np_rng):
        vector = random_state(np_rng, 4)
        edge = package.from_state_vector(vector)
        negated = package.negate(edge)
        result = package.add(edge, negated)
        assert result.is_zero

    def test_matrix_addition_matches_numpy(self, package, np_rng):
        a = np_rng.normal(size=(16, 16)) + 1j * np_rng.normal(size=(16, 16))
        b = np_rng.normal(size=(16, 16)) + 1j * np_rng.normal(size=(16, 16))
        result = package.add(
            package.from_operator_matrix(a), package.from_operator_matrix(b)
        )
        assert np.allclose(package.to_operator_matrix(result), a + b)

    def test_add_commutes(self, package, np_rng):
        a = package.from_state_vector(random_state(np_rng, 4))
        b = package.from_state_vector(random_state(np_rng, 4))
        ab = package.add(a, b)
        ba = package.add(b, a)
        assert np.allclose(
            package.to_state_vector(ab), package.to_state_vector(ba)
        )

    def test_scalar_factored_caching(self, package, np_rng):
        # a + b and 2a + 2b share the same cache entry (common factor strip).
        a = package.from_state_vector(random_state(np_rng, 4))
        b = package.from_state_vector(random_state(np_rng, 4))
        package.add(a, b)
        hits_before = package._add_table.hits
        package.add(package.scale(a, 2.0), package.scale(b, 2.0))
        assert package._add_table.hits > hits_before


class TestScale:
    def test_scale_matches_numpy(self, package, np_rng):
        vector = random_state(np_rng, 4)
        edge = package.scale(package.from_state_vector(vector), 0.5 - 2j)
        assert np.allclose(package.to_state_vector(edge), (0.5 - 2j) * vector)

    def test_scale_by_zero(self, package, np_rng):
        edge = package.from_state_vector(random_state(np_rng, 4))
        assert package.scale(edge, 0.0).is_zero

    def test_negate(self, package, np_rng):
        vector = random_state(np_rng, 4)
        edge = package.negate(package.from_state_vector(vector))
        assert np.allclose(package.to_state_vector(edge), -vector)


class TestMatrixVectorMultiply:
    def test_matches_numpy_random(self, package, np_rng):
        matrix = np_rng.normal(size=(16, 16)) + 1j * np_rng.normal(size=(16, 16))
        vector = random_state(np_rng, 4)
        result = package.multiply(
            package.from_operator_matrix(matrix), package.from_state_vector(vector)
        )
        assert np.allclose(package.to_state_vector(result), matrix @ vector)

    def test_zero_operator_and_zero_state(self, package, np_rng):
        state = package.from_state_vector(random_state(np_rng, 4))
        assert package.multiply(package.zero_edge, state).is_zero
        assert package.multiply(package.identity(), package.zero_edge).is_zero

    def test_gate_sequence_matches_numpy(self, package):
        state = package.zero_state()
        dense = np.zeros(16, dtype=complex)
        dense[0] = 1.0
        operations = [
            (gates.H, 0, {}),
            (gates.X, 1, {0: 1}),
            (gates.T, 2, {}),
            (gates.Z, 3, {1: 1}),
            (gates.H, 2, {}),
        ]
        for matrix, target, controls in operations:
            state = package.multiply(package.gate(matrix, target, controls), state)
            from .test_package_matrices import dense_controlled

            dense = dense_controlled(matrix, target, controls, 4) @ dense
        assert np.allclose(package.to_state_vector(state), dense)

    def test_norm_preserved_by_unitaries(self, package, np_rng):
        state = package.from_state_vector(random_state(np_rng, 4))
        for target in range(4):
            state = package.multiply(package.gate(gates.H, target), state)
        assert package.squared_norm(state) == pytest.approx(1.0)


class TestMatrixMatrixMultiply:
    def test_matches_numpy(self, package, np_rng):
        a = np_rng.normal(size=(16, 16)) + 1j * np_rng.normal(size=(16, 16))
        b = np_rng.normal(size=(16, 16)) + 1j * np_rng.normal(size=(16, 16))
        result = package.multiply_matrices(
            package.from_operator_matrix(a), package.from_operator_matrix(b)
        )
        assert np.allclose(package.to_operator_matrix(result), a @ b)

    def test_gate_composition(self, package):
        hh = package.multiply_matrices(package.gate(gates.H, 0), package.gate(gates.H, 0))
        assert np.allclose(package.to_operator_matrix(hh), np.eye(16))

    def test_identity_neutral(self, package, np_rng):
        a = np_rng.normal(size=(16, 16))
        edge = package.from_operator_matrix(a)
        result = package.multiply_matrices(package.identity(), edge)
        assert np.allclose(package.to_operator_matrix(result), a)


class TestKron:
    def test_vector_kron_matches_numpy(self, np_rng):
        package = DDPackage(5)
        top_vec = random_state(np_rng, 2)
        bottom_vec = random_state(np_rng, 3)
        top = package.from_state_vector(top_vec)
        bottom = package.from_state_vector(bottom_vec)
        result = package.kron(top, bottom, 3)
        assert np.allclose(
            package.to_state_vector(result, 5), np.kron(top_vec, bottom_vec)
        )

    def test_matrix_kron_matches_numpy(self, np_rng):
        package = DDPackage(4)
        a = np_rng.normal(size=(4, 4)) + 1j * np_rng.normal(size=(4, 4))
        b = np_rng.normal(size=(4, 4)) + 1j * np_rng.normal(size=(4, 4))
        result = package.kron(
            package.from_operator_matrix(a), package.from_operator_matrix(b), 2
        )
        assert np.allclose(package.to_operator_matrix(result, 4), np.kron(a, b))


class TestInnerProduct:
    def test_matches_numpy(self, package, np_rng):
        a = random_state(np_rng, 4)
        b = random_state(np_rng, 4)
        value = package.inner_product(
            package.from_state_vector(a), package.from_state_vector(b)
        )
        assert value == pytest.approx(np.vdot(a, b))

    def test_conjugate_linearity(self, package, np_rng):
        a = random_state(np_rng, 4)
        b = random_state(np_rng, 4)
        ea, eb = package.from_state_vector(a), package.from_state_vector(b)
        forward = package.inner_product(ea, eb)
        backward = package.inner_product(eb, ea)
        assert forward == pytest.approx(np.conj(backward))

    def test_self_inner_product_is_one(self, package, np_rng):
        edge = package.from_state_vector(random_state(np_rng, 4))
        assert package.inner_product(edge, edge) == pytest.approx(1.0 + 0j)

    def test_orthogonal_states(self, package):
        a = package.basis_state([0, 0, 0, 0])
        b = package.basis_state([1, 0, 0, 0])
        assert package.inner_product(a, b) == 0.0

    def test_fidelity(self, package, np_rng):
        a = random_state(np_rng, 4)
        b = random_state(np_rng, 4)
        fidelity = package.fidelity(
            package.from_state_vector(a), package.from_state_vector(b)
        )
        assert fidelity == pytest.approx(abs(np.vdot(a, b)) ** 2)

    def test_zero_edge_inner_product(self, package, np_rng):
        edge = package.from_state_vector(random_state(np_rng, 4))
        assert package.inner_product(package.zero_edge, edge) == 0.0


class TestDepthMismatchErrors:
    def test_add_depth_mismatch(self, package):
        # Build a depth-2 vector inside the 4-qubit package via product_state.
        shallow = package.product_state([(1, 0), (1, 0)])
        full = package.zero_state()
        with pytest.raises(ValueError):
            package.add(full, shallow)
