"""Unit tests for DD node and edge structures."""

import pytest

from repro.dd.complex_table import ComplexTable
from repro.dd.edge import Edge
from repro.dd.node import TERMINAL_VAR, Node


@pytest.fixture
def table():
    return ComplexTable()


@pytest.fixture
def terminal():
    return Node(TERMINAL_VAR, ())


class TestNode:
    def test_terminal_properties(self, terminal):
        assert terminal.is_terminal
        assert not terminal.is_vector_node
        assert not terminal.is_matrix_node

    def test_terminal_with_edges_rejected(self, table, terminal):
        edge = Edge(terminal, table.one)
        with pytest.raises(ValueError):
            Node(TERMINAL_VAR, (edge, edge))

    def test_vector_node(self, table, terminal):
        edge = Edge(terminal, table.one)
        node = Node(0, (edge, edge))
        assert node.is_vector_node
        assert not node.is_matrix_node
        assert not node.is_terminal
        assert node.var == 0

    def test_matrix_node(self, table, terminal):
        edge = Edge(terminal, table.one)
        node = Node(2, (edge,) * 4)
        assert node.is_matrix_node
        assert not node.is_vector_node

    def test_wrong_arity_rejected(self, table, terminal):
        edge = Edge(terminal, table.one)
        with pytest.raises(ValueError):
            Node(0, (edge,))
        with pytest.raises(ValueError):
            Node(0, (edge,) * 3)

    def test_structural_key_distinguishes_weights(self, table, terminal):
        one = Edge(terminal, table.one)
        half = Edge(terminal, table.lookup(0.5 + 0j))
        node_a = Node(0, (one, half))
        node_b = Node(0, (half, one))
        assert node_a.structural_key() != node_b.structural_key()

    def test_structural_key_equal_for_identical_structure(self, table, terminal):
        one = Edge(terminal, table.one)
        node_a = Node(1, (one, one))
        node_b = Node(1, (one, one))
        assert node_a.structural_key() == node_b.structural_key()

    def test_initial_ref_is_zero(self, table, terminal):
        node = Node(0, (Edge(terminal, table.one), Edge(terminal, table.zero)))
        assert node.ref == 0

    def test_repr(self, table, terminal):
        assert "terminal" in repr(terminal)
        node = Node(0, (Edge(terminal, table.one), Edge(terminal, table.zero)))
        assert "q0" in repr(node)


class TestEdge:
    def test_zero_edge_detection(self, table, terminal):
        assert Edge(terminal, table.zero).is_zero
        assert not Edge(terminal, table.one).is_zero

    def test_non_terminal_edge_is_not_zero(self, table, terminal):
        inner = Node(0, (Edge(terminal, table.one), Edge(terminal, table.zero)))
        assert not Edge(inner, table.zero).is_zero  # malformed, but not "the" zero edge

    def test_equality_by_identity_of_parts(self, table, terminal):
        a = Edge(terminal, table.one)
        b = Edge(terminal, table.one)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self, table, terminal):
        a = Edge(terminal, table.one)
        b = Edge(terminal, table.lookup(0.5 + 0j))
        assert a != b

    def test_weighted_identity_fast_path(self, table, terminal):
        edge = Edge(terminal, table.lookup(0.5 + 0j))
        assert edge.weighted(table, table.one) is edge

    def test_weighted_multiplies(self, table, terminal):
        edge = Edge(terminal, table.lookup(0.5 + 0j))
        scaled = edge.weighted(table, table.lookup(0.5 + 0j))
        assert scaled.weight.value == pytest.approx(0.25 + 0j)
