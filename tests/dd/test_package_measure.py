"""Tests for DD measurement: probabilities, collapse, sampling."""

import math
import random
from collections import Counter

import numpy as np
import pytest

from repro.circuits import gates
from repro.dd import DDPackage

from ..conftest import random_state

SQRT2_INV = 1.0 / math.sqrt(2.0)


def ghz_edge(package):
    state = package.zero_state()
    state = package.multiply(package.gate(gates.H, 0), state)
    for qubit in range(package.num_qubits - 1):
        state = package.multiply(package.gate(gates.X, qubit + 1, {qubit: 1}), state)
    return state


class TestProbabilityOfOne:
    def test_basis_state(self, package):
        edge = package.basis_state([1, 0, 1, 0])
        assert package.probability_of_one(edge, 0) == pytest.approx(1.0)
        assert package.probability_of_one(edge, 1) == pytest.approx(0.0)
        assert package.probability_of_one(edge, 2) == pytest.approx(1.0)

    def test_ghz_marginals_are_half(self, package):
        edge = ghz_edge(package)
        for qubit in range(4):
            assert package.probability_of_one(edge, qubit) == pytest.approx(0.5)

    def test_matches_dense_computation(self, package, np_rng):
        vector = random_state(np_rng, 4)
        edge = package.from_state_vector(vector)
        for qubit in range(4):
            expected = sum(
                abs(vector[i]) ** 2 for i in range(16) if (i >> (3 - qubit)) & 1
            )
            assert package.probability_of_one(edge, qubit) == pytest.approx(expected)

    def test_unnormalised_state_uses_relative_probability(self, package, np_rng):
        vector = random_state(np_rng, 4)
        edge = package.scale(package.from_state_vector(vector), 3.0)
        expected = sum(abs(vector[i]) ** 2 for i in range(16) if (i >> 3) & 1)
        assert package.probability_of_one(edge, 0) == pytest.approx(expected)

    def test_zero_vector_rejected(self, package):
        with pytest.raises(ValueError):
            package.probability_of_one(package.zero_edge, 0)


class TestMeasureQubit:
    def test_deterministic_outcome(self, package, rng):
        edge = package.basis_state([1, 0, 0, 0])
        outcome, post, probability = package.measure_qubit(edge, 0, rng)
        assert outcome == 1
        assert probability == pytest.approx(1.0)
        assert np.allclose(
            package.to_state_vector(post), package.to_state_vector(edge)
        )

    def test_collapse_ghz(self, package):
        edge = ghz_edge(package)
        rng = random.Random(3)
        outcome, post, probability = package.measure_qubit(edge, 0, rng)
        assert probability == pytest.approx(0.5)
        vector = package.to_state_vector(post)
        expected = np.zeros(16, dtype=complex)
        expected[0b1111 if outcome else 0] = 1.0
        assert np.allclose(vector, expected)

    def test_post_state_normalised(self, package, np_rng, rng):
        edge = package.from_state_vector(random_state(np_rng, 4))
        _, post, _ = package.measure_qubit(edge, 2, rng)
        assert package.squared_norm(post) == pytest.approx(1.0)

    def test_no_collapse_option(self, package, rng):
        edge = ghz_edge(package)
        _, post, _ = package.measure_qubit(edge, 0, rng, collapse=False)
        assert post is edge

    def test_outcome_statistics(self, package):
        # Measuring q0 of (sqrt(1/4)|0> + sqrt(3/4)|1>) x |000>.
        edge = package.product_state([(0.5, math.sqrt(0.75)), (1, 0), (1, 0), (1, 0)])
        rng = random.Random(99)
        ones = sum(
            package.measure_qubit(edge, 0, rng)[0] for _ in range(2000)
        )
        assert ones / 2000 == pytest.approx(0.75, abs=0.04)


class TestSampling:
    def test_sample_basis_state_format(self, package, rng):
        edge = package.basis_state([1, 0, 1, 1])
        assert package.sample_basis_state(edge, rng) == "1011"

    def test_sample_counts_total(self, package, rng):
        edge = ghz_edge(package)
        counts = package.sample_counts(edge, 500, rng)
        assert sum(counts.values()) == 500
        assert set(counts) <= {"0000", "1111"}

    def test_sampling_distribution_matches_amplitudes(self, np_rng):
        package = DDPackage(3)
        vector = random_state(np_rng, 3)
        edge = package.from_state_vector(vector)
        rng = random.Random(7)
        counts = Counter()
        shots = 20000
        counts.update(package.sample_counts(edge, shots, rng))
        for index in range(8):
            key = format(index, "03b")
            expected = abs(vector[index]) ** 2
            assert counts[key] / shots == pytest.approx(expected, abs=0.02)

    def test_sampling_never_returns_zero_amplitude_states(self, package, rng):
        edge = package.basis_state([0, 1, 0, 1])
        counts = package.sample_counts(edge, 200, rng)
        assert counts == {"0101": 200}
