"""Tests for sparse amplitude enumeration."""

import math

import numpy as np
import pytest

from repro.circuits import gates
from repro.dd import DDPackage

from ..conftest import random_state


class TestIterateNonzeroAmplitudes:
    def test_basis_state_single_entry(self, package):
        edge = package.basis_state([1, 0, 1, 1])
        entries = dict(package.iterate_nonzero_amplitudes(edge))
        assert entries == {"1011": pytest.approx(1.0)}

    def test_ghz_two_entries(self, package):
        state = package.zero_state()
        state = package.multiply(package.gate(gates.H, 0), state)
        for qubit in range(3):
            state = package.multiply(package.gate(gates.X, qubit + 1, {qubit: 1}), state)
        entries = dict(package.iterate_nonzero_amplitudes(state))
        assert set(entries) == {"0000", "1111"}
        assert entries["0000"] == pytest.approx(1 / math.sqrt(2))

    def test_matches_dense_vector(self, package, np_rng):
        vector = random_state(np_rng, 4)
        edge = package.from_state_vector(vector)
        entries = dict(package.iterate_nonzero_amplitudes(edge))
        for index in range(16):
            key = format(index, "04b")
            assert entries.get(key, 0.0) == pytest.approx(complex(vector[index]), abs=1e-9)

    def test_zero_edge_yields_nothing(self, package):
        assert list(package.iterate_nonzero_amplitudes(package.zero_edge)) == []

    def test_sparse_on_wide_register(self):
        """Support-proportional: 2 entries out of 2^50 states."""
        package = DDPackage(50)
        state = package.zero_state()
        state = package.multiply(package.gate(gates.H, 0), state)
        for qubit in range(49):
            state = package.multiply(package.gate(gates.X, qubit + 1, {qubit: 1}), state)
        entries = list(package.iterate_nonzero_amplitudes(state))
        assert len(entries) == 2
        assert {bits for bits, _ in entries} == {"0" * 50, "1" * 50}

    def test_probabilities_sum_to_one(self, package, np_rng):
        edge = package.from_state_vector(random_state(np_rng, 4))
        total = sum(
            abs(amplitude) ** 2
            for _, amplitude in package.iterate_nonzero_amplitudes(edge)
        )
        assert total == pytest.approx(1.0)
