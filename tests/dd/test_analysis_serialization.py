"""Tests for DD structural analysis and serialisation."""

import json
import math

import numpy as np
import pytest

from repro.circuits import gates
from repro.dd import DDPackage
from repro.dd.analysis import count_paths, level_widths, memory_estimate, sparsity
from repro.dd.serialization import deserialize_edge, serialize_edge

from ..conftest import random_state


def ghz_edge(package):
    state = package.zero_state()
    state = package.multiply(package.gate(gates.H, 0), state)
    for qubit in range(package.num_qubits - 1):
        state = package.multiply(package.gate(gates.X, qubit + 1, {qubit: 1}), state)
    return state


class TestLevelWidths:
    def test_product_state_width_one(self, package):
        edge = package.zero_state()
        assert level_widths(edge) == {0: 1, 1: 1, 2: 1, 3: 1}

    def test_ghz_width_two_below_root(self, package):
        edge = ghz_edge(package)
        assert level_widths(edge) == {0: 1, 1: 2, 2: 2, 3: 2}

    def test_dense_state_exponential_bulge(self, np_rng):
        package = DDPackage(5)
        edge = package.from_state_vector(random_state(np_rng, 5))
        widths = level_widths(edge)
        assert widths[4] == 16  # 2^(n-1) distinct bottom nodes


class TestCountPaths:
    def test_basis_state_single_path(self, package):
        assert count_paths(package.basis_state([1, 0, 1, 0])) == 1

    def test_ghz_two_paths(self, package):
        assert count_paths(ghz_edge(package)) == 2

    def test_uniform_superposition_all_paths(self, package):
        plus = (1 / math.sqrt(2), 1 / math.sqrt(2))
        edge = package.product_state([plus] * 4)
        assert count_paths(edge) == 16

    def test_zero_edge(self, package):
        assert count_paths(package.zero_edge) == 0

    def test_large_register_without_enumeration(self):
        package = DDPackage(60)
        plus = (1 / math.sqrt(2), 1 / math.sqrt(2))
        edge = package.product_state([plus] * 60)
        assert count_paths(edge) == 2**60


class TestSparsityAndMemory:
    def test_sparsity_of_basis_state(self, package):
        edge = package.basis_state([0, 0, 0, 0])
        assert sparsity(edge, 4) == pytest.approx(15 / 16)

    def test_sparsity_of_uniform(self, package):
        plus = (1 / math.sqrt(2), 1 / math.sqrt(2))
        edge = package.product_state([plus] * 4)
        assert sparsity(edge, 4) == 0.0

    def test_memory_scales_with_nodes(self, package, np_rng):
        small = package.zero_state()
        large = package.from_state_vector(random_state(np_rng, 4))
        assert memory_estimate(large) > memory_estimate(small)


class TestSerialization:
    def test_vector_round_trip(self, package, np_rng):
        vector = random_state(np_rng, 4)
        edge = package.from_state_vector(vector)
        data = serialize_edge(edge)
        fresh = DDPackage(4)
        rebuilt = deserialize_edge(data, fresh)
        assert np.allclose(fresh.to_state_vector(rebuilt, 4), vector)

    def test_matrix_round_trip(self, package, np_rng):
        matrix = np_rng.normal(size=(16, 16)) + 1j * np_rng.normal(size=(16, 16))
        edge = package.from_operator_matrix(matrix)
        data = serialize_edge(edge)
        fresh = DDPackage(4)
        rebuilt = deserialize_edge(data, fresh)
        assert np.allclose(fresh.to_operator_matrix(rebuilt, 4), matrix)

    def test_json_compatible(self, package):
        edge = ghz_edge(package)
        text = json.dumps(serialize_edge(edge))
        data = json.loads(text)
        fresh = DDPackage(4)
        rebuilt = deserialize_edge(data, fresh)
        assert fresh.fidelity(rebuilt, ghz_edge(fresh)) == pytest.approx(1.0)

    def test_compact_for_structured_states(self):
        package = DDPackage(40)
        edge = ghz_edge(package)
        data = serialize_edge(edge)
        # 2n-1 nodes for GHZ: serialisation is linear in diagram size.
        assert len(data["nodes"]) == 2 * 40 - 1

    def test_terminal_edge(self, package):
        data = serialize_edge(package.one_edge)
        fresh = DDPackage(4)
        rebuilt = deserialize_edge(data, fresh)
        assert rebuilt.is_terminal
        assert rebuilt.weight.is_one()

    def test_zero_edge(self, package):
        data = serialize_edge(package.zero_edge)
        fresh = DDPackage(4)
        assert deserialize_edge(data, fresh).is_zero

    def test_canonical_in_target_package(self, package, np_rng):
        """Deserialised states hash-cons against natively built ones."""
        vector = random_state(np_rng, 3)
        edge = package.from_state_vector(vector)
        data = serialize_edge(edge)
        fresh = DDPackage(3)
        native = fresh.from_state_vector(vector)
        rebuilt = deserialize_edge(data, fresh)
        assert rebuilt.node is native.node

    def test_version_checked(self, package):
        data = serialize_edge(package.zero_state())
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            deserialize_edge(data, DDPackage(4))

    def test_kind_checked(self, package):
        data = serialize_edge(package.zero_state())
        data["kind"] = "tensor"
        with pytest.raises(ValueError, match="kind"):
            deserialize_edge(data, DDPackage(4))
