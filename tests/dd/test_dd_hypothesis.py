"""Property-based tests (hypothesis) for decision-diagram invariants.

These are the deep invariants the DD substrate's correctness rests on:

* round-trip fidelity between dense arrays and DDs,
* canonicity (structurally equal inputs -> identical node objects),
* algebra homomorphism (DD add/multiply == NumPy add/matmul),
* the sum-of-squares norm invariant,
* measurement probability consistency.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dd import DDPackage

MAX_QUBITS = 4


def vectors(num_qubits):
    """Strategy: complex vectors over `num_qubits` qubits, not all ~zero."""
    size = 2**num_qubits
    component = st.floats(
        min_value=-2.0, max_value=2.0, allow_nan=False, allow_infinity=False, width=32
    )
    return (
        st.tuples(
            st.lists(component, min_size=size, max_size=size),
            st.lists(component, min_size=size, max_size=size),
        )
        .map(lambda pair: np.array(pair[0]) + 1j * np.array(pair[1]))
        .filter(lambda vec: np.linalg.norm(vec) > 1e-3)
    )


def matrices(num_qubits):
    size = 2**num_qubits
    component = st.floats(
        min_value=-2.0, max_value=2.0, allow_nan=False, allow_infinity=False, width=32
    )
    flat = size * size
    return st.tuples(
        st.lists(component, min_size=flat, max_size=flat),
        st.lists(component, min_size=flat, max_size=flat),
    ).map(
        lambda pair: (np.array(pair[0]) + 1j * np.array(pair[1])).reshape(size, size)
    )


@settings(max_examples=40, deadline=None)
@given(num_qubits=st.integers(1, MAX_QUBITS), data=st.data())
def test_vector_round_trip(num_qubits, data):
    vector = data.draw(vectors(num_qubits))
    package = DDPackage(num_qubits)
    edge = package.from_state_vector(vector)
    assert np.allclose(package.to_state_vector(edge, num_qubits), vector, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(num_qubits=st.integers(1, MAX_QUBITS), data=st.data())
def test_canonicity_identical_inputs(num_qubits, data):
    vector = data.draw(vectors(num_qubits))
    package = DDPackage(num_qubits)
    a = package.from_state_vector(vector)
    b = package.from_state_vector(vector.copy())
    assert a.node is b.node
    assert a.weight is b.weight


@settings(max_examples=40, deadline=None)
@given(
    num_qubits=st.integers(1, MAX_QUBITS),
    scale_real=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
    scale_imag=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
    data=st.data(),
)
def test_canonicity_scalar_multiples_share_nodes(num_qubits, scale_real, scale_imag, data):
    # Canonicity under scalar multiplication is exact only away from the
    # canonicalisation tolerance: snapping a weight of magnitude ~1e-7 by
    # the absolute tolerance (1e-12) is a ~1e-5 *relative* perturbation
    # that later arithmetic can amplify past the tolerance again — an
    # inherent property of absolute-tolerance DD packages (JKU's included).
    # The strategy therefore quantises amplitudes and the scale to a coarse
    # grid of well-separated values, which is the regime the canonicity
    # guarantee covers.
    scale_real = round(scale_real * 8) / 8.0
    scale_imag = round(scale_imag * 8) / 8.0
    scale = complex(scale_real, scale_imag)
    if abs(scale) < 1e-3:
        scale = 1.0 + 1.0j
    vector = data.draw(vectors(num_qubits))
    vector = np.round(vector * 16) / 16.0
    if np.linalg.norm(vector) < 1e-3:
        vector = np.zeros_like(vector)
        vector[0] = 1.0
    package = DDPackage(num_qubits)
    a = package.from_state_vector(vector)
    b = package.from_state_vector(scale * vector)
    assert a.node is b.node


def test_canonicity_near_tie_phase_anchor_regression():
    """Pinned counterexample once found by the hypothesis test above.

    The var=1 node of this vector has children of mathematically equal
    magnitude; choosing the phase-anchor child by an exact float ``>=``
    made the choice depend on last-ulp rounding, which scaling flips —
    the scaled and unscaled builds anchored on different children and
    produced different root nodes.  The tie-banded comparison in
    ``make_vector_node`` keeps the anchor scale-invariant.
    """
    vector = np.array([0, 0, 0, 0, 1j, 0.375, 1 + 0.375j, 0], dtype=complex)
    for scale in (0.375j, -0.375j, 0.375, 1.5 + 0.75j):
        package = DDPackage(3)
        a = package.from_state_vector(vector)
        b = package.from_state_vector(scale * vector)
        assert a.node is b.node, scale


@settings(max_examples=30, deadline=None)
@given(num_qubits=st.integers(1, MAX_QUBITS), data=st.data())
def test_root_weight_magnitude_equals_norm(num_qubits, data):
    vector = data.draw(vectors(num_qubits))
    package = DDPackage(num_qubits)
    edge = package.from_state_vector(vector)
    assert edge.weight.magnitude() == pytest.approx(
        np.linalg.norm(vector), rel=1e-6, abs=1e-9
    )


@settings(max_examples=30, deadline=None)
@given(num_qubits=st.integers(1, MAX_QUBITS), data=st.data())
def test_addition_homomorphism(num_qubits, data):
    a = data.draw(vectors(num_qubits))
    b = data.draw(vectors(num_qubits))
    package = DDPackage(num_qubits)
    result = package.add(package.from_state_vector(a), package.from_state_vector(b))
    assert np.allclose(package.to_state_vector(result, num_qubits), a + b, atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(num_qubits=st.integers(1, 3), data=st.data())
def test_matvec_homomorphism(num_qubits, data):
    matrix = data.draw(matrices(num_qubits))
    vector = data.draw(vectors(num_qubits))
    package = DDPackage(num_qubits)
    result = package.multiply(
        package.from_operator_matrix(matrix), package.from_state_vector(vector)
    )
    assert np.allclose(
        package.to_state_vector(result, num_qubits), matrix @ vector, atol=1e-7
    )


@settings(max_examples=25, deadline=None)
@given(num_qubits=st.integers(1, 3), data=st.data())
def test_matmat_homomorphism(num_qubits, data):
    a = data.draw(matrices(num_qubits))
    b = data.draw(matrices(num_qubits))
    package = DDPackage(num_qubits)
    result = package.multiply_matrices(
        package.from_operator_matrix(a), package.from_operator_matrix(b)
    )
    assert np.allclose(
        package.to_operator_matrix(result, num_qubits), a @ b, atol=1e-6
    )


@settings(max_examples=30, deadline=None)
@given(num_qubits=st.integers(1, MAX_QUBITS), data=st.data())
def test_inner_product_matches_numpy(num_qubits, data):
    a = data.draw(vectors(num_qubits))
    b = data.draw(vectors(num_qubits))
    package = DDPackage(num_qubits)
    value = package.inner_product(
        package.from_state_vector(a), package.from_state_vector(b)
    )
    assert value == pytest.approx(complex(np.vdot(a, b)), rel=1e-6, abs=1e-8)


@settings(max_examples=30, deadline=None)
@given(num_qubits=st.integers(1, MAX_QUBITS), qubit=st.integers(0, MAX_QUBITS - 1), data=st.data())
def test_probability_of_one_matches_dense(num_qubits, qubit, data):
    if qubit >= num_qubits:
        qubit = qubit % num_qubits
    vector = data.draw(vectors(num_qubits))
    vector = vector / np.linalg.norm(vector)
    package = DDPackage(num_qubits)
    edge = package.from_state_vector(vector)
    expected = sum(
        abs(vector[i]) ** 2
        for i in range(2**num_qubits)
        if (i >> (num_qubits - 1 - qubit)) & 1
    )
    assert package.probability_of_one(edge, qubit) == pytest.approx(
        expected, abs=1e-7
    )


@settings(max_examples=30, deadline=None)
@given(num_qubits=st.integers(1, MAX_QUBITS), data=st.data())
def test_sum_of_squares_invariant(num_qubits, data):
    vector = data.draw(vectors(num_qubits))
    package = DDPackage(num_qubits)
    edge = package.from_state_vector(vector)
    seen = set()

    def walk(node):
        if node.is_terminal or id(node) in seen:
            return
        seen.add(id(node))
        total = sum(child.weight.magnitude_squared() for child in node.edges)
        assert total == pytest.approx(1.0, abs=1e-7)
        for child in node.edges:
            walk(child.node)

    walk(edge.node)
