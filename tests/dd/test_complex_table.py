"""Unit tests for the canonical complex-number table."""

import cmath
import math

import pytest

from repro.dd.complex_table import (
    DEFAULT_TOLERANCE,
    ComplexTable,
    ComplexValue,
    RealTable,
    format_complex,
)


class TestRealTable:
    def test_exact_lookup_returns_same_value(self):
        table = RealTable()
        assert table.lookup(0.375) == 0.375

    def test_nearby_values_canonicalise_to_first_seen(self):
        table = RealTable(tolerance=1e-12)
        first = table.lookup(0.3)
        second = table.lookup(0.3 + 5e-13)
        assert second == first

    def test_values_beyond_tolerance_stay_distinct(self):
        table = RealTable(tolerance=1e-12)
        first = table.lookup(0.3)
        second = table.lookup(0.3 + 5e-11)
        assert second != first

    def test_negative_zero_canonicalises_to_positive_zero(self):
        table = RealTable()
        value = table.lookup(-0.0)
        assert value == 0.0
        assert math.copysign(1.0, value) == 1.0

    def test_tiny_values_snap_to_zero(self):
        table = RealTable(tolerance=1e-12)
        assert table.lookup(1e-14) == 0.0
        assert table.lookup(-1e-13) == 0.0

    def test_seeded_constants_are_exact(self):
        table = RealTable()
        sqrt2_2 = math.sqrt(2.0) / 2.0
        assert table.lookup(sqrt2_2 + 1e-14) == sqrt2_2
        assert table.lookup(1.0 - 1e-14) == 1.0
        assert table.lookup(-0.5 + 1e-15) == -0.5

    def test_bucket_boundary_straddling(self):
        # Two values within tolerance of each other but in adjacent buckets.
        table = RealTable(tolerance=1e-12)
        base = 12345.5 * 1e-12  # exactly on a bucket edge
        first = table.lookup(base - 1e-13)
        second = table.lookup(base + 1e-13)
        assert first == second

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(ValueError):
            RealTable(tolerance=0.0)
        with pytest.raises(ValueError):
            RealTable(tolerance=-1e-9)

    def test_hit_and_miss_statistics(self):
        table = RealTable()
        table.lookup(0.123456)
        misses = table.misses
        table.lookup(0.123456)
        assert table.misses == misses
        assert table.hits >= 1


class TestComplexTable:
    def test_identical_values_are_same_object(self):
        table = ComplexTable()
        a = table.lookup(0.25 + 0.75j)
        b = table.lookup(0.25 + 0.75j)
        assert a is b

    def test_nearby_values_are_same_object(self):
        table = ComplexTable()
        a = table.lookup(0.25 + 0.75j)
        b = table.lookup(0.25 + 1e-14 + (0.75 - 1e-14) * 1j)
        assert a is b

    def test_zero_and_one_singletons(self):
        table = ComplexTable()
        assert table.lookup(0j) is table.zero
        assert table.lookup(1.0 + 0j) is table.one
        assert table.zero.is_zero()
        assert table.one.is_one()

    def test_multiply_fast_paths(self):
        table = ComplexTable()
        w = table.lookup(0.5 + 0.5j)
        assert table.multiply(table.one, w) is w
        assert table.multiply(w, table.one) is w
        assert table.multiply(table.zero, w) is table.zero

    def test_multiply_matches_python_complex(self):
        table = ComplexTable()
        a = table.lookup(0.3 + 0.4j)
        b = table.lookup(-0.1 + 0.9j)
        product = table.multiply(a, b)
        assert product.value == pytest.approx((0.3 + 0.4j) * (-0.1 + 0.9j))

    def test_add_and_divide(self):
        table = ComplexTable()
        a = table.lookup(0.3 + 0.4j)
        b = table.lookup(0.1 - 0.2j)
        assert table.add(a, b).value == pytest.approx(0.4 + 0.2j)
        assert table.divide(a, b).value == pytest.approx((0.3 + 0.4j) / (0.1 - 0.2j))

    def test_divide_by_zero_raises(self):
        table = ComplexTable()
        with pytest.raises(ZeroDivisionError):
            table.divide(table.one, table.zero)

    def test_conjugate(self):
        table = ComplexTable()
        a = table.lookup(0.3 + 0.4j)
        assert table.conjugate(a).value == pytest.approx(0.3 - 0.4j)
        real = table.lookup(0.7 + 0j)
        assert table.conjugate(real) is real

    def test_phase_of_positive_real_is_one(self):
        table = ComplexTable()
        assert table.phase(table.lookup(0.5 + 0j)) is table.one

    def test_phase_has_unit_magnitude(self):
        table = ComplexTable()
        phase = table.phase(table.lookup(0.3 - 0.4j))
        assert abs(phase.value) == pytest.approx(1.0)
        assert phase.value == pytest.approx((0.3 - 0.4j) / 0.5)

    def test_phase_of_zero_is_one(self):
        table = ComplexTable()
        assert table.phase(table.zero) is table.one

    def test_exp_i(self):
        table = ComplexTable()
        value = table.exp_i(math.pi / 3)
        assert value.value == pytest.approx(cmath.exp(1j * math.pi / 3))

    def test_approximately_helpers(self):
        table = ComplexTable()
        assert table.approximately_equal(0.5 + 0.5j, 0.5 + 1e-14 + 0.5j)
        assert not table.approximately_equal(0.5, 0.5 + 1e-9)
        assert table.approximately_zero(1e-13 + 1e-13j)
        assert not table.approximately_zero(1e-9)

    def test_stats_shape(self):
        table = ComplexTable()
        stats = table.stats()
        assert set(stats) == {"entries", "real_entries", "real_hits", "real_misses"}


class TestComplexValue:
    def test_magnitude(self):
        value = ComplexValue(3.0, 4.0)
        assert value.magnitude() == pytest.approx(5.0)
        assert value.magnitude_squared() == pytest.approx(25.0)

    def test_equality_with_plain_numbers(self):
        value = ComplexValue(0.5, 0.0)
        assert value == 0.5
        assert value == 0.5 + 0j
        assert value != 0.6

    def test_complex_conversion(self):
        value = ComplexValue(0.25, -0.75)
        assert complex(value) == 0.25 - 0.75j

    def test_hashable(self):
        a = ComplexValue(0.1, 0.2)
        b = ComplexValue(0.1, 0.2)
        assert hash(a) == hash(b)


class TestFormatComplex:
    def test_pure_real(self):
        assert format_complex(0.5 + 0j) == "0.5"

    def test_pure_imaginary(self):
        assert format_complex(0.5j) == "0.5i"

    def test_mixed_signs(self):
        assert format_complex(1 - 2j) == "1-2i"
        assert format_complex(-1 + 2j) == "-1+2i"

    def test_rounding(self):
        assert format_complex(0.70710678118654752 + 0j) == "0.707107"
