"""Tests for vector-DD construction, normalisation, and conversion."""

import math

import numpy as np
import pytest

from repro.dd import DDPackage

from ..conftest import random_state

SQRT2_INV = 1.0 / math.sqrt(2.0)


class TestBasisStates:
    def test_zero_state_amplitudes(self, package):
        edge = package.zero_state()
        vector = package.to_state_vector(edge)
        expected = np.zeros(16)
        expected[0] = 1.0
        assert np.allclose(vector, expected)

    def test_zero_state_is_linear_size(self):
        package = DDPackage(40)
        edge = package.zero_state()
        assert package.node_count(edge) == 40

    def test_basis_state_indexing_msb_first(self, package):
        # bits[0] is qubit 0, the most significant bit of the index.
        edge = package.basis_state([1, 0, 1, 0])
        vector = package.to_state_vector(edge)
        assert vector[0b1010] == pytest.approx(1.0)
        assert np.sum(np.abs(vector) ** 2) == pytest.approx(1.0)

    def test_basis_states_share_structure(self, package):
        a = package.basis_state([0, 0, 0, 0])
        b = package.basis_state([1, 0, 0, 0])
        # The sub-DD below the top level is the same |000> chain.
        assert a.node.edges[0].node is b.node.edges[1].node


class TestProductStates:
    def test_uniform_superposition(self, package):
        plus = (SQRT2_INV, SQRT2_INV)
        edge = package.product_state([plus] * 4)
        vector = package.to_state_vector(edge)
        assert np.allclose(vector, np.full(16, 0.25))

    def test_product_state_single_node_per_level(self, package):
        edge = package.product_state([(0.6, 0.8), (SQRT2_INV, SQRT2_INV), (1, 0), (0, 1)])
        assert package.node_count(edge) == 4

    def test_product_state_matches_kron(self, package):
        states = [(0.6, 0.8), (SQRT2_INV, -SQRT2_INV), (0.8j, 0.6), (1, 0)]
        edge = package.product_state(states)
        expected = np.array([1.0], dtype=complex)
        for alpha, beta in states:
            expected = np.kron(expected, np.array([alpha, beta], dtype=complex))
        assert np.allclose(package.to_state_vector(edge), expected)


class TestRoundTrips:
    @pytest.mark.parametrize("num_qubits", [1, 2, 3, 5])
    def test_random_state_round_trip(self, np_rng, num_qubits):
        package = DDPackage(num_qubits)
        vector = random_state(np_rng, num_qubits)
        edge = package.from_state_vector(vector)
        assert np.allclose(package.to_state_vector(edge, num_qubits), vector)

    def test_unnormalised_vector_round_trip(self, package):
        vector = np.arange(1, 17, dtype=complex)
        edge = package.from_state_vector(vector)
        assert np.allclose(package.to_state_vector(edge), vector)

    def test_sparse_vector_produces_zero_stubs(self, package):
        vector = np.zeros(16, dtype=complex)
        vector[3] = 1.0
        edge = package.from_state_vector(vector)
        assert package.node_count(edge) == 4
        assert np.allclose(package.to_state_vector(edge), vector)

    def test_non_power_of_two_rejected(self, package):
        with pytest.raises(ValueError):
            package.from_state_vector(np.ones(6))


class TestCanonicity:
    def test_same_vector_gives_identical_root(self, package, np_rng):
        vector = random_state(np_rng, 4)
        a = package.from_state_vector(vector)
        b = package.from_state_vector(vector)
        assert a.node is b.node
        assert a.weight is b.weight

    def test_scalar_multiples_share_node(self, package, np_rng):
        vector = random_state(np_rng, 4)
        a = package.from_state_vector(vector)
        b = package.from_state_vector(vector * (0.5 - 0.25j))
        assert a.node is b.node
        assert a.weight is not b.weight

    def test_root_weight_magnitude_is_norm(self, package, np_rng):
        vector = 3.0 * random_state(np_rng, 4)
        edge = package.from_state_vector(vector)
        assert edge.weight.magnitude() == pytest.approx(3.0)

    def test_normalisation_invariant_all_nodes(self, package, np_rng):
        """Every node's outgoing weights satisfy |w0|^2 + |w1|^2 == 1."""
        edge = package.from_state_vector(random_state(np_rng, 4))
        seen = set()

        def walk(node):
            if node.is_terminal or id(node) in seen:
                return
            seen.add(id(node))
            total = sum(child.weight.magnitude_squared() for child in node.edges)
            assert total == pytest.approx(1.0, abs=1e-9)
            for child in node.edges:
                walk(child.node)

        walk(edge.node)

    def test_larger_child_weight_real_positive(self, package, np_rng):
        """The phase anchor is the larger-magnitude child (ties go to w0).

        Anchoring on the dominant child rather than the first non-zero one
        keeps a tiny-but-nonzero leading weight from injecting its O(1)
        relative phase noise into the whole sub-state.
        """
        edge = package.from_state_vector(random_state(np_rng, 4))
        seen = set()

        def walk(node):
            if node.is_terminal or id(node) in seen:
                return
            seen.add(id(node))
            w0, w1 = (child.weight for child in node.edges)
            anchor = w0 if w0.magnitude_squared() >= w1.magnitude_squared() else w1
            assert anchor.imag == pytest.approx(0.0, abs=1e-9)
            assert anchor.real > 0.0
            for child in node.edges:
                walk(child.node)

        walk(edge.node)

    def test_tiny_leading_amplitude_does_not_steer_the_phase(self, package):
        """A near-tolerance leading weight must not become the phase anchor.

        With the old first-nonzero rule the whole sub-state was divided by
        the phase of a ~1e-12 amplitude — whose components carry O(1)
        relative noise after canonical snapping — rotating the dominant
        amplitude by garbage.  The anchor must be the dominant child.
        """
        import cmath

        tiny = 2e-12 * cmath.exp(0.7j)
        big = cmath.sqrt(1.0 - abs(tiny) ** 2)
        edge = package.from_state_vector([tiny, big])
        node = edge.node
        w1 = node.edges[1].weight
        assert w1.imag == pytest.approx(0.0, abs=1e-9)
        assert w1.real == pytest.approx(1.0, abs=1e-6)
        # The reconstructed dominant amplitude keeps its value exactly.
        assert package.get_amplitude(edge, [1]) == pytest.approx(big, abs=1e-9)

    def test_zero_leading_amplitude_still_canonical(self, package):
        edge = package.from_state_vector([0.0, 1j])
        w1 = edge.node.edges[1].weight
        assert w1.imag == pytest.approx(0.0, abs=1e-12)
        assert w1.real == pytest.approx(1.0)
        assert package.get_amplitude(edge, [1]) == pytest.approx(1j)


class TestAmplitudes:
    def test_get_amplitude_matches_vector(self, package, np_rng):
        vector = random_state(np_rng, 4)
        edge = package.from_state_vector(vector)
        for index in range(16):
            bits = [(index >> (3 - q)) & 1 for q in range(4)]
            assert package.get_amplitude(edge, bits) == pytest.approx(vector[index])

    def test_zero_amplitude_path(self, package):
        edge = package.basis_state([0, 0, 0, 0])
        assert package.get_amplitude(edge, [1, 0, 0, 0]) == 0.0


class TestNorms:
    def test_squared_norm_constant_time_read(self, package, np_rng):
        vector = 2.0 * random_state(np_rng, 4)
        edge = package.from_state_vector(vector)
        assert package.squared_norm(edge) == pytest.approx(4.0)

    def test_normalize(self, package, np_rng):
        vector = 5.0 * random_state(np_rng, 4)
        edge = package.normalize(package.from_state_vector(vector))
        assert package.squared_norm(edge) == pytest.approx(1.0)

    def test_normalize_zero_rejected(self, package):
        with pytest.raises(ValueError):
            package.normalize(package.zero_edge)
