"""Tests for tolerance-dependent behaviour of the DD package.

Documents (and locks in) how the canonicalisation tolerance shapes what the
engine considers "equal": near-identical states merge, sub-tolerance gate
angles vanish, and a custom tolerance changes both.
"""

import math

import numpy as np
import pytest

from repro.circuits import gates
from repro.dd import DDPackage


class TestToleranceMerging:
    def test_states_within_tolerance_share_nodes(self):
        package = DDPackage(2, tolerance=1e-6)
        a = package.product_state([(1, 0), (0.6, 0.8)])
        b = package.product_state([(1, 0), (0.6 + 1e-9, 0.8 - 1e-9)])
        assert a.node is b.node

    def test_states_beyond_tolerance_stay_distinct(self):
        package = DDPackage(2, tolerance=1e-12)
        a = package.product_state([(1, 0), (0.6, 0.8)])
        b = package.product_state([(1, 0), (0.6 + 1e-6, 0.8)])
        assert a.node is not b.node

    def test_sub_tolerance_rotation_is_identity(self):
        """A rotation smaller than the tolerance produces the identity DD —
        the fundamental floor on angle resolution (relevant to deep QFTs)."""
        package = DDPackage(1, tolerance=1e-6)
        tiny = package.gate(gates.rz(1e-9), 0)
        identity = package.identity(1)
        assert tiny.node is identity.node

    def test_above_tolerance_rotation_is_not_identity(self):
        package = DDPackage(1, tolerance=1e-12)
        small = package.gate(gates.rz(1e-6), 0)
        identity = package.identity(1)
        assert small.node is not identity.node

    def test_custom_tolerance_propagates(self):
        package = DDPackage(2, tolerance=1e-4)
        assert package.complex_table.tolerance == 1e-4


class TestCompactionUnderInterference:
    def test_hadamard_roundtrip_recompacts(self):
        """H...H = I must return to the single-chain DD despite the
        intermediate superposition (tests add-cancellation + tolerance)."""
        package = DDPackage(6)
        state = package.zero_state()
        for _ in range(2):
            for qubit in range(6):
                state = package.multiply(package.gate(gates.H, qubit), state)
        assert package.node_count(state) == 6
        assert package.get_amplitude(state, [0] * 6) == pytest.approx(1.0)

    def test_qft_iqft_roundtrip_recompacts(self):
        import random

        from repro.circuits import QuantumCircuit
        from repro.circuits.library import inverse_qft, qft
        from repro.simulators import DDBackend, execute_circuit

        circuit = QuantumCircuit(6)
        circuit.x(1).x(4)
        circuit.extend(qft(6))
        circuit.extend(inverse_qft(6))
        backend = DDBackend(6)
        execute_circuit(backend, circuit, random.Random(0))
        assert backend.current_nodes() == 6
        assert backend.probability_of_basis([0, 1, 0, 0, 1, 0]) == pytest.approx(1.0)

    def test_destructive_interference_produces_zero_stubs(self):
        """|+>|+> -> CZ -> H(x)H concentrates amplitude; the DD must prune
        the cancelled branches to stubs rather than keep epsilon weights."""
        package = DDPackage(2)
        state = package.zero_state()
        for qubit in (0, 1):
            state = package.multiply(package.gate(gates.H, qubit), state)
        state = package.multiply(package.gate(gates.X, 1, {0: 1}), state)
        state = package.multiply(package.gate(gates.X, 1, {0: 1}), state)
        for qubit in (0, 1):
            state = package.multiply(package.gate(gates.H, qubit), state)
        # CX twice = identity; HH...HH = identity: back to |00> exactly.
        vector = package.to_state_vector(state, 2)
        assert vector[0] == pytest.approx(1.0)
        assert package.node_count(state) == 2
