"""Tests for the multinomial ``sample_counts`` (one binomial split per node).

Sampling ``shots`` outcomes used to cost ``shots`` root-to-terminal walks;
the multinomial descent visits each reachable node once and splits the
remaining shots binomially between its children.  The tests pin the
``shots == 1`` legacy rng stream (the stochastic runner's per-trajectory
draw), exactness on deterministic states, and distributional sanity.
"""

import random

import pytest

from repro.dd import DDPackage
from repro.dd.package import _binomial

from ..conftest import random_state


def ghz_edge(package, num_qubits):
    import numpy as np

    vector = np.zeros(2**num_qubits, dtype=complex)
    vector[0] = vector[-1] = 1 / np.sqrt(2)
    return package.from_state_vector(vector)


class TestSingleShot:
    def test_matches_legacy_per_shot_stream(self):
        package = DDPackage(4)
        edge = ghz_edge(package, 4)
        counts = package.sample_counts(edge, 1, random.Random(5))
        outcome = package.sample_basis_state(edge, random.Random(5))
        assert counts == {outcome: 1}

    def test_zero_shots(self):
        package = DDPackage(2)
        edge = package.zero_state(2)
        assert package.sample_counts(edge, 0, random.Random(0)) == {}


class TestMultinomial:
    def test_total_conserved(self, np_rng):
        package = DDPackage(4)
        edge = package.from_state_vector(random_state(np_rng, 4))
        counts = package.sample_counts(edge, 1000, random.Random(1))
        assert sum(counts.values()) == 1000
        assert all(len(key) == 4 and set(key) <= {"0", "1"} for key in counts)

    def test_deterministic_state_consumes_no_randomness(self):
        package = DDPackage(3)
        edge = package.zero_state(3)
        rng = random.Random(7)
        state_before = rng.getstate()
        counts = package.sample_counts(edge, 500, rng)
        assert counts == {"000": 500}
        # All probability flows down one branch: no binomial draw happens.
        assert rng.getstate() == state_before

    def test_ghz_distribution(self):
        package = DDPackage(5)
        edge = ghz_edge(package, 5)
        shots = 20000
        counts = package.sample_counts(edge, shots, random.Random(3))
        assert set(counts) <= {"00000", "11111"}
        assert sum(counts.values()) == shots
        # Binomial(20000, 0.5): five sigma is ~354.
        assert abs(counts["00000"] - shots / 2) < 5 * (shots * 0.25) ** 0.5

    def test_reproducible(self, np_rng):
        package = DDPackage(3)
        edge = package.from_state_vector(random_state(np_rng, 3))
        first = package.sample_counts(edge, 200, random.Random(9))
        second = package.sample_counts(edge, 200, random.Random(9))
        assert first == second

    def test_matches_per_shot_marginals(self, np_rng):
        # The multinomial and the legacy per-shot walk target the same
        # distribution; compare empirical frequencies loosely.
        package = DDPackage(2)
        edge = package.from_state_vector(random_state(np_rng, 2))
        shots = 20000
        multi = package.sample_counts(edge, shots, random.Random(2))
        rng = random.Random(4)
        legacy = {}
        for _ in range(shots):
            outcome = package.sample_basis_state(edge, rng)
            legacy[outcome] = legacy.get(outcome, 0) + 1
        for key in set(multi) | set(legacy):
            assert abs(multi.get(key, 0) - legacy.get(key, 0)) < 6 * (shots * 0.25) ** 0.5


class TestBinomialHelper:
    def test_degenerate_probabilities(self):
        rng = random.Random(0)
        assert _binomial(rng, 100, 0.0) == 0
        assert _binomial(rng, 100, 1.0) == 100
        assert _binomial(rng, 0, 0.5) == 0

    def test_range(self):
        rng = random.Random(1)
        for n in (1, 31, 32, 1000):
            for p in (0.01, 0.3, 0.5, 0.9):
                value = _binomial(rng, n, p)
                assert 0 <= value <= n

    def test_mean_large_n(self):
        rng = random.Random(6)
        n, p, reps = 5000, 0.3, 200
        mean = sum(_binomial(rng, n, p) for _ in range(reps)) / reps
        sigma = (n * p * (1 - p)) ** 0.5
        assert abs(mean - n * p) < 5 * sigma / reps**0.5

    def test_mean_small_n(self):
        # n < 32 takes the Bernoulli-sum path.
        rng = random.Random(8)
        n, p, reps = 20, 0.4, 2000
        mean = sum(_binomial(rng, n, p) for _ in range(reps)) / reps
        sigma = (n * p * (1 - p)) ** 0.5
        assert abs(mean - n * p) < 5 * sigma / reps**0.5
