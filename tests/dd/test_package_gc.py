"""Tests for reference counting and garbage collection at the package level."""

import numpy as np
import pytest

from repro.circuits import gates
from repro.dd import DDPackage

from ..conftest import random_state


class TestPackageRefCounting:
    def test_inc_dec_roundtrip(self, package, np_rng):
        edge = package.from_state_vector(random_state(np_rng, 4))
        package.inc_ref(edge)
        assert edge.node.ref == 1
        package.dec_ref(edge)
        assert edge.node.ref == 0

    def test_matrix_edges_use_matrix_table(self, package):
        edge = package.identity()
        package.inc_ref(edge)
        assert edge.node.ref == 1
        package.dec_ref(edge)

    def test_terminal_edge_is_noop(self, package):
        package.inc_ref(package.one_edge)
        package.dec_ref(package.one_edge)


class TestGarbageCollection:
    def test_pinned_state_survives_forced_collection(self, package, np_rng):
        vector = random_state(np_rng, 4)
        edge = package.inc_ref(package.from_state_vector(vector))
        # Create garbage.
        for _ in range(5):
            package.from_state_vector(random_state(np_rng, 4))
        package.garbage_collect(force=True)
        assert np.allclose(package.to_state_vector(edge), vector)

    def test_unpinned_nodes_are_collected(self, package, np_rng):
        package.from_state_vector(random_state(np_rng, 4))
        before = len(package.vector_table)
        collected = package.garbage_collect(force=True)
        assert collected > 0
        assert len(package.vector_table) < before

    def test_collection_clears_compute_tables(self, package, np_rng):
        a = package.from_state_vector(random_state(np_rng, 4))
        b = package.from_state_vector(random_state(np_rng, 4))
        package.add(a, b)
        assert len(package._add_table) > 0
        package.garbage_collect(force=True)
        assert len(package._add_table) == 0

    def test_not_forced_collection_respects_threshold(self, package, np_rng):
        package.from_state_vector(random_state(np_rng, 4))
        # Default threshold is far above a handful of nodes.
        assert package.garbage_collect(force=False) == 0

    def test_results_stable_across_collections(self, package, np_rng):
        """Arithmetic after a GC must agree with arithmetic before it."""
        vector = random_state(np_rng, 4)
        state = package.inc_ref(package.from_state_vector(vector))
        gate = package.gate(gates.H, 2)
        expected = package.to_state_vector(package.multiply(gate, state))
        package.garbage_collect(force=True)
        result = package.multiply(package.gate(gates.H, 2), state)
        assert np.allclose(package.to_state_vector(result), expected)

    def test_stats_contains_all_tables(self, package):
        stats = package.stats()
        assert set(stats) == {
            "complex_table",
            "vector_table",
            "matrix_table",
            "add",
            "mat_vec",
            "mat_mat",
            "inner",
        }


class TestNodeCount:
    def test_terminal_counts_zero(self, package):
        assert package.node_count(package.one_edge) == 0

    def test_ghz_is_linear(self):
        package = DDPackage(24)
        state = package.zero_state()
        state = package.multiply(package.gate(gates.H, 0), state)
        for qubit in range(23):
            state = package.multiply(package.gate(gates.X, qubit + 1, {qubit: 1}), state)
        # GHZ: a root plus two disjoint chains (all-zeros / all-ones branch).
        assert package.node_count(state) == 2 * 24 - 1

    def test_dense_state_is_exponential(self, np_rng):
        package = DDPackage(6)
        edge = package.from_state_vector(random_state(np_rng, 6))
        # A Haar-random state has no redundancy: 2^n - 1 nodes.
        assert package.node_count(edge) == 2**6 - 1
