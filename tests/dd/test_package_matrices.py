"""Tests for matrix-DD construction: identities, tensor operators, gates."""

import numpy as np
import pytest

from repro.circuits import gates
from repro.dd import DDPackage

from ..conftest import random_unitary


def dense_single(matrix, target, n):
    """Reference dense operator: matrix on `target`, identity elsewhere."""
    result = np.array([[1.0]], dtype=complex)
    for qubit in range(n):
        factor = matrix if qubit == target else np.eye(2)
        result = np.kron(result, factor)
    return result


def dense_controlled(matrix, target, controls, n):
    """Reference dense controlled operator."""
    size = 2**n
    result = np.zeros((size, size), dtype=complex)
    single = dense_single(matrix, target, n)
    for col in range(size):
        active = all(
            ((col >> (n - 1 - q)) & 1) == polarity for q, polarity in controls.items()
        )
        if active:
            result[:, col] += single[:, col]
        else:
            result[col, col] += 1.0
    return result


class TestIdentity:
    def test_identity_matrix(self, package):
        edge = package.identity()
        assert np.allclose(package.to_operator_matrix(edge), np.eye(16))

    def test_identity_is_linear_size(self):
        package = DDPackage(32)
        edge = package.identity()
        assert package.node_count(edge) == 32

    def test_identity_fixes_states(self, package, np_rng):
        from ..conftest import random_state

        state = package.from_state_vector(random_state(np_rng, 4))
        result = package.multiply(package.identity(), state)
        assert result.node is state.node
        assert result.weight is state.weight


class TestTensorOperators:
    @pytest.mark.parametrize("target", [0, 1, 2, 3])
    def test_single_qubit_gate_placement(self, package, target):
        edge = package.single_qubit_gate(gates.H, target)
        expected = dense_single(gates.H, target, 4)
        assert np.allclose(package.to_operator_matrix(edge), expected)

    def test_multi_factor_tensor(self, package):
        factors = [gates.X, None, gates.Z, None]
        edge = package.tensor_operator(factors)
        expected = np.kron(np.kron(np.kron(gates.X, np.eye(2)), gates.Z), np.eye(2))
        assert np.allclose(package.to_operator_matrix(edge), expected)

    def test_non_2x2_factor_rejected(self, package):
        with pytest.raises(ValueError):
            package.tensor_operator([np.eye(4), None, None, None])

    def test_random_unitary_factors(self, package, np_rng):
        u1 = random_unitary(np_rng)
        u2 = random_unitary(np_rng)
        edge = package.tensor_operator([u1, None, None, u2])
        expected = np.kron(np.kron(u1, np.eye(4)), u2)
        assert np.allclose(package.to_operator_matrix(edge), expected)


class TestControlledGates:
    def test_cnot_adjacent(self, package):
        edge = package.controlled_gate(gates.X, 1, {0: 1})
        expected = dense_controlled(gates.X, 1, {0: 1}, 4)
        assert np.allclose(package.to_operator_matrix(edge), expected)

    def test_cnot_reversed_direction(self, package):
        edge = package.controlled_gate(gates.X, 0, {3: 1})
        expected = dense_controlled(gates.X, 0, {3: 1}, 4)
        assert np.allclose(package.to_operator_matrix(edge), expected)

    def test_toffoli(self, package):
        edge = package.controlled_gate(gates.X, 2, {0: 1, 1: 1})
        expected = dense_controlled(gates.X, 2, {0: 1, 1: 1}, 4)
        assert np.allclose(package.to_operator_matrix(edge), expected)

    def test_negative_control(self, package):
        edge = package.controlled_gate(gates.Z, 2, {1: 0})
        expected = dense_controlled(gates.Z, 2, {1: 0}, 4)
        assert np.allclose(package.to_operator_matrix(edge), expected)

    def test_three_controls_mixed_polarity(self, package):
        controls = {0: 1, 1: 0, 3: 1}
        edge = package.controlled_gate(gates.H, 2, controls)
        expected = dense_controlled(gates.H, 2, controls, 4)
        assert np.allclose(package.to_operator_matrix(edge), expected)

    def test_empty_controls_falls_back_to_single(self, package):
        a = package.controlled_gate(gates.Y, 1, {})
        b = package.single_qubit_gate(gates.Y, 1)
        assert a.node is b.node and a.weight is b.weight

    def test_control_equals_target_rejected(self, package):
        with pytest.raises(ValueError):
            package.controlled_gate(gates.X, 1, {1: 1})

    def test_controlled_gate_unitary(self, package, np_rng):
        u = random_unitary(np_rng)
        edge = package.controlled_gate(u, 3, {0: 1, 2: 1})
        dense = package.to_operator_matrix(edge)
        assert np.allclose(dense @ dense.conj().T, np.eye(16))


class TestGateCache:
    def test_cache_returns_identical_edge(self, package):
        a = package.gate(gates.H, 0)
        b = package.gate(gates.H, 0)
        assert a is b

    def test_cache_distinguishes_targets(self, package):
        assert package.gate(gates.H, 0) is not package.gate(gates.H, 1)

    def test_cache_distinguishes_numerically_different_matrices(self, package):
        a = package.gate(gates.rz(0.5), 0)
        b = package.gate(gates.rz(0.6), 0)
        assert a is not b

    def test_cached_gates_pinned_against_gc(self, package):
        edge = package.gate(gates.H, 0)
        package.garbage_collect(force=True)
        again = package.gate(gates.H, 0)
        assert again is edge
        assert np.allclose(
            package.to_operator_matrix(again), dense_single(gates.H, 0, 4)
        )


class TestOperatorRoundTrip:
    def test_random_matrix_round_trip(self, package, np_rng):
        matrix = np_rng.normal(size=(16, 16)) + 1j * np_rng.normal(size=(16, 16))
        edge = package.from_operator_matrix(matrix)
        assert np.allclose(package.to_operator_matrix(edge), matrix)

    def test_non_square_rejected(self, package):
        with pytest.raises(ValueError):
            package.from_operator_matrix(np.ones((4, 8)))

    def test_non_power_of_two_rejected(self, package):
        with pytest.raises(ValueError):
            package.from_operator_matrix(np.ones((6, 6)))

    def test_sparse_matrix_compact(self, package):
        matrix = np.zeros((16, 16), dtype=complex)
        matrix[0, 0] = 1.0
        edge = package.from_operator_matrix(matrix)
        assert package.node_count(edge) == 4


class TestAdjoint:
    def test_adjoint_matches_dense(self, package, np_rng):
        matrix = np_rng.normal(size=(16, 16)) + 1j * np_rng.normal(size=(16, 16))
        edge = package.from_operator_matrix(matrix)
        adjoint = package.conjugate_transpose(edge)
        assert np.allclose(package.to_operator_matrix(adjoint), matrix.conj().T)

    def test_adjoint_involution(self, package, np_rng):
        matrix = np_rng.normal(size=(16, 16)) + 1j * np_rng.normal(size=(16, 16))
        edge = package.from_operator_matrix(matrix)
        twice = package.conjugate_transpose(package.conjugate_transpose(edge))
        assert np.allclose(package.to_operator_matrix(twice), matrix)

    def test_unitary_adjoint_is_inverse(self, package):
        h_edge = package.gate(gates.H, 1)
        adjoint = package.conjugate_transpose(h_edge)
        product = package.multiply_matrices(adjoint, h_edge)
        assert np.allclose(package.to_operator_matrix(product), np.eye(16))
