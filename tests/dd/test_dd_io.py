"""Tests for DD export (dot / structural dump) — regenerates paper Fig. 1."""

import math

import numpy as np
import pytest

from repro.circuits import gates
from repro.dd import DDPackage, structure_lines, to_dot

SQRT2_INV = 1.0 / math.sqrt(2.0)


@pytest.fixture
def bell(package2):
    """The paper's |psi'> = (|00> + |11>)/sqrt(2) from Example 2."""
    package = package2
    state = package.zero_state()
    state = package.multiply(package.gate(gates.H, 0), state)
    state = package.multiply(package.gate(gates.X, 1, {0: 1}), state)
    return state


@pytest.fixture
def package2():
    return DDPackage(2)


class TestFigure1a:
    """Fig. 1a: DD of the Bell-type state (|00> + |11>)/sqrt(2).

    Note on weights: the paper's figure uses the classic QMDD normalisation
    (first non-zero child weight = 1, so the 1/sqrt(2) sits on the root
    edge); this package uses the sum-of-squares scheme (root weight = state
    norm = 1, the 1/sqrt(2) factors sit on the q0 node's child edges).  The
    *graph structure* and all path products — i.e. the amplitudes of
    Example 4 — are identical.
    """

    def test_node_count(self, package2, bell):
        # One q0 node and two distinct q1 nodes (|0>-branch and |1>-branch).
        assert package2.node_count(bell) == 3

    def test_root_weight_is_state_norm(self, bell):
        assert bell.weight.value == pytest.approx(1.0)

    def test_structure_matches_paper(self, package2, bell):
        lines = structure_lines(bell)
        assert lines[0] == "root -> 1"
        # q0 node splitting the 1/sqrt(2) amplitude over two distinct q1 nodes.
        assert lines[1] == "n0: q0 [0.707107*n1, 0.707107*n2]"
        # Left q1 node: amplitude on |0> only; right q1 node: on |1> only.
        assert "n1: q1 [1*T, 0-stub]" in lines
        assert "n2: q1 [0-stub, 1*T]" in lines

    def test_amplitude_reconstruction_example4(self, package2, bell):
        """Paper Example 4: amplitude of |11> = (1/sqrt2) * 1 * 1."""
        assert package2.get_amplitude(bell, [1, 1]) == pytest.approx(SQRT2_INV)
        assert package2.get_amplitude(bell, [0, 1]) == 0.0


class TestFigure1b:
    """Fig. 1b: DD of Z (x) I, the paper's Example 5."""

    def test_structure(self, package2):
        edge = package2.gate(gates.Z, 0)
        lines = structure_lines(edge)
        assert lines[0] == "root -> 1"
        # q0 node: diag(+1 block, -1 block) sharing the same identity child.
        assert lines[1] == "n0: q0 [1*n1, 0-stub, 0-stub, -1*n1]"
        assert lines[2] == "n1: q1 [1*T, 0-stub, 0-stub, 1*T]"

    def test_entry_reconstruction_example5(self, package2):
        """Paper Example 5: the (2,2) entry of Z (x) I is 1 * -1 * 1 = -1."""
        edge = package2.gate(gates.Z, 0)
        dense = package2.to_operator_matrix(edge)
        assert dense[2, 2] == pytest.approx(-1.0)
        assert np.allclose(dense, np.kron(gates.Z, np.eye(2)))


class TestFigure1c:
    """Fig. 1c: the two amplitude-damping outcomes of the paper's Example 6."""

    def test_damped_branch(self, package2, bell):
        p = 0.3
        a_decay = np.array([[0, math.sqrt(p)], [0, 0]], dtype=complex)
        damped = package2.multiply(package2.gate(a_decay, 0), bell)
        # Probability of this branch: ||A0 psi||^2 = p/2 (paper Example 6).
        assert package2.squared_norm(damped) == pytest.approx(p / 2)
        normalised = package2.normalize(damped)
        vector = package2.to_state_vector(normalised)
        expected = np.zeros(4, dtype=complex)
        expected[0b01] = 1.0  # |01>
        assert np.allclose(vector, expected)

    def test_no_decay_branch(self, package2, bell):
        p = 0.3
        a_keep = np.array([[1, 0], [0, math.sqrt(1 - p)]], dtype=complex)
        kept = package2.multiply(package2.gate(a_keep, 0), bell)
        assert package2.squared_norm(kept) == pytest.approx(1 - p / 2)
        vector = package2.to_state_vector(package2.normalize(kept))
        expected = np.zeros(4, dtype=complex)
        expected[0b00] = 1.0 / math.sqrt(2 - p)
        expected[0b11] = math.sqrt(1 - p) / math.sqrt(2 - p)
        assert np.allclose(vector, expected)


class TestDotExport:
    def test_dot_contains_nodes_and_stubs(self, package2, bell):
        dot = to_dot(bell, name="fig1a")
        assert dot.startswith("digraph fig1a {")
        assert dot.rstrip().endswith("}")
        assert 'label="q0"' in dot
        assert 'label="q1"' in dot
        assert 'label="0"' in dot  # zero stubs
        assert "0.707107" in dot  # root weight annotation

    def test_dot_zero_edge(self, package2):
        dot = to_dot(package2.zero_edge)
        assert "zero" in dot

    def test_dot_unit_weights_omitted(self, package2, bell):
        dot = to_dot(bell)
        # Unit edge weights render as empty labels (paper footnote 1).
        assert 'label=""' in dot

    def test_dot_is_deterministic(self, package2, bell):
        assert to_dot(bell) == to_dot(bell)
