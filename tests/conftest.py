"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.dd import DDPackage


@pytest.fixture
def rng() -> random.Random:
    """Deterministic Python RNG."""
    return random.Random(1234)


@pytest.fixture
def np_rng() -> np.random.Generator:
    """Deterministic NumPy RNG."""
    return np.random.default_rng(1234)


@pytest.fixture
def package() -> DDPackage:
    """A fresh 4-qubit DD package."""
    return DDPackage(4)


def random_state(np_rng: np.random.Generator, num_qubits: int) -> np.ndarray:
    """A Haar-ish random normalised state vector."""
    size = 2**num_qubits
    vector = np_rng.normal(size=size) + 1j * np_rng.normal(size=size)
    return vector / np.linalg.norm(vector)


def random_unitary(np_rng: np.random.Generator, dim: int = 2) -> np.ndarray:
    """A Haar-random unitary via QR decomposition."""
    matrix = np_rng.normal(size=(dim, dim)) + 1j * np_rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(matrix)
    return q * (np.diag(r) / np.abs(np.diag(r)))
