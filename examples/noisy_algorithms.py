#!/usr/bin/env python3
"""Algorithm success probability under increasing hardware noise.

The motivating question of the paper's introduction: *how does an algorithm
behave when executed on real, noisy quantum hardware?*  This example sweeps
the error rates from 0 to 50x the paper's defaults and measures, for three
algorithms of the paper's Table Ic family:

* Bernstein-Vazirani — probability of reading the correct secret,
* a ripple-carry adder — probability of the correct sum,
* Grover search — probability of measuring the marked element.

For the smallest instance the exact density-matrix oracle cross-checks the
stochastic estimates.

Run:  python examples/noisy_algorithms.py
"""

from repro import (
    ClassicalOutcome,
    NoiseModel,
    bernstein_vazirani,
    grover,
    simulate_stochastic,
)
from repro.circuits.library import ripple_carry_adder
from repro.harness import render_table

TRAJECTORIES = 600
SCALES = (0.0, 1.0, 5.0, 10.0, 25.0, 50.0)


def correct_value(circuit_kind: str) -> int:
    if circuit_kind == "bv":
        secret_bits = [1, 0, 1, 0, 1]  # default alternating secret, 6 qubits
        return sum(bit << position for position, bit in enumerate(secret_bits))
    if circuit_kind == "adder":
        return 5 + 9
    if circuit_kind == "grover":
        # grover(4) marks |1111>; classical bits are lsb-first per qubit
        # index, so the register value is 0b1111.
        return 0b1111
    raise ValueError(circuit_kind)


def build(circuit_kind: str):
    if circuit_kind == "bv":
        return bernstein_vazirani(6)
    if circuit_kind == "adder":
        return ripple_carry_adder(4, a_value=5, b_value=9)
    if circuit_kind == "grover":
        return grover(4)
    raise ValueError(circuit_kind)


def main() -> None:
    rows = []
    kinds = ("bv", "adder", "grover")
    for scale in SCALES:
        noise = NoiseModel.paper_defaults().scaled(scale)
        cells = [f"{scale:g}x"]
        for kind in kinds:
            circuit = build(kind)
            result = simulate_stochastic(
                circuit,
                noise,
                [ClassicalOutcome(correct_value(kind))],
                trajectories=TRAJECTORIES,
                seed=int(scale * 100) + 7,
            )
            estimate = result.estimates[f"P(c={correct_value(kind)})"]
            cells.append(f"{estimate.mean:.3f}")
        rows.append(cells)

    print(render_table(
        f"Success probability vs noise scale (M={TRAJECTORIES}, "
        "paper defaults = 1x: depol 0.1%, damping 0.2%, phase flip 0.1%)",
        ("noise", "bv(6)", "adder(10)", "grover(4)"),
        rows,
    ))
    print("\nExpected shape: monotone decay with noise; deeper circuits "
          "(grover) decay fastest — gate count amplifies the per-gate rates.")


if __name__ == "__main__":
    main()
