#!/usr/bin/env python3
"""Device-grade noise modelling: calibration data, readout, crosstalk, idling.

The paper notes that real gate errors "are highly specific for each quantum
computer and even vary for qubits within the quantum computer" (Section
II-B).  This example builds a device-like model from a mock calibration
table — per-qubit T1/T2 times, gate errors, readout errors — adds
correlated two-qubit crosstalk, makes idle qubits decohere via the
idle-identity pass, and measures how each ingredient degrades a GHZ
preparation.

Run:  python examples/device_noise_study.py
"""

from repro import BasisProbability, NoiseModel, ghz, simulate_stochastic
from repro.circuits.optimize import insert_idle_identities
from repro.harness import render_table
from repro.noise import ErrorRates
from repro.noise.calibration import from_calibration_table

QUBITS = 6
TRAJECTORIES = 1500

#: Mock backend calibration in the shape vendor APIs expose: one entry per
#: qubit with coherence times (microseconds) and error rates.  Qubit 3 is
#: the weak outlier every real lattice seems to have.
CALIBRATION = {
    0: {"t1_us": 110.0, "t2_us": 140.0, "gate_error": 0.0008, "readout_error": 0.012},
    1: {"t1_us": 95.0, "t2_us": 120.0, "gate_error": 0.0011, "readout_error": 0.018},
    2: {"t1_us": 130.0, "t2_us": 100.0, "gate_error": 0.0009, "readout_error": 0.015},
    3: {"t1_us": 30.0, "t2_us": 25.0, "gate_error": 0.0060, "readout_error": 0.060},
    4: {"t1_us": 105.0, "t2_us": 90.0, "gate_error": 0.0012, "readout_error": 0.020},
    5: {"t1_us": 120.0, "t2_us": 150.0, "gate_error": 0.0007, "readout_error": 0.011},
}


def fidelity_proxy(noise_model, circuit) -> float:
    """P(|0...0>) + P(|1...1>): the GHZ population retained."""
    zeros, ones = "0" * QUBITS, "1" * QUBITS
    result = simulate_stochastic(
        circuit,
        noise_model,
        [BasisProbability(zeros), BasisProbability(ones)],
        trajectories=TRAJECTORIES,
        seed=7,
    )
    return result.mean(f"P(|{zeros}>)") + result.mean(f"P(|{ones}>)")


def main() -> None:
    base_circuit = ghz(QUBITS)
    idle_circuit = insert_idle_identities(base_circuit)

    calibrated = from_calibration_table(CALIBRATION, gate_time_ns=80.0)
    # Per-qubit overrides win over the default, so fold the crosstalk rate
    # into each qubit's own entry.
    from dataclasses import replace

    with_crosstalk = NoiseModel.build(
        default=ErrorRates(crosstalk=0.004),
        qubit_overrides={
            qubit: replace(rates, crosstalk=0.004)
            for qubit, rates in calibrated.qubit_overrides
        },
    )

    rows = [
        ["ideal", f"{fidelity_proxy(NoiseModel.noiseless(), base_circuit):.4f}"],
        ["paper uniform", f"{fidelity_proxy(NoiseModel.paper_defaults(), base_circuit):.4f}"],
        ["calibrated per-qubit", f"{fidelity_proxy(calibrated, base_circuit):.4f}"],
        ["+ crosstalk", f"{fidelity_proxy(with_crosstalk, base_circuit):.4f}"],
        ["+ idle decoherence", f"{fidelity_proxy(with_crosstalk, idle_circuit):.4f}"],
    ]
    print(render_table(
        f"GHZ-{QUBITS} population retained vs noise-model fidelity "
        f"(M={TRAJECTORIES})",
        ("model", "P(00..0) + P(11..1)"),
        rows,
    ))

    print("\nPer-qubit weak spot: qubit 3's rates are ~5x worse — the kind")
    print("of heterogeneity that uniform models miss (paper ref [27]).")
    bad = calibrated.rates_for("x", 3)
    good = calibrated.rates_for("x", 5)
    print(f"  qubit 3: depol {bad.depolarizing:.4f}, damping {bad.amplitude_damping:.6f}, "
          f"readout {bad.readout:.3f}")
    print(f"  qubit 5: depol {good.depolarizing:.4f}, damping {good.amplitude_damping:.6f}, "
          f"readout {good.readout:.3f}")
    print(f"\nidle pass: {base_circuit.num_gates()} -> {idle_circuit.num_gates()} gates "
          "(explicit id slots on idle qubits; ICCAD'20-style per-step decoherence)")


if __name__ == "__main__":
    main()
