#!/usr/bin/env python3
"""Regenerate the paper's Fig. 1: decision-diagram representations.

Reproduces all three panels:

* **Fig. 1a** — the state (|00> + |11>)/sqrt(2) from Example 2 as vector DD,
* **Fig. 1b** — the operator Z (x) I from Example 5 as matrix DD,
* **Fig. 1c** — the two amplitude-damping outcomes of Example 6.

For each panel the script prints the structural dump (nodes, edges, weights)
and writes Graphviz dot files next to this script (render with
``dot -Tpdf fig1a.dot -o fig1a.pdf`` if graphviz is available).

Note the paper draws classic QMDD normalisation (scalar on the root edge);
this package uses sum-of-squares normalisation, so the 1/sqrt(2) factors
appear one level lower — path products (the amplitudes) are identical.
"""

import math
import os
import random

from repro import DDPackage
from repro.circuits import gates
from repro.dd import structure_lines, to_dot
from repro.noise import amplitude_damping_kraus

OUT_DIR = os.path.dirname(os.path.abspath(__file__))


def dump(title: str, edge, filename: str) -> None:
    print(f"\n=== {title} ===")
    for line in structure_lines(edge):
        print(" ", line)
    path = os.path.join(OUT_DIR, filename)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(edge, name=filename.split(".")[0]) + "\n")
    print(f"  -> dot written to {path}")


def main() -> None:
    package = DDPackage(2)

    # Fig. 1a: Bell-type state |psi'> = (|00> + |11>)/sqrt(2) (Example 2).
    state = package.zero_state()
    state = package.multiply(package.gate(gates.H, 0), state)
    state = package.multiply(package.gate(gates.X, 1, {0: 1}), state)
    dump("Fig. 1a — vector DD of (|00> + |11>)/sqrt(2)", state, "fig1a.dot")
    amplitude = package.get_amplitude(state, [1, 1])
    print(f"  Example 4 check: amplitude(|11>) = {amplitude:.6f} "
          f"(expected {1 / math.sqrt(2):.6f})")

    # Fig. 1b: matrix DD of Z applied to the first qubit (Example 5).
    z_gate = package.gate(gates.Z, 0)
    dump("Fig. 1b — matrix DD of Z (x) I", z_gate, "fig1b.dot")
    dense = package.to_operator_matrix(z_gate)
    print(f"  Example 5 check: entry (2,2) = {dense[2, 2].real:+.0f} (expected -1)")

    # Fig. 1c: amplitude damping on the first qubit (Example 6).
    p = 0.3
    no_decay, decay = amplitude_damping_kraus(p)

    damped = package.multiply(package.gate(decay, 0), state)
    p_decay = package.squared_norm(damped)
    dump(
        f"Fig. 1c (left) — decay branch A0 |psi'>, probability {p_decay:.3f} "
        f"(paper: p/2 = {p / 2:.3f})",
        package.normalize(damped),
        "fig1c_decay.dot",
    )

    kept = package.multiply(package.gate(no_decay, 0), state)
    p_keep = package.squared_norm(kept)
    dump(
        f"Fig. 1c (right) — no-decay branch A1 |psi'>, probability {p_keep:.3f} "
        f"(paper: 1 - p/2 = {1 - p / 2:.3f})",
        package.normalize(kept),
        "fig1c_nodecay.dot",
    )

    print("\nExample 6 ensemble reproduced: "
          f"{{({p_decay:.3f}, |01>), ({p_keep:.3f}, (|00> + sqrt(1-p)|11>)/sqrt(2-p))}}")


if __name__ == "__main__":
    main()
