#!/usr/bin/env python3
"""Concurrency across simulation runs (paper Section IV-C).

Monte-Carlo trajectories are independent, so they parallelise trivially
across worker processes — the paper's second key idea.  This example runs
the same workload with 1, 2, and 4 workers and reports throughput; on a
multi-core machine the scaling is near-linear, on a single-core container
the overhead of process pools shows instead (both are informative).

It also demonstrates that results are *identical* regardless of worker
count: trajectory seeds are derived from the trajectory index, not from the
worker, so the estimate is bit-for-bit reproducible.

Run:  python examples/concurrency.py
"""

import os
import time

from repro import BasisProbability, NoiseModel, qft, simulate_stochastic
from repro.harness import render_table


def main() -> None:
    circuit = qft(10)
    noise = NoiseModel.paper_defaults()
    trajectories = 300
    target = BasisProbability("0" * 10)

    print(f"machine reports {os.cpu_count()} CPU core(s)")
    rows = []
    estimates = []
    for workers in (1, 2, 4):
        started = time.perf_counter()
        result = simulate_stochastic(
            circuit,
            noise,
            [target],
            trajectories=trajectories,
            workers=workers,
            seed=42,
        )
        elapsed = time.perf_counter() - started
        estimates.append(result.mean(target.name))
        rows.append(
            [
                str(workers),
                f"{elapsed:.2f}",
                f"{trajectories / elapsed:.1f}",
                f"{result.mean(target.name):.6f}",
            ]
        )

    print(render_table(
        f"QFT(10), M={trajectories}, paper noise — workers sweep",
        ("workers", "time [s]", "traj/s", "P(|0...0>) estimate"),
        rows,
    ))

    spread = max(estimates) - min(estimates)
    print(f"\nestimate spread across worker counts: {spread:.2e} "
          "(trajectory seeds are index-derived, so the physics is identical)")


if __name__ == "__main__":
    main()
