#!/usr/bin/env python3
"""Stochastic trajectories versus the exact mixed-state formalism.

Section III of the paper argues that tracking density matrices "renders an
exponentially hard problem even harder" (2^n vectors become 2^n x 2^n
matrices), and that Monte-Carlo trajectories sidestep this at the price of
statistical error governed by Theorem 1.

This example makes both halves concrete:

1. **accuracy**: for a small noisy GHZ circuit, the stochastic estimate of
   P(|0...0>) converges onto the exact density-matrix value as M grows,
   at the predicted 1/sqrt(M) rate;
2. **cost**: runtimes of the exact oracle (4^n scaling) versus the
   stochastic DD simulator at fixed M as n grows.

Run:  python examples/stochastic_vs_exact.py
"""

import time

from repro import (
    BasisProbability,
    DensityMatrixSimulator,
    NoiseModel,
    ghz,
    hoeffding_epsilon,
    simulate_stochastic,
)
from repro.harness import render_table
from repro.noise import exact_channel_factory

# Exact T1 unravelling: the convergence study needs the unbiased estimator
# (the default event mode deviates at O(p) on superposition observables —
# DESIGN.md §5 — which would dominate this plot at 20x rates).
NOISE = NoiseModel.paper_defaults(damping_mode="exact").scaled(20)


def accuracy_study() -> None:
    circuit = ghz(4)
    oracle = DensityMatrixSimulator(4)
    oracle.run_circuit(circuit, exact_channel_factory(NOISE))
    exact = oracle.probability_of_basis([0, 0, 0, 0])

    rows = []
    for m in (50, 200, 800, 3200, 12800):
        result = simulate_stochastic(
            circuit, NOISE, [BasisProbability("0000")], trajectories=m, seed=1
        )
        estimate = result.mean("P(|0000>)")
        bound = hoeffding_epsilon(1, m, delta=0.05)
        rows.append(
            [str(m), f"{estimate:.4f}", f"{abs(estimate - exact):.4f}", f"{bound:.4f}"]
        )
    print(render_table(
        f"Convergence onto the exact value {exact:.4f} (GHZ-4, 20x paper noise)",
        ("M", "estimate", "|error|", "Hoeffding eps (95%)"),
        rows,
    ))


def cost_study() -> None:
    rows = []
    m = 200
    for n in (2, 4, 6, 8, 10):
        circuit = ghz(n)

        started = time.perf_counter()
        oracle = DensityMatrixSimulator(n)
        oracle.run_circuit(circuit, exact_channel_factory(NOISE))
        exact_seconds = time.perf_counter() - started

        started = time.perf_counter()
        simulate_stochastic(circuit, NOISE, [], trajectories=m, seed=2, sample_shots=0)
        stochastic_seconds = time.perf_counter() - started

        rows.append([str(n), f"{exact_seconds:.3f}", f"{stochastic_seconds:.3f}"])
    print(render_table(
        f"Runtime: exact density matrix vs stochastic DD (M={m})",
        ("n", "exact [s]", f"stochastic [s]"),
        rows,
    ))
    print("\nThe oracle's cost multiplies by ~16 per two qubits (4^n); the")
    print("stochastic simulator's cost stays essentially flat on GHZ, because")
    print("each trajectory's decision diagram has O(n) nodes.")


def main() -> None:
    accuracy_study()
    print()
    cost_study()


if __name__ == "__main__":
    main()
