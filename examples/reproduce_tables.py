#!/usr/bin/env python3
"""Regenerate the paper's Table Ia, Ib, and Ic at laptop scale.

The paper runs M = 30 000 trajectories with a one-hour timeout per case on
server hardware.  Runtime is linear in M, so the *ratios between simulators*
— which is what the tables demonstrate — are preserved at a much smaller
budget.  Defaults here finish in a few minutes; pass ``--full`` for a bigger
sweep.

Run:  python examples/reproduce_tables.py [--full]
"""

import sys

from repro.harness import run_table1a, run_table1b, run_table1c


def main() -> None:
    full = "--full" in sys.argv

    if full:
        table_a = run_table1a(
            qubit_range=(4, 8, 12, 16, 20, 24, 28, 32, 48, 64),
            trajectories=100, timeout=120.0,
        )
    else:
        table_a = run_table1a(
            qubit_range=(4, 8, 12, 16, 20, 32), trajectories=20, timeout=15.0
        )
    print(table_a.render())
    print()

    if full:
        table_b = run_table1b(
            qubit_range=(4, 6, 8, 10, 12, 14, 16, 20), trajectories=100, timeout=120.0
        )
    else:
        table_b = run_table1b(
            qubit_range=(4, 6, 8, 10, 12), trajectories=20, timeout=15.0
        )
    print(table_b.render())
    print()

    names = None if full else ("basis_trotter", "seca", "sat", "multiplier", "bigadder", "bv")
    table_c = run_table1c(
        names=names,
        trajectories=50 if full else 10,
        timeout=120.0 if full else 30.0,
    )
    print(table_c.render())

    print("\nShape checks against the paper:")
    print(" * Ia/Ib: statevector runtime doubles per added qubit and times")
    print("   out first; the DD simulator grows ~linearly and reaches 64.")
    print(" * Ic: DD wins on structured circuits (bv, adders, sat, seca),")
    print("   loses on dense ones (ising, vqe_uccsd, cc) — run with --full")
    print("   to include those rows.")


if __name__ == "__main__":
    main()
