#!/usr/bin/env python3
"""Quickstart: noisy simulation of a GHZ circuit, the paper's Hello World.

Builds the "Entanglement" benchmark circuit (Table Ia), runs the stochastic
simulator under the paper's error rates (0.1 % depolarization, 0.2 %
amplitude damping, 0.1 % phase flip), and prints the estimated output
probabilities alongside the noiseless expectation.

Run:  python examples/quickstart.py [num_qubits] [trajectories]
"""

import sys

from repro import (
    BasisProbability,
    IdealFidelity,
    NoiseModel,
    ghz,
    hoeffding_samples,
    simulate_stochastic,
)


def main() -> None:
    num_qubits = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    trajectories = int(sys.argv[2]) if len(sys.argv) > 2 else 2000

    circuit = ghz(num_qubits)
    print(f"circuit: {circuit.name} — {circuit.num_gates()} gates, depth {circuit.depth()}")

    # How good is this budget?  Invert Theorem 1 for our three properties.
    from repro import hoeffding_epsilon

    epsilon = hoeffding_epsilon(3, trajectories, delta=0.05)
    print(f"M = {trajectories} trajectories -> eps = {epsilon:.3f} at 95% confidence "
          f"(Theorem 1)")

    zeros = "0" * num_qubits
    ones = "1" * num_qubits
    result = simulate_stochastic(
        circuit,
        noise_model=NoiseModel.paper_defaults(),
        properties=[BasisProbability(zeros), BasisProbability(ones), IdealFidelity()],
        trajectories=trajectories,
        seed=2021,
    )

    print()
    print(result.summary())
    print()
    print("noiseless expectation: P(|0...0>) = P(|1...1>) = 0.5, F(ideal) = 1")
    print("the gap you see is the physical error model at work.")

    # For the full paper protocol (M = 30 000 <-> 1000 properties at 1%):
    m_paper = hoeffding_samples(1000, 0.01, 0.05, paper_convention=True)
    print(f"\npaper's budget: M = {m_paper} trajectories "
          "(1000 properties, eps < 0.01, 95%)")


if __name__ == "__main__":
    main()
