// Quantum phase estimation of the u1(2*pi*0.3125) eigenphase on |1>,
// with a 4-bit counting register: reads 0.3125 * 16 = 5 deterministically.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[4];
x q[4];
h q[0];
h q[1];
h q[2];
h q[3];
cu1(2*pi*0.3125*8) q[0], q[4];
cu1(2*pi*0.3125*4) q[1], q[4];
cu1(2*pi*0.3125*2) q[2], q[4];
cu1(2*pi*0.3125) q[3], q[4];
// inverse QFT on the counting register (with qubit-reversal swaps)
swap q[0], q[3];
swap q[1], q[2];
h q[3];
cu1(-pi/2) q[3], q[2];
h q[2];
cu1(-pi/4) q[3], q[1];
cu1(-pi/2) q[2], q[1];
h q[1];
cu1(-pi/8) q[3], q[0];
cu1(-pi/4) q[2], q[0];
cu1(-pi/2) q[1], q[0];
h q[0];
measure q[0] -> c[3];
measure q[1] -> c[2];
measure q[2] -> c[1];
measure q[3] -> c[0];
