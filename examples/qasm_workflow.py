#!/usr/bin/env python3
"""Full OpenQASM workflow: author -> parse -> noisy simulate -> inspect.

Demonstrates the interchange path a downstream user would take with real
QASMBench files: write (or receive) an OpenQASM 2.0 program — here a
QASMBench-style ripple adder with custom gate definitions — parse it, run
it under the paper's noise model on both simulators, and export the final
decision diagram for inspection.

Run:  python examples/qasm_workflow.py
"""

import os
import random
import tempfile

from repro import ClassicalOutcome, NoiseModel, parse_qasm_file, simulate_stochastic
from repro.dd import to_dot
from repro.simulators import DDBackend, execute_circuit

ADDER_QASM = """OPENQASM 2.0;
include "qelib1.inc";
// QASMBench-style 4-bit ripple-carry adder: computes b = a + b.
gate majority a, b, c { cx c, b; cx c, a; ccx a, b, c; }
gate unmaj a, b, c { ccx a, b, c; cx c, a; cx a, b; }
qreg cin[1];
qreg a[4];
qreg b[4];
qreg cout[1];
creg ans[5];
// a = 0b0111 = 7, b = 0b1011 = 11
x a[0]; x a[1]; x a[2];
x b[0]; x b[1]; x b[3];
majority cin[0], b[0], a[0];
majority a[0], b[1], a[1];
majority a[1], b[2], a[2];
majority a[2], b[3], a[3];
cx a[3], cout[0];
unmaj a[2], b[3], a[3];
unmaj a[1], b[2], a[2];
unmaj a[0], b[1], a[1];
unmaj cin[0], b[0], a[0];
measure b[0] -> ans[0];
measure b[1] -> ans[1];
measure b[2] -> ans[2];
measure b[3] -> ans[3];
measure cout[0] -> ans[4];
"""


def main() -> None:
    # 1. Write and parse the program.
    with tempfile.NamedTemporaryFile(
        "w", suffix=".qasm", delete=False, encoding="utf-8"
    ) as handle:
        handle.write(ADDER_QASM)
        path = handle.name
    try:
        circuit = parse_qasm_file(path)
    finally:
        os.unlink(path)
    print(f"parsed: {circuit!r}")
    print(f"gate histogram: {circuit.count_ops()}")

    # 2. One noiseless run: 7 + 11 = 18.
    backend = DDBackend(circuit.num_qubits)
    result = execute_circuit(backend, circuit, random.Random(0))
    print(f"noiseless result: {result.classical_value()} (expected 18)")

    # 3. Noisy Monte-Carlo on both engines.
    for kind in ("dd", "statevector"):
        stochastic = simulate_stochastic(
            circuit,
            NoiseModel.paper_defaults(),
            [ClassicalOutcome(18)],
            trajectories=400,
            backend=kind,
            seed=9,
        )
        print(
            f"{kind:12s}: P(correct sum) = {stochastic.mean('P(c=18)'):.3f}  "
            f"({stochastic.trajectories_per_second():.0f} traj/s, "
            f"peak nodes {stochastic.peak_nodes or 'n/a'})"
        )

    # 4. Export the final state's decision diagram.
    out = os.path.join(os.path.dirname(os.path.abspath(__file__)), "adder_state.dot")
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(to_dot(backend.state, name="adder_state") + "\n")
    print(f"final-state DD written to {out} "
          f"({backend.current_nodes()} nodes for a {circuit.num_qubits}-qubit state)")


if __name__ == "__main__":
    main()
