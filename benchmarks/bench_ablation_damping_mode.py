"""Ablation — event vs exact amplitude-damping unravelling (DESIGN.md §5).

The central reproduction finding: the *exact* two-Kraus T1 unravelling of
the paper's Example 6 tilts every no-decay branch by ``diag(1, sqrt(1-p))``,
and interleaved tilts on shared qubits destroy decision-diagram sharing —
``bv`` explodes from a linear-size to an exponential-size diagram.  The
*event* model (fire with probability ``p * P(1)``, else leave the state
untouched) keeps trajectories on the ideal state between rare events and
is what the paper's reported runtimes imply.

This benchmark measures one trajectory of ``bv`` under both modes at a
width where the exact mode is merely painful rather than hopeless, and
asserts the node-count separation.

Run:  pytest benchmarks/bench_ablation_damping_mode.py --benchmark-only
"""

import pytest

from repro.circuits.library import bernstein_vazirani
from repro.noise import NoiseModel
from repro.stochastic import simulate_stochastic

QUBITS = 12


def run(mode):
    return simulate_stochastic(
        bernstein_vazirani(QUBITS),
        NoiseModel.uniform(amplitude_damping=0.002, damping_mode=mode),
        [],
        trajectories=1,
        backend="dd",
        seed=0,
        sample_shots=0,
    )


def test_event_mode(benchmark):
    benchmark.group = "ablation-damping-mode"
    result = benchmark.pedantic(
        lambda: run("event"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.peak_nodes <= 3 * QUBITS


def test_exact_mode(benchmark):
    benchmark.group = "ablation-damping-mode"
    result = benchmark.pedantic(
        lambda: run("exact"), rounds=1, iterations=1, warmup_rounds=0
    )
    # The documented pathology: orders of magnitude more nodes.
    assert result.peak_nodes > 10 * QUBITS
