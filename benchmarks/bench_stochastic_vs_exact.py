"""Ablation — stochastic trajectories vs the exact mixed-state formalism.

Section III's core argument: evolving the density matrix squares the state
dimension (2^n -> 4^n work per operation), while stochastic simulation
keeps pure states and pays a statistical price controlled by Theorem 1.
This benchmark measures both engines on the same noisy workload at growing
register width; the exact oracle's runtime multiplies by ~16 per two added
qubits while the stochastic DD engine's stays near-flat on GHZ.

Run:  pytest benchmarks/bench_stochastic_vs_exact.py --benchmark-only
"""

import pytest

from repro.circuits.library import ghz
from repro.noise import NoiseModel, exact_channel_factory
from repro.simulators import DensityMatrixSimulator
from repro.stochastic import BasisProbability, simulate_stochastic

NOISE = NoiseModel.paper_defaults().scaled(10)
QUBITS = (2, 4, 6, 8)
M = 50


@pytest.mark.parametrize("n", QUBITS)
def test_exact_density_matrix(benchmark, n):
    """The 4^n-scaling exact reference."""
    circuit = ghz(n)
    benchmark.group = f"stochastic-vs-exact-n{n}"

    def run():
        oracle = DensityMatrixSimulator(n)
        oracle.run_circuit(circuit, exact_channel_factory(NOISE))
        return oracle.probability_of_basis([0] * n)

    value = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert 0.0 <= value <= 1.0


@pytest.mark.parametrize("n", QUBITS)
def test_stochastic_dd(benchmark, n):
    """The stochastic engine at a fixed statistical budget."""
    circuit = ghz(n)
    benchmark.group = f"stochastic-vs-exact-n{n}"

    def run():
        result = simulate_stochastic(
            circuit,
            NOISE,
            [BasisProbability("0" * n)],
            trajectories=M,
            seed=0,
            sample_shots=0,
        )
        return result.mean(f"P(|{'0' * n}>)")

    value = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert 0.0 <= value <= 1.0


def test_estimates_agree(benchmark):
    """At moderate M the two engines agree within the Hoeffding width."""
    n = 4
    circuit = ghz(n)

    def compare():
        oracle = DensityMatrixSimulator(n)
        oracle.run_circuit(circuit, exact_channel_factory(NOISE))
        exact = oracle.probability_of_basis([0] * n)
        result = simulate_stochastic(
            circuit, NOISE, [BasisProbability("0000")], trajectories=2000, seed=4,
            sample_shots=0,
        )
        return exact, result.mean("P(|0000>)")

    exact, estimate = benchmark.pedantic(
        compare, rounds=1, iterations=1, warmup_rounds=0
    )
    assert estimate == pytest.approx(exact, abs=0.05)
