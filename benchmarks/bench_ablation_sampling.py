"""Ablation — what the sum-of-squares normalisation buys at measurement time.

DESIGN.md: vector nodes are normalised so outgoing squared weights sum
to 1.  The payoff is that outcome probabilities factor along root-to-
terminal paths, making a complete measurement sample an O(n) walk
(``sample_basis_state``).  Without the invariant one must reconstruct
amplitudes per basis state — exponential work per sample.

This ablation benchmarks the O(n) path walk against the amplitude-
reconstruction sampler on the same state, at growing register width.

Run:  pytest benchmarks/bench_ablation_sampling.py --benchmark-only
"""

import random

import pytest

from repro.circuits import gates
from repro.dd import DDPackage

SHOTS = 200


def prepare(num_qubits):
    """A partially entangled, partially product state (non-trivial DD)."""
    package = DDPackage(num_qubits)
    state = package.zero_state()
    state = package.multiply(package.gate(gates.H, 0), state)
    for qubit in range(num_qubits - 1):
        state = package.multiply(package.gate(gates.X, qubit + 1, {qubit: 1}), state)
    state = package.multiply(package.gate(gates.ry(0.7), num_qubits - 1), state)
    return package, state


def sample_by_amplitude_reconstruction(package, state, num_qubits, rng):
    """The sampler one is forced into without the norm invariant:
    inverse-CDF over amplitudes reconstructed path-by-path."""
    pick = rng.random()
    cumulative = 0.0
    for index in range(2**num_qubits):
        bits = [(index >> (num_qubits - 1 - q)) & 1 for q in range(num_qubits)]
        cumulative += abs(package.get_amplitude(state, bits)) ** 2
        if pick < cumulative:
            return format(index, f"0{num_qubits}b")
    return "1" * num_qubits


@pytest.mark.parametrize("num_qubits", (6, 10, 14))
def test_path_walk_sampler(benchmark, num_qubits):
    """O(n)-per-shot sampling enabled by the normalisation invariant."""
    package, state = prepare(num_qubits)
    benchmark.group = f"ablation-sampling-n{num_qubits}"

    def run():
        rng = random.Random(0)
        return [package.sample_basis_state(state, rng) for _ in range(SHOTS)]

    samples = benchmark(run)
    assert len(samples) == SHOTS


@pytest.mark.parametrize("num_qubits", (6, 10, 14))
def test_amplitude_reconstruction_sampler(benchmark, num_qubits):
    """The exponential alternative (kept small: O(2^n) per shot)."""
    package, state = prepare(num_qubits)
    benchmark.group = f"ablation-sampling-n{num_qubits}"
    shots = 20  # far fewer shots; this sampler is the expensive arm

    def run():
        rng = random.Random(0)
        return [
            sample_by_amplitude_reconstruction(package, state, num_qubits, rng)
            for _ in range(shots)
        ]

    samples = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert len(samples) == shots


def test_samplers_agree_statistically(benchmark):
    """Both samplers draw from the same distribution."""
    package, state = prepare(4)

    def compare():
        rng = random.Random(1)
        fast = [package.sample_basis_state(state, rng) for _ in range(3000)]
        rng = random.Random(1)
        slow = [
            sample_by_amplitude_reconstruction(package, state, 4, rng)
            for _ in range(3000)
        ]
        return fast, slow

    fast, slow = benchmark.pedantic(compare, rounds=1, iterations=1, warmup_rounds=0)
    fast_zero_fraction = sum(1 for s in fast if s.startswith("0")) / len(fast)
    slow_zero_fraction = sum(1 for s in slow if s.startswith("0")) / len(slow)
    assert fast_zero_fraction == pytest.approx(slow_zero_fraction, abs=0.05)
