"""Ablation — matrix-vector vs matrix-matrix DD simulation (paper ref [37]).

Zulehner/Wille (DATE 2019) compare two ways of simulating a circuit with
decision diagrams: apply each gate to the state (matrix-vector), or first
compose the whole circuit unitary (matrix-matrix) and apply it once.  The
trade-off: intermediate *states* can stay compact while the intermediate
*operators* blow up — and vice versa for some structures.

Measured here on both regimes:

* GHZ: the state DD stays at 2n-1 nodes while the partial-product unitary
  stays linear as well (Clifford structure) — comparable costs;
* QFT: intermediate unitaries densify (the full QFT matrix DD is
  exponential-ish in structure), while per-gate states stay linear —
  matrix-vector wins decisively.

Run:  pytest benchmarks/bench_ablation_matmat.py --benchmark-only
"""

import random

import pytest

from repro.circuits.library import ghz, qft
from repro.simulators import DDBackend, execute_circuit
from repro.simulators.unitary import circuit_unitary_dd

QUBITS = 10


def matvec_run(circuit):
    backend = DDBackend(circuit.num_qubits)
    execute_circuit(backend, circuit, random.Random(0))
    return backend


def matmat_run(circuit):
    package, unitary = circuit_unitary_dd(circuit)
    state = package.multiply(unitary, package.zero_state(circuit.num_qubits))
    return package, state


@pytest.mark.parametrize("workload", ("ghz", "qft"))
def test_matrix_vector(benchmark, workload):
    circuit = ghz(QUBITS) if workload == "ghz" else qft(QUBITS, do_swaps=False)
    benchmark.group = f"ablation-matmat-{workload}"
    backend = benchmark.pedantic(
        lambda: matvec_run(circuit), rounds=1, iterations=1, warmup_rounds=0
    )
    assert backend.probability_of_basis([0] * QUBITS) > 0.0


@pytest.mark.parametrize("workload", ("ghz", "qft"))
def test_matrix_matrix(benchmark, workload):
    circuit = ghz(QUBITS) if workload == "ghz" else qft(QUBITS, do_swaps=False)
    benchmark.group = f"ablation-matmat-{workload}"
    package, state = benchmark.pedantic(
        lambda: matmat_run(circuit), rounds=1, iterations=1, warmup_rounds=0
    )
    assert package.get_amplitude(state, [0] * QUBITS) != 0


def test_both_regimes_agree(benchmark):
    circuit = qft(6, do_swaps=False)

    def compare():
        backend = matvec_run(circuit)
        package, state = matmat_run(circuit)
        import numpy as np

        return bool(
            np.allclose(
                backend.statevector(),
                package.to_state_vector(state, 6),
                atol=1e-9,
            )
        )

    assert benchmark.pedantic(compare, rounds=1, iterations=1, warmup_rounds=0)
