"""Job-service throughput: warm pool versus per-call pool, cache hits.

Three questions the service layer exists to answer favourably:

1. **Jobs/sec with a warm pool** — a persistent :class:`Scheduler` keeps
   its worker processes (and their DD packages / evaluation contexts)
   alive across jobs, so a stream of submissions skips per-job pool
   start-up entirely.
2. **Per-call pool cost** — the old execution model: build a fresh pool
   for every job, tear it down after. The delta against (1) is the
   amortised start-up + context-rebuild cost the service eliminates.
3. **Cache-hit latency** — resubmitting a byte-identical job must cost
   roughly a dictionary lookup, not a simulation.

Budgets follow conftest conventions (``REPRO_BENCH_TRAJECTORIES``,
``REPRO_BENCH_TIMEOUT``).

Run:  pytest benchmarks/bench_service_throughput.py --benchmark-only
"""

import pytest

from repro.circuits.library import ghz, qft
from repro.noise import NoiseModel
from repro.service import JobSpec, ResultStore, Scheduler
from repro.stochastic import BasisProbability

from .conftest import TRAJECTORIES

NOISE = NoiseModel.paper_defaults()
WORKERS = 2
#: A small stream of distinct jobs (distinct seeds → distinct job keys).
JOB_SEEDS = (1, 2, 3, 4)


def _specs(seeds=JOB_SEEDS):
    specs = []
    for seed in seeds:
        for circuit, target in ((ghz(8), "0" * 8), (qft(6), "0" * 6)):
            specs.append(
                JobSpec.build(
                    circuit,
                    NOISE,
                    [BasisProbability(target)],
                    trajectories=TRAJECTORIES,
                    seed=seed,
                    sample_shots=0,
                )
            )
    return specs


def test_warm_pool_job_stream(benchmark):
    """Many jobs through ONE persistent scheduler (the service model)."""
    benchmark.group = "service-job-stream"
    specs = _specs()

    with Scheduler(workers=WORKERS) as scheduler:
        def stream():
            return [scheduler.run(spec) for spec in specs]

        results = benchmark.pedantic(stream, rounds=1, iterations=1, warmup_rounds=0)
    assert len(results) == len(specs)
    assert all(r.completed_trajectories == TRAJECTORIES for r in results)
    benchmark.extra_info["jobs"] = len(specs)
    benchmark.extra_info["jobs_per_sec"] = len(specs) / benchmark.stats.stats.mean


def test_per_call_pool_job_stream(benchmark):
    """The same stream, but a fresh pool per job (the pre-service model)."""
    benchmark.group = "service-job-stream"
    specs = _specs()

    def stream():
        results = []
        for spec in specs:
            with Scheduler(workers=WORKERS) as scheduler:
                results.append(scheduler.run(spec))
        return results

    results = benchmark.pedantic(stream, rounds=1, iterations=1, warmup_rounds=0)
    assert len(results) == len(specs)
    assert all(r.completed_trajectories == TRAJECTORIES for r in results)
    benchmark.extra_info["jobs"] = len(specs)
    benchmark.extra_info["jobs_per_sec"] = len(specs) / benchmark.stats.stats.mean


def test_cache_hit_latency(benchmark):
    """Resubmission of an already-computed job: a store lookup, not a run."""
    benchmark.group = "service-cache"
    spec = _specs(seeds=(7,))[0]
    store = ResultStore(directory=None)

    with Scheduler(workers=WORKERS, store=store) as scheduler:
        scheduler.run(spec)  # populate the cache
        executed = scheduler.trajectories_executed

        result = benchmark.pedantic(
            lambda: scheduler.run(spec), rounds=5, iterations=1, warmup_rounds=0
        )
        # Every timed iteration was answered by the store.
        assert scheduler.trajectories_executed == executed
    assert result.completed_trajectories == TRAJECTORIES
    assert store.hits >= 5
