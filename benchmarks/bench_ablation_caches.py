"""Ablation — what the compute tables (memoisation) buy.

DESIGN.md calls out compute-table caching as a load-bearing design choice
of the DD package (inherited from the paper's reference [39]): the
recursive add/multiply algorithms revisit operand pairs constantly, and
without memoisation their cost degenerates even on compact diagrams.

This ablation runs the same gate sequence with caching enabled and
disabled (``compute_table_size=0``) and with the structure-sharing intact
in both cases — isolating memoisation from canonicity.

Run:  pytest benchmarks/bench_ablation_caches.py --benchmark-only
"""

import random

import pytest

from repro.circuits.library import qft
from repro.dd import DDPackage
from repro.simulators import DDBackend, execute_circuit

QUBITS = 10


def run_circuit(compute_table_size):
    package = DDPackage(QUBITS, compute_table_size=compute_table_size)
    backend = DDBackend(QUBITS, package=package)
    execute_circuit(backend, qft(QUBITS), random.Random(0))
    return backend


@pytest.mark.parametrize(
    "label,size", [("cached", 1 << 18), ("uncached", 0)]
)
def test_compute_table_ablation(benchmark, label, size):
    benchmark.group = "ablation-compute-tables"
    backend = benchmark.pedantic(
        lambda: run_circuit(size), rounds=1, iterations=1, warmup_rounds=0
    )
    # Both variants must compute the same state; only speed differs.
    assert backend.probability_of_basis([0] * QUBITS) == pytest.approx(
        backend.statevector()[0].real ** 2 + backend.statevector()[0].imag ** 2
    )


def test_cache_hit_ratio_reported(benchmark):
    """The cached run actually hits its tables (sanity for the ablation)."""
    backend = benchmark.pedantic(
        lambda: run_circuit(1 << 18), rounds=1, iterations=1, warmup_rounds=0
    )
    stats = backend.package.stats()
    assert stats["mat_vec"]["hits"] > 0 or stats["add"]["hits"] > 0
