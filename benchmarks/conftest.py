"""Shared configuration for the benchmark suite.

Benchmarks mirror the paper's protocol (stochastic simulation with the
Section V noise configuration) at laptop scale: the paper's M = 30 000 is
replaced by small trajectory budgets because runtime is linear in M — the
*ratios between simulators*, which are what Tables Ia-Ic demonstrate, are
scale-invariant.  Budgets are environment-tunable:

* ``REPRO_BENCH_TRAJECTORIES`` (default 10)
* ``REPRO_BENCH_TIMEOUT`` seconds per case (default 60)
"""

import os

import pytest

from repro.noise import NoiseModel

TRAJECTORIES = int(os.environ.get("REPRO_BENCH_TRAJECTORIES", "10"))
TIMEOUT = float(os.environ.get("REPRO_BENCH_TIMEOUT", "60"))


@pytest.fixture(scope="session")
def paper_noise() -> NoiseModel:
    """The paper's evaluation noise configuration (Section V)."""
    return NoiseModel.paper_defaults()


def run_once(benchmark, fn):
    """Run a heavy case exactly once per benchmark (no warmup rounds)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
