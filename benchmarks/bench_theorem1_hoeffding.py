"""Theorem 1 — the Monte-Carlo accuracy/cost trade-off.

The paper's Theorem 1 prices the whole method: M = log(2L/delta)/(2 eps)^2
trajectories estimate L quadratic properties to accuracy eps with
confidence 1 - delta, *independent of system size*.  This benchmark
measures the two sides of that bargain:

* estimation runtime is linear in M (the knob the bound controls), and
* at fixed M, estimating many properties at once costs barely more than
  estimating one (the logarithmic L-dependence in sample count, and the
  shared trajectories in runtime).

Run:  pytest benchmarks/bench_theorem1_hoeffding.py --benchmark-only
"""

import pytest

from repro.circuits.library import ghz
from repro.noise import NoiseModel
from repro.stochastic import (
    BasisProbability,
    hoeffding_samples,
    simulate_stochastic,
)

NOISE = NoiseModel.paper_defaults().scaled(10)


@pytest.mark.parametrize("m", (50, 200, 800))
def test_runtime_linear_in_m(benchmark, m):
    """Runtime scales linearly with the trajectory budget M."""
    circuit = ghz(6)
    benchmark.group = "theorem1-m-sweep"

    result = benchmark.pedantic(
        lambda: simulate_stochastic(
            circuit, NOISE, [BasisProbability("000000")], trajectories=m, seed=1,
            sample_shots=0,
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert result.completed_trajectories == m


@pytest.mark.parametrize("num_properties", (1, 8, 64))
def test_many_properties_share_trajectories(benchmark, num_properties):
    """Estimating L properties reuses the same M trajectories (Section III:
    'the same collection of samples can be used to estimate many quadratic
    properties at once')."""
    circuit = ghz(6)
    properties = [
        BasisProbability(format(i, "06b")) for i in range(num_properties)
    ]
    benchmark.group = "theorem1-property-sweep"

    result = benchmark.pedantic(
        lambda: simulate_stochastic(
            circuit, NOISE, properties, trajectories=100, seed=2, sample_shots=0
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert len(result.estimates) == num_properties


def test_sample_bound_evaluation(benchmark):
    """The bound itself is cheap to evaluate across a parameter grid."""

    def sweep():
        total = 0
        for num_properties in (1, 10, 100, 1000, 10000):
            for epsilon in (0.1, 0.05, 0.01):
                for delta in (0.1, 0.05, 0.01):
                    total += hoeffding_samples(num_properties, epsilon, delta)
                    total += hoeffding_samples(
                        num_properties, epsilon, delta, paper_convention=True
                    )
        return total

    total = benchmark(sweep)
    assert total > 0
