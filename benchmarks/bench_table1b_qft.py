"""Table Ib — QFT circuits: proposed DD vs array baseline.

Paper shape to reproduce (Table Ib): both engines are slower than on GHZ
(QFT has a quadratic gate count), the array baseline still blows up
exponentially (Qiskit >1 h at 19 qubits, QLM at 14), and the DD simulator
reaches 64 qubits with runtimes growing polynomially — noticeably steeper
than Table Ia but nowhere near exponential.

Run:  pytest benchmarks/bench_table1b_qft.py --benchmark-only
"""

import pytest

from repro.circuits.library import qft
from repro.stochastic import BasisProbability, simulate_stochastic

from .conftest import TRAJECTORIES, run_once

STATEVECTOR_QUBITS = (4, 8, 12)
DD_QUBITS = (4, 8, 12, 16, 24, 32)

# The swap-free QFT is benchmarked: the final swap network's eps-tilted
# inputs defeat DD re-merging numerically (DESIGN.md, finding #2), and the
# paper's reported runtimes imply the swap-free form.
DO_SWAPS = False


def _run(circuit, backend, noise):
    return simulate_stochastic(
        circuit,
        noise,
        [BasisProbability("0" * circuit.num_qubits)],
        trajectories=TRAJECTORIES,
        backend=backend,
        seed=0,
        sample_shots=0,
    )


@pytest.mark.parametrize("n", STATEVECTOR_QUBITS)
def test_qft_statevector(benchmark, paper_noise, n):
    """Baseline (array) rows of Table Ib."""
    circuit = qft(n, do_swaps=DO_SWAPS)
    benchmark.group = f"table1b-n{n}"
    result = run_once(benchmark, lambda: _run(circuit, "statevector", paper_noise))
    assert result.completed_trajectories == TRAJECTORIES


@pytest.mark.parametrize("n", DD_QUBITS)
def test_qft_dd(benchmark, paper_noise, n):
    """Proposed (DD) rows of Table Ib."""
    circuit = qft(n, do_swaps=DO_SWAPS)
    benchmark.group = f"table1b-n{n}"
    result = run_once(benchmark, lambda: _run(circuit, "dd", paper_noise))
    assert result.completed_trajectories == TRAJECTORIES
    # QFT on basis states stays a product state: linear-size diagrams, with
    # a generous factor for transient noise-induced growth.
    assert result.peak_nodes <= 6 * n + 16
