"""Section IV-C — concurrency across independent simulation runs.

The paper's second idea: independent Monte-Carlo trajectories parallelise
across cores, resolving the tension between DD memory-compactness and
array-style intra-gate parallelism.  This benchmark sweeps the worker count
on a fixed workload.  On multi-core hardware the throughput scales
near-linearly; on a single-core container (like many CI environments) the
sweep instead quantifies the process-pool overhead — the result assertions
therefore check *correctness invariance* (identical estimates for every
worker count), which holds everywhere.

Run:  pytest benchmarks/bench_concurrency.py --benchmark-only
"""

import pytest

from repro.circuits.library import qft
from repro.noise import NoiseModel
from repro.stochastic import BasisProbability, simulate_stochastic

NOISE = NoiseModel.paper_defaults()
TRAJECTORIES = 60

_reference_estimate = {}


@pytest.mark.parametrize("workers", (1, 2, 4))
def test_worker_scaling(benchmark, workers):
    circuit = qft(8)
    benchmark.group = "concurrency-qft8"

    result = benchmark.pedantic(
        lambda: simulate_stochastic(
            circuit,
            NOISE,
            [BasisProbability("0" * 8)],
            trajectories=TRAJECTORIES,
            workers=workers,
            seed=3,
            sample_shots=0,
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert result.completed_trajectories == TRAJECTORIES
    estimate = result.mean("P(|00000000>)")
    # Trajectory seeds are index-derived: every worker count computes the
    # same physics, bit-for-bit (modulo summation order).
    reference = _reference_estimate.setdefault("qft8", estimate)
    assert estimate == pytest.approx(reference, abs=1e-12)
