"""Table Ic — QASMBench circuits: proposed DD vs array baseline.

Paper shape to reproduce (Table Ic): the DD simulator wins — often by
orders of magnitude — on circuits whose states stay structured (bv,
multiplier, bigadder, sat, seca), and *loses* on circuits that densify the
state (ising, vqe_uccsd, cc; the paper reports vqe_uccsd-8 and cc hitting
the one-hour timeout while Qiskit finishes).

Each paper row is benchmarked on both engines at the published qubit count.
The dense rows are the expensive ones here too; their trajectory budget is
reduced further so the whole suite stays laptop-friendly while the
win/lose direction per row remains visible.

Run:  pytest benchmarks/bench_table1c_qasmbench.py --benchmark-only
"""

import pytest

from repro.circuits.library import QASMBENCH_CIRCUITS
from repro.stochastic import simulate_stochastic

from .conftest import TRAJECTORIES, run_once

#: Rows where the paper reports the DD simulator ahead.  (Measured note:
#: ``cc`` is listed as a DD *loss* in the paper but is structured — and a
#: DD win — under this reproduction's circuit construction; see
#: EXPERIMENTS.md.)
DD_WINS = ("bv", "multiplier", "bigadder", "sat", "seca", "basis_trotter", "cc")
#: Rows whose states densify: the DD engine pays exponential node counts
#: (the paper's ``ising``/``vqe_uccsd``/``cc`` rows, with vqe_uccsd_8 being
#: one of its ">1 h" entries).
DD_LOSES = ("ising", "vqe_uccsd_6", "vqe_uccsd_8")

#: Dense circuits get a minimal budget — a single DD trajectory of
#: ``vqe_uccsd_8`` already takes tens of seconds in pure Python, which is
#: the very effect the row demonstrates.
DENSE_TRAJECTORIES = max(1, TRAJECTORIES // 10)


def _run(name, backend, noise, trajectories):
    _, generator = QASMBENCH_CIRCUITS[name]
    circuit = generator()
    return simulate_stochastic(
        circuit,
        noise,
        [],
        trajectories=trajectories,
        backend=backend,
        seed=0,
        sample_shots=0,
    )


@pytest.mark.parametrize("name", DD_WINS)
@pytest.mark.parametrize("backend", ("statevector", "dd"))
def test_structured_rows(benchmark, paper_noise, name, backend):
    """Rows where structured states keep decision diagrams small."""
    benchmark.group = f"table1c-{name}"
    result = run_once(
        benchmark, lambda: _run(name, backend, paper_noise, TRAJECTORIES)
    )
    assert result.completed_trajectories == TRAJECTORIES


@pytest.mark.parametrize("name", DD_LOSES)
@pytest.mark.parametrize("backend", ("statevector", "dd"))
def test_dense_rows(benchmark, paper_noise, name, backend):
    """Rows where dense states blow decision diagrams up (DD loses)."""
    benchmark.group = f"table1c-{name}"
    result = run_once(
        benchmark, lambda: _run(name, backend, paper_noise, DENSE_TRAJECTORIES)
    )
    assert result.completed_trajectories == DENSE_TRAJECTORIES
