"""Benchmark harness: prefix sharing, the exact DD backend, strata.

Three series share this entry point:

* ``prefix`` (PR 4) — the paper's stochastic workload (GHZ and QFT under
  the default noise configuration) run twice, ``REPRO_PREFIX_SHARING=off``
  (naive: every trajectory re-executes the whole circuit) and ``on``
  (clean trajectories served from the shared ideal DD, erring ones
  replayed from checkpoints); asserts the two modes are **bit identical**.
  Both legs pin ``REPRO_STRATIFIED=off`` so the series keeps measuring
  the naive estimator it has always measured.
* ``exact`` (PR 6) — the exact density-matrix DD backend
  (:mod:`repro.exact`) over GHZ/QFT at growing qubit counts with paper
  noise, recording peak rho-DD nodes (machine-independent, gated by
  ``trend.py``) and wall time per one-pass evaluation.
* ``stratified`` (PR 9) — the post-stratified estimator
  (:mod:`repro.stochastic.strata`): a plain run and a stratified run of
  the same workload, recording the closed-form ``p_clean``, the erring
  trajectory count, and ``effective_traj_per_sec`` — effective
  trajectories (``erring / (1 - p_clean)^2``) per wall second, the
  variance-matched throughput.  Asserts the two estimators agree within
  their combined 99% Hoeffding half-widths on the same master seed.

Usage::

    PYTHONPATH=src python benchmarks/run_benches.py                 # full, writes BENCH_PR4.json
    PYTHONPATH=src python benchmarks/run_benches.py --quick         # CI-sized
    PYTHONPATH=src python benchmarks/run_benches.py --quick \
        --check-against BENCH_PR4.json                              # perf-smoke gate
    PYTHONPATH=src python benchmarks/run_benches.py --series exact \
        -o BENCH_PR6.json                                           # exact series only
    PYTHONPATH=src python benchmarks/run_benches.py \
        --series stratified                                         # writes BENCH_PR9.json

``--check-against`` compares the measured ratios against the committed
report and fails (exit 1) when any circuit regresses to below half its
recorded value — prefix reports gate the shared-vs-naive ``speedup``,
stratified reports the ``effective_speedup`` — machine-independent
ratios, so CI hardware differences do not produce false alarms.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.circuits.library import ghz, qasmbench_circuit, qft  # noqa: E402
from repro.noise import NoiseModel  # noqa: E402
from repro.stochastic import IdealFidelity, simulate_stochastic  # noqa: E402
from repro.stochastic.prefix import PREFIX_SHARING_ENV  # noqa: E402
from repro.stochastic.strata import STRATIFIED_ENV  # noqa: E402

FULL_CASES = (
    ("ghz-15", lambda: ghz(15), 2000),
    ("qft-10", lambda: qft(10), 400),
)
QUICK_CASES = (
    ("ghz-10", lambda: ghz(10), 300),
    ("qft-6", lambda: qft(6), 120),
)

#: Exact-series workload: one-pass density-matrix evaluations vs qubit
#: count.  GHZ's rho stays near-pure (few noise sites), QFT's saturates
#: toward the 4^n/3 dense bound — the two ends of the DD trade-off.
EXACT_FULL_CASES = (
    ("ghz-4", lambda: ghz(4)),
    ("ghz-6", lambda: ghz(6)),
    ("ghz-8", lambda: ghz(8)),
    ("ghz-10", lambda: ghz(10)),
    ("qft-4", lambda: qft(4)),
    ("qft-5", lambda: qft(5)),
    ("qft-6", lambda: qft(6)),
)
EXACT_QUICK_CASES = (
    ("ghz-4", lambda: ghz(4)),
    ("ghz-6", lambda: ghz(6)),
    ("qft-4", lambda: qft(4)),
)

#: Stratified-series workload: (name, factory, naive trajectories for the
#: baseline leg, erring trajectories for the stratified leg).  The erring
#: budget is deliberately smaller — at paper noise the clean stratum
#: dominates, so a few hundred erring-conditioned trajectories already
#: carry more effective samples than the full naive budget.
STRATIFIED_FULL_CASES = (
    ("ghz-15", lambda: ghz(15), 2000, 400),
    ("qft-10", lambda: qft(10), 400, 150),
    # The one QASMBench row without terminal measurements that stays
    # affordable: 512 gates on 4 qubits — a low-p_clean stress case.
    ("basis-trotter-4", lambda: qasmbench_circuit("basis_trotter"), 400, 150),
)
STRATIFIED_QUICK_CASES = (
    ("ghz-10", lambda: ghz(10), 300, 80),
    ("qft-6", lambda: qft(6), 120, 40),
)


def run_mode(circuit, trajectories, mode, seed=7):
    # This series benchmarks (and bit-compares) the naive estimator under
    # prefix sharing on/off; stratified sampling is a different estimator
    # with its own series below, so pin it off here.
    os.environ[STRATIFIED_ENV] = "off"
    os.environ[PREFIX_SHARING_ENV] = mode
    started = time.perf_counter()
    result = simulate_stochastic(
        circuit,
        noise_model=NoiseModel.paper_defaults(),
        properties=(IdealFidelity(),),
        trajectories=trajectories,
        backend="dd",
        workers=1,
        seed=seed,
        sample_shots=1,
    )
    elapsed = time.perf_counter() - started
    return result, elapsed


def assert_bit_identical(name, shared, naive):
    for prop, estimate in shared.estimates.items():
        other = naive.estimates[prop]
        if (estimate.total, estimate.count) != (other.total, other.count):
            raise AssertionError(
                f"{name}: estimate {prop} diverged — "
                f"shared total {estimate.total!r} vs naive {other.total!r}"
            )
    if shared.errors_fired != naive.errors_fired:
        raise AssertionError(f"{name}: errors_fired diverged")
    if shared.outcome_counts != naive.outcome_counts:
        raise AssertionError(f"{name}: outcome_counts diverged")


def bench_case(name, factory, trajectories):
    circuit = factory()
    naive_result, naive_elapsed = run_mode(circuit, trajectories, "off")
    shared_result, shared_elapsed = run_mode(circuit, trajectories, "on")
    assert_bit_identical(name, shared_result, naive_result)
    counters = shared_result.metrics.get("counters", {})
    entry = {
        "circuit": name,
        "num_qubits": circuit.num_qubits,
        "trajectories": trajectories,
        "naive_seconds": round(naive_elapsed, 4),
        "shared_seconds": round(shared_elapsed, 4),
        "naive_traj_per_sec": round(trajectories / naive_elapsed, 1),
        "shared_traj_per_sec": round(trajectories / shared_elapsed, 1),
        "speedup": round(naive_elapsed / shared_elapsed, 2),
        "bit_identical": True,
        "estimates": {
            prop: estimate.mean
            for prop, estimate in shared_result.estimates.items()
        },
        "errors_fired": shared_result.errors_fired,
        "prefix": {
            key: counters.get(f"prefix.{key}", 0)
            for key in ("hits", "replays", "replayed_gates", "materialized", "checkpoints")
        },
        "gateplan_compiled": counters.get("gateplan.compiled", 0),
        "gc_skipped": counters.get("dd.gc.skipped", 0),
    }
    print(
        f"{name}: naive {entry['naive_traj_per_sec']}/s, "
        f"shared {entry['shared_traj_per_sec']}/s "
        f"({entry['speedup']}x), "
        f"{entry['prefix']['hits']} clean / {entry['prefix']['replays']} replayed"
    )
    return entry


def bench_exact_case(name, factory):
    """One exact density-matrix DD evaluation: nodes + wall time."""
    from repro.exact import simulate_exact
    from repro.stochastic import BasisProbability

    circuit = factory()
    n = circuit.num_qubits
    properties = (BasisProbability("0" * n), IdealFidelity())
    started = time.perf_counter()
    result = simulate_exact(
        circuit, NoiseModel.paper_defaults(), properties
    )
    elapsed = time.perf_counter() - started
    counters = result.metrics.get("counters", {})
    entry = {
        "circuit": name,
        "num_qubits": n,
        "method": "exact",
        "seconds": round(elapsed, 4),
        "peak_rho_nodes": result.peak_nodes,
        "superop_applications": counters.get("exact.superop_applications", 0),
        "kraus_terms_folded": counters.get("exact.kraus_applications", 0),
        "estimates": {
            prop: estimate.mean for prop, estimate in result.estimates.items()
        },
    }
    print(
        f"{name}: exact pass {entry['seconds']} s, "
        f"peak rho nodes {entry['peak_rho_nodes']} "
        f"(dense bound {4**n // 3}), F = "
        f"{entry['estimates']['F(ideal)']:.6f}"
    )
    return entry


def run_stratified_mode(circuit, trajectories, stratified, seed=7):
    """One stochastic run with stratified sampling forced on or off."""
    os.environ[STRATIFIED_ENV] = "on" if stratified else "off"
    os.environ[PREFIX_SHARING_ENV] = "on"
    started = time.perf_counter()
    result = simulate_stochastic(
        circuit,
        noise_model=NoiseModel.paper_defaults(),
        properties=(IdealFidelity(),),
        trajectories=trajectories,
        backend="dd",
        workers=1,
        seed=seed,
        sample_shots=1,
    )
    elapsed = time.perf_counter() - started
    return result, elapsed


def bench_stratified_case(name, factory, naive_trajectories, erring_trajectories):
    """Plain vs stratified estimator on the same workload and master seed.

    The comparison axis is *effective* throughput: a stratified erring
    trajectory is worth ``1 / (1 - p_clean)^2`` naive ones (equal-variance
    exchange rate, see :mod:`repro.stochastic.strata`), so
    ``effective_traj_per_sec`` is the number the naive estimator would
    need to sustain to match the stratified half-width per wall second.
    """
    circuit = factory()
    naive_result, naive_elapsed = run_stratified_mode(
        circuit, naive_trajectories, stratified=False
    )
    strat_result, strat_elapsed = run_stratified_mode(
        circuit, erring_trajectories, stratified=True
    )
    strata = strat_result.strata
    if not strata:
        raise AssertionError(
            f"{name}: stratified sampling did not engage (no strata metadata)"
        )
    p_clean = strata["p_clean"]
    # Unbiasedness gate: both estimators target the same expectation, so
    # on any seed their means must agree within the combined 99% bounds.
    for prop, naive_estimate in naive_result.estimates.items():
        strat_estimate = strat_result.estimates[prop]
        slack = naive_estimate.halfwidth(0.01) + strat_estimate.halfwidth(0.01)
        drift = abs(naive_estimate.mean - strat_estimate.mean)
        if drift > slack:
            raise AssertionError(
                f"{name}: estimate {prop} diverged — naive "
                f"{naive_estimate.mean:.6f} vs stratified "
                f"{strat_estimate.mean:.6f} (drift {drift:.6f} > "
                f"combined 99% bound {slack:.6f})"
            )
    effective = strat_result.effective_trajectories()
    naive_rate = naive_trajectories / naive_elapsed
    effective_rate = effective / strat_elapsed
    entry = {
        "circuit": name,
        "num_qubits": circuit.num_qubits,
        "naive_trajectories": naive_trajectories,
        "erring_trajectories": erring_trajectories,
        "p_clean": round(p_clean, 6),
        "rejected_clean": int(strata["rejected_clean"]),
        "dry_run_attempts": int(strata["attempts"]),
        "naive_seconds": round(naive_elapsed, 4),
        "stratified_seconds": round(strat_elapsed, 4),
        "naive_traj_per_sec": round(naive_rate, 1),
        "effective_trajectories": round(effective, 1),
        "effective_traj_per_sec": round(effective_rate, 1),
        "effective_speedup": round(effective_rate / naive_rate, 2),
        "agreement": True,
        "estimates": {
            prop: estimate.mean
            for prop, estimate in strat_result.estimates.items()
        },
        "naive_estimates": {
            prop: estimate.mean
            for prop, estimate in naive_result.estimates.items()
        },
        "halfwidths_99": {
            prop: estimate.halfwidth(0.01)
            for prop, estimate in strat_result.estimates.items()
        },
    }
    print(
        f"{name}: p_clean {entry['p_clean']}, "
        f"{erring_trajectories} erring -> {entry['effective_trajectories']} "
        f"effective, {entry['effective_traj_per_sec']}/s effective vs "
        f"{entry['naive_traj_per_sec']}/s naive "
        f"({entry['effective_speedup']}x)"
    )
    return entry


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized workload")
    parser.add_argument(
        "--series", choices=("all", "prefix", "exact", "stratified"), default="all",
        help="which benchmark series to run; 'all' covers the legacy "
        "prefix+exact series, 'stratified' is its own series/artifact "
        "(default: all)",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="report path (default: BENCH_PR4.json at the repo root, or "
        "BENCH_PR9.json for --series stratified; quick runs default to "
        "not writing)",
    )
    parser.add_argument(
        "--check-against", default=None, metavar="REPORT",
        help="fail when any circuit's speedup (prefix series) or "
        "effective_speedup (stratified series) falls below half the "
        "committed report's (per-circuit-name match)",
    )
    args = parser.parse_args(argv)

    # The full report also records the quick cases so the CI perf-smoke job
    # (which only runs --quick) finds its per-circuit baselines in it.
    cases = QUICK_CASES if args.quick else FULL_CASES + QUICK_CASES
    exact_cases = EXACT_QUICK_CASES if args.quick else EXACT_FULL_CASES
    stratified_cases = (
        STRATIFIED_QUICK_CASES
        if args.quick
        else STRATIFIED_FULL_CASES + STRATIFIED_QUICK_CASES
    )
    report = {
        "schema": (
            "repro.bench-pr9/v1"
            if args.series == "stratified"
            else "repro.bench-pr4/v1"
        ),
        "mode": "quick" if args.quick else "full",
        "noise": "paper_defaults",
    }
    if args.series in ("all", "prefix"):
        report["cases"] = [bench_case(*case) for case in cases]
    if args.series in ("all", "exact"):
        report["exact_cases"] = [bench_exact_case(*case) for case in exact_cases]
    if args.series == "stratified":
        report["stratified_cases"] = [
            bench_stratified_case(*case) for case in stratified_cases
        ]

    output = args.output
    if output is None and not args.quick:
        default_name = (
            "BENCH_PR9.json" if args.series == "stratified" else "BENCH_PR4.json"
        )
        output = os.path.join(os.path.dirname(__file__), "..", default_name)
    if output:
        with open(output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {os.path.abspath(output)}")

    if args.check_against:
        with open(args.check_against) as handle:
            committed = json.load(handle)
        failures = []
        checked = []
        committed_speedups = {
            case["circuit"]: case["speedup"]
            for case in committed.get("cases", [])
        }
        for case in report.get("cases", []):
            baseline = committed_speedups.get(case["circuit"])
            if baseline is None:
                continue
            floor = baseline / 2.0
            checked.append(f"{case['circuit']} {case['speedup']}x")
            if case["speedup"] < floor:
                failures.append(
                    f"{case['circuit']}: speedup {case['speedup']}x fell below "
                    f"{floor:.2f}x (half the committed {baseline}x)"
                )
        committed_effective = {
            case["circuit"]: case["effective_speedup"]
            for case in committed.get("stratified_cases", [])
        }
        for case in report.get("stratified_cases", []):
            baseline = committed_effective.get(case["circuit"])
            if baseline is None:
                continue
            floor = baseline / 2.0
            checked.append(
                f"{case['circuit']} {case['effective_speedup']}x effective"
            )
            if case["effective_speedup"] < floor:
                failures.append(
                    f"{case['circuit']}: effective_speedup "
                    f"{case['effective_speedup']}x fell below {floor:.2f}x "
                    f"(half the committed {baseline}x)"
                )
        if failures:
            print("PERF REGRESSION:\n" + "\n".join(failures), file=sys.stderr)
            return 1
        print("perf check OK: " + ", ".join(checked))
    return 0


if __name__ == "__main__":
    sys.exit(main())
