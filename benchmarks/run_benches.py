"""Benchmark harness: stochastic prefix sharing and the exact DD backend.

Two series share this entry point:

* ``prefix`` (PR 4) — the paper's stochastic workload (GHZ and QFT under
  the default noise configuration) run twice, ``REPRO_PREFIX_SHARING=off``
  (naive: every trajectory re-executes the whole circuit) and ``on``
  (clean trajectories served from the shared ideal DD, erring ones
  replayed from checkpoints); asserts the two modes are **bit identical**.
* ``exact`` (PR 6) — the exact density-matrix DD backend
  (:mod:`repro.exact`) over GHZ/QFT at growing qubit counts with paper
  noise, recording peak rho-DD nodes (machine-independent, gated by
  ``trend.py``) and wall time per one-pass evaluation.

Usage::

    PYTHONPATH=src python benchmarks/run_benches.py                 # full, writes BENCH_PR4.json
    PYTHONPATH=src python benchmarks/run_benches.py --quick         # CI-sized
    PYTHONPATH=src python benchmarks/run_benches.py --quick \
        --check-against BENCH_PR4.json                              # perf-smoke gate
    PYTHONPATH=src python benchmarks/run_benches.py --series exact \
        -o BENCH_PR6.json                                           # exact series only

``--check-against`` compares the measured shared-vs-naive speedup against
the committed report and fails (exit 1) when any circuit regresses to
below half its recorded speedup — a machine-independent ratio check, so CI
hardware differences do not produce false alarms.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.circuits.library import ghz, qft  # noqa: E402
from repro.noise import NoiseModel  # noqa: E402
from repro.stochastic import IdealFidelity, simulate_stochastic  # noqa: E402
from repro.stochastic.prefix import PREFIX_SHARING_ENV  # noqa: E402

FULL_CASES = (
    ("ghz-15", lambda: ghz(15), 2000),
    ("qft-10", lambda: qft(10), 400),
)
QUICK_CASES = (
    ("ghz-10", lambda: ghz(10), 300),
    ("qft-6", lambda: qft(6), 120),
)

#: Exact-series workload: one-pass density-matrix evaluations vs qubit
#: count.  GHZ's rho stays near-pure (few noise sites), QFT's saturates
#: toward the 4^n/3 dense bound — the two ends of the DD trade-off.
EXACT_FULL_CASES = (
    ("ghz-4", lambda: ghz(4)),
    ("ghz-6", lambda: ghz(6)),
    ("ghz-8", lambda: ghz(8)),
    ("ghz-10", lambda: ghz(10)),
    ("qft-4", lambda: qft(4)),
    ("qft-5", lambda: qft(5)),
    ("qft-6", lambda: qft(6)),
)
EXACT_QUICK_CASES = (
    ("ghz-4", lambda: ghz(4)),
    ("ghz-6", lambda: ghz(6)),
    ("qft-4", lambda: qft(4)),
)


def run_mode(circuit, trajectories, mode, seed=7):
    os.environ[PREFIX_SHARING_ENV] = mode
    started = time.perf_counter()
    result = simulate_stochastic(
        circuit,
        noise_model=NoiseModel.paper_defaults(),
        properties=(IdealFidelity(),),
        trajectories=trajectories,
        backend="dd",
        workers=1,
        seed=seed,
        sample_shots=1,
    )
    elapsed = time.perf_counter() - started
    return result, elapsed


def assert_bit_identical(name, shared, naive):
    for prop, estimate in shared.estimates.items():
        other = naive.estimates[prop]
        if (estimate.total, estimate.count) != (other.total, other.count):
            raise AssertionError(
                f"{name}: estimate {prop} diverged — "
                f"shared total {estimate.total!r} vs naive {other.total!r}"
            )
    if shared.errors_fired != naive.errors_fired:
        raise AssertionError(f"{name}: errors_fired diverged")
    if shared.outcome_counts != naive.outcome_counts:
        raise AssertionError(f"{name}: outcome_counts diverged")


def bench_case(name, factory, trajectories):
    circuit = factory()
    naive_result, naive_elapsed = run_mode(circuit, trajectories, "off")
    shared_result, shared_elapsed = run_mode(circuit, trajectories, "on")
    assert_bit_identical(name, shared_result, naive_result)
    counters = shared_result.metrics.get("counters", {})
    entry = {
        "circuit": name,
        "num_qubits": circuit.num_qubits,
        "trajectories": trajectories,
        "naive_seconds": round(naive_elapsed, 4),
        "shared_seconds": round(shared_elapsed, 4),
        "naive_traj_per_sec": round(trajectories / naive_elapsed, 1),
        "shared_traj_per_sec": round(trajectories / shared_elapsed, 1),
        "speedup": round(naive_elapsed / shared_elapsed, 2),
        "bit_identical": True,
        "estimates": {
            prop: estimate.mean
            for prop, estimate in shared_result.estimates.items()
        },
        "errors_fired": shared_result.errors_fired,
        "prefix": {
            key: counters.get(f"prefix.{key}", 0)
            for key in ("hits", "replays", "replayed_gates", "materialized", "checkpoints")
        },
        "gateplan_compiled": counters.get("gateplan.compiled", 0),
        "gc_skipped": counters.get("dd.gc.skipped", 0),
    }
    print(
        f"{name}: naive {entry['naive_traj_per_sec']}/s, "
        f"shared {entry['shared_traj_per_sec']}/s "
        f"({entry['speedup']}x), "
        f"{entry['prefix']['hits']} clean / {entry['prefix']['replays']} replayed"
    )
    return entry


def bench_exact_case(name, factory):
    """One exact density-matrix DD evaluation: nodes + wall time."""
    from repro.exact import simulate_exact
    from repro.stochastic import BasisProbability

    circuit = factory()
    n = circuit.num_qubits
    properties = (BasisProbability("0" * n), IdealFidelity())
    started = time.perf_counter()
    result = simulate_exact(
        circuit, NoiseModel.paper_defaults(), properties
    )
    elapsed = time.perf_counter() - started
    counters = result.metrics.get("counters", {})
    entry = {
        "circuit": name,
        "num_qubits": n,
        "method": "exact",
        "seconds": round(elapsed, 4),
        "peak_rho_nodes": result.peak_nodes,
        "superop_applications": counters.get("exact.superop_applications", 0),
        "kraus_terms_folded": counters.get("exact.kraus_applications", 0),
        "estimates": {
            prop: estimate.mean for prop, estimate in result.estimates.items()
        },
    }
    print(
        f"{name}: exact pass {entry['seconds']} s, "
        f"peak rho nodes {entry['peak_rho_nodes']} "
        f"(dense bound {4**n // 3}), F = "
        f"{entry['estimates']['F(ideal)']:.6f}"
    )
    return entry


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized workload")
    parser.add_argument(
        "--series", choices=("all", "prefix", "exact"), default="all",
        help="which benchmark series to run (default: all)",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="report path (default: BENCH_PR4.json at the repo root; "
        "quick runs default to not writing)",
    )
    parser.add_argument(
        "--check-against", default=None, metavar="REPORT",
        help="fail when any circuit's speedup falls below half the "
        "committed report's (per-circuit-name match)",
    )
    args = parser.parse_args(argv)

    # The full report also records the quick cases so the CI perf-smoke job
    # (which only runs --quick) finds its per-circuit baselines in it.
    cases = QUICK_CASES if args.quick else FULL_CASES + QUICK_CASES
    exact_cases = EXACT_QUICK_CASES if args.quick else EXACT_FULL_CASES
    report = {
        "schema": "repro.bench-pr4/v1",
        "mode": "quick" if args.quick else "full",
        "noise": "paper_defaults",
    }
    if args.series in ("all", "prefix"):
        report["cases"] = [bench_case(*case) for case in cases]
    if args.series in ("all", "exact"):
        report["exact_cases"] = [bench_exact_case(*case) for case in exact_cases]

    output = args.output
    if output is None and not args.quick:
        output = os.path.join(os.path.dirname(__file__), "..", "BENCH_PR4.json")
    if output:
        with open(output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {os.path.abspath(output)}")

    if args.check_against:
        with open(args.check_against) as handle:
            committed = json.load(handle)
        committed_speedups = {
            case["circuit"]: case["speedup"] for case in committed["cases"]
        }
        failures = []
        for case in report["cases"]:
            baseline = committed_speedups.get(case["circuit"])
            if baseline is None:
                continue
            floor = baseline / 2.0
            if case["speedup"] < floor:
                failures.append(
                    f"{case['circuit']}: speedup {case['speedup']}x fell below "
                    f"{floor:.2f}x (half the committed {baseline}x)"
                )
        if failures:
            print("PERF REGRESSION:\n" + "\n".join(failures), file=sys.stderr)
            return 1
        print(
            "perf check OK: "
            + ", ".join(
                f"{case['circuit']} {case['speedup']}x" for case in report["cases"]
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
