"""Table Ia — Entanglement (GHZ) circuits: proposed DD vs array baseline.

Paper shape to reproduce (Table Ia): the array simulators' runtime grows
exponentially with the qubit count (Qiskit >1 h from 23 qubits, QLM from
29), while the proposed DD simulator grows ~linearly and handles 64 qubits
in seconds.  Here the state-vector baseline is swept to 16 qubits (each
added qubit doubles its cost) and the DD simulator to 64.

Run:  pytest benchmarks/bench_table1a_entanglement.py --benchmark-only
"""

import pytest

from repro.circuits.library import ghz
from repro.stochastic import BasisProbability, simulate_stochastic

from .conftest import TRAJECTORIES, run_once

#: Baseline sweep stops where a laptop-scale run stays sub-minute; the
#: exponential trend is unambiguous well before that.
STATEVECTOR_QUBITS = (4, 8, 12, 16)
DD_QUBITS = (4, 8, 16, 24, 32, 48, 64)


def _run(circuit, backend, noise):
    return simulate_stochastic(
        circuit,
        noise,
        [BasisProbability("0" * circuit.num_qubits)],
        trajectories=TRAJECTORIES,
        backend=backend,
        seed=0,
        sample_shots=0,
    )


@pytest.mark.parametrize("n", STATEVECTOR_QUBITS)
def test_entanglement_statevector(benchmark, paper_noise, n):
    """Baseline (array) rows of Table Ia."""
    circuit = ghz(n)
    benchmark.group = f"table1a-n{n}"
    result = run_once(benchmark, lambda: _run(circuit, "statevector", paper_noise))
    assert result.completed_trajectories == TRAJECTORIES


@pytest.mark.parametrize("n", DD_QUBITS)
def test_entanglement_dd(benchmark, paper_noise, n):
    """Proposed (DD) rows of Table Ia — including the 64-qubit case the
    baselines cannot touch."""
    circuit = ghz(n)
    benchmark.group = f"table1a-n{n}"
    result = run_once(benchmark, lambda: _run(circuit, "dd", paper_noise))
    assert result.completed_trajectories == TRAJECTORIES
    # The whole point: GHZ decision diagrams stay linear in n under noise.
    assert result.peak_nodes <= 4 * n + 8
