"""Ablation — single-qubit gate fusion (extension; cf. paper reference [37]).

Fusing maximal single-qubit runs into one ``u3`` trades many DD
matrix-vector multiplications for one, the circuit-level analogue of the
matrix-matrix-vs-matrix-vector trade-off the paper's reference [37]
studies.  ``basis_trotter`` — thousands of tiny gates on four qubits — is
the natural showcase.

Fusion also merges error-insertion slots, so under a noise model it models
hardware that compiles runs into single pulses; the benchmark therefore
runs both variants noiselessly for an apples-to-apples gate-cost
comparison, and separately under noise to show the slot-count effect.

Run:  pytest benchmarks/bench_ablation_fusion.py --benchmark-only
"""

import pytest

from repro.circuits.library import basis_trotter
from repro.circuits.optimize import fuse_single_qubit_runs
from repro.noise import NoiseModel
from repro.stochastic import IdealFidelity, simulate_stochastic

NOISELESS = NoiseModel.noiseless()
NOISY = NoiseModel.paper_defaults()


def circuits():
    original = basis_trotter(4, layers=40)
    return original, fuse_single_qubit_runs(original)


@pytest.mark.parametrize("variant", ("original", "fused"))
def test_noiseless_cost(benchmark, variant):
    original, fused = circuits()
    circuit = original if variant == "original" else fused
    benchmark.group = "ablation-fusion-noiseless"
    result = benchmark.pedantic(
        lambda: simulate_stochastic(
            circuit, NOISELESS, [], trajectories=5, seed=0, sample_shots=0
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert result.completed_trajectories == 5


@pytest.mark.parametrize("variant", ("original", "fused"))
def test_noisy_cost(benchmark, variant):
    original, fused = circuits()
    circuit = original if variant == "original" else fused
    benchmark.group = "ablation-fusion-noisy"
    result = benchmark.pedantic(
        lambda: simulate_stochastic(
            circuit, NOISY, [IdealFidelity()], trajectories=5, seed=0, sample_shots=0
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert result.completed_trajectories == 5


def test_fusion_reduces_gate_count(benchmark):
    def build():
        return circuits()

    original, fused = benchmark(build)
    assert fused.num_gates() < original.num_gates()
