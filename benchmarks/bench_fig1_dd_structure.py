"""Fig. 1 — decision-diagram representation: structure and construction cost.

The paper's Fig. 1 illustrates the data structure itself: (a) a Bell-type
state as a vector DD, (b) Z (x) I as a matrix DD, (c) the two outcomes of
an amplitude-damping event.  This benchmark regenerates all three panels,
asserts their exact structure (node counts, branch probabilities, weights)
and measures the cost of the underlying operations — node construction,
gate-DD building, and the state-dependent Kraus branching of Example 6.

Run:  pytest benchmarks/bench_fig1_dd_structure.py --benchmark-only
"""

import math
import random

import numpy as np
import pytest

from repro.circuits import gates
from repro.dd import DDPackage
from repro.noise import amplitude_damping_kraus
from repro.simulators import DDBackend


def build_bell(package):
    state = package.zero_state()
    state = package.multiply(package.gate(gates.H, 0), state)
    return package.multiply(package.gate(gates.X, 1, {0: 1}), state)


def test_fig1a_bell_state_dd(benchmark):
    """Panel (a): the Bell-type vector DD — 3 nodes, correct amplitudes."""

    def build():
        package = DDPackage(2)
        return package, build_bell(package)

    package, state = benchmark(build)
    assert package.node_count(state) == 3
    assert package.get_amplitude(state, [1, 1]) == pytest.approx(1 / math.sqrt(2))
    assert package.get_amplitude(state, [0, 1]) == 0.0


def test_fig1b_operator_dd(benchmark):
    """Panel (b): the Z (x) I matrix DD — 2 nodes, entry (2,2) = -1."""

    def build():
        package = DDPackage(2)
        return package, package.gate(gates.Z, 0)

    package, operator = benchmark(build)
    assert package.node_count(operator) == 2
    dense = package.to_operator_matrix(operator)
    assert np.allclose(dense, np.kron(gates.Z, np.eye(2)))


def test_fig1c_amplitude_damping_branches(benchmark):
    """Panel (c): Example 6's two damping outcomes with probabilities
    p/2 and 1 - p/2."""
    p = 0.3
    kraus = amplitude_damping_kraus(p)

    def branch():
        package = DDPackage(2)
        state = build_bell(package)
        no_decay = package.multiply(package.gate(kraus[0], 0), state)
        decay = package.multiply(package.gate(kraus[1], 0), state)
        return package, no_decay, decay

    package, no_decay, decay = benchmark(branch)
    assert package.squared_norm(decay) == pytest.approx(p / 2)
    assert package.squared_norm(no_decay) == pytest.approx(1 - p / 2)
    # The decay branch collapses to |01>.
    vector = package.to_state_vector(package.normalize(decay))
    assert abs(vector[0b01]) == pytest.approx(1.0)


def test_fig1c_stochastic_branch_selection(benchmark):
    """The end-to-end stochastic damping step of the simulator: apply the
    channel, select a branch by its norm, renormalise."""
    kraus = amplitude_damping_kraus(0.3)

    def select():
        backend = DDBackend(2)
        backend.apply_gate(gates.H, 0, {})
        backend.apply_gate(gates.X, 1, {0: 1})
        return backend.apply_kraus_branch(kraus, 0, random.Random(5))

    chosen = benchmark(select)
    assert chosen in (0, 1)
