"""Trend gate across the committed ``BENCH_*.json`` series.

Each performance PR commits a ``BENCH_<tag>.json`` report (written by
``run_benches.py``); this script walks that series in order and compares
consecutive reports on two axes:

* ``cases`` (stochastic prefix series): per-circuit
  ``shared_traj_per_sec``; a drop larger than ``--threshold`` (default
  20%) on any circuit fails the run — the guard that keeps a later PR
  from quietly eating an earlier PR's speedup.
* ``exact_cases`` (exact density-matrix series): per-circuit
  ``peak_rho_nodes``; node counts are machine-independent, so growth
  beyond the same threshold means the rho-DD representation itself got
  less compact — a regression no hardware change can explain away.
* ``stratified_cases`` (post-stratified estimator series): per-circuit
  ``effective_traj_per_sec`` — effective trajectories (erring count
  divided by ``(1 - p_clean)^2``) per wall second; a drop beyond the
  threshold means later work eroded the stratified estimator's
  variance-per-second advantage.

Usage::

    python benchmarks/trend.py                          # all BENCH_*.json, repo root
    python benchmarks/trend.py BENCH_PR4.json new.json  # explicit series, in order
    python benchmarks/trend.py --threshold 0.1          # stricter gate

Reports are matched per circuit name; circuits present in only one report
are skipped (new benchmarks enter the series without tripping the gate).
Absolute trajectories/second are machine-dependent, so comparing two
reports only makes sense when they were measured on comparable hardware —
CI regenerates the newest report on the same runner class that produced
the committed baseline.
"""

import argparse
import glob
import json
import os
import re
import sys


def _series_key(path):
    """Sort BENCH_PR4.json before BENCH_PR10.json (numeric PR order)."""
    name = os.path.basename(path)
    match = re.search(r"(\d+)", name)
    return (int(match.group(1)) if match else 0, name)


def load_report(path):
    with open(path) as handle:
        report = json.load(handle)
    throughput = {
        case["circuit"]: float(case["shared_traj_per_sec"])
        for case in report.get("cases", [])
        if case.get("shared_traj_per_sec")
    }
    nodes = {
        case["circuit"]: int(case["peak_rho_nodes"])
        for case in report.get("exact_cases", [])
        if case.get("peak_rho_nodes")
    }
    effective = {
        case["circuit"]: float(case["effective_traj_per_sec"])
        for case in report.get("stratified_cases", [])
        if case.get("effective_traj_per_sec")
    }
    return throughput, nodes, effective


def diff_series(paths, threshold):
    """(lines, failures) comparing each report with its predecessor."""
    lines = []
    failures = []
    previous_path = None
    previous = ({}, {}, {})
    for path in paths:
        current = load_report(path)
        if previous_path is not None:
            span = f"[{os.path.basename(previous_path)} -> {os.path.basename(path)}]"
            throughput_before, nodes_before, effective_before = previous
            throughput_after, nodes_after, effective_after = current
            # Stochastic series: throughput must not drop.
            for circuit in sorted(set(throughput_before) & set(throughput_after)):
                before = throughput_before[circuit]
                after = throughput_after[circuit]
                change = (after - before) / before
                marker = ""
                if change < -threshold:
                    marker = "  << REGRESSION"
                    failures.append(
                        f"{circuit}: {before:.1f} -> {after:.1f} traj/s "
                        f"({change:+.1%}) from {os.path.basename(previous_path)} "
                        f"to {os.path.basename(path)} exceeds the "
                        f"{threshold:.0%} budget"
                    )
                lines.append(
                    f"{circuit}: {before:9.1f} -> {after:9.1f} traj/s "
                    f"({change:+6.1%})  {span}{marker}"
                )
            # Exact series: peak rho-DD nodes must not grow.
            for circuit in sorted(set(nodes_before) & set(nodes_after)):
                before = nodes_before[circuit]
                after = nodes_after[circuit]
                change = (after - before) / before
                marker = ""
                if change > threshold:
                    marker = "  << REGRESSION"
                    failures.append(
                        f"{circuit}: peak rho nodes {before} -> {after} "
                        f"({change:+.1%}) from {os.path.basename(previous_path)} "
                        f"to {os.path.basename(path)} exceeds the "
                        f"{threshold:.0%} budget"
                    )
                lines.append(
                    f"{circuit}: {before:9d} -> {after:9d} rho nodes "
                    f"({change:+6.1%})  {span}{marker}"
                )
            # Stratified series: effective throughput must not drop.
            for circuit in sorted(set(effective_before) & set(effective_after)):
                before = effective_before[circuit]
                after = effective_after[circuit]
                change = (after - before) / before
                marker = ""
                if change < -threshold:
                    marker = "  << REGRESSION"
                    failures.append(
                        f"{circuit}: {before:.1f} -> {after:.1f} effective "
                        f"traj/s ({change:+.1%}) from "
                        f"{os.path.basename(previous_path)} to "
                        f"{os.path.basename(path)} exceeds the "
                        f"{threshold:.0%} budget"
                    )
                lines.append(
                    f"{circuit}: {before:9.1f} -> {after:9.1f} eff traj/s "
                    f"({change:+6.1%})  {span}{marker}"
                )
        previous_path, previous = path, current
    return lines, failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "reports", nargs="*",
        help="BENCH_*.json files in series order (default: repo root glob)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.2, metavar="FRACTION",
        help="maximum tolerated per-circuit throughput drop (default 0.2)",
    )
    args = parser.parse_args(argv)

    paths = args.reports
    if not paths:
        root = os.path.join(os.path.dirname(__file__), "..")
        paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")), key=_series_key)
    if not paths:
        print("no BENCH_*.json reports found")
        return 0
    if len(paths) < 2:
        print(f"only one report ({os.path.basename(paths[0])}) — nothing to diff")
        return 0

    lines, failures = diff_series(paths, args.threshold)
    print("\n".join(lines) if lines else "no overlapping circuits to compare")
    if failures:
        print(
            "THROUGHPUT REGRESSION:\n" + "\n".join(failures), file=sys.stderr
        )
        return 1
    print(f"trend OK across {len(paths)} report(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
