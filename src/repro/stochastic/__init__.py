"""Stochastic quantum circuit simulation (the paper's core contribution)."""

from .adaptive import AdaptiveRun, run_until_precision
from .properties import (
    BasisProbability,
    ClassicalOutcome,
    ExpectationZ,
    IdealFidelity,
    PauliExpectation,
    PropertySpec,
    StateFidelity,
    hoeffding_epsilon,
    hoeffding_samples,
)
from .results import PropertyEstimate, StochasticResult
from .runner import (
    BACKEND_KINDS,
    StochasticSimulator,
    run_trajectory_span,
    simulate_stochastic,
)

__all__ = [
    "AdaptiveRun",
    "BACKEND_KINDS",
    "BasisProbability",
    "run_until_precision",
    "ClassicalOutcome",
    "ExpectationZ",
    "IdealFidelity",
    "PauliExpectation",
    "PropertyEstimate",
    "PropertySpec",
    "StateFidelity",
    "StochasticResult",
    "StochasticSimulator",
    "hoeffding_epsilon",
    "hoeffding_samples",
    "run_trajectory_span",
    "simulate_stochastic",
]
