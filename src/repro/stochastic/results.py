"""Aggregated results of stochastic simulation runs.

A :class:`StochasticResult` collects, over ``M`` trajectories: per-property
running sums (mean / variance / Hoeffding and CLT confidence intervals),
the histogram of sampled measurement outcomes, error-firing statistics, and
engine diagnostics (runtime, peak DD nodes).  Partial results from worker
processes are merged with :meth:`StochasticResult.merge`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.metrics import merge_snapshots
from ..obs.profile import merge_profiles

__all__ = ["PropertyEstimate", "StochasticResult"]


@dataclass
class PropertyEstimate:
    """Streaming estimate of one quadratic property."""

    name: str
    count: int = 0
    total: float = 0.0
    total_squared: float = 0.0
    #: True when the value came from an exact (density-matrix) evaluation:
    #: there is no sampling error, so the variance, standard error, and
    #: Hoeffding half-width all collapse to zero.
    exact: bool = False

    def add(self, value: float) -> None:
        """Fold one trajectory's property value into the estimate."""
        self.count += 1
        self.total += value
        self.total_squared += value * value

    def merge(self, other: "PropertyEstimate") -> None:
        """Fold another partial estimate (from a worker) into this one."""
        if other.name != self.name:
            raise ValueError(f"merging estimates of different properties: "
                             f"{self.name!r} vs {other.name!r}")
        self.count += other.count
        self.total += other.total
        self.total_squared += other.total_squared
        # Mixing in any sampled contribution reintroduces sampling error.
        self.exact = self.exact and other.exact

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (used by the service result store)."""
        payload = {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "total_squared": self.total_squared,
        }
        if self.exact:
            payload["exact"] = True
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PropertyEstimate":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(data["name"]),
            count=int(data["count"]),
            total=float(data["total"]),
            total_squared=float(data["total_squared"]),
            exact=bool(data.get("exact", False)),
        )

    @property
    def mean(self) -> float:
        """The Monte-Carlo estimate ``o_hat`` (paper Section III)."""
        if self.count == 0:
            raise ValueError("no samples accumulated")
        return self.total / self.count

    @property
    def variance(self) -> float:
        """Unbiased sample variance of the per-trajectory values."""
        if self.exact or self.count < 2:
            return 0.0
        mean = self.mean
        return max(
            0.0, (self.total_squared - self.count * mean * mean) / (self.count - 1)
        )

    @property
    def std_error(self) -> float:
        """Standard error of the mean (zero for exact evaluations)."""
        if self.exact:
            return 0.0 if self.count else float("inf")
        if self.count == 0:
            return float("inf")
        return math.sqrt(self.variance / self.count)

    def hoeffding_halfwidth(self, delta: float = 0.05, value_range: float = 1.0) -> float:
        """Hoeffding confidence half-width at level ``1 - delta``.

        ``value_range`` is the width of the property's value interval
        (1 for probabilities/fidelities, 2 for Pauli expectations).
        Exact evaluations carry no sampling error: the half-width is zero.
        """
        if self.count == 0:
            return float("inf")
        if self.exact:
            return 0.0
        return value_range * math.sqrt(math.log(2.0 / delta) / (2.0 * self.count))

    def confidence_interval(self, delta: float = 0.05, value_range: float = 1.0) -> Tuple[float, float]:
        """Hoeffding interval containing the true value w.p. >= 1 - delta."""
        halfwidth = self.hoeffding_halfwidth(delta, value_range)
        return self.mean - halfwidth, self.mean + halfwidth


@dataclass
class StochasticResult:
    """Complete outcome of a stochastic (Monte-Carlo) simulation."""

    circuit_name: str
    backend_kind: str
    requested_trajectories: int
    completed_trajectories: int = 0
    #: Which execution path produced this result: ``"stochastic"``
    #: (Monte-Carlo trajectories) or ``"exact"`` (density-matrix DD, zero
    #: sampling error — every estimate has ``exact=True``).
    method: str = "stochastic"
    estimates: Dict[str, PropertyEstimate] = field(default_factory=dict)
    outcome_counts: Dict[str, int] = field(default_factory=dict)
    errors_fired: Dict[str, int] = field(
        default_factory=lambda: {"depolarizing": 0, "amplitude_damping": 0, "phase_flip": 0}
    )
    #: Wall-clock seconds stamped by whoever ran the job (scheduler or span).
    elapsed_seconds: float = 0.0
    #: Compute seconds summed across all contributing chunks; with parallel
    #: workers this exceeds ``elapsed_seconds`` (up to ``workers`` times).
    cpu_seconds: float = 0.0
    peak_nodes: int = 0
    workers: int = 1
    timed_out: bool = False
    #: Observability snapshot (see :mod:`repro.obs`); merges associatively.
    metrics: Dict[str, object] = field(default_factory=dict)
    #: Correlated trace events recorded while producing this result (see
    #: :mod:`repro.obs.context`); concatenated on merge, stitched by the
    #: consumer — chunk-index-ordered merging keeps the order deterministic.
    trace_events: List[Dict[str, object]] = field(default_factory=list)
    #: Hot-loop profile (see :mod:`repro.obs.profile`); empty unless the
    #: run executed with ``REPRO_PROFILE`` enabled; adds on merge.
    profile: Dict[str, object] = field(default_factory=dict)

    def merge(self, other: "StochasticResult") -> None:
        """Fold a worker's partial result into this aggregate."""
        self.completed_trajectories += other.completed_trajectories
        for name, estimate in other.estimates.items():
            if name in self.estimates:
                self.estimates[name].merge(estimate)
            else:
                self.estimates[name] = estimate
        for outcome, count in other.outcome_counts.items():
            self.outcome_counts[outcome] = self.outcome_counts.get(outcome, 0) + count
        for kind, count in other.errors_fired.items():
            self.errors_fired[kind] = self.errors_fired.get(kind, 0) + count
        self.cpu_seconds += other.cpu_seconds
        self.peak_nodes = max(self.peak_nodes, other.peak_nodes)
        self.timed_out = self.timed_out or other.timed_out
        if other.metrics:
            self.metrics = merge_snapshots(self.metrics, other.metrics)
        if other.trace_events:
            self.trace_events.extend(dict(event) for event in other.trace_events)
        if other.profile:
            self.profile = merge_profiles(self.profile or None, other.profile)

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (used by the service result store)."""
        return {
            "circuit_name": self.circuit_name,
            "backend_kind": self.backend_kind,
            "method": self.method,
            "requested_trajectories": self.requested_trajectories,
            "completed_trajectories": self.completed_trajectories,
            "estimates": {
                name: estimate.to_dict() for name, estimate in self.estimates.items()
            },
            "outcome_counts": dict(self.outcome_counts),
            "errors_fired": dict(self.errors_fired),
            "elapsed_seconds": self.elapsed_seconds,
            "cpu_seconds": self.cpu_seconds,
            "peak_nodes": self.peak_nodes,
            "workers": self.workers,
            "timed_out": self.timed_out,
            "metrics": self.metrics,
            "trace_events": [dict(event) for event in self.trace_events],
            "profile": dict(self.profile),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StochasticResult":
        """Inverse of :meth:`to_dict` (always yields an independent copy)."""
        return cls(
            circuit_name=str(data["circuit_name"]),
            backend_kind=str(data["backend_kind"]),
            # Tolerant default: results cached before the hybrid dispatcher.
            method=str(data.get("method", "stochastic")),
            requested_trajectories=int(data["requested_trajectories"]),
            completed_trajectories=int(data["completed_trajectories"]),
            estimates={
                name: PropertyEstimate.from_dict(entry)
                for name, entry in dict(data["estimates"]).items()
            },
            outcome_counts={k: int(v) for k, v in dict(data["outcome_counts"]).items()},
            errors_fired={k: int(v) for k, v in dict(data["errors_fired"]).items()},
            elapsed_seconds=float(data["elapsed_seconds"]),
            # Tolerant defaults: results cached before these fields existed.
            cpu_seconds=float(data.get("cpu_seconds", 0.0)),
            peak_nodes=int(data["peak_nodes"]),
            workers=int(data["workers"]),
            timed_out=bool(data["timed_out"]),
            metrics=merge_snapshots(data.get("metrics")) if data.get("metrics") else {},
            trace_events=[dict(event) for event in data.get("trace_events", [])],
            profile=merge_profiles(data.get("profile")) if data.get("profile") else {},
        )

    def copy(self) -> "StochasticResult":
        """Deep, independent copy (cache reads must not alias the store)."""
        return StochasticResult.from_dict(self.to_dict())

    def mean(self, property_name: str) -> float:
        """Estimate of one property by name."""
        return self.estimates[property_name].mean

    def outcome_distribution(self) -> Dict[str, float]:
        """Sampled measurement outcomes as relative frequencies."""
        total = sum(self.outcome_counts.values())
        if total == 0:
            return {}
        return {key: count / total for key, count in sorted(self.outcome_counts.items())}

    def trajectories_per_second(self) -> float:
        """Monte-Carlo throughput."""
        if self.elapsed_seconds <= 0.0:
            return float("inf")
        return self.completed_trajectories / self.elapsed_seconds

    def summary(self) -> str:
        """Multi-line human-readable report."""
        if self.method == "exact":
            lines = [
                f"circuit: {self.circuit_name} ({self.backend_kind} backend, "
                f"exact density-matrix method)",
                f"elapsed: {self.elapsed_seconds:.3f} s",
            ]
        else:
            lines = [
                f"circuit: {self.circuit_name} ({self.backend_kind} backend, "
                f"{self.workers} worker(s))",
                f"trajectories: {self.completed_trajectories}/{self.requested_trajectories}"
                + (" [TIMED OUT]" if self.timed_out else ""),
                f"elapsed: {self.elapsed_seconds:.3f} s "
                f"({self.trajectories_per_second():.1f} traj/s"
                + (f", {self.cpu_seconds:.3f} cpu-s" if self.cpu_seconds else "")
                + ")",
                f"errors fired: {self.errors_fired}",
            ]
        if self.peak_nodes:
            lines.append(f"peak DD nodes: {self.peak_nodes}")
        for name, estimate in sorted(self.estimates.items()):
            if estimate.exact:
                lines.append(f"  {name}: {estimate.mean:.6f} (exact, halfwidth 0)")
                continue
            low, high = estimate.confidence_interval()
            lines.append(
                f"  {name}: {estimate.mean:.6f} "
                f"(95% Hoeffding [{low:.6f}, {high:.6f}], se {estimate.std_error:.2e})"
            )
        if self.outcome_counts:
            top = sorted(self.outcome_counts.items(), key=lambda kv: -kv[1])[:8]
            lines.append("  top outcomes: " + ", ".join(f"{k}: {v}" for k, v in top))
        return "\n".join(lines)
