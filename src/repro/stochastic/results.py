"""Aggregated results of stochastic simulation runs.

A :class:`StochasticResult` collects, over ``M`` trajectories: per-property
running sums (mean / variance / Hoeffding and CLT confidence intervals),
the histogram of sampled measurement outcomes, error-firing statistics, and
engine diagnostics (runtime, peak DD nodes).  Partial results from worker
processes are merged with :meth:`StochasticResult.merge`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.metrics import merge_snapshots
from ..obs.profile import merge_profiles

__all__ = ["PropertyEstimate", "StochasticResult"]


@dataclass
class PropertyEstimate:
    """Streaming estimate of one quadratic property.

    In the default (unstratified) mode the accumulated moments are over
    plain Monte-Carlo trajectories.  Under stratified sampling
    (:mod:`repro.stochastic.strata`) they are the moments of the
    *erring-conditioned* samples only, and ``p_clean`` / ``clean_value``
    carry the analytically-weighted clean stratum; :attr:`mean` is then
    the unbiased post-stratified estimator ``p_clean * clean_value +
    (1 - p_clean) * erring_mean``.
    """

    name: str
    count: int = 0
    total: float = 0.0
    total_squared: float = 0.0
    #: True when the value came from an exact (density-matrix) evaluation:
    #: there is no sampling error, so the variance, standard error, and
    #: Hoeffding half-width all collapse to zero.
    exact: bool = False
    #: Closed-form probability of the zero-error stratum (``None`` when the
    #: estimate is not stratified).  Set once per job from the noise model;
    #: every merged partial must agree exactly (same closed form, same
    #: deterministic float product).
    p_clean: Optional[float] = None
    #: The property's value on the shared ideal (clean-stratum) state,
    #: evaluated once from the prefix plan's cached fold — zero variance.
    clean_value: Optional[float] = None

    @property
    def stratified(self) -> bool:
        """Whether this estimate carries a closed-form clean stratum."""
        return self.p_clean is not None

    @property
    def _weight(self) -> float:
        """Sampling-error scale: the erring stratum's probability mass."""
        return 1.0 - self.p_clean if self.p_clean is not None else 1.0

    def add(self, value: float) -> None:
        """Fold one trajectory's property value into the estimate."""
        self.count += 1
        self.total += value
        self.total_squared += value * value

    def merge(self, other: "PropertyEstimate") -> None:
        """Fold another partial estimate (from a worker) into this one."""
        if other.name != self.name:
            raise ValueError(f"merging estimates of different properties: "
                             f"{self.name!r} vs {other.name!r}")
        if other.p_clean is not None:
            if self.p_clean is None:
                if self.count:
                    raise ValueError(
                        f"cannot merge stratified estimate {self.name!r} into "
                        f"unstratified samples"
                    )
                # Empty shell (scheduler aggregation seed) adopts the stratum.
                self.p_clean = other.p_clean
                self.clean_value = other.clean_value
            elif (other.p_clean != self.p_clean
                  or other.clean_value != self.clean_value):
                raise ValueError(
                    f"stratum mismatch merging {self.name!r}: "
                    f"p_clean {self.p_clean!r} vs {other.p_clean!r}, "
                    f"clean_value {self.clean_value!r} vs {other.clean_value!r}"
                )
        elif self.p_clean is not None and other.count:
            raise ValueError(
                f"cannot merge unstratified samples into stratified "
                f"estimate {self.name!r}"
            )
        self.count += other.count
        self.total += other.total
        self.total_squared += other.total_squared
        # Mixing in any sampled contribution reintroduces sampling error.
        self.exact = self.exact and other.exact

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (used by the service result store)."""
        payload = {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "total_squared": self.total_squared,
        }
        if self.exact:
            payload["exact"] = True
        # Omitted when absent so unstratified payloads stay byte-identical
        # to what every release before stratified sampling produced.
        if self.p_clean is not None:
            payload["p_clean"] = self.p_clean
            payload["clean_value"] = self.clean_value
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PropertyEstimate":
        """Inverse of :meth:`to_dict`."""
        p_clean = data.get("p_clean")
        clean_value = data.get("clean_value")
        return cls(
            name=str(data["name"]),
            count=int(data["count"]),
            total=float(data["total"]),
            total_squared=float(data["total_squared"]),
            exact=bool(data.get("exact", False)),
            p_clean=None if p_clean is None else float(p_clean),
            clean_value=None if clean_value is None else float(clean_value),
        )

    @property
    def erring_mean(self) -> float:
        """Mean of the accumulated samples (the erring stratum when
        stratified, all trajectories otherwise)."""
        if self.count == 0:
            raise ValueError("no samples accumulated")
        return self.total / self.count

    @property
    def mean(self) -> float:
        """The Monte-Carlo estimate ``o_hat`` (paper Section III).

        Stratified: the unbiased post-stratified combination
        ``p_clean * clean_value + (1 - p_clean) * erring_mean``.
        """
        sample_mean = self.erring_mean
        if self.p_clean is None:
            return sample_mean
        return self.p_clean * self.clean_value + self._weight * sample_mean

    @property
    def sample_variance(self) -> float:
        """Unbiased sample variance of the accumulated per-sample values."""
        if self.exact or self.count < 2:
            return 0.0
        mean = self.erring_mean
        return max(
            0.0, (self.total_squared - self.count * mean * mean) / (self.count - 1)
        )

    @property
    def variance(self) -> float:
        """Unbiased sample variance of the per-trajectory values.

        Stratified: the clean stratum is analytic (zero variance), so this
        is the variance of the estimator's *virtual* per-sample value,
        ``(1 - p_clean)^2`` times the erring-sample variance — the scale at
        which ``sqrt(variance / count)`` remains the standard error of
        :attr:`mean`.
        """
        return self._weight * self._weight * self.sample_variance

    @property
    def std_error(self) -> float:
        """Standard error of the mean (zero for exact evaluations)."""
        if self.exact:
            return 0.0 if self.count else float("inf")
        if self.count == 0:
            return float("inf")
        return math.sqrt(self.variance / self.count)

    def hoeffding_halfwidth(self, delta: float = 0.05, value_range: float = 1.0) -> float:
        """Hoeffding confidence half-width at level ``1 - delta``.

        ``value_range`` is the width of the property's value interval
        (1 for probabilities/fidelities, 2 for Pauli expectations).
        Exact evaluations carry no sampling error: the half-width is zero.
        Stratified estimates shrink by the erring mass ``(1 - p_clean)``:
        only the erring term carries sampling error, and its weight scales
        the deviation bound linearly.
        """
        if self.count == 0:
            return float("inf")
        if self.exact:
            return 0.0
        return self._weight * value_range * math.sqrt(
            math.log(2.0 / delta) / (2.0 * self.count)
        )

    def bernstein_halfwidth(self, delta: float = 0.05, value_range: float = 1.0) -> float:
        """Empirical-Bernstein half-width (Maurer & Pontil) at ``1 - delta``.

        ``sqrt(2 V ln(4/delta) / n) + 7 R ln(4/delta) / (3 (n - 1))`` with
        ``V`` the sample variance — two applications of the one-sided bound
        at ``delta / 2`` each.  Variance-adaptive: much tighter than
        Hoeffding when the per-sample variance is far below ``(R/2)^2``,
        looser for tiny ``n`` (the ``1/(n-1)`` term dominates).  Stratified
        estimates scale by the erring mass, exactly as for Hoeffding.
        """
        if self.count == 0:
            return float("inf")
        if self.exact:
            return 0.0
        if self.count < 2:
            # No empirical variance yet; Hoeffding is the only valid bound.
            return float("inf")
        log_term = math.log(4.0 / delta)
        raw = math.sqrt(2.0 * self.sample_variance * log_term / self.count) + (
            7.0 * value_range * log_term / (3.0 * (self.count - 1))
        )
        return self._weight * raw

    def halfwidth(
        self,
        delta: float = 0.05,
        value_range: float = 1.0,
        bound: str = "hoeffding",
    ) -> float:
        """Confidence half-width under the chosen concentration ``bound``.

        ``"hoeffding"`` and ``"bernstein"`` use their full ``delta``;
        ``"best"`` takes the minimum of both at ``delta / 2`` each (a union
        bound keeps the combined level valid).
        """
        if bound == "hoeffding":
            return self.hoeffding_halfwidth(delta, value_range)
        if bound == "bernstein":
            return self.bernstein_halfwidth(delta, value_range)
        if bound == "best":
            return min(
                self.hoeffding_halfwidth(delta / 2.0, value_range),
                self.bernstein_halfwidth(delta / 2.0, value_range),
            )
        raise ValueError(f"unknown concentration bound: {bound!r}")

    def confidence_interval(self, delta: float = 0.05, value_range: float = 1.0) -> Tuple[float, float]:
        """Hoeffding interval containing the true value w.p. >= 1 - delta."""
        halfwidth = self.hoeffding_halfwidth(delta, value_range)
        return self.mean - halfwidth, self.mean + halfwidth


@dataclass
class StochasticResult:
    """Complete outcome of a stochastic (Monte-Carlo) simulation."""

    circuit_name: str
    backend_kind: str
    requested_trajectories: int
    completed_trajectories: int = 0
    #: Which execution path produced this result: ``"stochastic"``
    #: (Monte-Carlo trajectories) or ``"exact"`` (density-matrix DD, zero
    #: sampling error — every estimate has ``exact=True``).
    method: str = "stochastic"
    estimates: Dict[str, PropertyEstimate] = field(default_factory=dict)
    outcome_counts: Dict[str, int] = field(default_factory=dict)
    #: Under stratified sampling, ``outcome_counts`` holds the
    #: erring-stratum histogram and this holds shots drawn from the shared
    #: ideal (clean) state; :meth:`outcome_distribution` recombines the two
    #: pools with the stratum weights.  Empty in unstratified runs.
    clean_outcome_counts: Dict[str, int] = field(default_factory=dict)
    #: Stratified-sampling accounting: ``p_clean`` (closed form),
    #: ``erring_sampled``, ``rejected_clean``, ``attempts``.  Empty when the
    #: run was not stratified; merges add the counts and require the same
    #: ``p_clean`` on both sides.
    strata: Dict[str, float] = field(default_factory=dict)
    errors_fired: Dict[str, int] = field(
        default_factory=lambda: {"depolarizing": 0, "amplitude_damping": 0, "phase_flip": 0}
    )
    #: Wall-clock seconds stamped by whoever ran the job (scheduler or span).
    elapsed_seconds: float = 0.0
    #: Compute seconds summed across all contributing chunks; with parallel
    #: workers this exceeds ``elapsed_seconds`` (up to ``workers`` times).
    cpu_seconds: float = 0.0
    peak_nodes: int = 0
    workers: int = 1
    timed_out: bool = False
    #: Observability snapshot (see :mod:`repro.obs`); merges associatively.
    metrics: Dict[str, object] = field(default_factory=dict)
    #: Correlated trace events recorded while producing this result (see
    #: :mod:`repro.obs.context`); concatenated on merge, stitched by the
    #: consumer — chunk-index-ordered merging keeps the order deterministic.
    trace_events: List[Dict[str, object]] = field(default_factory=list)
    #: Hot-loop profile (see :mod:`repro.obs.profile`); empty unless the
    #: run executed with ``REPRO_PROFILE`` enabled; adds on merge.
    profile: Dict[str, object] = field(default_factory=dict)

    def merge(self, other: "StochasticResult") -> None:
        """Fold a worker's partial result into this aggregate."""
        self.completed_trajectories += other.completed_trajectories
        for name, estimate in other.estimates.items():
            if name in self.estimates:
                self.estimates[name].merge(estimate)
            else:
                self.estimates[name] = estimate
        for outcome, count in other.outcome_counts.items():
            self.outcome_counts[outcome] = self.outcome_counts.get(outcome, 0) + count
        for outcome, count in other.clean_outcome_counts.items():
            self.clean_outcome_counts[outcome] = (
                self.clean_outcome_counts.get(outcome, 0) + count
            )
        if other.strata:
            if not self.strata:
                self.strata = dict(other.strata)
            else:
                if other.strata.get("p_clean") != self.strata.get("p_clean"):
                    raise ValueError(
                        f"stratum mismatch merging results: p_clean "
                        f"{self.strata.get('p_clean')!r} vs "
                        f"{other.strata.get('p_clean')!r}"
                    )
                for key in ("erring_sampled", "rejected_clean", "attempts"):
                    self.strata[key] = self.strata.get(key, 0) + other.strata.get(key, 0)
        for kind, count in other.errors_fired.items():
            self.errors_fired[kind] = self.errors_fired.get(kind, 0) + count
        self.cpu_seconds += other.cpu_seconds
        self.peak_nodes = max(self.peak_nodes, other.peak_nodes)
        self.timed_out = self.timed_out or other.timed_out
        if other.metrics:
            self.metrics = merge_snapshots(self.metrics, other.metrics)
        if other.trace_events:
            self.trace_events.extend(dict(event) for event in other.trace_events)
        if other.profile:
            self.profile = merge_profiles(self.profile or None, other.profile)

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (used by the service result store)."""
        payload = {
            "circuit_name": self.circuit_name,
            "backend_kind": self.backend_kind,
            "method": self.method,
            "requested_trajectories": self.requested_trajectories,
            "completed_trajectories": self.completed_trajectories,
            "estimates": {
                name: estimate.to_dict() for name, estimate in self.estimates.items()
            },
            "outcome_counts": dict(self.outcome_counts),
            "errors_fired": dict(self.errors_fired),
            "elapsed_seconds": self.elapsed_seconds,
            "cpu_seconds": self.cpu_seconds,
            "peak_nodes": self.peak_nodes,
            "workers": self.workers,
            "timed_out": self.timed_out,
            "metrics": self.metrics,
            "trace_events": [dict(event) for event in self.trace_events],
            "profile": dict(self.profile),
        }
        # Omitted when empty so unstratified payloads stay byte-identical
        # to what every release before stratified sampling produced.
        if self.clean_outcome_counts:
            payload["clean_outcome_counts"] = dict(self.clean_outcome_counts)
        if self.strata:
            payload["strata"] = dict(self.strata)
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StochasticResult":
        """Inverse of :meth:`to_dict` (always yields an independent copy)."""
        return cls(
            circuit_name=str(data["circuit_name"]),
            backend_kind=str(data["backend_kind"]),
            # Tolerant default: results cached before the hybrid dispatcher.
            method=str(data.get("method", "stochastic")),
            requested_trajectories=int(data["requested_trajectories"]),
            completed_trajectories=int(data["completed_trajectories"]),
            estimates={
                name: PropertyEstimate.from_dict(entry)
                for name, entry in dict(data["estimates"]).items()
            },
            outcome_counts={k: int(v) for k, v in dict(data["outcome_counts"]).items()},
            clean_outcome_counts={
                k: int(v)
                for k, v in dict(data.get("clean_outcome_counts", {})).items()
            },
            strata=dict(data.get("strata", {})),
            errors_fired={k: int(v) for k, v in dict(data["errors_fired"]).items()},
            elapsed_seconds=float(data["elapsed_seconds"]),
            # Tolerant defaults: results cached before these fields existed.
            cpu_seconds=float(data.get("cpu_seconds", 0.0)),
            peak_nodes=int(data["peak_nodes"]),
            workers=int(data["workers"]),
            timed_out=bool(data["timed_out"]),
            metrics=merge_snapshots(data.get("metrics")) if data.get("metrics") else {},
            trace_events=[dict(event) for event in data.get("trace_events", [])],
            profile=merge_profiles(data.get("profile")) if data.get("profile") else {},
        )

    def copy(self) -> "StochasticResult":
        """Deep, independent copy (cache reads must not alias the store)."""
        return StochasticResult.from_dict(self.to_dict())

    def mean(self, property_name: str) -> float:
        """Estimate of one property by name."""
        return self.estimates[property_name].mean

    def outcome_distribution(self) -> Dict[str, float]:
        """Sampled measurement outcomes as relative frequencies.

        Stratified runs combine the clean and erring sampling pools with
        their stratum weights: ``p_clean * f_clean + (1 - p_clean) *
        f_erring`` — the unbiased estimate of the noisy outcome law.
        """
        erring_total = sum(self.outcome_counts.values())
        clean_total = sum(self.clean_outcome_counts.values())
        p_clean = self.strata.get("p_clean") if self.strata else None
        if p_clean is None or clean_total == 0 or erring_total == 0:
            if erring_total == 0:
                return {}
            return {
                key: count / erring_total
                for key, count in sorted(self.outcome_counts.items())
            }
        weights: Dict[str, float] = {}
        for key, count in self.clean_outcome_counts.items():
            weights[key] = weights.get(key, 0.0) + p_clean * count / clean_total
        erring_weight = 1.0 - p_clean
        for key, count in self.outcome_counts.items():
            weights[key] = weights.get(key, 0.0) + (
                erring_weight * count / erring_total
            )
        return {key: weights[key] for key in sorted(weights)}

    def trajectories_per_second(self) -> float:
        """Monte-Carlo throughput."""
        if self.elapsed_seconds <= 0.0:
            return float("inf")
        return self.completed_trajectories / self.elapsed_seconds

    def effective_trajectories(self) -> float:
        """Naive-trajectory equivalent of the accumulated sample budget.

        A stratified run of ``M`` erring samples carries the Hoeffding
        guarantee of ``M / (1 - p_clean)^2`` naive trajectories (the
        half-width shrinks by ``1 - p_clean`` at equal count); unstratified
        runs return ``completed_trajectories`` unchanged.
        """
        p_clean = self.strata.get("p_clean") if self.strata else None
        if p_clean is None or p_clean >= 1.0:
            return float(self.completed_trajectories)
        return self.completed_trajectories / (1.0 - p_clean) ** 2

    def summary(self) -> str:
        """Multi-line human-readable report."""
        if self.method == "exact":
            lines = [
                f"circuit: {self.circuit_name} ({self.backend_kind} backend, "
                f"exact density-matrix method)",
                f"elapsed: {self.elapsed_seconds:.3f} s",
            ]
        else:
            lines = [
                f"circuit: {self.circuit_name} ({self.backend_kind} backend, "
                f"{self.workers} worker(s))",
                f"trajectories: {self.completed_trajectories}/{self.requested_trajectories}"
                + (" [TIMED OUT]" if self.timed_out else ""),
                f"elapsed: {self.elapsed_seconds:.3f} s "
                f"({self.trajectories_per_second():.1f} traj/s"
                + (f", {self.cpu_seconds:.3f} cpu-s" if self.cpu_seconds else "")
                + ")",
                f"errors fired: {self.errors_fired}",
            ]
            if self.strata:
                lines.append(
                    f"stratified: p_clean={self.strata.get('p_clean', 0.0):.6f}, "
                    f"{int(self.strata.get('erring_sampled', 0))} erring sampled "
                    f"({int(self.strata.get('rejected_clean', 0))} clean rejected), "
                    f"~{self.effective_trajectories():.0f} effective trajectories"
                )
        if self.peak_nodes:
            lines.append(f"peak DD nodes: {self.peak_nodes}")
        for name, estimate in sorted(self.estimates.items()):
            if estimate.exact:
                lines.append(f"  {name}: {estimate.mean:.6f} (exact, halfwidth 0)")
                continue
            low, high = estimate.confidence_interval()
            lines.append(
                f"  {name}: {estimate.mean:.6f} "
                f"(95% Hoeffding [{low:.6f}, {high:.6f}], se {estimate.std_error:.2e})"
            )
        if self.outcome_counts:
            top = sorted(self.outcome_counts.items(), key=lambda kv: -kv[1])[:8]
            lines.append("  top outcomes: " + ", ".join(f"{k}: {v}" for k, v in top))
        return "\n".join(lines)
