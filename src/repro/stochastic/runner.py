"""The Monte-Carlo engine: repeated noisy trajectories, optionally concurrent.

This module implements the paper's two key ideas (Section IV-A):

1. each *individual* simulation run executes on a decision-diagram backend
   (or, for baseline comparison, the dense state-vector backend), and
2. *independent* runs are distributed across worker processes — concurrency
   across runs rather than within the matrix-vector multiplication
   (Section IV-C).  Python processes are used because DD manipulation is
   CPU-bound and the GIL prevents thread-level speed-up, mirroring the
   paper's observation that decision diagrams "can hardly exploit
   concurrency" internally.

Entry points: :func:`simulate_stochastic` (one call) or
:class:`StochasticSimulator` (reusable, keeps a warm DD package between
calls).  Every trajectory gets an independent deterministic RNG derived
from the master seed, so results are reproducible for any worker count —
trajectory ``i`` uses the same seed whether it runs serially or on worker 3.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.operations import MeasureOperation
from ..errors import NumericalDriftError
from ..faults.inject import get_injector
from ..noise.model import NoiseModel
from ..noise.stochastic import StochasticErrorApplier
from ..obs import profile as _profile
from ..obs.context import TraceContext, job_trace_context
from ..obs.metrics import MetricsRegistry, TIME_BUCKETS, delta_snapshots, merge_snapshots
from ..simulators.base import execute_circuit, execute_plan
from ..simulators.ddsim import DDBackend
from ..simulators.gateplan import compile_plan
from ..simulators.statevector import StatevectorBackend
from .prefix import compile_prefix_plan, prefix_sharing_enabled
from .properties import IdealFidelity, PropertySpec, StateFidelity
from .results import PropertyEstimate, StochasticResult
from .strata import StrataPlan, stratified_enabled

__all__ = [
    "StochasticSimulator",
    "simulate_stochastic",
    "run_trajectory_span",
    "BACKEND_KINDS",
    "NORM_GUARD_ENV",
]

BACKEND_KINDS = ("dd", "statevector")

#: Stride between per-trajectory seeds; any constant works, a large odd
#: value keeps derived seeds far apart in the Mersenne sequence space.
_SEED_STRIDE = 0x9E3779B97F4A7C15

#: Salt decoupling the clean-stratum outcome-sampling rng from the erring
#: trajectory's own rng under stratified sampling (splitmix64's mixer
#: constant; any fixed value distinct from the seed strides works).
_CLEAN_SAMPLE_SALT = 0x94D049BB133111EB

#: Environment override for the numerical guard: ``raise`` (default),
#: ``renorm`` (rescale and count ``faults.recovered.renorm``), or ``off``;
#: an optional ``:<tolerance>`` suffix overrides the drift tolerance, e.g.
#: ``REPRO_NORM_GUARD=renorm:1e-9``.  The environment is the only channel
#: that reaches forked worker processes without touching the job spec (and
#: thus the content-addressed job key).
NORM_GUARD_ENV = "REPRO_NORM_GUARD"

#: Allowed |norm² − 1| before the guard treats the state as drifted.  The
#: DD package's sum-of-squares normalisation keeps healthy states at 1.0
#: to within a few ulp, so anything past this is a real defect.
_DEFAULT_NORM_TOLERANCE = 1e-8

_NORM_GUARD_ACTIONS = ("raise", "renorm", "off")


def _resolve_norm_guard(
    on_drift: Optional[str], norm_tolerance: Optional[float]
) -> Tuple[str, float]:
    """Resolve guard (action, tolerance): explicit args beat the env beats
    defaults."""
    env_action: Optional[str] = None
    env_tolerance: Optional[float] = None
    raw = os.environ.get(NORM_GUARD_ENV, "").strip()
    if raw:
        head, _, tail = raw.partition(":")
        if head in _NORM_GUARD_ACTIONS:
            env_action = head
        if tail:
            try:
                env_tolerance = float(tail)
            except ValueError:
                pass
    action = on_drift if on_drift is not None else (env_action or "raise")
    if action not in _NORM_GUARD_ACTIONS:
        raise ValueError(
            f"unknown on_drift action {action!r}; choose from {_NORM_GUARD_ACTIONS}"
        )
    tolerance = norm_tolerance
    if tolerance is None:
        tolerance = env_tolerance if env_tolerance is not None else _DEFAULT_NORM_TOLERANCE
    return action, tolerance


class _EvaluationContext:
    """Per-worker cache of reference-state handles for property evaluation."""

    def __init__(self, circuit: QuantumCircuit, backend_kind: str) -> None:
        self.circuit = circuit
        self.backend_kind = backend_kind
        self._ideal = None
        self._targets: Dict[str, object] = {}
        self._gate_plan = None
        self._prefix_plan = None
        self._prefix_model: Optional[NoiseModel] = None
        self._strata_plan: Optional[StrataPlan] = None

    def gate_plan(self, backend):
        """The circuit compiled into a :class:`~repro.simulators.gateplan.GatePlan`
        (once per worker; gate DDs resolved against the warm package)."""
        if self._gate_plan is None:
            self._gate_plan = compile_plan(
                self.circuit, package=getattr(backend, "package", None)
            )
        return self._gate_plan

    def prefix_plan(self, backend, noise_model: NoiseModel):
        """The prefix-sharing plan for (circuit, noise model), compiled once
        per worker via one instrumented ideal execution."""
        if self._prefix_plan is None or self._prefix_model != noise_model:
            self._prefix_plan = compile_prefix_plan(
                backend, self.gate_plan(backend), noise_model
            )
            self._prefix_model = noise_model
            if self._ideal is None and self._prefix_plan.ideal_final is not None:
                # The plan's pinned ideal edge *is* the reference state the
                # IdealFidelity property wants — identical hash-consed edge,
                # so reusing it is bit-identical to a separate execution.
                self._ideal = backend.package.inc_ref(self._prefix_plan.ideal_final)
        return self._prefix_plan

    def strata_plan(self, prefix_plan) -> StrataPlan:
        """Closed-form stratum weights for the cached prefix plan (computed
        once per worker; invalidated with the prefix plan it wraps)."""
        if self._strata_plan is None or self._strata_plan.prefix_plan is not prefix_plan:
            self._strata_plan = StrataPlan(prefix_plan)
        return self._strata_plan

    def ideal_handle(self, backend):
        """Noiseless output state of the circuit (computed once per worker)."""
        if self._ideal is None:
            if any(isinstance(op, MeasureOperation) for op in self.circuit):
                raise ValueError(
                    "IdealFidelity is undefined for circuits with measurements"
                )
            if self.backend_kind == "dd":
                reference = DDBackend(self.circuit.num_qubits, package=backend.package)
                execute_circuit(reference, self.circuit, random.Random(0))
                self._ideal = reference.snapshot()
            else:
                reference = StatevectorBackend(self.circuit.num_qubits)
                execute_circuit(reference, self.circuit, random.Random(0))
                self._ideal = reference.snapshot()
        return self._ideal

    def target_handle(self, spec: StateFidelity, backend):
        """Backend-native handle for an explicit target state.

        Keyed by the property *name* (the same key the result estimates
        use), so a context that outlives one chunk — the warm worker pool
        re-pickles the specs per chunk — still hits its cache.
        """
        key = spec.name
        handle = self._targets.get(key)
        if handle is None:
            vector = np.asarray(spec.target, dtype=complex)
            if self.backend_kind == "dd":
                handle = backend.package.inc_ref(backend.package.from_state_vector(vector))
            else:
                handle = vector
            self._targets[key] = handle
        return handle


def _make_backend(backend_kind: str, num_qubits: int, package=None):
    if backend_kind == "dd":
        return DDBackend(num_qubits, package=package)
    if backend_kind == "statevector":
        return StatevectorBackend(num_qubits)
    raise ValueError(f"unknown backend kind {backend_kind!r}; choose from {BACKEND_KINDS}")


@dataclass(frozen=True)
class _ChunkSpec:
    """Work order shipped to one worker process (fully picklable)."""

    circuit: QuantumCircuit
    noise_model: NoiseModel
    properties: Tuple[PropertySpec, ...]
    backend_kind: str
    first_trajectory: int
    num_trajectories: int
    master_seed: int
    sample_shots: int
    #: Relative budget for a *single-chunk* (serial) run; parallel chunks
    #: instead share one absolute monotonic deadline (see ``run_trajectory_span``).
    timeout: Optional[float]
    #: Span context for cross-process trace correlation (never part of any
    #: job key — purely observational; see :mod:`repro.obs.context`).
    trace: Optional[TraceContext] = None


def run_trajectory_span(
    circuit: QuantumCircuit,
    noise_model: NoiseModel,
    properties: Sequence[PropertySpec],
    backend_kind: str,
    first_trajectory: int,
    num_trajectories: int,
    master_seed: int,
    sample_shots: int = 0,
    timeout: Optional[float] = None,
    backend=None,
    context: Optional[_EvaluationContext] = None,
    deadline: Optional[float] = None,
    on_drift: Optional[str] = None,
    norm_tolerance: Optional[float] = None,
    trace: Optional[TraceContext] = None,
) -> StochasticResult:
    """Execute trajectories ``first .. first + num - 1`` and aggregate them.

    This is the sharding primitive shared by the in-process runner and the
    persistent worker pool (``repro.service``): seeds are derived from the
    absolute trajectory index, so *any* partition of ``range(M)`` into spans
    produces the same per-trajectory values.  ``backend`` and ``context``
    may be passed in warm (a worker keeps them between chunks of the same
    job, preserving the DD package's unique/compute tables and the cached
    ideal-state snapshot); omitted, fresh ones are built.

    ``timeout`` is a budget relative to span start; ``deadline`` is an
    absolute ``time.monotonic()`` instant shared by every chunk of a job,
    so N parallel chunks cannot each burn the full job budget.  When both
    are given the earlier one wins.  The returned result carries an
    observability snapshot in ``result.metrics`` (trajectory latency and
    property-evaluation histograms, completion/timeout/error counters, and
    — on the DD backend — this span's unique/compute/complex-table deltas).

    On the DD backend every trajectory's state is checked for norm drift
    *before* any property is evaluated against it: ``on_drift="raise"``
    (default) raises a typed :class:`~repro.errors.NumericalDriftError`,
    ``"renorm"`` rescales the state back to unit norm and counts a
    ``faults.recovered.renorm`` metric, ``"off"`` disables the guard.
    ``on_drift`` / ``norm_tolerance`` default from the ``REPRO_NORM_GUARD``
    environment variable (see :data:`NORM_GUARD_ENV`).

    ``trace`` is an optional :class:`~repro.obs.context.TraceContext` naming
    this span inside a job's trace: when given, one ``chunk.execute`` trace
    event carrying the context's ids is appended to ``result.trace_events``,
    which is how worker-side spans stitch into the per-job tree
    (:func:`repro.obs.context.stitch_trace`).  When the ``REPRO_PROFILE``
    environment variable enables profiling, a hot-loop profiler is installed
    for the duration of the span and its payload rides in ``result.profile``.
    """
    profiler = None
    if _profile.ACTIVE is None and _profile.profiling_enabled():
        profiler = _profile.HotLoopProfiler()
        _profile.ACTIVE = profiler
        profiler.push("span")
    span_started = time.monotonic()
    try:
        result = _run_span_body(
            circuit, noise_model, properties, backend_kind, first_trajectory,
            num_trajectories, master_seed, sample_shots, timeout, backend,
            context, deadline, on_drift, norm_tolerance,
        )
    finally:
        if profiler is not None:
            profiler.pop()
            _profile.ACTIVE = None
    if profiler is not None:
        result.profile = profiler.snapshot()
    if trace is not None:
        result.trace_events.append(
            {
                "name": "chunk.execute",
                "start": span_started,
                "duration": time.monotonic() - span_started,
                "attrs": {
                    "pid": os.getpid(),
                    "first_trajectory": first_trajectory,
                    "num_trajectories": num_trajectories,
                    "completed": result.completed_trajectories,
                },
                "trace_id": trace.trace_id,
                "span_id": trace.span_id,
                "parent_id": trace.parent_id,
            }
        )
    return result


def _run_span_body(
    circuit: QuantumCircuit,
    noise_model: NoiseModel,
    properties: Sequence[PropertySpec],
    backend_kind: str,
    first_trajectory: int,
    num_trajectories: int,
    master_seed: int,
    sample_shots: int,
    timeout: Optional[float],
    backend,
    context: Optional[_EvaluationContext],
    deadline: Optional[float],
    on_drift: Optional[str],
    norm_tolerance: Optional[float],
) -> StochasticResult:
    result = StochasticResult(
        circuit_name=circuit.name,
        backend_kind=backend_kind,
        requested_trajectories=num_trajectories,
    )
    for prop in properties:
        result.estimates[prop.name] = PropertyEstimate(prop.name)

    warm = backend is not None
    if backend is None:
        backend = _make_backend(backend_kind, circuit.num_qubits)
    elif backend_kind == "dd":
        # A warm backend starts every span from |0...0> and a fresh peak:
        # the previous job's state width must not leak into this report.
        backend.reset_all()
        backend.reset_peak_nodes()
    else:
        backend = _make_backend(backend_kind, circuit.num_qubits)
    if context is None:
        context = _EvaluationContext(circuit, backend_kind)

    registry = MetricsRegistry()
    trajectory_hist = registry.histogram("trajectory.seconds", TIME_BUCKETS)
    property_hist = registry.histogram("property.eval_seconds", TIME_BUCKETS)
    completed_counter = registry.counter("trajectory.completed")
    evaluation_counter = registry.counter("property.evaluations")
    dd_before = backend.package.metrics_snapshot() if backend_kind == "dd" else None
    guard_action, guard_tolerance = _resolve_norm_guard(on_drift, norm_tolerance)
    injector = get_injector() if backend_kind == "dd" else None
    prof = _profile.ACTIVE

    # Compile-once work hoisted out of the Monte-Carlo loop: the gate plan
    # (per-operation matrices / operator DDs) and — on the DD backend, unless
    # REPRO_PREFIX_SHARING=off — the prefix-sharing plan (one instrumented
    # ideal execution yielding error sites, checkpoints, the shared ideal
    # state).  Both are cached on the context, so warm workers compile once
    # per job, not once per chunk.
    if prof is not None:
        prof.push("<compile>")
    plan_was_cached = context._gate_plan is not None
    gate_plan = context.gate_plan(backend)
    if not plan_was_cached:
        registry.counter("gateplan.compiled").inc(gate_plan.compiled_gates)
    prefix_plan = None
    if backend_kind == "dd" and prefix_sharing_enabled():
        prefix_was_cached = (
            context._prefix_plan is not None and context._prefix_model == noise_model
        )
        prefix_plan = context.prefix_plan(backend, noise_model)
        if not prefix_was_cached:
            registry.counter("prefix.checkpoints").inc(len(prefix_plan.checkpoints))
            if prefix_plan.invalid_interval_override:
                registry.counter("prefix.interval_override_invalid").inc()
    if prof is not None:
        prof.pop()
    prefix_hits = registry.counter("prefix.hits")
    prefix_replays = registry.counter("prefix.replays")
    prefix_replayed_gates = registry.counter("prefix.replayed_gates")
    prefix_materialized = registry.counter("prefix.materialized")

    # Stratified sampling (see repro.stochastic.strata): when a clean
    # stratum exists, weight it analytically from the shared ideal DD and
    # spend every trajectory slot of this span on erring-conditioned runs.
    # Falls back to the plain prefix-shared loop when inactive (no clean
    # stratum, negligible erring mass, REPRO_STRATIFIED=off, or the
    # statevector backend, which has no prefix plan).
    strata_plan = None
    if prefix_plan is not None and stratified_enabled():
        candidate = context.strata_plan(prefix_plan)
        if candidate.active:
            strata_plan = candidate
    strata_rejected_total = 0
    strata_attempts_total = 0
    if strata_plan is not None:
        registry.gauge("strata.p_clean").set(strata_plan.p_clean)
        registry.gauge("strata.variance_ratio").set(
            (1.0 - strata_plan.p_clean) ** 2
        )
        strata_erring = registry.counter("strata.erring_sampled")
        strata_rejected = registry.counter("strata.rejected_clean")
        strata_attempts = registry.counter("strata.attempts")
        if properties:
            # Seed every estimate with the closed-form stratum weight and
            # the clean stratum's analytic value (the same cached fold the
            # prefix engine serves to clean trajectories).
            clean_values = prefix_plan.property_values(backend, properties, context)
            for prop in properties:
                estimate = result.estimates[prop.name]
                estimate.p_clean = strata_plan.p_clean
                estimate.clean_value = clean_values[prop.name]

    def finish_trajectory(current_backend, trajectory, rng, applier, run_result, drift):
        """Post-circuit block shared by the naive, replay, and materialise
        paths — kept as ONE function so the guard/eval/sampling sequence (and
        therefore the rng stream and float order) cannot diverge between them."""
        if backend_kind == "dd":
            if drift is not None:
                current_backend.scale_state(drift.factor)
            if guard_action != "off":
                norm_squared = current_backend.squared_norm()
                if abs(norm_squared - 1.0) > guard_tolerance:
                    if guard_action == "renorm":
                        current_backend.renormalize()
                        registry.counter("faults.recovered.renorm").inc()
                    else:
                        raise NumericalDriftError(
                            f"trajectory {trajectory}: squared norm "
                            f"{norm_squared!r} drifted beyond tolerance "
                            f"{guard_tolerance:g}",
                            trajectory=trajectory,
                            norm_squared=norm_squared,
                            tolerance=guard_tolerance,
                        )
        if properties:
            if prof is not None:
                prof.push("<properties>")
            evaluation_started = time.perf_counter()
            for prop in properties:
                result.estimates[prop.name].add(prop.evaluate(current_backend, run_result, context))
                evaluation_counter.inc()
            property_hist.observe(time.perf_counter() - evaluation_started)
            if prof is not None:
                prof.pop()
        if sample_shots > 0:
            if prof is not None:
                prof.push("<sampling>")
            for outcome, count in current_backend.sample_counts(sample_shots, rng).items():
                result.outcome_counts[outcome] = result.outcome_counts.get(outcome, 0) + count
            if prof is not None:
                prof.pop()
        for kind, count in applier.fired.items():
            result.errors_fired[kind] = result.errors_fired.get(kind, 0) + count
            if count:
                registry.counter(f"errors.fired.{kind}").inc(count)

    started = time.perf_counter()
    if timeout is not None:
        relative_deadline = time.monotonic() + timeout
        deadline = relative_deadline if deadline is None else min(deadline, relative_deadline)

    for index in range(num_trajectories):
        if deadline is not None and time.monotonic() >= deadline:
            result.timed_out = True
            registry.counter("trajectory.timeouts").inc()
            break
        trajectory = first_trajectory + index
        seed = (master_seed + trajectory * _SEED_STRIDE) & (2**63 - 1)
        trajectory_started = time.perf_counter()
        if prof is not None:
            prof.push("trajectory")
        if strata_plan is not None:
            # Erring stratum: reject clean candidate seeds (rng-only dry
            # runs) until one diverges, then run the accepted seed through
            # the standard checkpoint/replay path.  The search depends only
            # on the stratum index's base seed, so any worker partition
            # reproduces the same trajectories.
            seed, divergence, attempts = strata_plan.find_erring_seed(seed)
            strata_attempts.inc(attempts)
            strata_attempts_total += attempts
            if attempts > 1:
                strata_rejected.inc(attempts - 1)
                strata_rejected_total += attempts - 1
            strata_erring.inc()
            prefix_replays.inc()
            checkpoint_step, checkpoint_state = prefix_plan.checkpoint_for(divergence)
            prefix_replayed_gates.inc(len(gate_plan.steps) - checkpoint_step)
            rng = random.Random(seed)
            applier = StochasticErrorApplier(noise_model, rng)
            prefix_plan.consume_prefix(rng, applier.fired, checkpoint_step)
            backend.load_state(checkpoint_state)
            run_result = execute_plan(
                backend, gate_plan, rng, error_hook=applier, start_step=checkpoint_step
            )
            run_result.applied_gates += prefix_plan.executed_before(checkpoint_step)
            drift = (
                injector.fire("drift", trajectory=trajectory)
                if injector is not None
                else None
            )
            finish_trajectory(backend, trajectory, rng, applier, run_result, drift)
            if sample_shots > 0:
                # One matching clean-stratum draw per erring trajectory,
                # from the shared ideal DD with a decoupled rng, so
                # outcome_distribution() can recombine both pools.
                clean_rng = random.Random((seed ^ _CLEAN_SAMPLE_SALT) & (2**63 - 1))
                counts = backend.package.sample_counts(
                    prefix_plan.ideal_final, sample_shots, clean_rng
                )
                for outcome, count in counts.items():
                    result.clean_outcome_counts[outcome] = (
                        result.clean_outcome_counts.get(outcome, 0) + count
                    )
        elif prefix_plan is not None:
            rng = random.Random(seed)
            applier = StochasticErrorApplier(noise_model, rng)
            divergence = prefix_plan.first_divergence(rng, applier.fired)
            if divergence is None:
                # Clean trajectory: its final state IS the shared ideal DD.
                prefix_hits.inc()
                drift = (
                    injector.fire("drift", trajectory=trajectory)
                    if injector is not None
                    else None
                )
                ideal_drifted = (
                    abs(prefix_plan.ideal_norm_squared - 1.0) > guard_tolerance
                )
                if drift is not None or (guard_action != "off" and ideal_drifted):
                    # Rare slow path: something (an injected drift fault, a
                    # numerically drifted ideal state under an active guard)
                    # makes this trajectory's state differ from the cached
                    # evaluation — materialise it and run the normal block.
                    prefix_materialized.inc()
                    backend.load_state(prefix_plan.ideal_final)
                    finish_trajectory(
                        backend, trajectory, rng, applier,
                        prefix_plan.ideal_run_result, drift,
                    )
                else:
                    if properties:
                        evaluation_started = time.perf_counter()
                        values = prefix_plan.property_values(backend, properties, context)
                        for prop in properties:
                            result.estimates[prop.name].add(values[prop.name])
                            evaluation_counter.inc()
                        property_hist.observe(time.perf_counter() - evaluation_started)
                    if sample_shots > 0:
                        counts = backend.package.sample_counts(
                            prefix_plan.ideal_final, sample_shots, rng
                        )
                        for outcome, count in counts.items():
                            result.outcome_counts[outcome] = (
                                result.outcome_counts.get(outcome, 0) + count
                            )
                    for kind, count in applier.fired.items():
                        result.errors_fired[kind] = result.errors_fired.get(kind, 0) + count
                        if count:
                            registry.counter(f"errors.fired.{kind}").inc(count)
            else:
                # Erring trajectory: rewind the rng to the nearest ideal
                # checkpoint and replay only the suffix with the real applier.
                prefix_replays.inc()
                checkpoint_step, checkpoint_state = prefix_plan.checkpoint_for(divergence)
                prefix_replayed_gates.inc(len(gate_plan.steps) - checkpoint_step)
                rng = random.Random(seed)
                applier = StochasticErrorApplier(noise_model, rng)
                prefix_plan.consume_prefix(rng, applier.fired, checkpoint_step)
                backend.load_state(checkpoint_state)
                run_result = execute_plan(
                    backend, gate_plan, rng, error_hook=applier, start_step=checkpoint_step
                )
                run_result.applied_gates += prefix_plan.executed_before(checkpoint_step)
                drift = (
                    injector.fire("drift", trajectory=trajectory)
                    if injector is not None
                    else None
                )
                finish_trajectory(backend, trajectory, rng, applier, run_result, drift)
        else:
            rng = random.Random(seed)
            applier = StochasticErrorApplier(noise_model, rng)
            if index > 0:
                if backend_kind == "dd":
                    backend.reset_all()
                else:
                    backend = _make_backend(backend_kind, circuit.num_qubits)
            run_result = execute_plan(backend, gate_plan, rng, error_hook=applier)
            drift = None
            if injector is not None:
                drift = injector.fire("drift", trajectory=trajectory)
            finish_trajectory(backend, trajectory, rng, applier, run_result, drift)
        if prof is not None:
            prof.pop()
        trajectory_hist.observe(time.perf_counter() - trajectory_started)
        result.completed_trajectories += 1
        completed_counter.inc()

    if strata_plan is not None:
        result.strata = {
            "p_clean": strata_plan.p_clean,
            "erring_sampled": result.completed_trajectories,
            "rejected_clean": strata_rejected_total,
            "attempts": strata_attempts_total,
        }

    if backend_kind == "dd":
        # Span boundary: force one full sweep regardless of the dead-node
        # watermark so a span never hands accumulated garbage to its
        # successor (the per-gate calls inside the loop are paced).
        backend.package.garbage_collect(force=True)
        result.peak_nodes = backend.peak_nodes
        dd_delta = delta_snapshots(backend.package.metrics_snapshot(), dd_before)
        result.metrics = merge_snapshots(registry.snapshot(), dd_delta)
    else:
        result.metrics = registry.snapshot()
    result.elapsed_seconds = time.perf_counter() - started
    result.cpu_seconds = result.elapsed_seconds
    return result


def _run_chunk(spec: _ChunkSpec) -> StochasticResult:
    """Execute one chunk of trajectories (runs inside a worker process)."""
    return run_trajectory_span(
        spec.circuit,
        spec.noise_model,
        spec.properties,
        spec.backend_kind,
        spec.first_trajectory,
        spec.num_trajectories,
        spec.master_seed,
        sample_shots=spec.sample_shots,
        timeout=spec.timeout,
        trace=spec.trace,
    )


class StochasticSimulator:
    """Stochastic (Monte-Carlo) noisy-circuit simulator.

    Parameters
    ----------
    backend:
        ``"dd"`` (the proposed decision-diagram engine) or ``"statevector"``
        (the dense array baseline standing in for Qiskit/QLM).
    workers:
        Number of worker processes for concurrent trajectory generation;
        1 runs everything in-process.

    With ``workers > 1`` the simulator is a thin client of
    :class:`repro.service.Scheduler`: the first ``run()`` call spins up a
    persistent pool of worker processes (each keeping its DD package and
    evaluation context warm between chunks) and subsequent calls reuse it.
    Call :meth:`close` (or use the instance as a context manager) to tear
    the pool down eagerly; otherwise it is reclaimed at interpreter exit.
    """

    def __init__(self, backend: str = "dd", workers: int = 1) -> None:
        if backend not in BACKEND_KINDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKEND_KINDS}")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.backend_kind = backend
        self.workers = workers
        self._scheduler = None

    def close(self) -> None:
        """Shut down the warm worker pool (no-op if never started)."""
        if self._scheduler is not None:
            self._scheduler.shutdown()
            self._scheduler = None

    def trace_events(self) -> list:
        """Scheduler trace events from parallel runs (empty for serial)."""
        if self._scheduler is None:
            return []
        return self._scheduler.trace_events()

    def __enter__(self) -> "StochasticSimulator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _get_scheduler(self):
        """The lazily-created persistent scheduler backing parallel runs."""
        if self._scheduler is None:
            from ..service.scheduler import Scheduler
            from ..service.store import ResultStore

            # Memory-only store: the simulator API must not write to disk
            # behind the caller's back, but identical repeat submissions
            # within a session still short-circuit to the cached result.
            self._scheduler = Scheduler(
                workers=self.workers, store=ResultStore(directory=None)
            )
        return self._scheduler

    def run(
        self,
        circuit: QuantumCircuit,
        noise_model: Optional[NoiseModel] = None,
        properties: Sequence[PropertySpec] = (),
        trajectories: int = 1000,
        seed: int = 0,
        sample_shots: int = 1,
        timeout: Optional[float] = None,
    ) -> StochasticResult:
        """Run ``trajectories`` independent noisy simulations and aggregate.

        Parameters
        ----------
        circuit:
            The circuit to simulate.
        noise_model:
            Error rates; defaults to the paper's evaluation configuration.
        properties:
            Quadratic property specifications to estimate (Section III).
        trajectories:
            Monte-Carlo sample count ``M`` (the paper uses 30 000; size via
            :func:`~repro.stochastic.properties.hoeffding_samples`).
        seed:
            Master seed; trajectory ``i`` always gets the same derived RNG
            regardless of worker count, so results are reproducible.
        sample_shots:
            Final-state measurement samples drawn per trajectory for the
            outcome histogram (0 disables sampling).
        timeout:
            Wall-clock budget in seconds; exceeded runs return partial
            results flagged ``timed_out`` (the paper's "> 1 h" entries).
        """
        if noise_model is None:
            noise_model = NoiseModel.paper_defaults()
        if trajectories < 1:
            raise ValueError("trajectories must be >= 1")
        properties = tuple(properties)

        started = time.perf_counter()
        span_started = time.monotonic()
        if self.workers == 1:
            # Serial runs still get a stitched trace: a deterministic root
            # context derived from the run parameters, with the single chunk
            # as its only child (mirroring the scheduler's per-job tree).
            root = job_trace_context(f"{circuit.name}:{seed}:{trajectories}")
            aggregate = _run_chunk(
                _ChunkSpec(
                    circuit, noise_model, properties, self.backend_kind,
                    0, trajectories, seed, sample_shots, timeout,
                    trace=root.child("chunk", 0, 0),
                )
            )
            aggregate.trace_events.append(
                {
                    "name": "job.run",
                    "start": span_started,
                    "duration": time.monotonic() - span_started,
                    "attrs": {"circuit": circuit.name, "workers": 1},
                    "trace_id": root.trace_id,
                    "span_id": root.span_id,
                    "parent_id": root.parent_id,
                }
            )
        else:
            aggregate = self._run_parallel(
                circuit, noise_model, properties, trajectories, seed, sample_shots, timeout
            )
        aggregate.requested_trajectories = trajectories
        aggregate.elapsed_seconds = time.perf_counter() - started
        aggregate.workers = self.workers
        return aggregate

    def _run_parallel(
        self,
        circuit: QuantumCircuit,
        noise_model: NoiseModel,
        properties: Tuple[PropertySpec, ...],
        trajectories: int,
        seed: int,
        sample_shots: int,
        timeout: Optional[float],
    ) -> StochasticResult:
        from ..service.job import JobSpec
        from ..service.scheduler import JobFailedError

        spec = JobSpec(
            circuit=circuit,
            noise_model=noise_model,
            properties=properties,
            trajectories=trajectories,
            seed=seed,
            backend_kind=self.backend_kind,
            sample_shots=sample_shots,
            timeout=timeout,
        )
        scheduler = self._get_scheduler()
        scheduler_before = scheduler.metrics_snapshot()
        try:
            result = scheduler.run(spec)
        except JobFailedError as error:
            if "refusing" in str(error):
                # Infeasible-backend refusals keep their historical type so
                # the harness can report them as the paper's ">1 h" cells.
                raise ValueError(str(error)) from error
            raise
        # Fold in what the scheduler itself did for this job (retries,
        # respawns, checkpoint writes, store traffic).  The delta keeps a
        # warm scheduler from re-reporting earlier jobs' counters.
        scheduler_delta = delta_snapshots(scheduler.metrics_snapshot(), scheduler_before)
        result.metrics = merge_snapshots(result.metrics, scheduler_delta)
        return result


def simulate_stochastic(
    circuit: QuantumCircuit,
    noise_model: Optional[NoiseModel] = None,
    properties: Sequence[PropertySpec] = (),
    trajectories: int = 1000,
    backend: str = "dd",
    workers: int = 1,
    seed: int = 0,
    sample_shots: int = 1,
    timeout: Optional[float] = None,
) -> StochasticResult:
    """One-call wrapper around :class:`StochasticSimulator`."""
    simulator = StochasticSimulator(backend=backend, workers=workers)
    return simulator.run(
        circuit,
        noise_model=noise_model,
        properties=properties,
        trajectories=trajectories,
        seed=seed,
        sample_shots=sample_shots,
        timeout=timeout,
    )
