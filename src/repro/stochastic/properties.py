"""Quadratic property estimators and the Theorem 1 sample-size bound.

The paper's estimation targets are quadratic functions of the state,
``o_l = |<omega_l | psi>|^2`` (Section III, Eq. 1): basis-state outcome
probabilities, fidelities with reference states, and derived quantities.
Every property below is a picklable *specification* evaluated against a
backend after each trajectory; the Monte-Carlo average of the per-trajectory
values estimates the ensemble property.

Theorem 1 (Hoeffding + union bound) gives the number of trajectories needed
to estimate ``L`` such properties to accuracy ``epsilon`` with confidence
``1 - delta``.  Note a discrepancy in the paper: the theorem states
``M = log(2L/delta) / (2 epsilon)^2``, but the standard Hoeffding bound for
[0, 1]-valued samples requires ``M = log(2L/delta) / (2 epsilon^2)`` — a
factor 2 more.  (The paper's own numeric example — M = 30 000 for L = 1000,
epsilon = 0.01, delta = 0.05 — matches its printed formula, 26 492.)  Both
conventions are provided; the conservative one is the default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "hoeffding_samples",
    "hoeffding_epsilon",
    "BasisProbability",
    "StateFidelity",
    "IdealFidelity",
    "ExpectationZ",
    "PauliExpectation",
    "ClassicalOutcome",
    "PropertySpec",
]


def hoeffding_samples(
    num_properties: int,
    epsilon: float,
    delta: float,
    paper_convention: bool = False,
) -> int:
    """Samples sufficient for ``max_l |o_hat_l - o_l| <= epsilon`` w.p. >= 1 - delta.

    Parameters
    ----------
    num_properties:
        Number ``L`` of simultaneously estimated quadratic properties.
    epsilon:
        Target accuracy in (0, 1).
    delta:
        Failure probability in (0, 1).
    paper_convention:
        Use the paper's printed ``(2 epsilon)^2`` denominator instead of
        the standard Hoeffding ``2 epsilon^2`` (which is twice as many
        samples and is the rigorous bound for [0, 1]-valued estimates).
    """
    if num_properties < 1:
        raise ValueError("num_properties must be >= 1")
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must lie in (0, 1)")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie in (0, 1)")
    numerator = math.log(2.0 * num_properties / delta)
    denominator = (2.0 * epsilon) ** 2 if paper_convention else 2.0 * epsilon**2
    return int(math.ceil(numerator / denominator))


def hoeffding_epsilon(
    num_properties: int,
    num_samples: int,
    delta: float,
    paper_convention: bool = False,
) -> float:
    """Accuracy guaranteed by ``num_samples`` trajectories (Theorem 1 inverted)."""
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    numerator = math.log(2.0 * num_properties / delta)
    if paper_convention:
        return 0.5 * math.sqrt(numerator / num_samples)
    return math.sqrt(numerator / (2.0 * num_samples))


@dataclass(frozen=True)
class BasisProbability:
    """Outcome probability of one computational basis state.

    ``bits`` is the basis label with qubit 0 (most significant) leftmost,
    e.g. ``"000"`` for |000>.
    """

    bits: str

    def __post_init__(self) -> None:
        if not self.bits or any(b not in "01" for b in self.bits):
            raise ValueError(f"invalid basis label {self.bits!r}")

    @property
    def name(self) -> str:
        return f"P(|{self.bits}>)"

    def evaluate(self, backend, run_result, context) -> float:
        return backend.probability_of_basis([int(b) for b in self.bits])


@dataclass(frozen=True)
class StateFidelity:
    """Fidelity ``|<target|psi>|^2`` with an explicit pure reference state.

    The target is stored as a dense vector (picklable); workers convert it
    into their backend's native representation once.
    """

    target: Tuple[complex, ...]
    label: str = "target"

    @classmethod
    def from_vector(cls, vector: Sequence[complex], label: str = "target") -> "StateFidelity":
        array = np.asarray(vector, dtype=complex).reshape(-1)
        norm = np.linalg.norm(array)
        if norm == 0.0:
            raise ValueError("target state must be non-zero")
        array = array / norm
        return cls(tuple(complex(x) for x in array), label)

    @property
    def name(self) -> str:
        return f"F({self.label})"

    def evaluate(self, backend, run_result, context) -> float:
        handle = context.target_handle(self, backend)
        return backend.fidelity(handle)


@dataclass(frozen=True)
class IdealFidelity:
    """Fidelity with the circuit's noiseless output state.

    Each worker simulates the circuit once without noise (on its own
    backend) and reuses that snapshot for every trajectory.  Only valid for
    measurement-free circuits — the ideal output of a circuit with
    mid-circuit measurements is itself random.
    """

    @property
    def name(self) -> str:
        return "F(ideal)"

    def evaluate(self, backend, run_result, context) -> float:
        handle = context.ideal_handle(backend)
        return backend.fidelity(handle)


@dataclass(frozen=True)
class ExpectationZ:
    """Pauli-Z expectation value on one qubit.

    Derived from the quadratic marginal ``p_1``: ``<Z> = 1 - 2 p_1``.  Note
    the range is [-1, 1]; when budgeting samples through Theorem 1 treat it
    as two properties (or halve epsilon).
    """

    qubit: int

    @property
    def name(self) -> str:
        return f"<Z_{self.qubit}>"

    def evaluate(self, backend, run_result, context) -> float:
        return 1.0 - 2.0 * backend.probability_of_one(self.qubit)


@dataclass(frozen=True)
class PauliExpectation:
    """Expectation value of a multi-qubit Pauli string, e.g. ``"ZZI"``.

    One letter per qubit, qubit 0 leftmost.  Values lie in [-1, 1]; when
    budgeting samples through Theorem 1 use ``value_range = 2``.
    """

    pauli: str

    def __post_init__(self) -> None:
        if not self.pauli or any(c not in "IXYZ" for c in self.pauli.upper()):
            raise ValueError(f"invalid Pauli string {self.pauli!r}")

    @property
    def name(self) -> str:
        return f"<{self.pauli.upper()}>"

    def evaluate(self, backend, run_result, context) -> float:
        return backend.pauli_expectation(self.pauli.upper())


@dataclass(frozen=True)
class ClassicalOutcome:
    """Probability that the classical register equals ``value``.

    Estimated from the per-trajectory indicator — the natural property for
    circuits that measure (where collapse randomness is part of the
    ensemble, e.g. the counterfeit-coin readout).
    """

    value: int

    @property
    def name(self) -> str:
        return f"P(c={self.value})"

    def evaluate(self, backend, run_result, context) -> float:
        return 1.0 if run_result.classical_value() == self.value else 0.0


PropertySpec = Union[
    BasisProbability,
    StateFidelity,
    IdealFidelity,
    ExpectationZ,
    PauliExpectation,
    ClassicalOutcome,
]
