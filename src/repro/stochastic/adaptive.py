"""Adaptive Monte-Carlo sampling: run until a target precision is reached.

Theorem 1 gives an *a-priori* trajectory budget; in practice one often
prefers the dual formulation — keep sampling until the Hoeffding
confidence half-width of every tracked property drops below a target
``epsilon``.  :func:`run_until_precision` implements that loop on top of
the batch runner, growing the sample geometrically so the scheduling
overhead stays logarithmic, and re-budgeting the per-batch confidence via
a union bound over batches (so the final guarantee is honest despite the
data-dependent stopping).

The a-priori bound is also used as a hard ceiling: adaptivity can only
*save* trajectories relative to Theorem 1, never exceed it.

Two refinements compose with the loop:

* ``bound`` selects the concentration inequality — ``"hoeffding"``
  (default, range-based), ``"bernstein"`` (empirical-Bernstein, adapts to
  the observed variance), or ``"best"`` (minimum of both at ``delta/2``
  each, still a valid simultaneous guarantee by the union bound).
* Under stratified sampling (:mod:`repro.stochastic.strata`, the default
  on the DD backend) the first batch reveals the closed-form ``p_clean``,
  and the Theorem-1 ceiling is re-budgeted to the erring stratum:
  ``(1 - p_clean)^2`` times the naive budget carries the same a-priori
  epsilon guarantee, so the hard cap — not just the adaptive stop —
  shrinks quadratically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..circuits.circuit import QuantumCircuit
from ..noise.model import NoiseModel
from .properties import PropertySpec, hoeffding_samples
from .results import StochasticResult
from .runner import StochasticSimulator
from .strata import stratified_samples

__all__ = ["AdaptiveRun", "run_until_precision"]


@dataclass
class AdaptiveRun:
    """Result of an adaptive sampling session."""

    result: StochasticResult
    epsilon_target: float
    epsilon_achieved: float
    batches: int
    ceiling: int

    @property
    def trajectories(self) -> int:
        """Total trajectories consumed."""
        return self.result.completed_trajectories

    def savings_vs_theorem1(self) -> float:
        """Fraction of the a-priori budget left unspent (0 = none)."""
        if self.ceiling == 0:
            return 0.0
        return max(0.0, 1.0 - self.trajectories / self.ceiling)


def _worst_halfwidth(result: StochasticResult, delta: float, bound: str) -> float:
    """Largest half-width over all tracked properties under ``bound``."""
    return max(
        estimate.halfwidth(delta, bound=bound)
        for estimate in result.estimates.values()
    )


def _stratified_p_clean(result: StochasticResult) -> Optional[float]:
    """The run's closed-form clean-stratum weight, or ``None`` when any
    estimate is unstratified (all carry the same value when present)."""
    p_clean: Optional[float] = None
    for estimate in result.estimates.values():
        if estimate.p_clean is None:
            return None
        p_clean = estimate.p_clean
    return p_clean


def run_until_precision(
    circuit: QuantumCircuit,
    properties: Sequence[PropertySpec],
    epsilon: float,
    delta: float = 0.05,
    noise_model: Optional[NoiseModel] = None,
    backend: str = "dd",
    workers: int = 1,
    seed: int = 0,
    initial_batch: int = 128,
    growth_factor: float = 2.0,
    timeout: Optional[float] = None,
    bound: str = "hoeffding",
) -> AdaptiveRun:
    """Sample until every property's confidence half-width is <= ``epsilon``.

    Parameters mirror :func:`~repro.stochastic.runner.simulate_stochastic`;
    additionally:

    initial_batch:
        Size of the first batch (doubled per round by ``growth_factor``).
    growth_factor:
        Geometric batch growth (> 1).
    bound:
        Concentration inequality for the stopping rule: ``"hoeffding"``
        (default), ``"bernstein"`` (variance-adaptive empirical Bernstein
        — much tighter when the per-sample variance is small), or
        ``"best"`` (minimum of both at ``delta/2`` each).

    The confidence budget ``delta`` is split over the worst-case number of
    batches (a union bound), so the final intervals hold simultaneously at
    level ``1 - delta`` despite data-dependent stopping.  When stratified
    sampling is active the first batch's closed-form ``p_clean`` shrinks
    the Theorem-1 ceiling to ``(1 - p_clean)^2`` of the naive budget — the
    erring-stratum count carrying the same a-priori guarantee.
    """
    if not properties:
        raise ValueError("adaptive sampling needs at least one property")
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must lie in (0, 1)")
    if growth_factor <= 1.0:
        raise ValueError("growth_factor must exceed 1")
    if initial_batch < 1:
        raise ValueError("initial_batch must be >= 1")
    if bound not in ("hoeffding", "bernstein", "best"):
        raise ValueError(
            f"unknown concentration bound: {bound!r}; "
            f"choose from ('hoeffding', 'bernstein', 'best')"
        )

    naive_ceiling = hoeffding_samples(len(properties), epsilon, delta)
    ceiling = naive_ceiling
    max_batches = max(
        1, int(math.ceil(math.log(max(ceiling / initial_batch, 1.0), growth_factor))) + 1
    )
    per_round_delta = delta / (len(properties) * max_batches)

    simulator = StochasticSimulator(backend=backend, workers=workers)
    aggregate: Optional[StochasticResult] = None
    next_index = 0
    batch_size = initial_batch
    batches = 0
    ceiling_rebudgeted = False

    while True:
        remaining_ceiling = ceiling - next_index
        if remaining_ceiling <= 0:
            break
        size = min(batch_size, remaining_ceiling)
        # Trajectory indices continue across batches: the runner derives
        # per-trajectory seeds from the index, so an adaptive session is
        # bit-identical to one big batch of the same total size.
        partial = simulator.run(
            circuit,
            noise_model=noise_model,
            properties=properties,
            trajectories=next_index + size,
            seed=seed,
            sample_shots=0,
            timeout=timeout,
        ) if aggregate is None else None
        if partial is not None:
            aggregate = partial
        else:
            # Re-run with the larger total; estimates are cumulative because
            # trajectory seeds are index-derived.  To avoid recomputing old
            # work we instead run only the new slice through a chunk.
            from .runner import _ChunkSpec, _run_chunk

            chunk = _run_chunk(
                _ChunkSpec(
                    circuit,
                    noise_model or NoiseModel.paper_defaults(),
                    tuple(properties),
                    backend,
                    next_index,
                    size,
                    seed,
                    0,
                    timeout,
                )
            )
            aggregate.merge(chunk)
        next_index += size
        batches += 1
        batch_size = int(math.ceil(batch_size * growth_factor))
        if not ceiling_rebudgeted:
            # First contact with the data: under stratified sampling every
            # estimate carries the closed-form p_clean, and the a-priori
            # budget re-targets the erring stratum — (1 - p_clean)^2 times
            # the naive ceiling gives the same epsilon guarantee.
            ceiling_rebudgeted = True
            p_clean = _stratified_p_clean(aggregate)
            if p_clean is not None:
                # Clamped below by what the first batch already spent, so
                # the reported ceiling stays a true upper bound on spend.
                ceiling = min(
                    ceiling,
                    max(next_index, stratified_samples(naive_ceiling, p_clean)),
                )
        achieved = _worst_halfwidth(aggregate, per_round_delta, bound)
        if achieved <= epsilon:
            break
        if aggregate.timed_out:
            break

    assert aggregate is not None
    achieved = _worst_halfwidth(aggregate, per_round_delta, bound)
    if next_index >= ceiling and not aggregate.timed_out:
        # The full Theorem 1 budget ran: its a-priori guarantee of
        # ``epsilon`` at level ``delta`` applies directly, without the
        # union-bound inflation of the adaptive stopping rule.
        achieved = min(achieved, epsilon)
    return AdaptiveRun(
        result=aggregate,
        epsilon_target=epsilon,
        epsilon_achieved=achieved,
        batches=batches,
        ceiling=ceiling,
    )
