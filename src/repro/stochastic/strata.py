"""Stratified trajectory sampling: spend the whole budget on erring runs.

Prefix sharing (PR 4, :mod:`repro.stochastic.prefix`) already serves every
clean trajectory from one shared ideal-state DD — but each clean run still
consumes a slot of the Theorem-1 sample budget only to fold in the *same*
cached property values one more time.  This module goes further, exploiting
the same precondition the rng dry-run rests on: every error decision along
the ideal prefix is a state-independent Bernoulli draw (amplitude damping's
state dependence enters only through the precomputed ideal P(1)), so the
probability of the zero-error stratum is a **closed form** over the
compiled :class:`~repro.stochastic.prefix.PrefixPlan`'s noise sites:

    p_clean = prod over sites of prod over draws of (1 - p_fire)

with per-draw no-fire factors mirroring
:func:`~repro.noise.stochastic.dry_run_site` exactly — depolarization's
identity branch survives (factor ``1 - 3/4 p``), event-mode damping fires
with ``p * P_ideal(1)``, phase flip with ``p``, crosstalk's identity pair
with ``1 - 15/16 p``.  The ``"exact"`` damping unravelling diverges
unconditionally on any damping slot (``p_clean = 0``), and circuits that
measure or reset have no clean stratum at all.

The clean stratum's property contribution is then weighted *analytically*
(its per-trajectory values are the constants cached on the prefix plan —
zero sampling variance), and the entire trajectory budget is spent on runs
conditioned on >= 1 fired error, combined by the unbiased post-stratified
estimator

    o_hat = p_clean * mu_clean + (1 - p_clean) * mean(erring samples).

Erring trajectories are drawn from exactly the conditional distribution the
dry-run induces, by deterministic rejection over attempt-derived seeds
(:meth:`StrataPlan.find_erring_seed`): per stratum index, candidate seeds
are tried in a fixed order until one's dry-run diverges, so any partition
of the budget across workers/chunks reproduces the same trajectories — the
same determinism contract the naive index-derived seeds give.  The accepted
seed then rewinds through the existing checkpoint/replay machinery
unchanged.

Because conditioning scales the estimator's sampling error by
``(1 - p_clean)``, a budget of ``M`` erring runs carries the Hoeffding
guarantee of ``M / (1 - p_clean)^2`` naive trajectories — the "effective
trajectories" the benchmarks report.  ``REPRO_STRATIFIED=off`` is the
escape hatch back to the bit-identical naive/prefix-shared estimator.
"""

from __future__ import annotations

import os
import random
from typing import List, Optional, Tuple

from ..noise.stochastic import NoiseSite
from .prefix import PrefixPlan

__all__ = [
    "StrataPlan",
    "site_survival_probability",
    "stratified_enabled",
    "stratified_samples",
    "STRATIFIED_ENV",
]

#: Escape hatch: set to ``off`` (or ``0``/``false``/``no``) to disable
#: stratified sampling and reproduce the naive unbiased estimator
#: bit-identically.  Like ``REPRO_PREFIX_SHARING``, the environment is the
#: only control channel that reaches forked workers without touching the
#: content-addressed job key.
STRATIFIED_ENV = "REPRO_STRATIFIED"

#: Stratification deactivates when the erring stratum's probability mass
#: falls below this: the expected rejection-sampling cost per erring
#: trajectory is ``1 / (1 - p_clean)`` dry-runs, and below ~1e-6 the
#: erring stratum contributes less than any practical epsilon target
#: anyway, so the naive (prefix-shared) loop is the better engine.
MIN_ERRING_MASS = 1e-6

#: Hard ceiling on rejection attempts per stratum index.  With the
#: ``MIN_ERRING_MASS`` gate the expected attempt count is <= 1e6, so by
#: Chernoff the probability of ever hitting this cap is astronomically
#: small — reaching it means the closed-form ``p_clean`` and the dry-run
#: disagree (a desync bug), which deserves a loud error, not a hang.
_MAX_ATTEMPTS = 100_000_000

#: Stride between successive candidate seeds for one stratum index
#: (xxhash's prime; any large odd constant distinct from the trajectory
#: seed stride works — it only needs to decorrelate attempt streams).
_ATTEMPT_STRIDE = 0xC2B2AE3D27D4EB4F

_SEED_MASK = 2**63 - 1


def stratified_enabled() -> bool:
    """Whether stratified sampling is active (default: on)."""
    raw = os.environ.get(STRATIFIED_ENV, "").strip().lower()
    return raw not in ("off", "0", "false", "no")


def site_survival_probability(site: NoiseSite, exact_damping: bool) -> float:
    """P(no state-changing event at this slot) — the closed-form mirror of
    :func:`~repro.noise.stochastic.dry_run_site`'s draw structure.

    Each factor is the no-fire probability of one Bernoulli draw along the
    ideal prefix; any edit to the applier/dry-run draw structure must be
    mirrored here (the ``p_clean``-vs-empirical test pins the agreement).
    """
    survival = 1.0
    for dep_p, damp_p, p_one, phase_p in site.qubit_draws:
        if dep_p > 0.0:
            # Fires with p, then 1-of-4 Paulis; the I branch is a no-op.
            survival *= 1.0 - 0.75 * dep_p
        if damp_p > 0.0:
            if exact_damping:
                # The no-decay Kraus branch tilts the state: every damping
                # slot leaves the ideal prefix unconditionally.
                return 0.0
            survival *= 1.0 - damp_p * p_one
        if phase_p > 0.0:
            survival *= 1.0 - phase_p
    for crosstalk_p in site.crosstalk:
        if crosstalk_p > 0.0:
            # Fires with p, then 1-of-16 Pauli pairs; I (x) I is a no-op.
            survival *= 1.0 - 0.9375 * crosstalk_p
    return survival


def stratified_samples(naive_samples: int, p_clean: float) -> int:
    """Erring-stratum budget carrying ``naive_samples``' Hoeffding guarantee.

    The stratified estimator's Hoeffding half-width shrinks by the factor
    ``(1 - p_clean)`` at equal sample count, so the a-priori Theorem-1
    ceiling shrinks *quadratically*: ``(1 - p_clean)^2 * M`` erring samples
    give the same epsilon guarantee as ``M`` naive trajectories.
    """
    if not 0.0 <= p_clean <= 1.0:
        raise ValueError(f"p_clean must lie in [0, 1], got {p_clean}")
    return max(1, int(-(-naive_samples * (1.0 - p_clean) ** 2 // 1)))


class StrataPlan:
    """Closed-form stratum weights for one compiled :class:`PrefixPlan`.

    ``p_clean`` is exact (up to float rounding) and deterministic: every
    worker compiling the same (circuit, noise model) pair computes the
    identical float, which is what lets per-stratum moments merge across
    chunks without tolerance games.
    """

    def __init__(self, prefix_plan: PrefixPlan) -> None:
        self.prefix_plan = prefix_plan
        #: A clean stratum exists only for measure/reset-free circuits —
        #: collapse draws are state-dependent, so every trajectory of a
        #: measuring circuit diverges and the naive loop is already optimal.
        self.supported = (
            prefix_plan.stop_index is None and prefix_plan.ideal_final is not None
        )
        #: Per-site survival probabilities (1.0 for skipped/None sites) —
        #: kept for diagnostics and the conditional first-site distribution.
        self.site_survival: List[float] = []
        p_clean = 1.0
        if self.supported:
            for site in prefix_plan.sites:
                if site is None:
                    self.site_survival.append(1.0)
                    continue
                survival = site_survival_probability(
                    site, prefix_plan.exact_damping
                )
                self.site_survival.append(survival)
                p_clean *= survival
        else:
            p_clean = 0.0
        self.p_clean = p_clean
        #: Whether the stratified engine should run: a clean stratum must
        #: exist (else the naive loop does identical work) and carry
        #: neither ~all the mass (rejection cost explodes, erring mass is
        #: negligible) nor none of it.
        self.active = (
            self.supported
            and p_clean > 0.0
            and (1.0 - p_clean) >= MIN_ERRING_MASS
        )

    def first_error_site_distribution(self) -> List[float]:
        """P(first divergence at site i | >= 1 error) per gate-plan step.

        Diagnostic closed form of the conditional distribution the
        rejection sampler draws from: ``prefix_survival_i * (1 -
        survival_i) / (1 - p_clean)``.
        """
        if not self.active:
            return []
        distribution = []
        prefix_survival = 1.0
        for survival in self.site_survival:
            distribution.append(
                prefix_survival * (1.0 - survival) / (1.0 - self.p_clean)
            )
            prefix_survival *= survival
        return distribution

    def find_erring_seed(self, base_seed: int) -> Tuple[int, int, int]:
        """Deterministic rejection: first candidate seed whose dry-run errs.

        ``base_seed`` is the stratum index's naive trajectory seed; attempt
        ``k`` tries ``base_seed + k * _ATTEMPT_STRIDE`` (mod 2^63).  Returns
        ``(seed, divergence_step, attempts)`` where ``attempts`` counts all
        dry-runs including the accepted one.  Accepted seeds are distributed
        exactly as naive trajectory seeds conditioned on >= 1 fired error,
        and the search depends only on ``base_seed`` — reproducible for any
        chunking of the stratum across workers.
        """
        prefix_plan = self.prefix_plan
        scratch = {"depolarizing": 0, "amplitude_damping": 0, "phase_flip": 0}
        for attempt in range(_MAX_ATTEMPTS):
            seed = (base_seed + attempt * _ATTEMPT_STRIDE) & _SEED_MASK
            divergence = prefix_plan.first_divergence(random.Random(seed), scratch)
            if divergence is not None:
                return seed, divergence, attempt + 1
        raise RuntimeError(
            f"no erring trajectory found in {_MAX_ATTEMPTS} attempts "
            f"(p_clean={self.p_clean!r}) — closed-form/dry-run desync?"
        )
