"""Trajectory prefix sharing: serve clean runs from one DD, replay suffixes.

At the paper's noise regime the expected number of error events per
trajectory is well below one, yet the naive Monte-Carlo loop re-executes
the whole circuit from |0...0> for every run.  Because every error decision
in :class:`~repro.noise.stochastic.StochasticErrorApplier` along the
*ideal* prefix is a state-independent Bernoulli draw (amplitude damping's
state dependence enters only through the ideal P(1), which is precomputed
here), a cheap **rng dry-run** finds each trajectory's first error site
without touching any state:

* trajectories whose first site lies beyond the circuit end are **clean**:
  their final state *is* the shared, refcounted ideal-state DD, so
  properties are evaluated once and reused bit-identically, and only the
  per-trajectory ``sample_shots`` are drawn with the trajectory's own rng;
* erring trajectories resume from the nearest refcounted **ideal-prefix
  checkpoint** (interval auto-tuned to ~sqrt(gate count), overridable via
  ``REPRO_PREFIX_CHECKPOINT_INTERVAL``) and replay only the suffix with the
  real error applier — the rng is rewound by re-consuming the prefix draws
  from the trajectory seed, which costs O(prefix error slots), not O(state).

The engine is exactly equivalent to the naive path — same per-trajectory
rng streams, same hash-consed state edges, same floats — which
``REPRO_PREFIX_SHARING=off`` exposes directly and the equivalence gate in
tests/stochastic/test_prefix_sharing.py enforces.  Measurements and resets
are divergence points (their collapse draws are state-dependent), as is any
damping slot under the ``"exact"`` Kraus unravelling.
"""

from __future__ import annotations

import logging
import math
import os
from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from ..noise.model import NoiseModel
from ..noise.stochastic import NoiseSite, build_noise_site, dry_run_site
from ..simulators.base import RunResult
from ..simulators.gateplan import GATE, GatePlan

__all__ = [
    "PrefixPlan",
    "compile_prefix_plan",
    "prefix_sharing_enabled",
    "PREFIX_SHARING_ENV",
    "PREFIX_INTERVAL_ENV",
]

#: Escape hatch: set to ``off`` (or ``0``/``false``/``no``) to run the naive
#: per-trajectory loop.  The environment is the only channel that reaches
#: forked workers without touching the content-addressed job key.
PREFIX_SHARING_ENV = "REPRO_PREFIX_SHARING"

#: Optional integer override for the ideal-prefix checkpoint interval
#: (gate-plan steps between refcounted snapshots); default ~sqrt(steps).
PREFIX_INTERVAL_ENV = "REPRO_PREFIX_CHECKPOINT_INTERVAL"


def prefix_sharing_enabled() -> bool:
    """Whether the prefix-sharing engine is active (default: on)."""
    raw = os.environ.get(PREFIX_SHARING_ENV, "").strip().lower()
    return raw not in ("off", "0", "false", "no")


_log = logging.getLogger(__name__)

#: One-shot latch for the invalid-interval warning: a Monte-Carlo job
#: compiles plans per worker per job, and a misconfigured environment
#: should not flood the log once per compilation.
_warned_invalid_interval = False


def _resolve_interval(step_count: int) -> Tuple[int, bool]:
    """(checkpoint interval, whether the env override was invalid).

    A malformed or non-positive ``REPRO_PREFIX_CHECKPOINT_INTERVAL`` falls
    back to the sqrt default — but no longer silently: the first offender
    per process logs a warning, and the caller records the rejection under
    the ``prefix.interval_override_invalid`` counter.
    """
    global _warned_invalid_interval
    raw = os.environ.get(PREFIX_INTERVAL_ENV, "").strip()
    invalid = False
    if raw:
        try:
            value = int(raw)
        except ValueError:
            value = 0
        if value >= 1:
            return value, False
        invalid = True
        if not _warned_invalid_interval:
            _warned_invalid_interval = True
            _log.warning(
                "ignoring invalid %s=%r (need an integer >= 1); "
                "using the ~sqrt(gates) default",
                PREFIX_INTERVAL_ENV,
                raw,
            )
    # sqrt spacing balances snapshot memory (sqrt(G) pinned states) against
    # replay length (expected sqrt(G)/2 re-executed gates per erring run).
    return max(1, math.isqrt(max(1, step_count))), invalid


class PrefixPlan:
    """Everything one instrumented ideal execution teaches us about a
    (circuit, noise model) pair, reusable across every trajectory."""

    def __init__(self, gate_plan: GatePlan, noise_model: NoiseModel) -> None:
        self.gate_plan = gate_plan
        self.noise_model = noise_model
        self.exact_damping = noise_model.damping_mode != "event"
        self.interval = 1
        #: True when an invalid REPRO_PREFIX_CHECKPOINT_INTERVAL override
        #: was rejected while compiling this plan (the runner counts it).
        self.invalid_interval_override = False
        #: Per gate-plan step: a :class:`NoiseSite` (executed gate), or
        #: ``None`` (conditioned gate that does not fire pre-measurement).
        #: Truncated at ``stop_index`` when the circuit measures/resets.
        self.sites: List[Optional[NoiseSite]] = []
        #: First measure/reset step index — an unconditional divergence
        #: point (collapse draws are state-dependent) — or ``None``.
        self.stop_index: Optional[int] = None
        #: ``(step_index, pinned state edge)`` ascending; entry 0 is |0...0>.
        self.checkpoints: List[Tuple[int, object]] = []
        self._checkpoint_steps: List[int] = []
        #: ``executed_prefix[i]`` = gates actually applied among steps[:i].
        self.executed_prefix: List[int] = [0]
        #: Shared ideal output state (pinned) and its cached evaluation —
        #: ``None`` when the circuit measures (no clean trajectories exist).
        self.ideal_final = None
        self.ideal_norm_squared = 1.0
        self.ideal_run_result: Optional[RunResult] = None
        self._property_cache: Dict[str, float] = {}

    # -- dry-run ------------------------------------------------------

    def first_divergence(self, rng, fired: dict) -> Optional[int]:
        """Step index where this trajectory leaves the ideal prefix.

        Consumes ``rng`` exactly as the real applier would along the ideal
        prefix and tallies no-op events into ``fired``; returns ``None``
        for a clean trajectory (rng is then positioned exactly where a full
        naive execution would have left it).
        """
        exact = self.exact_damping
        for index, site in enumerate(self.sites):
            if site is None:
                continue
            if dry_run_site(rng, fired, site, exact):
                return index
        return self.stop_index

    def consume_prefix(self, rng, fired: dict, upto_step: int) -> None:
        """Re-consume the draws of steps[:upto_step] from a fresh rng.

        Used to position a replay's rng/tallies at a checkpoint: the caller
        guarantees ``upto_step`` is at or before the trajectory's first
        divergence, so no site in the range diverges and the consumed
        stream is identical to the dry-run's.
        """
        exact = self.exact_damping
        for site in self.sites[:upto_step]:
            if site is not None:
                dry_run_site(rng, fired, site, exact)

    # -- checkpoints ---------------------------------------------------

    def checkpoint_for(self, step_index: int) -> Tuple[int, object]:
        """The latest ``(step, state)`` checkpoint at or before ``step_index``."""
        position = bisect_right(self._checkpoint_steps, step_index) - 1
        return self.checkpoints[position]

    def executed_before(self, step_index: int) -> int:
        """Gates a naive run would have applied before ``step_index``."""
        return self.executed_prefix[step_index]

    # -- shared ideal state --------------------------------------------

    def property_values(self, backend, properties, context) -> Dict[str, float]:
        """Each property's value on the shared ideal state (evaluated once).

        The first call loads the ideal edge into ``backend`` and evaluates
        the properties in declaration order — the same table-insertion
        order a naive first-clean-trajectory evaluation produces — so every
        later clean trajectory folds in bit-identical floats.
        """
        if any(prop.name not in self._property_cache for prop in properties):
            backend.load_state(self.ideal_final)
            for prop in properties:
                if prop.name not in self._property_cache:
                    self._property_cache[prop.name] = prop.evaluate(
                        backend, self.ideal_run_result, context
                    )
        return self._property_cache


def compile_prefix_plan(
    backend, gate_plan: GatePlan, noise_model: NoiseModel
) -> PrefixPlan:
    """One instrumented ideal execution -> a reusable :class:`PrefixPlan`.

    Runs the gate plan noiselessly on ``backend`` (a DD backend sharing the
    plan's package), recording per-slot error rates and ideal P(1) values,
    pinning checkpoint states every ``interval`` steps, and pinning the
    ideal output state.  The backend is left holding the ideal state; the
    caller resumes trajectories via ``load_state``.
    """
    plan = PrefixPlan(gate_plan, noise_model)
    steps = gate_plan.steps
    plan.interval, plan.invalid_interval_override = _resolve_interval(len(steps))
    backend.reset_all()
    classical_bits = [0] * gate_plan.num_clbits
    plan.checkpoints.append((0, backend.snapshot()))
    for index, step in enumerate(steps):
        if step.kind != GATE:
            plan.stop_index = index
            break
        if index > 0 and index % plan.interval == 0:
            plan.checkpoints.append((index, backend.snapshot()))
        if step.condition is not None and not step.condition.is_satisfied(
            classical_bits
        ):
            plan.sites.append(None)
            plan.executed_prefix.append(plan.executed_prefix[-1])
            continue
        backend.apply_gate_edge(step.gate_edge)
        plan.sites.append(
            build_noise_site(
                noise_model, step.name, step.qubits, backend.probability_of_one
            )
        )
        plan.executed_prefix.append(plan.executed_prefix[-1] + 1)
    plan._checkpoint_steps = [step_index for step_index, _ in plan.checkpoints]
    if plan.stop_index is None:
        plan.ideal_final = backend.snapshot()
        plan.ideal_norm_squared = backend.squared_norm()
        plan.ideal_run_result = RunResult(
            [0] * gate_plan.num_clbits, applied_gates=plan.executed_prefix[-1]
        )
    return plan
