"""Seeded end-to-end chaos suite (the engine behind ``repro chaos``).

The suite runs one small GHZ job through the full service stack — sharded
scheduler, persistent worker pool, checksummed on-disk store — while a
seed-derived :class:`~repro.faults.plan.FaultPlan` strikes it, and then
verifies the promises docs/ROBUSTNESS.md makes:

* the job **completes** with every requested trajectory despite injected
  crashes, hangs, dropped queue deliveries, and store corruption;
* the estimates are **correct**: equal (to Monte-Carlo merge tolerance) to
  a fault-free serial reference, with Hoeffding half-widths matching the
  completed sample count;
* the run is **deterministic**: the same seed derives an identical fault
  schedule, and two chaos passes under that schedule produce bit-identical
  estimates (chunk merges happen in chunk-index order no matter which
  faults forced re-execution);
* every recovery path actually fired: ``faults.injected.*`` and
  ``faults.recovered.*`` counters are nonzero.

Two passes run against the *same store directory* on purpose.  Pass 1's
final result is written through the fault plan's store faults (bit-flip /
torn-write), so pass 2 — a fresh :class:`ResultStore` instance with a cold
memory cache — must detect the on-disk corruption by checksum, quarantine
the entry, and transparently re-execute: the disk-corruption recovery path
is exercised end to end, not just at unit level.
"""

from __future__ import annotations

import math
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits.library.ghz import ghz
from ..noise.model import NoiseModel
from ..stochastic.properties import IdealFidelity
from ..stochastic.results import StochasticResult
from ..stochastic.runner import simulate_stochastic
from .inject import PLAN_ENV, reset_injector_cache
from .plan import FaultPlan, canonical_kind

__all__ = [
    "ChaosCheck",
    "ChaosReport",
    "DEFAULT_KINDS",
    "run_chaos",
    "run_kill_serve",
]

#: Fault kinds exercised when ``repro chaos`` is run without ``--faults``.
#: ``drift`` is excluded by default because renormalisation perturbs the
#: affected trajectory's values (pass-vs-reference equality would need a
#: looser tolerance); opt in with ``--faults ...,drift``.
DEFAULT_KINDS: Tuple[str, ...] = (
    "crash-before",
    "crash-mid-chunk",
    "hang",
    "corrupt-outcome",
    "queue-drop",
    "bit-flip",
    "enospc",
)

#: Merge tolerance between a chaos pass and the fault-free serial
#: reference.  Per-trajectory values are identical (seeds derive from the
#: absolute trajectory index); only the floating-point summation order
#: differs between one serial span and per-chunk partial merges.
_REFERENCE_TOLERANCE = 1e-12


@dataclass
class ChaosCheck:
    """One verified invariant: what was asserted and whether it held."""

    name: str
    ok: bool
    detail: str

    def render(self) -> str:
        return f"[{'ok' if self.ok else 'FAIL'}] {self.name}: {self.detail}"


@dataclass
class ChaosReport:
    """Everything a chaos run observed, plus the verdict."""

    seed: int
    kinds: Tuple[str, ...]
    trajectories: int
    plan: Dict[str, object] = field(default_factory=dict)
    reference_estimates: Dict[str, float] = field(default_factory=dict)
    pass_estimates: List[Dict[str, float]] = field(default_factory=list)
    injected: Dict[str, int] = field(default_factory=dict)
    recovered: Dict[str, int] = field(default_factory=dict)
    checks: List[ChaosCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def check(self, name: str, ok: bool, detail: str) -> None:
        self.checks.append(ChaosCheck(name, ok, detail))

    def render(self) -> str:
        lines = [
            f"chaos seed={self.seed} kinds={','.join(self.kinds)} "
            f"M={self.trajectories}",
            "injected: " + (
                ", ".join(
                    f"{key.split('.')[-1]}={value}"
                    for key, value in sorted(self.injected.items())
                ) or "none"
            ),
            "recovered: " + (
                ", ".join(
                    f"{key.split('.')[-1]}={value}"
                    for key, value in sorted(self.recovered.items())
                ) or "none"
            ),
        ]
        lines.extend(check.render() for check in self.checks)
        lines.append("RESULT: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def _estimates_of(result: StochasticResult) -> Dict[str, float]:
    return {name: est.mean for name, est in result.estimates.items()}


def _counters_with_prefix(
    snapshot: Dict[str, Dict[str, object]], prefix: str
) -> Dict[str, int]:
    counters = snapshot.get("counters", {})
    return {
        name: int(value)
        for name, value in counters.items()
        if name.startswith(prefix) and value
    }


def _merge_counts(*parts: Dict[str, int]) -> Dict[str, int]:
    total: Dict[str, int] = {}
    for part in parts:
        for name, value in part.items():
            total[name] = total.get(name, 0) + value
    return total


def run_chaos(
    seed: int,
    kinds: Sequence[str] = DEFAULT_KINDS,
    trajectories: int = 80,
    num_qubits: int = 4,
    workers: int = 2,
    chunk_size: int = 16,
    chunk_timeout: float = 2.0,
    store_dir: Optional[str] = None,
    job_timeout: float = 180.0,
) -> ChaosReport:
    """Run the chaos suite; returns a :class:`ChaosReport` (see module doc).

    The caller's ``REPRO_FAULT_PLAN`` environment is saved and restored —
    the suite owns the variable for its duration (it is how the plan
    reaches forked workers).
    """
    kinds = tuple(canonical_kind(name) for name in kinds)
    report = ChaosReport(seed=seed, kinds=kinds, trajectories=trajectories)
    num_chunks = -(-trajectories // chunk_size)

    circuit = ghz(num_qubits)
    noise_model = NoiseModel.paper_defaults()
    properties = (IdealFidelity(),)

    saved_env = os.environ.get(PLAN_ENV)
    scratch = tempfile.mkdtemp(prefix="repro-chaos-")
    own_store = store_dir is None
    if own_store:
        store_dir = os.path.join(scratch, "store")
    try:
        # Fault-free serial reference, computed before any plan is active.
        os.environ.pop(PLAN_ENV, None)
        reset_injector_cache()
        reference = simulate_stochastic(
            circuit,
            noise_model=noise_model,
            properties=properties,
            trajectories=trajectories,
            backend="dd",
            workers=1,
            seed=seed,
            sample_shots=0,
        )
        report.reference_estimates = _estimates_of(reference)

        # Same seed + kinds must derive the same schedule, byte for byte
        # (state_dir is pass-local coordination, not part of the schedule).
        schedule = FaultPlan.generate(
            seed, kinds, num_chunks, trajectories=trajectories
        ).to_dict()["faults"]
        replay = FaultPlan.generate(
            seed, kinds, num_chunks, trajectories=trajectories
        ).to_dict()["faults"]
        report.plan = {"seed": seed, "faults": schedule}
        report.check(
            "plan determinism",
            schedule == replay,
            f"{len(schedule)} faults derive identically from seed {seed}",
        )

        passes: List[StochasticResult] = []
        for pass_index in (1, 2):
            state_dir = os.path.join(scratch, f"pass-{pass_index}")
            os.makedirs(state_dir, exist_ok=True)
            plan = FaultPlan.generate(
                seed, kinds, num_chunks,
                trajectories=trajectories, state_dir=state_dir,
            )
            os.environ[PLAN_ENV] = plan.to_json()
            reset_injector_cache()
            result, snapshot = _run_pass(
                circuit, noise_model, properties, trajectories, seed,
                store_dir, workers, chunk_size, chunk_timeout, job_timeout,
            )
            passes.append(result)
            report.pass_estimates.append(_estimates_of(result))
            # Worker-side firings live in marker files (a crashed worker
            # cannot report); parent-side firings are in the scheduler's
            # merged snapshot.  Markers are authoritative for both here —
            # every spec in a state_dir plan coordinates through them.
            report.injected = _merge_counts(report.injected, plan.claimed_counts())
            report.recovered = _merge_counts(
                report.recovered,
                _counters_with_prefix(snapshot, "faults.recovered."),
            )

        for index, result in enumerate(passes, start=1):
            report.check(
                f"pass {index} completion",
                result.completed_trajectories == trajectories
                and not result.timed_out,
                f"{result.completed_trajectories}/{trajectories} trajectories",
            )
            for name, estimate in result.estimates.items():
                expected = estimate.hoeffding_halfwidth()
                # Stratified runs scale the bound by the erring mass
                # (see repro.stochastic.strata); unstratified weight is 1.
                weight = (
                    1.0 - estimate.p_clean if estimate.p_clean is not None else 1.0
                )
                derived = weight * math.sqrt(
                    math.log(2.0 / 0.05) / (2.0 * max(1, estimate.count))
                )
                report.check(
                    f"pass {index} hoeffding {name}",
                    estimate.count == trajectories
                    and math.isclose(expected, derived, rel_tol=1e-12),
                    f"count={estimate.count} halfwidth={expected:.6f}",
                )

        exact = report.pass_estimates[0] == report.pass_estimates[1]
        report.check(
            "pass determinism",
            exact,
            "bit-identical estimates across passes"
            if exact
            else f"{report.pass_estimates[0]} != {report.pass_estimates[1]}",
        )
        for name, value in report.reference_estimates.items():
            drift_allowed = "drift" in kinds
            deviation = max(
                abs(estimates.get(name, float("nan")) - value)
                for estimates in report.pass_estimates
            )
            tolerance = 1e-2 if drift_allowed else _REFERENCE_TOLERANCE
            report.check(
                f"reference agreement {name}",
                deviation <= tolerance,
                f"max |pass - serial reference| = {deviation:.3e}",
            )

        report.check(
            "faults injected",
            bool(report.injected),
            ", ".join(sorted(report.injected)) or "no fault ever fired",
        )
        report.check(
            "faults recovered",
            bool(report.recovered),
            ", ".join(sorted(report.recovered)) or "no recovery counter moved",
        )
    finally:
        if saved_env is None:
            os.environ.pop(PLAN_ENV, None)
        else:
            os.environ[PLAN_ENV] = saved_env
        reset_injector_cache()
        shutil.rmtree(scratch, ignore_errors=True)
    return report


def _run_pass(
    circuit,
    noise_model,
    properties,
    trajectories: int,
    seed: int,
    store_dir: str,
    workers: int,
    chunk_size: int,
    chunk_timeout: float,
    job_timeout: float,
) -> Tuple[StochasticResult, Dict[str, Dict[str, object]]]:
    """One scheduler pass under the active plan; returns (result, metrics)."""
    from ..service.job import JobSpec
    from ..service.scheduler import Scheduler
    from ..service.store import ResultStore

    spec = JobSpec(
        circuit=circuit,
        noise_model=noise_model,
        properties=properties,
        trajectories=trajectories,
        seed=seed,
        backend_kind="dd",
        sample_shots=0,
    )
    # A fresh ResultStore per pass: pass 2 must reach the bytes pass 1 left
    # on disk (possibly corrupted by store faults) through a cold cache.
    store = ResultStore(directory=store_dir)
    with Scheduler(
        workers=workers,
        store=store,
        chunk_size=chunk_size,
        max_retries=3,
        chunk_timeout=chunk_timeout,
    ) as scheduler:
        result = scheduler.run(spec, timeout=job_timeout)
        snapshot = scheduler.metrics_snapshot()
    return result, snapshot


# --------------------------------------------------------------------------
# Restart/resume scenario: SIGKILL a live serve process, resume, compare.
# --------------------------------------------------------------------------

#: Subprocess body for one ``serve`` run (argv: store_dir workers chunk
#: events_log resume).  A real child process — not a thread — so SIGKILL
#: genuinely tears the journal/event log mid-write like production death.
_SERVE_SNIPPET = """\
import sys
from repro.service.serve import serve
from repro.service.store import ResultStore

store_dir, workers, chunk, events, resume = sys.argv[1:6]
serve(
    ResultStore(directory=store_dir),
    workers=int(workers),
    once=True,
    poll_interval=0.05,
    chunk_size=int(chunk),
    events_log=events or None,
    resume=resume == "1",
    heartbeat_interval=0.2,
    install_signal_handlers=True,
)
"""


def _serve_subprocess_env(plan_json: Optional[str] = None) -> Dict[str, str]:
    """Child env: inherit, force ``repro`` importable, explicit fault plan."""
    import repro

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env.pop(PLAN_ENV, None)
    if plan_json is not None:
        env[PLAN_ENV] = plan_json
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else package_root + os.pathsep + existing
    )
    return env


def _spawn_serve(
    store_dir: str,
    workers: int,
    chunk_size: int,
    events_log: str,
    resume: bool,
    plan_json: Optional[str] = None,
) -> "subprocess.Popen[bytes]":
    return subprocess.Popen(
        [
            sys.executable,
            "-c",
            _SERVE_SNIPPET,
            store_dir,
            str(workers),
            str(chunk_size),
            events_log,
            "1" if resume else "0",
        ],
        env=_serve_subprocess_env(plan_json),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        # Own process group: SIGKILL-ing the group takes the daemonic
        # worker children down too (orphaned workers would otherwise
        # linger on a blocking queue read after their parent dies).
        start_new_session=True,
    )


def _kill_serve_group(proc: "subprocess.Popen[bytes]") -> None:
    try:
        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
    except (OSError, ProcessLookupError):
        proc.kill()


def _enqueue_kill_serve_job(
    store_dir: str,
    trajectories: int,
    num_qubits: int,
    seed: int,
):
    """Spool the scenario's job into ``store_dir``; returns (key, spec)."""
    from ..service.job import JobSpec
    from ..service.serve import enqueue_job
    from ..service.store import ResultStore

    spec = JobSpec(
        circuit=ghz(num_qubits),
        noise_model=NoiseModel.paper_defaults(),
        properties=(IdealFidelity(),),
        trajectories=trajectories,
        seed=seed,
        backend_kind="dd",
        sample_shots=0,
    )
    key, _ = enqueue_job(ResultStore(directory=store_dir), spec)
    return key, spec


def run_kill_serve(
    seed: int = 0,
    trajectories: int = 240,
    num_qubits: int = 3,
    workers: int = 2,
    chunk_size: int = 4,
    work_dir: Optional[str] = None,
    serve_timeout: float = 180.0,
    kill_after_chunks: int = 1,
    slow_chunk_seconds: float = 0.02,
) -> ChaosReport:
    """The ``repro chaos --kill-serve`` restart/resume scenario.

    Protocol (docs/ROBUSTNESS.md, "Durability & restart semantics"):

    1. compute a fault-free **serial reference** in-process;
    2. **pass A** — run the job through an uninterrupted ``repro serve
       --once`` subprocess (the fault-free *service* reference: chunked
       merge order, exactly what a resumed run must reproduce);
    3. **pass B** — start a fresh serve subprocess on its own store, poll
       the write-ahead journal until at least ``kill_after_chunks``
       chunk-done records are durable, then **SIGKILL the process group**
       (no handlers, no atexit — production death);
    4. restart with ``serve --once --resume`` and let it finish;
    5. assert the pass B result is **bit-identical** to pass A, both agree
       with the serial reference to merge tolerance, the torn event log is
       still readable, and the journal holds no incomplete jobs afterwards.

    When ``work_dir`` is given, stores / journals / event logs are written
    (and kept) there — CI uploads them as artifacts on failure.  Otherwise
    a temporary scratch directory is used and removed.

    ``slow_chunk_seconds`` ships a uniform ``slow-chunk`` fault plan to
    *every* serve subprocess (pass A, pass B, and the resume — identical
    everywhere): the sleep widens the window between the first durable
    chunk-done and job completion so the SIGKILL reliably lands mid-job,
    without perturbing any computed value.
    """
    from ..service.store import ResultStore

    report = ChaosReport(
        seed=seed, kinds=("kill-serve",), trajectories=trajectories
    )
    plan_json: Optional[str] = None
    if slow_chunk_seconds > 0.0:
        from .plan import FaultSpec

        plan_json = FaultPlan(
            faults=(
                FaultSpec(
                    kind="slow-chunk",
                    seconds=slow_chunk_seconds,
                    times=1_000_000,
                ),
            ),
            seed=seed,
        ).to_json()
    own_scratch = work_dir is None
    scratch = work_dir or tempfile.mkdtemp(prefix="repro-kill-serve-")
    os.makedirs(scratch, exist_ok=True)
    saved_env = os.environ.get(PLAN_ENV)
    proc: Optional["subprocess.Popen[bytes]"] = None
    try:
        os.environ.pop(PLAN_ENV, None)
        reset_injector_cache()

        circuit = ghz(num_qubits)
        reference = simulate_stochastic(
            circuit,
            noise_model=NoiseModel.paper_defaults(),
            properties=(IdealFidelity(),),
            trajectories=trajectories,
            backend="dd",
            workers=1,
            seed=seed,
            sample_shots=0,
        )
        report.reference_estimates = _estimates_of(reference)

        # -- pass A: uninterrupted serve ---------------------------------
        store_a = os.path.join(scratch, "store-a")
        events_a = os.path.join(scratch, "events-a.jsonl")
        key, _spec = _enqueue_kill_serve_job(
            store_a, trajectories, num_qubits, seed
        )
        proc = _spawn_serve(
            store_a, workers, chunk_size, events_a,
            resume=False, plan_json=plan_json,
        )
        try:
            returncode = proc.wait(timeout=serve_timeout)
        except subprocess.TimeoutExpired:
            _kill_serve_group(proc)
            proc.wait()
            returncode = None
        report.check(
            "pass A serve exit",
            returncode == 0,
            f"uninterrupted serve exited {returncode}",
        )
        result_a = ResultStore(directory=store_a).get(key)
        report.check(
            "pass A completion",
            result_a is not None
            and result_a.completed_trajectories == trajectories,
            "no stored result"
            if result_a is None
            else f"{result_a.completed_trajectories}/{trajectories} trajectories",
        )
        if result_a is not None:
            report.pass_estimates.append(_estimates_of(result_a))

        # -- pass B: serve, SIGKILL mid-job, resume ----------------------
        store_b = os.path.join(scratch, "store-b")
        events_b = os.path.join(scratch, "events-b.jsonl")
        _enqueue_kill_serve_job(store_b, trajectories, num_qubits, seed)
        from ..service.journal import journal_path, replay_journal

        wal = journal_path(store_b)
        proc = _spawn_serve(
            store_b, workers, chunk_size, events_b,
            resume=False, plan_json=plan_json,
        )
        deadline = time.monotonic() + serve_timeout
        committed = 0
        while time.monotonic() < deadline and proc.poll() is None:
            try:
                with open(wal, "rb") as handle:
                    committed = handle.read().count(b'"chunk-done"')
            except OSError:
                committed = 0
            if committed >= kill_after_chunks:
                break
            time.sleep(0.002)
        killed_live = proc.poll() is None
        _kill_serve_group(proc)
        returncode = proc.wait()
        report.injected["faults.injected.kill-serve"] = 1
        report.check(
            "serve killed mid-job",
            killed_live
            and committed >= kill_after_chunks
            and returncode == -signal.SIGKILL,
            f"SIGKILL after {committed} durable chunk-done record(s), "
            f"returncode {returncode}"
            if killed_live
            else f"serve exited (rc={returncode}) before the kill landed — "
            f"job too small to interrupt",
        )
        interrupted = ResultStore(directory=store_b).get(key)
        report.check(
            "no final result at kill",
            interrupted is None,
            "store has no final entry — the job died mid-flight"
            if interrupted is None
            else "job finished before the kill; nothing was interrupted",
        )

        # -- resume pass -------------------------------------------------
        proc = _spawn_serve(
            store_b, workers, chunk_size, events_b,
            resume=True, plan_json=plan_json,
        )
        try:
            returncode = proc.wait(timeout=serve_timeout)
        except subprocess.TimeoutExpired:
            _kill_serve_group(proc)
            proc.wait()
            returncode = None
        report.check(
            "resume serve exit",
            returncode == 0,
            f"serve --resume exited {returncode}",
        )
        result_b = ResultStore(directory=store_b).get(key)
        report.check(
            "resume completion",
            result_b is not None
            and result_b.completed_trajectories == trajectories,
            "no stored result after resume"
            if result_b is None
            else f"{result_b.completed_trajectories}/{trajectories} trajectories",
        )
        if result_b is not None:
            report.pass_estimates.append(_estimates_of(result_b))
            report.recovered["faults.recovered.kill-serve"] = 1

        # -- verdicts ----------------------------------------------------
        if result_a is not None and result_b is not None:
            identical = _estimates_of(result_a) == _estimates_of(result_b)
            report.check(
                "resume bit-identity",
                identical,
                "resumed estimates bit-identical to the uninterrupted run"
                if identical
                else f"{_estimates_of(result_a)} != {_estimates_of(result_b)}",
            )
            for name, value in report.reference_estimates.items():
                deviation = max(
                    abs(estimates.get(name, float("nan")) - value)
                    for estimates in report.pass_estimates
                )
                report.check(
                    f"reference agreement {name}",
                    deviation <= _REFERENCE_TOLERANCE,
                    f"max |pass - serial reference| = {deviation:.3e}",
                )

        from ..obs.export import read_event_log

        events = read_event_log(events_b)
        report.check(
            "event log readable post-crash",
            len(events) > 0,
            f"{len(events)} events parsed from the crash-torn log",
        )
        leftover = [
            job for job in replay_journal(wal).values() if not job.done
        ]
        report.check(
            "journal settled after resume",
            not leftover,
            "no incomplete jobs remain in the journal"
            if not leftover
            else f"{len(leftover)} job(s) still incomplete",
        )
    finally:
        if proc is not None and proc.poll() is None:
            _kill_serve_group(proc)
            proc.wait()
        if saved_env is None:
            os.environ.pop(PLAN_ENV, None)
        else:
            os.environ[PLAN_ENV] = saved_env
        reset_injector_cache()
        if own_scratch:
            shutil.rmtree(scratch, ignore_errors=True)
    return report
