"""Process-local fault injector: checks injection sites against a plan.

Activation
----------
The plan travels in the ``REPRO_FAULT_PLAN`` environment variable —
either inline JSON or ``@/path/to/plan.json`` — because worker processes
(forked or spawned by the scheduler) must see the same schedule as the
parent without any extra plumbing.  :func:`get_injector` resolves the
active injector for the calling process, caching one injector per
distinct plan so firing budgets persist across call sites.

The legacy ``REPRO_SERVICE_CRASH_ONCE`` marker-file variable is kept as
a **deprecated alias**: when ``REPRO_FAULT_PLAN`` is unset it maps to
:meth:`FaultPlan.crash_once`, reproducing the old behaviour exactly
(first worker to pick up a task dies hard, once, coordinated through
the marker file).

Injection sites call :meth:`FaultInjector.fire`, which returns the
matched :class:`FaultSpec` (after atomically claiming a firing) or
``None``.  Every firing increments a ``faults.injected.<kind>`` counter
in the injector's metrics registry.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from .plan import FaultPlan

__all__ = [
    "PLAN_ENV",
    "LEGACY_CRASH_ONCE_ENV",
    "FaultInjector",
    "get_injector",
    "reset_injector_cache",
]

#: Environment variable carrying the active plan (inline JSON or ``@path``).
PLAN_ENV = "REPRO_FAULT_PLAN"

#: Deprecated alias (PR 1): a marker-file path requesting one hard crash.
LEGACY_CRASH_ONCE_ENV = "REPRO_SERVICE_CRASH_ONCE"


class FaultInjector:
    """Checks injection sites against a :class:`FaultPlan` and claims firings."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._remaining: List[int] = [spec.times for spec in plan.faults]
        #: ``faults.injected.*`` counters for firings claimed by THIS process.
        self.metrics = MetricsRegistry()
        for spec in plan.faults:
            self.metrics.counter(f"faults.injected.{spec.kind}")

    def fire(self, kind: str, **attrs: object):
        """Claim and return the first matching armed fault spec, else ``None``.

        ``attrs`` are the site's identifying attributes (``job_key``,
        ``worker_id``, ``chunk_index``, ``trajectory``, ``operation``).
        Claiming is atomic across processes when the plan coordinates
        through marker files.
        """
        for index, spec in enumerate(self.plan.faults):
            if not spec.matches(kind, **attrs):
                continue
            if self._claim(index):
                self.metrics.counter(f"faults.injected.{kind}").inc()
                return spec
        return None

    def _claim(self, index: int) -> bool:
        spec = self.plan.faults[index]
        first_marker = self.plan.marker_path(index, 0)
        if first_marker is None:
            # In-process budget only.
            if self._remaining[index] <= 0:
                return False
            self._remaining[index] -= 1
            return True
        for firing in range(spec.times):
            path = self.plan.marker_path(index, firing)
            try:
                handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False  # state dir vanished — fail safe, inject nothing
            os.close(handle)
            return True
        return False

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """This process's ``faults.injected.*`` counters."""
        return self.metrics.snapshot()


#: Cache: one injector per distinct (plan-env, legacy-env) pair, so firing
#: budgets survive across call sites within a process while env changes
#: (tests monkeypatching the variable) still take effect.
_CACHE: Dict[Tuple[Optional[str], Optional[str]], Optional[FaultInjector]] = {}


def _resolve_plan(raw: Optional[str], legacy: Optional[str]) -> Optional[FaultPlan]:
    if raw:
        text = raw
        if raw.startswith("@"):
            try:
                with open(raw[1:], "r", encoding="utf-8") as handle:
                    text = handle.read()
            except OSError:
                return None
        try:
            return FaultPlan.from_json(text)
        except (ValueError, KeyError, TypeError):
            return None  # an unparsable plan injects nothing
    if legacy:
        return FaultPlan.crash_once(legacy)
    return None


def get_injector() -> Optional[FaultInjector]:
    """The calling process's active injector, or ``None`` (no plan set)."""
    raw = os.environ.get(PLAN_ENV)
    legacy = os.environ.get(LEGACY_CRASH_ONCE_ENV)
    if not raw and not legacy:
        return None
    key = (raw, legacy)
    if key not in _CACHE:
        plan = _resolve_plan(raw, legacy)
        _CACHE[key] = FaultInjector(plan) if plan is not None else None
    return _CACHE[key]


def reset_injector_cache() -> None:
    """Forget cached injectors (test isolation; fresh firing budgets)."""
    _CACHE.clear()
