"""Deterministic, JSON-serialisable fault schedules.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries — each one
names a fault *kind* (what goes wrong), *match keys* (where it strikes:
job key prefix, worker id, chunk index, trajectory index, store
operation), and a firing budget.  Components thread the plan through
:class:`~repro.faults.inject.FaultInjector`, which checks every
injection point against the schedule.

Determinism is the whole point: :meth:`FaultPlan.generate` derives a
schedule from a seed, so ``repro chaos --seed S`` builds the identical
schedule every time, and a failure found under chaos is replayable from
nothing but the seed and the fault list.

Cross-process coordination
--------------------------
Worker processes each parse their own copy of the plan, so an in-process
firing budget would reset on every respawn — a "crash once" fault would
crash every worker that ever picks the chunk up.  A plan with a
``state_dir`` coordinates firings through marker files claimed with
``O_CREAT | O_EXCL``: the first process to reach the site wins the
marker, every other process (including the respawned worker that retries
the chunk) sees the budget as spent.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan"]

#: Every fault kind the injector understands, by injection layer.
FAULT_KINDS: Tuple[str, ...] = (
    # worker.py — struck while a worker holds a chunk
    "crash-before",     # os._exit before the chunk executes
    "crash-mid-chunk",  # execute part of the chunk, then os._exit
    "hang",             # sleep past the scheduler's chunk timeout
    "slow-chunk",       # sleep briefly before executing (latency, not death)
    "corrupt-outcome",  # tamper with the reported ChunkOutcome
    # scheduler.py — struck at queue-delivery time
    "queue-drop",       # the chunk's task is never delivered to the worker
    "queue-delay",      # dispatch of the chunk is held back by `seconds`
    # store.py — struck while writing an entry
    "torn-write",       # the entry is truncated after the atomic replace
    "bit-flip",         # one byte of the stored entry is flipped
    "enospc",           # the write raises OSError(ENOSPC)
    # stochastic/runner.py — struck inside a trajectory
    "drift",            # scale the DD state so its norm drifts off 1
    # journal.py / scheduler.py — durable-execution layer
    "scheduler-crash",  # os._exit the scheduler after a journaled chunk-done
    "torn-journal",     # truncate the journal mid-record after an append
    "enospc-journal",   # the journal append raises OSError(ENOSPC)
    "lease-expiry",     # stop renewing a chunk's lease so the reaper reclaims it
    # obs/ledger.py — run-ledger telemetry history
    "torn-ledger",      # truncate the ledger mid-record after an append
    "enospc-ledger",    # the ledger append raises OSError(ENOSPC)
)

#: Aliases accepted by the chaos CLI (friendly name -> canonical kind).
KIND_ALIASES: Dict[str, str] = {
    "crash": "crash-before",
    "crash-mid": "crash-mid-chunk",
    "corrupt-store": "bit-flip",
    "torn": "torn-write",
    "slow": "slow-chunk",
    "drop": "queue-drop",
    "delay": "queue-delay",
    "kill-scheduler": "scheduler-crash",
    "lease": "lease-expiry",
}


def canonical_kind(name: str) -> str:
    """Resolve a (possibly aliased) fault-kind name or raise ``ValueError``."""
    kind = KIND_ALIASES.get(name, name)
    if kind not in FAULT_KINDS:
        raise ValueError(
            f"unknown fault kind {name!r}; choose from "
            f"{', '.join(FAULT_KINDS)} (aliases: {', '.join(sorted(KIND_ALIASES))})"
        )
    return kind


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: a kind, where it strikes, and how often."""

    kind: str
    #: Match keys — ``None`` matches anything.  ``job_key`` is a prefix
    #: match; the rest are exact.  A spec with a key set does NOT match a
    #: site that cannot provide that attribute.
    job_key: Optional[str] = None
    worker_id: Optional[int] = None
    chunk_index: Optional[int] = None
    trajectory: Optional[int] = None
    #: Store op ("put", "put_partial", "put_queued") or journal record
    #: type ("submit", "plan", "lease", "chunk-done", "job-done").
    operation: Optional[str] = None
    #: Firing budget (per process, unless coordinated via markers).
    times: int = 1
    #: Delay magnitude for hang / slow-chunk / queue-delay.
    seconds: float = 0.0
    #: Amplitude scale factor for drift injection.
    factor: float = 1.0
    #: Legacy single-file coordination: firing requires exclusively
    #: creating this exact file (the pre-FaultPlan ``REPRO_SERVICE_CRASH_ONCE``
    #: marker semantics).  Overrides ``state_dir`` coordination.
    marker: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.times < 1:
            raise ValueError("times must be >= 1")

    _MATCH_KEYS = ("worker_id", "chunk_index", "trajectory", "operation")

    def matches(self, site_kind: str, **attrs: object) -> bool:
        """Does this spec apply at an injection site with these attributes?"""
        if self.kind != site_kind:
            return False
        if self.job_key is not None:
            value = attrs.get("job_key")
            if not isinstance(value, str) or not value.startswith(self.job_key):
                return False
        for key in self._MATCH_KEYS:
            wanted = getattr(self, key)
            if wanted is not None and attrs.get(key) != wanted:
                return False
        return True

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"kind": self.kind, "times": self.times}
        for key in ("job_key", "worker_id", "chunk_index", "trajectory",
                    "operation", "marker"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        if self.seconds:
            data["seconds"] = self.seconds
        if self.factor != 1.0:
            data["factor"] = self.factor
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        return cls(
            kind=str(data["kind"]),
            job_key=None if data.get("job_key") is None else str(data["job_key"]),
            worker_id=None if data.get("worker_id") is None else int(data["worker_id"]),
            chunk_index=None if data.get("chunk_index") is None else int(data["chunk_index"]),
            trajectory=None if data.get("trajectory") is None else int(data["trajectory"]),
            operation=None if data.get("operation") is None else str(data["operation"]),
            times=int(data.get("times", 1)),
            seconds=float(data.get("seconds", 0.0)),
            factor=float(data.get("factor", 1.0)),
            marker=None if data.get("marker") is None else str(data["marker"]),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults plus optional marker coordination."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    #: Directory for cross-process marker files (``None`` = in-process
    #: firing budgets only; see the module docstring).
    state_dir: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def kinds(self) -> List[str]:
        return sorted({spec.kind for spec in self.faults})

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "version": 1,
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }
        if self.state_dir is not None:
            data["state_dir"] = self.state_dir
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        version = data.get("version", 1)
        if version != 1:
            raise ValueError(f"unsupported fault plan version {version!r}")
        return cls(
            faults=tuple(FaultSpec.from_dict(entry) for entry in data.get("faults", [])),
            seed=int(data.get("seed", 0)),
            state_dir=None if data.get("state_dir") is None else str(data["state_dir"]),
        )

    def to_json(self) -> str:
        """Canonical (sorted-keys, compact) JSON form — deterministic."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # -- marker accounting -------------------------------------------------

    def marker_path(self, spec_index: int, firing: int) -> Optional[str]:
        """Coordination file for the ``firing``-th strike of fault ``spec_index``."""
        spec = self.faults[spec_index]
        if spec.marker is not None:
            return spec.marker if firing == 0 else f"{spec.marker}.{firing}"
        if self.state_dir is None:
            return None
        return os.path.join(self.state_dir, f"fault-{spec_index}-{firing}")

    def claimed_counts(self) -> Dict[str, int]:
        """Observed cross-process firings per kind (``faults.injected.*``).

        Counts the marker files claimed so far, so the parent process can
        report faults that actually struck inside (possibly dead) workers.
        Empty for plans without marker coordination.
        """
        counts: Dict[str, int] = {}
        for index, spec in enumerate(self.faults):
            fired = 0
            for firing in range(spec.times):
                path = self.marker_path(index, firing)
                if path is not None and os.path.exists(path):
                    fired += 1
            if fired:
                counts[f"faults.injected.{spec.kind}"] = (
                    counts.get(f"faults.injected.{spec.kind}", 0) + fired
                )
        return counts

    # -- generation --------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        kinds: Sequence[str],
        num_chunks: int,
        trajectories: int = 1,
        state_dir: Optional[str] = None,
        job_key: Optional[str] = None,
    ) -> "FaultPlan":
        """Derive a deterministic schedule from a seed.

        One fault of each requested kind is placed on a pseudo-randomly
        chosen chunk (or trajectory, for ``drift``; or store operation,
        for the store kinds).  The RNG stream depends only on ``seed``
        and the *order* of ``kinds`` — identical inputs produce an
        identical plan, byte for byte.
        """
        if num_chunks < 1:
            raise ValueError("num_chunks must be >= 1")
        rng = random.Random(seed)
        faults: List[FaultSpec] = []
        for name in kinds:
            kind = canonical_kind(name)
            if kind in ("crash-before", "crash-mid-chunk", "hang", "slow-chunk",
                        "corrupt-outcome", "queue-drop", "queue-delay",
                        "scheduler-crash", "lease-expiry"):
                chunk = rng.randrange(num_chunks)
                seconds = 0.0
                if kind == "hang":
                    seconds = 30.0
                elif kind == "slow-chunk":
                    seconds = 0.05
                elif kind == "queue-delay":
                    seconds = 0.1
                faults.append(FaultSpec(
                    kind=kind, job_key=job_key, chunk_index=chunk, seconds=seconds,
                ))
            elif kind in ("torn-write", "bit-flip"):
                faults.append(FaultSpec(kind=kind, job_key=job_key, operation="put"))
            elif kind == "enospc":
                faults.append(FaultSpec(kind=kind, job_key=job_key, operation="put_partial"))
            elif kind == "torn-journal":
                faults.append(FaultSpec(kind=kind, job_key=job_key, operation="chunk-done"))
            elif kind == "enospc-journal":
                faults.append(FaultSpec(kind=kind, job_key=job_key, operation="chunk-done"))
            elif kind in ("torn-ledger", "enospc-ledger"):
                faults.append(FaultSpec(kind=kind, job_key=job_key, operation="run"))
            elif kind == "drift":
                trajectory = rng.randrange(max(1, trajectories))
                faults.append(FaultSpec(
                    kind=kind, job_key=job_key, trajectory=trajectory, factor=1.01,
                ))
            else:  # pragma: no cover - FAULT_KINDS and the branches above agree
                raise AssertionError(kind)
        return cls(faults=tuple(faults), seed=seed, state_dir=state_dir)

    @classmethod
    def crash_once(cls, marker: str) -> "FaultPlan":
        """The legacy ``REPRO_SERVICE_CRASH_ONCE`` behaviour as a plan.

        The first worker to pick up a task after spawn dies hard, exactly
        once across the whole pool, coordinated through ``marker``.
        """
        return cls(faults=(FaultSpec(kind="crash-before", marker=marker),), seed=0)
