"""repro.faults — deterministic, seed-driven fault injection.

Recovery code that is never exercised is recovery code that does not
work.  This package turns the service layer's fault-tolerance paths —
worker respawn, chunk requeue, checkpoint resume, store quarantine,
numerical renormalisation — into continuously testable behaviour:

* :mod:`~repro.faults.plan` — :class:`FaultPlan` / :class:`FaultSpec`,
  a JSON-serialisable, seed-derived schedule of faults;
* :mod:`~repro.faults.inject` — :class:`FaultInjector`, the per-process
  gate every injection point consults (activated via the
  ``REPRO_FAULT_PLAN`` environment variable);
* :mod:`~repro.faults.chaos` — the seeded end-to-end chaos suite behind
  ``repro chaos``.

See docs/ROBUSTNESS.md for the fault taxonomy and the recovery paths
each kind exercises.
"""

from .inject import (
    FaultInjector,
    LEGACY_CRASH_ONCE_ENV,
    PLAN_ENV,
    get_injector,
    reset_injector_cache,
)
from .plan import FAULT_KINDS, FaultPlan, FaultSpec

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "LEGACY_CRASH_ONCE_ENV",
    "PLAN_ENV",
    "get_injector",
    "reset_injector_cache",
]

# run_chaos / run_kill_serve live in repro.faults.chaos and are imported
# lazily by the CLI — chaos pulls in the whole service stack, which this
# package's importers (workers included) must not pay for.
