"""Regeneration of the paper's Table Ia, Ib, and Ic.

Each function sweeps the corresponding workload across the proposed DD
simulator and the dense state-vector baseline, at a configurable scale:

* ``trajectories`` replaces the paper's M = 30 000 (runtime is linear in M,
  so simulator *ratios* are scale-invariant — see DESIGN.md),
* ``timeout`` replaces the paper's one-hour limit,
* the qubit sweeps default to laptop-scale ranges.

The returned :class:`TableReport` carries structured rows plus a renderer
producing the paper's layout (``n | baseline [s] | proposed [s]``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.library import QASMBENCH_CIRCUITS, ghz, qft
from ..noise.model import NoiseModel
from ..obs.metrics import derive_rates
from ..stochastic.properties import BasisProbability
from ..stochastic.runner import StochasticSimulator
from .runner import TimedRun, timed_stochastic_run
from .tables import format_cell, render_table

__all__ = ["TableReport", "run_table1a", "run_table1b", "run_table1c"]


@dataclass
class TableReport:
    """Structured result of one table regeneration."""

    title: str
    headers: Tuple[str, ...]
    #: row label -> backend -> TimedRun
    rows: List[Tuple[str, Dict[str, TimedRun]]] = field(default_factory=list)
    timeout: Optional[float] = None
    trajectories: int = 0

    def render(self) -> str:
        """Paper-layout plain-text table."""
        body = []
        for label, runs in self.rows:
            cells = [label]
            for backend in self.headers[1:]:
                run = runs.get(backend.split()[0])
                if run is None:
                    cells.append("-")
                elif run.infeasible:
                    cells.append("mem")
                else:
                    cells.append(format_cell(run.seconds, self.timeout))
            body.append(cells)
        return render_table(
            f"{self.title}  (M={self.trajectories}, timeout={self.timeout}s)",
            self.headers,
            body,
        )

    def metrics_sidecar(self) -> Dict[str, object]:
        """JSON-able observability companion to the rendered table.

        For every (row, backend) cell that produced a result: seconds,
        trajectory counts, CPU time, peak DD nodes, the raw metrics
        snapshot, and derived hit rates.  Written next to benchmark JSON by
        ``repro-sim table --metrics`` so a perf regression can be traced to
        the table behaviour that caused it.
        """
        rows: Dict[str, Dict[str, object]] = {}
        for label, runs in self.rows:
            entry: Dict[str, object] = {}
            for backend, run in runs.items():
                result = run.result
                if result is None:
                    entry[backend] = {
                        "seconds": run.seconds,
                        "infeasible": run.infeasible,
                    }
                    continue
                entry[backend] = {
                    "seconds": run.seconds,
                    "timed_out": result.timed_out,
                    "completed_trajectories": result.completed_trajectories,
                    "cpu_seconds": result.cpu_seconds,
                    "peak_nodes": result.peak_nodes,
                    "metrics": result.metrics,
                    "rates": derive_rates(result.metrics),
                }
            rows[label] = entry
        return {
            "schema": "repro.table-metrics/v1",
            "title": self.title,
            "trajectories": self.trajectories,
            "timeout": self.timeout,
            "rows": rows,
        }

    def speedups(self) -> Dict[str, Optional[float]]:
        """Baseline/proposed runtime ratio per row (None when incomparable)."""
        ratios: Dict[str, Optional[float]] = {}
        for label, runs in self.rows:
            baseline = runs.get("statevector")
            proposed = runs.get("dd")
            if (
                baseline is not None
                and proposed is not None
                and baseline.seconds
                and proposed.seconds
            ):
                ratios[label] = baseline.seconds / proposed.seconds
            else:
                ratios[label] = None
        return ratios


def _sweep(
    title: str,
    cases: Sequence[Tuple[str, QuantumCircuit]],
    backends: Sequence[str],
    trajectories: int,
    timeout: Optional[float],
    noise_model: Optional[NoiseModel],
    workers: int,
    properties_for: Callable[[QuantumCircuit], Sequence],
    skip_backend_after_timeout: bool = True,
) -> TableReport:
    report = TableReport(
        title=title,
        headers=("n",) + tuple(f"{b} [s]" for b in backends),
        timeout=timeout,
        trajectories=trajectories,
    )
    dead_backends = set()
    # One reusable simulator per backend: with workers > 1 its persistent
    # worker pool (repro.service.Scheduler) stays warm across every cell
    # of the sweep instead of being recreated per (circuit, backend) pair.
    simulators = {
        backend: StochasticSimulator(backend=backend, workers=workers)
        for backend in backends
    }
    try:
        for label, circuit in cases:
            runs: Dict[str, TimedRun] = {}
            for backend in backends:
                if backend in dead_backends:
                    runs[backend] = TimedRun(circuit.name, backend, None, None)
                    continue
                run = timed_stochastic_run(
                    circuit,
                    backend,
                    trajectories,
                    noise_model=noise_model,
                    properties=properties_for(circuit),
                    timeout=timeout,
                    workers=workers,
                    simulator=simulators[backend],
                )
                runs[backend] = run
                # Once a backend times out on a monotone sweep it will time
                # out on every larger instance; skip them like the paper's
                # ">3600" ellipsis rows.
                if skip_backend_after_timeout and not run.completed:
                    dead_backends.add(backend)
            report.rows.append((label, runs))
    finally:
        for simulator in simulators.values():
            simulator.close()
    return report


def run_table1a(
    qubit_range: Sequence[int] = (4, 8, 12, 16, 20, 24, 32, 48, 64),
    trajectories: int = 50,
    timeout: Optional[float] = 30.0,
    backends: Sequence[str] = ("statevector", "dd"),
    noise_model: Optional[NoiseModel] = None,
    workers: int = 1,
) -> TableReport:
    """Table Ia: the Entanglement (GHZ) scaling sweep."""
    cases = [(str(n), ghz(n)) for n in qubit_range]
    return _sweep(
        "Table Ia — Entanglement circuits",
        cases,
        backends,
        trajectories,
        timeout,
        noise_model,
        workers,
        properties_for=lambda circuit: (BasisProbability("0" * circuit.num_qubits),),
    )


def run_table1b(
    qubit_range: Sequence[int] = (4, 6, 8, 10, 12, 14, 16),
    trajectories: int = 50,
    timeout: Optional[float] = 30.0,
    backends: Sequence[str] = ("statevector", "dd"),
    noise_model: Optional[NoiseModel] = None,
    workers: int = 1,
) -> TableReport:
    """Table Ib: the QFT scaling sweep.

    Uses the swap-free QFT: under noise, the final qubit-reversal swap
    network acts on per-qubit states carrying O(eps) error tilts, and
    normalisation by eps-sized factors amplifies float noise past the
    canonicalisation tolerance — decision diagrams then fail to re-merge
    and grow exponentially (DESIGN.md, reproduction finding #2).  The
    paper's per-trajectory QFT runtimes are only consistent with the
    swap-free variant, which is also what most benchmark suites emit.
    """
    cases = [(str(n), qft(n, do_swaps=False)) for n in qubit_range]
    return _sweep(
        "Table Ib — QFT circuits",
        cases,
        backends,
        trajectories,
        timeout,
        noise_model,
        workers,
        properties_for=lambda circuit: (BasisProbability("0" * circuit.num_qubits),),
    )


def run_table1c(
    names: Optional[Sequence[str]] = None,
    trajectories: int = 20,
    timeout: Optional[float] = 60.0,
    backends: Sequence[str] = ("statevector", "dd"),
    noise_model: Optional[NoiseModel] = None,
    workers: int = 1,
) -> TableReport:
    """Table Ic: the QASMBench circuit selection.

    Rows are not a monotone sweep, so a timeout on one circuit does not
    skip the remaining rows.
    """
    if names is None:
        names = tuple(QASMBENCH_CIRCUITS)
    cases = []
    for name in names:
        qubits, generator = QASMBENCH_CIRCUITS[name]
        cases.append((f"{name} ({qubits})", generator()))
    return _sweep(
        "Table Ic — QASMBench circuits",
        cases,
        backends,
        trajectories,
        timeout,
        noise_model,
        workers,
        properties_for=lambda circuit: (),
        skip_backend_after_timeout=False,
    )
