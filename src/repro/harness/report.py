"""Markdown experiment reports.

Converts :class:`~repro.harness.table1.TableReport` objects (and ad-hoc
measurements) into the Markdown sections EXPERIMENTS.md is built from, so
the paper-versus-measured record can be regenerated mechanically::

    from repro.harness import run_table1a, report_markdown
    print(report_markdown([run_table1a()], title="Reproduction run"))
"""

from __future__ import annotations

import platform
import sys
from typing import Iterable, List, Optional

from .table1 import TableReport
from .tables import format_cell

__all__ = ["table_markdown", "report_markdown"]


def table_markdown(report: TableReport) -> str:
    """One TableReport as a GitHub-flavoured Markdown table."""
    headers = list(report.headers) + ["speedup (sv/dd)"]
    lines = [
        f"### {report.title}",
        "",
        f"M = {report.trajectories}, timeout = {report.timeout} s.",
        "",
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    speedups = report.speedups()
    for label, runs in report.rows:
        cells: List[str] = [label]
        for backend_header in report.headers[1:]:
            backend = backend_header.split()[0]
            run = runs.get(backend)
            if run is None:
                cells.append("-")
            elif run.infeasible:
                cells.append("mem")
            else:
                cells.append(format_cell(run.seconds, report.timeout))
        ratio = speedups.get(label)
        cells.append(f"{ratio:.1f}x" if ratio else "—")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def report_markdown(
    reports: Iterable[TableReport],
    title: str = "Benchmark report",
    notes: Optional[str] = None,
) -> str:
    """A full Markdown document for a set of table regenerations."""
    sections = [
        f"# {title}",
        "",
        f"Python {sys.version.split()[0]} on {platform.platform()}.",
        "",
    ]
    if notes:
        sections.extend([notes, ""])
    for report in reports:
        sections.append(table_markdown(report))
        sections.append("")
    return "\n".join(sections).rstrip() + "\n"
