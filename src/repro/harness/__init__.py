"""Benchmark harness: timed runs and paper-table regeneration."""

from .report import report_markdown, table_markdown
from .runner import TimedRun, timed_stochastic_run
from .table1 import TableReport, run_table1a, run_table1b, run_table1c
from .tables import format_cell, render_table

__all__ = [
    "TableReport",
    "TimedRun",
    "format_cell",
    "render_table",
    "report_markdown",
    "run_table1a",
    "run_table1b",
    "run_table1c",
    "table_markdown",
    "timed_stochastic_run",
]
