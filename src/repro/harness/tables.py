"""Plain-text table rendering for benchmark reports.

Produces the same row layout as the paper's Table I: one row per circuit
size/name, one runtime column per simulator, with ``>T`` markers for runs
that hit the timeout — so harness output can be compared to the published
tables side by side.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["format_cell", "render_table"]


def format_cell(seconds: Optional[float], timeout: Optional[float]) -> str:
    """Format one runtime cell; ``None`` means the run exceeded ``timeout``."""
    if seconds is None:
        if timeout is None:
            return "n/a"
        return f">{timeout:g}"
    if seconds >= 100.0:
        return f"{seconds:.1f}"
    return f"{seconds:.2f}"


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
) -> str:
    """Render an aligned plain-text table with a title line."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    separator = "-+-".join("-" * width for width in widths)
    body = [title, line(headers), separator]
    body.extend(line(row) for row in rows)
    return "\n".join(body)
