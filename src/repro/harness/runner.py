"""Timed benchmark execution with timeouts.

The paper's evaluation runs every benchmark with a fixed Monte-Carlo budget
(M = 30 000) under a one-hour per-case limit and reports wall-clock seconds,
with ``> 3600`` for timeouts.  :func:`timed_stochastic_run` reproduces that
protocol at configurable scale: it runs the stochastic simulator with a
wall-clock budget and reports either the elapsed seconds or a timeout
marker.

Because a dense state vector over many qubits cannot even be *allocated*,
attempts to run the baseline far beyond its feasible range are reported as
``infeasible`` — equivalent to the paper's timeout entries, where the
array simulators could not complete either.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..noise.model import NoiseModel
from ..stochastic.properties import PropertySpec
from ..stochastic.runner import StochasticSimulator, simulate_stochastic
from ..stochastic.results import StochasticResult

__all__ = ["TimedRun", "timed_stochastic_run"]


@dataclass
class TimedRun:
    """Outcome of one timed benchmark case."""

    circuit_name: str
    backend: str
    seconds: Optional[float]  #: None when the case timed out / was infeasible
    result: Optional[StochasticResult]
    infeasible: bool = False

    @property
    def completed(self) -> bool:
        """True when the full trajectory budget finished inside the limit."""
        return self.seconds is not None


def timed_stochastic_run(
    circuit: QuantumCircuit,
    backend: str,
    trajectories: int,
    noise_model: Optional[NoiseModel] = None,
    properties: Sequence[PropertySpec] = (),
    timeout: Optional[float] = None,
    workers: int = 1,
    seed: int = 0,
    sample_shots: int = 1,
    simulator: Optional[StochasticSimulator] = None,
) -> TimedRun:
    """Run one benchmark case under a wall-clock budget.

    Returns a :class:`TimedRun` whose ``seconds`` is ``None`` when the case
    exceeded ``timeout`` or was infeasible for the backend (dense state
    vectors beyond the memory cap).

    ``simulator`` may carry a pre-built :class:`StochasticSimulator` whose
    persistent worker pool is then reused across benchmark cases — the
    table sweeps pass one per backend so worker processes warm up once
    per table instead of once per cell.
    """
    if noise_model is None:
        noise_model = NoiseModel.paper_defaults()
    started = time.perf_counter()
    try:
        if simulator is not None:
            result = simulator.run(
                circuit,
                noise_model=noise_model,
                properties=properties,
                trajectories=trajectories,
                seed=seed,
                sample_shots=sample_shots,
                timeout=timeout,
            )
        else:
            result = simulate_stochastic(
                circuit,
                noise_model=noise_model,
                properties=properties,
                trajectories=trajectories,
                backend=backend,
                workers=workers,
                seed=seed,
                sample_shots=sample_shots,
                timeout=timeout,
            )
    except ValueError as error:
        if "refusing" in str(error):
            return TimedRun(circuit.name, backend, None, None, infeasible=True)
        raise
    elapsed = time.perf_counter() - started
    if result.timed_out:
        return TimedRun(circuit.name, backend, None, result)
    return TimedRun(circuit.name, backend, elapsed, result)
