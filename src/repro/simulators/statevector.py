"""Dense state-vector backend (the array-based baseline).

This is the reproduction's stand-in for the paper's comparison simulators —
Qiskit's ``statevector`` simulator and Atos QLM's ``LinAlg`` engine (both
closed to this offline environment).  Like them it stores all ``2**n``
amplitudes in a flat array and pays O(2**n) work per gate, which is exactly
the scaling behaviour Tables Ia-Ic measure against.

Gates are applied in-place through NumPy tensor views: the state is held as
an ``(2,) * n`` array whose axis ``q`` is qubit ``q`` (qubit 0 most
significant, the paper's convention), controls select sub-views, and the
2x2 matrix contracts against the target axis.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["StatevectorBackend"]


class StatevectorBackend:
    """Array-based simulator backend implementing :class:`StateBackend`."""

    def __init__(self, num_qubits: int, initial_state: Optional[np.ndarray] = None) -> None:
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        if num_qubits > 30:
            raise ValueError(
                f"a dense state vector over {num_qubits} qubits needs "
                f"{(2 ** num_qubits * 16) / 2 ** 30:.0f} GiB — refusing"
            )
        self.num_qubits = num_qubits
        if initial_state is None:
            state = np.zeros(2**num_qubits, dtype=complex)
            state[0] = 1.0
        else:
            state = np.asarray(initial_state, dtype=complex).reshape(-1)
            if state.shape[0] != 2**num_qubits:
                raise ValueError("initial state has wrong dimension")
        self._state = state.reshape((2,) * num_qubits)

    # ------------------------------------------------------------------
    # Gate application
    # ------------------------------------------------------------------

    def apply_gate(self, matrix: np.ndarray, target: int, controls: Dict[int, int]) -> None:
        """Apply a controlled single-qubit unitary in place.

        Diagonal gates (phase rotations — the bulk of QFT-style circuits)
        take a fast path: an in-place scalar multiply of the two target
        slices instead of a tensor contraction.
        """
        matrix = np.asarray(matrix, dtype=complex)
        if matrix[0, 1] == 0 and matrix[1, 0] == 0:
            self._apply_diagonal(matrix, target, controls)
            return
        view, view_target = self._control_view(target, controls)
        updated = np.tensordot(matrix, view, axes=([1], [view_target]))
        updated = np.moveaxis(updated, 0, view_target)
        if controls:
            index = self._control_index(controls)
            self._state[index] = updated
        else:
            self._state = np.ascontiguousarray(updated)

    def _apply_diagonal(
        self, matrix: np.ndarray, target: int, controls: Dict[int, int]
    ) -> None:
        for bit in range(2):
            factor = matrix[bit, bit]
            if factor == 1:
                continue
            index = [slice(None)] * self.num_qubits
            for qubit, polarity in controls.items():
                index[qubit] = polarity
            index[target] = bit
            self._state[tuple(index)] *= factor

    def _control_index(self, controls: Dict[int, int]):
        index = [slice(None)] * self.num_qubits
        for qubit, polarity in controls.items():
            index[qubit] = polarity
        return tuple(index)

    def _control_view(self, target: int, controls: Dict[int, int]):
        """Sub-view selected by the controls plus the target's axis there."""
        if not controls:
            return self._state, target
        index = self._control_index(controls)
        view = self._state[index]
        # Axes before `target` that were consumed by integer indexing shift
        # the target's position in the reduced view.
        consumed = sum(1 for qubit in controls if qubit < target)
        return view, target - consumed

    # ------------------------------------------------------------------
    # Probabilities and measurement
    # ------------------------------------------------------------------

    def probability_of_one(self, qubit: int) -> float:
        index = [slice(None)] * self.num_qubits
        index[qubit] = 1
        slice_one = self._state[tuple(index)]
        total = float(np.vdot(self._state, self._state).real)
        return float(np.vdot(slice_one, slice_one).real) / total

    def measure(self, qubit: int, rng: random.Random) -> int:
        p_one = self.probability_of_one(qubit)
        outcome = 1 if rng.random() < p_one else 0
        index = [slice(None)] * self.num_qubits
        index[qubit] = 1 - outcome
        self._state[tuple(index)] = 0.0
        norm = math.sqrt(float(np.vdot(self._state, self._state).real))
        self._state /= norm
        return outcome

    def reset(self, qubit: int, rng: random.Random) -> None:
        outcome = self.measure(qubit, rng)
        if outcome == 1:
            x_matrix = np.array([[0, 1], [1, 0]], dtype=complex)
            self.apply_gate(x_matrix, qubit, {})

    def apply_kraus_branch(
        self, kraus_operators: Sequence[np.ndarray], qubit: int, rng: random.Random
    ) -> int:
        """State-dependent Kraus branch selection (paper Example 6)."""
        candidates = []
        probabilities = []
        for kraus in kraus_operators:
            view, view_target = self._control_view(qubit, {})
            candidate = np.tensordot(np.asarray(kraus, dtype=complex), view, axes=([1], [view_target]))
            candidate = np.moveaxis(candidate, 0, view_target)
            weight = float(np.vdot(candidate, candidate).real)
            candidates.append(candidate)
            probabilities.append(weight)
        total = sum(probabilities)
        if total <= 0.0:
            raise ValueError("Kraus branch probabilities sum to zero")
        pick = rng.random() * total
        cumulative = 0.0
        chosen = len(candidates) - 1
        for index, weight in enumerate(probabilities):
            cumulative += weight
            if pick < cumulative:
                chosen = index
                break
        state = candidates[chosen]
        self._state = np.ascontiguousarray(state / math.sqrt(probabilities[chosen]))
        return chosen

    # ------------------------------------------------------------------
    # Properties and sampling
    # ------------------------------------------------------------------

    def probability_of_basis(self, bits: Sequence[int]) -> float:
        amplitude = self._state[tuple(int(b) for b in bits)]
        return float(abs(amplitude) ** 2)

    def snapshot(self) -> np.ndarray:
        return self._state.reshape(-1).copy()

    def fidelity(self, handle: np.ndarray) -> float:
        overlap = np.vdot(handle, self._state.reshape(-1))
        return float(abs(overlap) ** 2)

    def statevector(self) -> np.ndarray:
        return self._state.reshape(-1).copy()

    def pauli_expectation(self, pauli: str) -> float:
        """Expectation value ``<psi| P |psi>`` of a Pauli string.

        ``pauli`` has one letter (I/X/Y/Z) per qubit, qubit 0 leftmost.
        """
        if len(pauli) != self.num_qubits:
            raise ValueError(
                f"Pauli string must have {self.num_qubits} letters, got {len(pauli)}"
            )
        matrices = {
            "X": np.array([[0, 1], [1, 0]], dtype=complex),
            "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
            "Z": np.array([[1, 0], [0, -1]], dtype=complex),
        }
        transformed = self._state
        for qubit, letter in enumerate(pauli.upper()):
            if letter == "I":
                continue
            if letter not in matrices:
                raise ValueError(f"invalid Pauli letter {letter!r}")
            transformed = np.moveaxis(
                np.tensordot(matrices[letter], transformed, axes=([1], [qubit])),
                0,
                qubit,
            )
        return float(np.vdot(self._state, transformed).real)

    def sample_counts(self, shots: int, rng: random.Random) -> Dict[str, int]:
        probabilities = np.abs(self._state.reshape(-1)) ** 2
        probabilities = probabilities / probabilities.sum()
        # Use the provided rng for reproducibility across backends.
        counts: Dict[str, int] = {}
        cumulative = np.cumsum(probabilities)
        for _ in range(shots):
            index = int(np.searchsorted(cumulative, rng.random(), side="right"))
            index = min(index, len(probabilities) - 1)
            key = format(index, f"0{self.num_qubits}b")
            counts[key] = counts.get(key, 0) + 1
        return counts
