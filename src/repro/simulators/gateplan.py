"""Compiled gate plans: the per-(backend, circuit) operator schedule.

``execute_circuit`` re-derives every operation's dense matrix (and, on the
DD backend, re-keys the package's gate cache by matrix bytes) on *every*
trajectory.  A :class:`GatePlan` hoists that work out of the Monte-Carlo
loop: each operation is resolved **once** into a :class:`PlanStep` holding
its precomputed matrix and — when compiled against a DD package — its
pinned operator DD, so applying a gate during a trajectory is a single
``multiply`` with no cache-key traffic.

Two further services live here because they share the same operator cache:

* **Single-qubit fusion** (``fuse=True``): maximal runs of uncontrolled,
  unconditioned single-qubit gates are collapsed into one matrix product
  per wire.  Fusion changes floating-point rounding and merges the noise
  layer's per-gate error-insertion slots, so the stochastic runner never
  fuses — the option serves purely-unitary consumers such as
  :func:`repro.simulators.unitary.circuit_unitary_dd`.
* :class:`NoiseOperatorCache`: the tiny Pauli / amplitude-damping Kraus
  operator DDs the stochastic error applier fires, built once per package
  instead of once per firing (counted as ``gateplan.noise_compiled`` /
  ``gateplan.noise_hits``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.operations import (
    BarrierOperation,
    GateOperation,
    MeasureOperation,
    ResetOperation,
)

__all__ = ["PlanStep", "GatePlan", "compile_plan", "NoiseOperatorCache"]

GATE = "gate"
MEASURE = "measure"
RESET = "reset"


class PlanStep:
    """One resolved instruction of a compiled plan."""

    __slots__ = (
        "kind",
        "name",
        "qubits",
        "target",
        "controls",
        "matrix",
        "condition",
        "gate_edge",
        "adjoint_edge",
        "clbit",
    )

    def __init__(
        self,
        kind: str,
        name: str,
        qubits: Tuple[int, ...],
        target: int = 0,
        controls: Optional[Dict[int, int]] = None,
        matrix: Optional[np.ndarray] = None,
        condition=None,
        clbit: int = 0,
    ) -> None:
        self.kind = kind
        self.name = name
        self.qubits = qubits
        self.target = target
        self.controls = controls if controls is not None else {}
        self.matrix = matrix
        self.condition = condition
        #: Operator DD pinned in the compiling package (DD plans only).
        self.gate_edge = None
        #: Adjoint operator DD (``U^dagger``), resolved only for plans
        #: compiled with ``adjoints=True`` — the density-matrix backend
        #: needs both sides of ``U rho U^dagger`` per step.
        self.adjoint_edge = None
        self.clbit = clbit


class GatePlan:
    """A circuit compiled into an executable step schedule.

    ``package`` records which DD package the ``gate_edge`` fields belong
    to; the executor falls back to the matrix path when run against a
    backend with a different (or no) package.
    """

    def __init__(self, circuit: QuantumCircuit, fused: bool) -> None:
        self.circuit_name = circuit.name
        self.num_qubits = circuit.num_qubits
        self.num_clbits = circuit.num_clbits
        self.fused = fused
        self.steps: List[PlanStep] = []
        self.package = None
        #: Gate DDs freshly built for this plan (cache misses during compile).
        self.compiled_gates = 0
        #: Source gates absorbed into another step by single-qubit fusion.
        self.fused_gates = 0

    def gate_step_count(self) -> int:
        return sum(1 for step in self.steps if step.kind == GATE)


def _flush_pending(
    pending: "Dict[int, Tuple[np.ndarray, List[str]]]", steps: List[PlanStep]
) -> int:
    """Emit pending fused runs (ascending wire order) and count absorptions."""
    absorbed = 0
    for qubit in sorted(pending):
        matrix, names = pending[qubit]
        name = names[0] if len(names) == 1 else "fused[" + ".".join(names) + "]"
        steps.append(
            PlanStep(GATE, name, (qubit,), target=qubit, matrix=matrix)
        )
        absorbed += len(names) - 1
    pending.clear()
    return absorbed


def compile_plan(
    circuit: QuantumCircuit, package=None, fuse: bool = False, adjoints: bool = False
) -> GatePlan:
    """Compile ``circuit`` into a :class:`GatePlan`.

    ``package`` — a :class:`~repro.dd.package.DDPackage` — additionally
    resolves every gate step to its operator DD (pinned by the package's
    gate cache).  Barriers are dropped from the schedule but, under
    ``fuse=True``, still act as fusion fences: gates are never merged
    across one.

    ``adjoints=True`` additionally resolves each gate step's
    ``adjoint_edge``: the adjoint of a controlled gate is the same
    controlled structure around ``U^dagger`` (controls project onto
    diagonal blocks), so both edges share the package's gate cache and
    its pinning.  Density-matrix consumers apply each step as
    ``gate_edge @ rho @ adjoint_edge`` without any per-step adjoint
    recomputation.
    """
    plan = GatePlan(circuit, fused=fuse)
    steps = plan.steps
    pending: Dict[int, Tuple[np.ndarray, List[str]]] = {}
    for operation in circuit:
        if isinstance(operation, BarrierOperation):
            plan.fused_gates += _flush_pending(pending, steps)
            continue
        if isinstance(operation, MeasureOperation):
            plan.fused_gates += _flush_pending(pending, steps)
            steps.append(
                PlanStep(
                    MEASURE,
                    "measure",
                    (operation.qubit,),
                    target=operation.qubit,
                    clbit=operation.clbit,
                )
            )
            continue
        if isinstance(operation, ResetOperation):
            plan.fused_gates += _flush_pending(pending, steps)
            steps.append(
                PlanStep(RESET, "reset", (operation.qubit,), target=operation.qubit)
            )
            continue
        assert isinstance(operation, GateOperation)
        matrix = np.ascontiguousarray(operation.matrix(), dtype=complex)
        controls = operation.control_dict()
        fusable = fuse and not controls and operation.condition is None
        if fusable:
            entry = pending.get(operation.target)
            if entry is None:
                pending[operation.target] = (matrix, [operation.name])
            else:
                pending[operation.target] = (
                    np.ascontiguousarray(matrix @ entry[0]),
                    entry[1] + [operation.name],
                )
            continue
        if not fuse or controls or operation.condition is not None:
            # Any op we cannot fuse fences every pending run: conditions
            # read classical state and multi-qubit gates order against both
            # of their wires, so commuting past them is not attempted.
            plan.fused_gates += _flush_pending(pending, steps)
        steps.append(
            PlanStep(
                GATE,
                operation.name,
                operation.qubits,
                target=operation.target,
                controls=controls,
                matrix=matrix,
                condition=operation.condition,
            )
        )
    plan.fused_gates += _flush_pending(pending, steps)
    if package is not None:
        plan.package = package
        before = package.gate_cache_size()
        for step in steps:
            if step.kind == GATE:
                step.gate_edge = package.gate(
                    step.matrix, step.target, step.controls, plan.num_qubits
                )
                if adjoints:
                    step.adjoint_edge = package.gate(
                        np.ascontiguousarray(step.matrix.conj().T),
                        step.target,
                        step.controls,
                        plan.num_qubits,
                    )
        plan.compiled_gates = package.gate_cache_size() - before
    else:
        plan.compiled_gates = plan.gate_step_count()
    return plan


class NoiseOperatorCache:
    """Per-package cache of the noise layer's tiny operator DDs.

    The stochastic error applier historically passed raw numpy matrices to
    ``backend.apply_gate`` / ``apply_kraus_branch`` on every firing, paying
    the gate-cache keying (``tobytes`` + dict hash) each time.  This cache
    resolves each (operator, qubit) pair to its DD once; the returned edges
    are pinned by the package's gate cache, so a fired error costs exactly
    one DD multiply.
    """

    def __init__(self, package, num_qubits: int) -> None:
        self.package = package
        self.num_qubits = num_qubits
        self._ops: Dict[tuple, object] = {}
        self._compiled = package.metrics.counter("gateplan.noise_compiled")
        self._hits = package.metrics.counter("gateplan.noise_hits")

    def operator(self, key: tuple, matrix: np.ndarray):
        edge = self._ops.get(key)
        if edge is None:
            qubit = key[-1]
            edge = self.package.gate(
                np.asarray(matrix, dtype=complex), qubit, None, self.num_qubits
            )
            self._ops[key] = edge
            self._compiled.inc()
        else:
            self._hits.inc()
        return edge

    def single_qubit(self, name: str, matrix: np.ndarray, qubit: int):
        """Cached DD for an uncontrolled single-qubit operator on ``qubit``."""
        return self.operator((name, qubit), matrix)

    def kraus_pair(self, name: str, operators, qubit: int) -> tuple:
        """Cached DDs for a Kraus operator list (keyed per branch index)."""
        return tuple(
            self.operator((name, index, qubit), kraus)
            for index, kraus in enumerate(operators)
        )

    def operator_pair(self, key: tuple, matrix: np.ndarray) -> tuple:
        """Cached ``(K, K^dagger)`` operator-DD pair for one Kraus branch.

        The adjoint shares the cache under a ``"dag"``-marked key (the
        marker sits before the qubit — :meth:`operator` reads the target
        qubit from ``key[-1]``), so a channel applied after every gate of
        a circuit compiles each side exactly once per package.
        """
        matrix = np.asarray(matrix, dtype=complex)
        dag_key = key[:-1] + ("dag", key[-1])
        return (
            self.operator(key, matrix),
            self.operator(dag_key, np.ascontiguousarray(matrix.conj().T)),
        )

    def kraus_pairs_with_adjoints(self, name: str, operators, qubit: int) -> tuple:
        """Cached ``(K, K^dagger)`` pairs for a whole Kraus operator list.

        The superoperator consumer (``repro.exact``) applies each branch as
        ``K rho K^dagger`` — two DD multiplications per pair.
        """
        return tuple(
            self.operator_pair((name, index, qubit), kraus)
            for index, kraus in enumerate(operators)
        )
