"""Exact density-matrix simulator — the correctness oracle.

The paper contrasts stochastic simulation with the exact mixed-state
formalism ("quantum channels and mixed states", Section III): tracking the
full ``2**n x 2**n`` density matrix makes an exponentially hard problem even
harder, but for small registers it yields the *exact* output distribution.
This module implements that formalism so the test suite and the
``bench_stochastic_vs_exact`` ablation can validate the Monte-Carlo
estimates against ground truth (Theorem 1's guarantee).

The density matrix is held as a ``(2,) * 2n`` tensor — row (ket) axes
``0..n-1``, column (bra) axes ``n..2n-1`` — and every operator application
is a pair of tensor contractions (``rho -> K rho K^dagger``), with control
qubits handled by sub-view slicing on both sides, mirroring the
state-vector backend.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.operations import (
    BarrierOperation,
    GateOperation,
    MeasureOperation,
    ResetOperation,
)
from ..errors import ResourceLimitError

__all__ = ["DensityMatrixSimulator"]

_MAX_QUBITS = 13  # 2^13 x 2^13 complex doubles = 1 GiB; a hard safety cap


class DensityMatrixSimulator:
    """Exact noisy simulator evolving the full density matrix."""

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        if num_qubits > _MAX_QUBITS:
            estimated_bytes = (2**num_qubits) ** 2 * 16
            raise ResourceLimitError(
                f"a dense density matrix over {num_qubits} qubits needs "
                f"2^{num_qubits} x 2^{num_qubits} complex doubles "
                f"(~{estimated_bytes / 2**30:.1f} GiB), past the "
                f"{_MAX_QUBITS}-qubit safety cap; use the decision-diagram "
                f"exact backend (repro.exact.ExactSimulator) instead — it "
                f"represents rho structurally and has no fixed qubit cap",
                qubits=num_qubits,
                estimated_bytes=estimated_bytes,
            )
        self.num_qubits = num_qubits
        rho = np.zeros((2**num_qubits, 2**num_qubits), dtype=complex)
        rho[0, 0] = 1.0
        self._rho = rho.reshape((2,) * (2 * num_qubits))

    # ------------------------------------------------------------------
    # Operator application
    # ------------------------------------------------------------------

    def _apply_one_side(
        self,
        matrix: np.ndarray,
        target: int,
        controls: Dict[int, int],
        bra_side: bool,
    ) -> None:
        """Apply ``matrix`` (or its conjugate on the bra side) to one index."""
        offset = self.num_qubits if bra_side else 0
        operator = np.conj(matrix) if bra_side else matrix
        index: List = [slice(None)] * (2 * self.num_qubits)
        for qubit, polarity in controls.items():
            index[offset + qubit] = polarity
        index_tuple = tuple(index)
        view = self._rho[index_tuple]
        # Integer-indexed control axes before the target (on this side only)
        # shift the target's axis position within the reduced view.
        consumed = sum(1 for qubit in controls if qubit < target)
        axis = offset + target - consumed
        updated = np.tensordot(operator, view, axes=([1], [axis]))
        updated = np.moveaxis(updated, 0, axis)
        if controls:
            self._rho[index_tuple] = updated
        else:
            self._rho = np.ascontiguousarray(updated)

    def apply_gate(self, matrix: np.ndarray, target: int, controls: Dict[int, int]) -> None:
        """Unitary conjugation ``rho -> U rho U^dagger``."""
        matrix = np.asarray(matrix, dtype=complex)
        self._apply_one_side(matrix, target, controls, bra_side=False)
        self._apply_one_side(matrix, target, controls, bra_side=True)

    def apply_channel(self, kraus_operators: Sequence[np.ndarray], qubit: int) -> None:
        """Single-qubit channel ``rho -> sum_k K rho K^dagger``."""
        total = None
        original = self._rho
        for kraus in kraus_operators:
            kraus = np.asarray(kraus, dtype=complex)
            self._rho = original
            self._apply_one_side(kraus, qubit, {}, bra_side=False)
            self._apply_one_side(kraus, qubit, {}, bra_side=True)
            term = self._rho
            total = term if total is None else total + term
        assert total is not None
        self._rho = total

    def apply_correlated_pauli_channel(
        self, probability: float, qubit_a: int, qubit_b: int
    ) -> None:
        """Two-qubit correlated depolarization (crosstalk).

        ``rho -> (1 - p) rho + (p/16) sum_{i,j} (P_i (x) P_j) rho (...)``,
        the channel induced by applying a uniformly random two-qubit Pauli
        with probability ``p`` (the stochastic crosstalk mechanism).
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError("crosstalk probability must lie in [0, 1]")
        if probability == 0.0:
            return
        from ..noise.channels import DEPOLARIZING_PAULIS

        original = self._rho
        total = (1.0 - probability) * original
        for first in DEPOLARIZING_PAULIS:
            for second in DEPOLARIZING_PAULIS:
                self._rho = original
                self._apply_one_side(first, qubit_a, {}, bra_side=False)
                self._apply_one_side(first, qubit_a, {}, bra_side=True)
                self._apply_one_side(second, qubit_b, {}, bra_side=False)
                self._apply_one_side(second, qubit_b, {}, bra_side=True)
                total = total + (probability / 16.0) * self._rho
        self._rho = total

    # ------------------------------------------------------------------
    # Measurement statistics
    # ------------------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Diagonal of the density matrix: all basis-state probabilities."""
        dense = self._rho.reshape(2**self.num_qubits, 2**self.num_qubits)
        return np.real(np.diag(dense)).copy()

    def probability_of_basis(self, bits: Sequence[int]) -> float:
        """Probability of one computational basis outcome."""
        index = tuple(int(b) for b in bits) * 2
        return float(np.real(self._rho[index]))

    def probability_of_one(self, qubit: int) -> float:
        """Marginal probability that ``qubit`` reads 1."""
        probs = self.probabilities()
        total = 0.0
        shift = self.num_qubits - 1 - qubit
        for basis_index, probability in enumerate(probs):
            if (basis_index >> shift) & 1:
                total += probability
        return total

    def fidelity_with_pure(self, statevector: np.ndarray) -> float:
        """``<psi| rho |psi>`` against a pure reference state."""
        psi = np.asarray(statevector, dtype=complex).reshape(-1)
        dense = self._rho.reshape(2**self.num_qubits, 2**self.num_qubits)
        return float(np.real(np.vdot(psi, dense @ psi)))

    def expectation_z(self, qubit: int) -> float:
        """Expectation value of Pauli Z on ``qubit``."""
        return 1.0 - 2.0 * self.probability_of_one(qubit)

    def density_matrix(self) -> np.ndarray:
        """Dense copy of the density matrix."""
        return self._rho.reshape(2**self.num_qubits, 2**self.num_qubits).copy()

    def purity(self) -> float:
        """``Tr(rho^2)`` — 1 for pure states, 1/2^n for maximally mixed."""
        dense = self._rho.reshape(2**self.num_qubits, 2**self.num_qubits)
        return float(np.real(np.trace(dense @ dense)))

    # ------------------------------------------------------------------
    # Non-unitary circuit operations (deterministic ensemble semantics)
    # ------------------------------------------------------------------

    def dephase_measure(self, qubit: int) -> None:
        """Non-selective measurement: kill coherences of ``qubit``.

        The exact-ensemble counterpart of a mid-circuit measurement whose
        outcome is immediately averaged over (valid for circuits that do not
        classically condition on the result).
        """
        projectors = (
            np.array([[1, 0], [0, 0]], dtype=complex),
            np.array([[0, 0], [0, 1]], dtype=complex),
        )
        self.apply_channel(projectors, qubit)

    def reset_qubit(self, qubit: int) -> None:
        """Trace-out-and-reprepare reset channel."""
        kraus = (
            np.array([[1, 0], [0, 0]], dtype=complex),
            np.array([[0, 1], [0, 0]], dtype=complex),
        )
        self.apply_channel(kraus, qubit)

    def run_circuit(
        self,
        circuit: QuantumCircuit,
        channel_factory=None,
    ) -> None:
        """Execute a circuit exactly, applying noise channels after gates.

        ``channel_factory(gate_name, qubit)`` returns a list of Kraus-operator
        lists to apply to ``qubit`` after each gate (empty/None for noiseless).
        Classically conditioned gates are rejected — in the ensemble picture
        there is no single classical record to condition on.
        """
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit width does not match the simulator")
        for operation in circuit:
            if isinstance(operation, BarrierOperation):
                continue
            if isinstance(operation, MeasureOperation):
                # Readout misassignment acts before the measurement itself.
                self._post_gate_noise(channel_factory, "readout", operation.qubits)
                self.dephase_measure(operation.qubit)
                self._post_gate_noise(channel_factory, "measure", operation.qubits)
                continue
            if isinstance(operation, ResetOperation):
                self.reset_qubit(operation.qubit)
                self._post_gate_noise(channel_factory, "reset", operation.qubits)
                continue
            assert isinstance(operation, GateOperation)
            if operation.condition is not None:
                raise ValueError(
                    "density-matrix oracle cannot run classically conditioned gates"
                )
            self.apply_gate(operation.matrix(), operation.target, operation.control_dict())
            self._post_gate_noise(channel_factory, operation.name, operation.qubits)

    def _post_gate_noise(self, channel_factory, gate_name: str, qubits) -> None:
        if channel_factory is None:
            return
        for qubit in qubits:
            for kraus_operators in channel_factory(gate_name, qubit):
                self.apply_channel(kraus_operators, qubit)

    def run_circuit_with_model(self, circuit: QuantumCircuit, noise_model) -> None:
        """Execute a circuit exactly under a :class:`NoiseModel`.

        Equivalent to :meth:`run_circuit` with
        :func:`~repro.noise.stochastic.exact_channel_factory`, plus the
        pairwise crosstalk channel on multi-qubit gates (which the per-qubit
        factory interface cannot express).
        """
        from ..noise.stochastic import exact_channel_factory

        factory = exact_channel_factory(noise_model)
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit width does not match the simulator")
        for operation in circuit:
            if isinstance(operation, BarrierOperation):
                continue
            if isinstance(operation, MeasureOperation):
                self._post_gate_noise(factory, "readout", operation.qubits)
                self.dephase_measure(operation.qubit)
                self._post_gate_noise(factory, "measure", operation.qubits)
                continue
            if isinstance(operation, ResetOperation):
                self.reset_qubit(operation.qubit)
                self._post_gate_noise(factory, "reset", operation.qubits)
                continue
            assert isinstance(operation, GateOperation)
            if operation.condition is not None:
                raise ValueError(
                    "density-matrix oracle cannot run classically conditioned gates"
                )
            self.apply_gate(operation.matrix(), operation.target, operation.control_dict())
            self._post_gate_noise(factory, operation.name, operation.qubits)
            touched = operation.qubits
            if len(touched) >= 2:
                for pair in zip(touched, touched[1:]):
                    rate = noise_model.rates_for(operation.name, pair[1]).crosstalk
                    if rate > 0.0:
                        self.apply_correlated_pauli_channel(rate, pair[0], pair[1])
