"""Simulator backends: DD-based (proposed), state-vector (baseline), and
the exact density-matrix oracle."""

from .base import ErrorHook, RunResult, StateBackend, execute_circuit
from .ddsim import DDBackend
from .density_matrix import DensityMatrixSimulator
from .statevector import StatevectorBackend
from .unitary import circuit_unitary_dd, circuit_unitary_matrix, circuits_equivalent

__all__ = [
    "DDBackend",
    "DensityMatrixSimulator",
    "ErrorHook",
    "RunResult",
    "StateBackend",
    "StatevectorBackend",
    "circuit_unitary_dd",
    "circuit_unitary_matrix",
    "circuits_equivalent",
    "execute_circuit",
]
