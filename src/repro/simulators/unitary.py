"""Whole-circuit unitary construction as a matrix decision diagram.

Multiplying a circuit's gate DDs together yields the full circuit unitary
as one matrix DD — the matrix-matrix counterpart of simulation that the
paper's reference [37] (Zulehner/Wille, *"Matrix-Vector vs. Matrix-Matrix
Multiplication"*, DATE 2019) studies.  Uses:

* :func:`circuit_unitary_dd` — the circuit's unitary as a matrix DD (and
  :func:`circuit_unitary_matrix` as a dense array for small registers);
* :func:`circuits_equivalent` — DD-based equivalence checking in the style
  of the JKU QCEC line of work: compute ``U_1 @ U_2^dagger`` and test it
  against the identity up to a global phase.  Decision diagrams make this
  exact and often cheap, because the product collapses to the (linear-size)
  identity DD precisely when the circuits match.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.operations import BarrierOperation, GateOperation
from ..dd.edge import Edge
from ..dd.package import DDPackage
from .gateplan import compile_plan

__all__ = [
    "circuit_unitary_dd",
    "circuit_unitary_matrix",
    "circuits_equivalent",
]


def _require_unitary(circuit: QuantumCircuit) -> None:
    for operation in circuit:
        if isinstance(operation, BarrierOperation):
            continue
        if not isinstance(operation, GateOperation):
            raise ValueError(
                "circuit contains non-unitary operations (measure/reset); "
                "its action is not a single unitary"
            )
        if operation.condition is not None:
            raise ValueError("classically conditioned gates have no fixed unitary")


def circuit_unitary_dd(
    circuit: QuantumCircuit, package: Optional[DDPackage] = None
) -> Tuple[DDPackage, Edge]:
    """Build the circuit's unitary as a matrix DD.

    Returns the package used (created on demand) and the root edge.  The
    circuit must be purely unitary (no measurements, resets, or classical
    conditions).  Compiles through a fused
    :func:`~repro.simulators.gateplan.compile_plan` schedule: maximal runs
    of uncontrolled single-qubit gates collapse into one operator each
    before any matrix-matrix multiply, shrinking the product chain.  (The
    stochastic runner never fuses — see the gateplan module docs — but a
    whole-circuit unitary has no per-gate error-insertion slots to keep.)
    """
    _require_unitary(circuit)
    if package is None:
        package = DDPackage(circuit.num_qubits)
    plan = compile_plan(circuit, package=package, fuse=True)
    unitary = package.identity(circuit.num_qubits)
    package.inc_ref(unitary)
    for step in plan.steps:
        product = package.multiply_matrices(step.gate_edge, unitary)
        package.inc_ref(product)
        package.dec_ref(unitary)
        unitary = product
        package.garbage_collect()
    return package, unitary


def circuit_unitary_matrix(circuit: QuantumCircuit) -> np.ndarray:
    """Dense ``2**n x 2**n`` unitary of the circuit (exponential; small n)."""
    package, unitary = circuit_unitary_dd(circuit)
    return package.to_operator_matrix(unitary, circuit.num_qubits)


def circuits_equivalent(
    first: QuantumCircuit,
    second: QuantumCircuit,
    up_to_global_phase: bool = True,
    tolerance: float = 1e-9,
) -> bool:
    """DD-based equivalence check: is ``U_1 == U_2`` (up to global phase)?

    Computes ``U_1 @ U_2^dagger`` as a matrix DD.  The circuits are
    equivalent iff the product's DD is the identity DD — a structural
    comparison plus a weight check on the root edge.

    Parameters
    ----------
    up_to_global_phase:
        Accept ``U_1 = e^{i alpha} U_2`` (the physically meaningful notion;
        set False for strict matrix equality).
    tolerance:
        Allowed deviation of the root weight from unit magnitude (resp.
        from 1).
    """
    if first.num_qubits != second.num_qubits:
        return False
    package = DDPackage(first.num_qubits)
    _, u1 = circuit_unitary_dd(first, package)
    _, u2 = circuit_unitary_dd(second, package)
    product = package.multiply_matrices(u1, package.conjugate_transpose(u2))
    identity = package.identity(first.num_qubits)
    if product.node is not identity.node:
        return False
    weight = product.weight.value
    if up_to_global_phase:
        return abs(abs(weight) - 1.0) <= tolerance
    return abs(weight - 1.0) <= tolerance
