"""Decision-diagram simulator backend (the paper's proposed engine).

Wraps a :class:`~repro.dd.package.DDPackage` behind the common
:class:`~repro.simulators.base.StateBackend` protocol: the current state is
a DD root edge, gates become matrix DDs (cached per package), and gate
application is the recursive DD matrix-vector multiplication of Section
IV-B.  Reference counting pins the live state and an adaptive garbage
collection keeps long stochastic trajectories within bounded memory.

The backend also records the peak decision-diagram size seen during a run —
the quantity that explains *why* this simulator wins or loses each Table Ic
row.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional, Sequence

import numpy as np

from ..dd.edge import Edge
from ..dd.package import DDPackage
from ..obs import profile as _profile
from ..obs.metrics import NODE_BUCKETS
from .gateplan import NoiseOperatorCache

__all__ = ["DDBackend"]

_PAULI_MATRICES = {
    "I": None,
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def _pauli_operator_dd(package: DDPackage, pauli: str, num_qubits: int) -> Edge:
    """Tensor-operator DD for a Pauli string (qubit 0 leftmost)."""
    if len(pauli) != num_qubits:
        raise ValueError(f"Pauli string must have {num_qubits} letters, got {len(pauli)}")
    try:
        factors = [_PAULI_MATRICES[letter] for letter in pauli.upper()]
    except KeyError as error:
        raise ValueError(f"invalid Pauli letter {error.args[0]!r}") from None
    return package.tensor_operator(factors)


class DDBackend:
    """DD-based simulator backend implementing :class:`StateBackend`."""

    def __init__(
        self,
        num_qubits: int,
        package: Optional[DDPackage] = None,
        initial_state: Optional[Edge] = None,
    ) -> None:
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        self.num_qubits = num_qubits
        #: Sharing one package across trajectories reuses gate DDs and
        #: unique-table structure — the intended usage of the JKU engine.
        self.package = package if package is not None else DDPackage(num_qubits)
        state = initial_state if initial_state is not None else self.package.zero_state(num_qubits)
        self._state = self.package.inc_ref(state)
        self.peak_nodes = self.package.node_count(state)
        self._nodes_hist = self.package.metrics.histogram("dd.state_nodes", NODE_BUCKETS)
        #: Cached noise-operator DDs (Paulis, damping Kraus branches); the
        #: stochastic error applier routes firings through this so an error
        #: costs one multiply instead of a matrix-keyed gate rebuild.
        self.noise_ops = NoiseOperatorCache(self.package, num_qubits)

    @property
    def state(self) -> Edge:
        """The current state's root edge."""
        return self._state

    def _replace_state(self, new_state: Edge) -> None:
        """Swap in a new state edge with correct reference accounting."""
        self.package.inc_ref(new_state)
        self.package.dec_ref(self._state)
        self._state = new_state
        self.package.garbage_collect()
        nodes = self.package.node_count(new_state)
        self._nodes_hist.observe(float(nodes))
        if nodes > self.peak_nodes:
            self.peak_nodes = nodes
        prof = _profile.ACTIVE
        if prof is not None:
            prof.record_nodes(nodes)

    # ------------------------------------------------------------------
    # Gate application
    # ------------------------------------------------------------------

    def apply_gate(self, matrix: np.ndarray, target: int, controls: Dict[int, int]) -> None:
        gate_dd = self.package.gate(matrix, target, controls, self.num_qubits)
        self._replace_state(self.package.multiply(gate_dd, self._state))

    def apply_gate_edge(self, gate_dd: Edge) -> None:
        """Apply a pre-resolved operator DD (compiled gate plans, cached
        noise operators) — the hot path with all cache keying hoisted out."""
        self._replace_state(self.package.multiply(gate_dd, self._state))

    # ------------------------------------------------------------------
    # Probabilities and measurement
    # ------------------------------------------------------------------

    def probability_of_one(self, qubit: int) -> float:
        return self.package.probability_of_one(self._state, qubit)

    def measure(self, qubit: int, rng: random.Random) -> int:
        outcome, collapsed, _ = self.package.measure_qubit(self._state, qubit, rng)
        self._replace_state(collapsed)
        return outcome

    def reset(self, qubit: int, rng: random.Random) -> None:
        outcome = self.measure(qubit, rng)
        if outcome == 1:
            x_matrix = np.array([[0, 1], [1, 0]], dtype=complex)
            self.apply_gate(x_matrix, qubit, {})

    def apply_kraus_branch(
        self, kraus_operators: Sequence[np.ndarray], qubit: int, rng: random.Random
    ) -> int:
        """Select a Kraus branch by candidate norms (paper Example 6).

        With sum-of-squares normalisation the squared norm of each candidate
        is just ``|root weight|^2`` — an O(1) read after the multiply.
        """
        package = self.package
        kraus_edges = [
            package.gate(np.asarray(kraus, dtype=complex), qubit, None, self.num_qubits)
            for kraus in kraus_operators
        ]
        return self.apply_kraus_edges(kraus_edges, rng)

    def apply_kraus_edges(self, kraus_edges: Sequence[Edge], rng: random.Random) -> int:
        """:meth:`apply_kraus_branch` with the operator DDs pre-resolved
        (same branch-selection rng draw, no per-firing gate construction)."""
        package = self.package
        candidates = []
        probabilities = []
        for gate_dd in kraus_edges:
            candidate = package.multiply(gate_dd, self._state)
            candidates.append(candidate)
            probabilities.append(package.squared_norm(candidate))
        total = sum(probabilities)
        if total <= 0.0:
            raise ValueError("Kraus branch probabilities sum to zero")
        pick = rng.random() * total
        cumulative = 0.0
        chosen = len(candidates) - 1
        for index, weight in enumerate(probabilities):
            cumulative += weight
            if pick < cumulative:
                chosen = index
                break
        normalised = package.scale(candidates[chosen], 1.0 / math.sqrt(probabilities[chosen]))
        self._replace_state(normalised)
        return chosen

    # ------------------------------------------------------------------
    # Properties and sampling
    # ------------------------------------------------------------------

    def probability_of_basis(self, bits: Sequence[int]) -> float:
        amplitude = self.package.get_amplitude(self._state, [int(b) for b in bits])
        return float(abs(amplitude) ** 2)

    def snapshot(self) -> Edge:
        """Pin and return the current state edge as a fidelity target."""
        return self.package.inc_ref(self._state)

    def fidelity(self, handle: Edge) -> float:
        return self.package.fidelity(handle, self._state)

    def statevector(self) -> np.ndarray:
        return self.package.to_state_vector(self._state, self.num_qubits)

    def pauli_expectation(self, pauli: str) -> float:
        """Expectation value ``<psi| P |psi>`` of a Pauli string.

        ``pauli`` has one letter (I/X/Y/Z) per qubit, qubit 0 leftmost.
        Computed as a tensor-operator DD application plus an inner product
        — linear in the state's diagram size.
        """
        operator = _pauli_operator_dd(self.package, pauli, self.num_qubits)
        transformed = self.package.multiply(operator, self._state)
        value = self.package.inner_product(self._state, transformed)
        return float(value.real)

    def sample_counts(self, shots: int, rng: random.Random) -> Dict[str, int]:
        return self.package.sample_counts(self._state, shots, rng)

    # ------------------------------------------------------------------
    # Numerical health (see docs/ROBUSTNESS.md)
    # ------------------------------------------------------------------

    def squared_norm(self) -> float:
        """Squared norm of the current state — O(1) on the root weight."""
        return self.package.squared_norm(self._state)

    def scale_state(self, factor: complex) -> None:
        """Multiply the state by a scalar (breaks normalisation on purpose;
        the drift-fault injection site and numerical-guard tests use this)."""
        self._replace_state(self.package.scale(self._state, factor))

    def renormalize(self) -> None:
        """Rescale the root weight back to unit norm."""
        self._replace_state(self.package.normalize(self._state))

    # ------------------------------------------------------------------
    # Trajectory reuse and diagnostics
    # ------------------------------------------------------------------

    def reset_all(self) -> None:
        """Reset to |0...0> for the next trajectory (package state shared)."""
        self._replace_state(self.package.zero_state(self.num_qubits))

    def load_state(self, edge: Edge) -> None:
        """Jump the backend to a pinned state edge (same package).

        The prefix-sharing engine uses this to resume an erring trajectory
        from a refcounted ideal-prefix checkpoint, or to materialise the
        shared ideal state for property evaluation — O(1) versus replaying
        the gate prefix.
        """
        self._replace_state(edge)

    def reset_peak_nodes(self) -> None:
        """Restart peak tracking from the current state.

        A warm backend keeps ``peak_nodes`` across trajectories by design
        (it is the per-span maximum), but a new *span* must not inherit the
        previous job's peak — call this at span start.
        """
        self.peak_nodes = self.package.node_count(self._state)

    def release(self) -> None:
        """Drop the reference on the current state (end of backend life)."""
        self.package.dec_ref(self._state)

    def release_snapshot(self, handle: Edge) -> None:
        """Drop the reference a :meth:`snapshot` call acquired."""
        self.package.dec_ref(handle)

    def current_nodes(self) -> int:
        """Node count of the current state's decision diagram."""
        return self.package.node_count(self._state)
