"""Simulator backend protocol and the shared circuit-execution engine.

Both simulators — the proposed decision-diagram engine and the dense
state-vector baseline — expose the same primitive operations
(:class:`StateBackend`), so one executor (:func:`execute_circuit`) runs
circuits on either, including measurements, resets, classically-conditioned
gates, and the stochastic error hook the noise layer plugs in after every
gate (paper Section III).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..obs import profile as _profile
from ..circuits.operations import (
    BarrierOperation,
    GateOperation,
    MeasureOperation,
    ResetOperation,
)

__all__ = ["StateBackend", "RunResult", "ErrorHook", "execute_circuit", "execute_plan"]


class StateBackend(Protocol):
    """Primitive state operations every simulator backend provides."""

    num_qubits: int

    def apply_gate(self, matrix: np.ndarray, target: int, controls: Dict[int, int]) -> None:
        """Apply a (controlled) single-qubit unitary to the state."""

    def probability_of_one(self, qubit: int) -> float:
        """Probability that measuring ``qubit`` yields 1."""

    def measure(self, qubit: int, rng: random.Random) -> int:
        """Projective measurement with collapse; returns the outcome bit."""

    def reset(self, qubit: int, rng: random.Random) -> None:
        """Reset ``qubit`` to |0> (measure, flip on outcome 1)."""

    def apply_kraus_branch(
        self, kraus_operators: Sequence[np.ndarray], qubit: int, rng: random.Random
    ) -> int:
        """Stochastically select and apply one Kraus branch (normalised).

        Branch probabilities are the squared norms of the candidate states
        (the state-dependent selection of paper Example 6).  Returns the
        selected branch index.
        """

    def probability_of_basis(self, bits: Sequence[int]) -> float:
        """Squared amplitude of one computational basis state."""

    def snapshot(self):
        """An immutable handle to the current state (for later fidelity)."""

    def fidelity(self, handle) -> float:
        """Quadratic overlap ``|<handle|state>|^2`` with a snapshot handle."""

    def statevector(self) -> np.ndarray:
        """Dense copy of the state (exponential; tests and small circuits)."""

    def sample_counts(self, shots: int, rng: random.Random) -> Dict[str, int]:
        """Sample measurement outcomes of all qubits without collapsing."""


#: Called after every executed gate with the backend and the touched qubits;
#: the stochastic noise layer uses this to inject errors.
ErrorHook = Callable[["StateBackend", Tuple[int, ...], str], None]


@dataclass
class RunResult:
    """Outcome of a single circuit execution (one trajectory)."""

    classical_bits: List[int]
    measured_qubits: Dict[int, int] = field(default_factory=dict)
    applied_gates: int = 0

    def classical_value(self) -> int:
        """Classical register interpreted as an integer (bit 0 = LSB)."""
        value = 0
        for position, bit in enumerate(self.classical_bits):
            if bit:
                value |= 1 << position
        return value

    def bitstring(self) -> str:
        """Classical bits as a string, most significant (highest index) first."""
        return "".join(str(bit) for bit in reversed(self.classical_bits))


def execute_circuit(
    backend: StateBackend,
    circuit: QuantumCircuit,
    rng: random.Random,
    error_hook: Optional[ErrorHook] = None,
) -> RunResult:
    """Run ``circuit`` on ``backend``, returning the classical outcome.

    ``error_hook`` — when given — is invoked after every unitary gate with
    the qubits the gate touched, implementing the paper's per-gate/per-qubit
    stochastic error insertion.  Measurements and resets also trigger the
    hook (hardware readout is noisy too), matching the treatment in the
    authors' stochastic simulator.
    """
    if circuit.num_qubits != backend.num_qubits:
        raise ValueError(
            f"circuit has {circuit.num_qubits} qubits but backend has {backend.num_qubits}"
        )
    classical_bits = [0] * circuit.num_clbits
    result = RunResult(classical_bits)
    for operation in circuit:
        if isinstance(operation, BarrierOperation):
            continue
        if isinstance(operation, MeasureOperation):
            before_measure = getattr(error_hook, "before_measure", None)
            if before_measure is not None:
                before_measure(backend, operation.qubit)
            outcome = backend.measure(operation.qubit, rng)
            classical_bits[operation.clbit] = outcome
            result.measured_qubits[operation.qubit] = outcome
            if error_hook is not None:
                error_hook(backend, (operation.qubit,), "measure")
            continue
        if isinstance(operation, ResetOperation):
            backend.reset(operation.qubit, rng)
            if error_hook is not None:
                error_hook(backend, (operation.qubit,), "reset")
            continue
        assert isinstance(operation, GateOperation)
        if operation.condition is not None and not operation.condition.is_satisfied(
            classical_bits
        ):
            continue
        backend.apply_gate(operation.matrix(), operation.target, operation.control_dict())
        result.applied_gates += 1
        if error_hook is not None:
            error_hook(backend, operation.qubits, operation.name)
    return result


def execute_plan(
    backend: StateBackend,
    plan,
    rng: random.Random,
    error_hook: Optional[ErrorHook] = None,
    start_step: int = 0,
) -> RunResult:
    """Run a compiled :class:`~repro.simulators.gateplan.GatePlan`.

    Semantically identical to :func:`execute_circuit` on the source circuit
    (same hook call sequence, same rng consumption, same classical-bit
    handling) but with all matrix derivation hoisted to compile time; on a
    backend sharing the plan's DD package each gate is one pre-resolved
    operator-DD multiply.  ``start_step`` resumes mid-schedule from a
    prefix checkpoint — the caller is responsible for the backend holding
    the state *after* ``plan.steps[:start_step]`` and for the rng/hook
    having consumed that prefix's draws (see :mod:`repro.stochastic.prefix`).
    """
    if plan.num_qubits != backend.num_qubits:
        raise ValueError(
            f"plan has {plan.num_qubits} qubits but backend has {backend.num_qubits}"
        )
    use_edges = plan.package is not None and plan.package is getattr(
        backend, "package", None
    )
    classical_bits = [0] * plan.num_clbits
    result = RunResult(classical_bits)
    # Per-gate profiler frames (g<step>:<name>): when profiling is off this
    # is one module-attribute read per plan, plus one None test per step.
    prof = _profile.ACTIVE
    for index, step in enumerate(plan.steps[start_step:], start=start_step):
        if prof is not None:
            prof.push(f"g{index}:{step.name or step.kind}")
        try:
            if step.kind == "measure":
                before_measure = getattr(error_hook, "before_measure", None)
                if before_measure is not None:
                    before_measure(backend, step.target)
                outcome = backend.measure(step.target, rng)
                classical_bits[step.clbit] = outcome
                result.measured_qubits[step.target] = outcome
                if error_hook is not None:
                    error_hook(backend, step.qubits, "measure")
                continue
            if step.kind == "reset":
                backend.reset(step.target, rng)
                if error_hook is not None:
                    error_hook(backend, step.qubits, "reset")
                continue
            if step.condition is not None and not step.condition.is_satisfied(
                classical_bits
            ):
                continue
            if use_edges:
                backend.apply_gate_edge(step.gate_edge)
            else:
                backend.apply_gate(step.matrix, step.target, step.controls)
            result.applied_gates += 1
            if error_hook is not None:
                error_hook(backend, step.qubits, step.name)
        finally:
            if prof is not None:
                prof.pop()
    return result
