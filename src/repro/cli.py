"""Command-line interface: ``repro-sim`` / ``python -m repro``.

Subcommands:

* ``run`` — stochastically simulate an OpenQASM 2.0 file or a library
  circuit under a noise model and print property estimates and the sampled
  outcome histogram;
* ``table`` — regenerate one of the paper's tables (Ia/Ib/Ic) at a chosen
  scale;
* ``circuits`` — list the built-in benchmark circuit generators;
* ``dot`` — export a circuit's final-state decision diagram as Graphviz dot.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .circuits import parse_qasm_file
from .circuits.library import QASMBENCH_CIRCUITS, ghz, qft
from .dd import to_dot
from .harness import run_table1a, run_table1b, run_table1c
from .noise import ErrorRates, NoiseModel
from .simulators import DDBackend, execute_circuit
from .stochastic import BasisProbability, IdealFidelity, simulate_stochastic

__all__ = ["main", "build_parser"]


def _load_circuit(spec: str):
    """Resolve a circuit argument: a QASM path or ``name[:qubits]``."""
    if spec.endswith(".qasm"):
        return parse_qasm_file(spec)
    name, _, size = spec.partition(":")
    if name == "ghz":
        return ghz(int(size or 8))
    if name == "qft":
        return qft(int(size or 8))
    if name in QASMBENCH_CIRCUITS:
        return QASMBENCH_CIRCUITS[name][1]()
    raise SystemExit(
        f"unknown circuit {spec!r}: expected a .qasm path, ghz:<n>, qft:<n>, "
        f"or one of {', '.join(sorted(QASMBENCH_CIRCUITS))}"
    )


def _noise_from_args(args: argparse.Namespace) -> NoiseModel:
    if args.noiseless:
        return NoiseModel.noiseless()
    return NoiseModel(
        default=ErrorRates(
            depolarizing=args.depolarizing,
            amplitude_damping=args.damping,
            phase_flip=args.phase_flip,
        )
    )


def _add_noise_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--depolarizing", type=float, default=0.001,
        help="depolarization probability per gate/qubit (paper: 0.001)",
    )
    parser.add_argument(
        "--damping", type=float, default=0.002,
        help="amplitude damping (T1) probability (paper: 0.002)",
    )
    parser.add_argument(
        "--phase-flip", type=float, default=0.001,
        help="phase flip (T2) probability (paper: 0.001)",
    )
    parser.add_argument("--noiseless", action="store_true", help="disable all errors")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Stochastic quantum circuit simulation using decision diagrams",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="simulate a circuit stochastically")
    run.add_argument("circuit", help=".qasm file, ghz:<n>, qft:<n>, or a QASMBench name")
    run.add_argument("-M", "--trajectories", type=int, default=1000)
    run.add_argument("-b", "--backend", choices=("dd", "statevector"), default="dd")
    run.add_argument("-w", "--workers", type=int, default=1)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--shots", type=int, default=1, help="histogram samples per trajectory")
    run.add_argument("--timeout", type=float, default=None)
    run.add_argument(
        "--fidelity", action="store_true",
        help="estimate fidelity with the noiseless output (measurement-free circuits)",
    )
    run.add_argument(
        "--probability", action="append", default=[], metavar="BITSTRING",
        help="estimate P(|bitstring>); repeatable",
    )
    run.add_argument(
        "--pauli", action="append", default=[], metavar="STRING",
        help="estimate a Pauli-string expectation, e.g. ZZIII; repeatable",
    )
    run.add_argument(
        "--outcome", action="append", default=[], type=int, metavar="VALUE",
        help="estimate P(classical register == VALUE); repeatable",
    )
    _add_noise_arguments(run)

    table = subparsers.add_parser("table", help="regenerate a paper table")
    table.add_argument("which", choices=("1a", "1b", "1c"))
    table.add_argument("-M", "--trajectories", type=int, default=None)
    table.add_argument("--timeout", type=float, default=None)
    table.add_argument("-w", "--workers", type=int, default=1)

    report = subparsers.add_parser(
        "report", help="regenerate all paper tables as a Markdown report"
    )
    report.add_argument("-M", "--trajectories", type=int, default=10)
    report.add_argument("--timeout", type=float, default=30.0)
    report.add_argument("-o", "--output", default=None, help="output path (default stdout)")

    subparsers.add_parser("circuits", help="list built-in benchmark circuits")

    dot = subparsers.add_parser("dot", help="export a final-state DD as Graphviz dot")
    dot.add_argument("circuit", help=".qasm file, ghz:<n>, qft:<n>, or a QASMBench name")
    dot.add_argument("-o", "--output", default=None, help="output path (default stdout)")

    draw = subparsers.add_parser("draw", help="render a circuit as ASCII art")
    draw.add_argument("circuit", help=".qasm file, ghz:<n>, qft:<n>, or a QASMBench name")

    equiv = subparsers.add_parser(
        "equiv", help="DD-based equivalence check of two circuits"
    )
    equiv.add_argument("first", help="first circuit (.qasm / ghz:<n> / name)")
    equiv.add_argument("second", help="second circuit (.qasm / ghz:<n> / name)")
    equiv.add_argument(
        "--strict", action="store_true", help="require equality including global phase"
    )

    fuse = subparsers.add_parser(
        "fuse", help="fuse single-qubit gate runs and print the optimised QASM"
    )
    fuse.add_argument("circuit", help=".qasm file, ghz:<n>, qft:<n>, or a QASMBench name")
    fuse.add_argument("-o", "--output", default=None, help="output path (default stdout)")

    return parser


def _command_run(args: argparse.Namespace) -> int:
    from .stochastic import ClassicalOutcome, PauliExpectation

    circuit = _load_circuit(args.circuit)
    properties: List = [BasisProbability(bits) for bits in args.probability]
    properties.extend(PauliExpectation(p) for p in args.pauli)
    properties.extend(ClassicalOutcome(v) for v in args.outcome)
    if args.fidelity:
        properties.append(IdealFidelity())
    result = simulate_stochastic(
        circuit,
        noise_model=_noise_from_args(args),
        properties=properties,
        trajectories=args.trajectories,
        backend=args.backend,
        workers=args.workers,
        seed=args.seed,
        sample_shots=args.shots,
        timeout=args.timeout,
    )
    print(result.summary())
    return 0


def _command_table(args: argparse.Namespace) -> int:
    if args.which == "1a":
        report = run_table1a(
            trajectories=args.trajectories or 50,
            timeout=args.timeout or 30.0,
            workers=args.workers,
        )
    elif args.which == "1b":
        report = run_table1b(
            trajectories=args.trajectories or 50,
            timeout=args.timeout or 30.0,
            workers=args.workers,
        )
    else:
        report = run_table1c(
            trajectories=args.trajectories or 20,
            timeout=args.timeout or 60.0,
            workers=args.workers,
        )
    print(report.render())
    return 0


def _command_circuits() -> int:
    print("built-in circuits (name: paper qubit count):")
    for name, (qubits, _) in sorted(QASMBENCH_CIRCUITS.items()):
        print(f"  {name}: {qubits}")
    print("parameterised: ghz:<n>, qft:<n>")
    return 0


def _command_dot(args: argparse.Namespace) -> int:
    import random

    circuit = _load_circuit(args.circuit)
    backend = DDBackend(circuit.num_qubits)
    execute_circuit(backend, circuit, random.Random(0))
    dot_source = to_dot(backend.state, name=circuit.name.replace("-", "_"))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(dot_source + "\n")
        print(f"wrote {args.output}")
    else:
        print(dot_source)
    return 0


def _command_draw(args: argparse.Namespace) -> int:
    from .circuits.drawing import draw_circuit

    print(draw_circuit(_load_circuit(args.circuit)))
    return 0


def _command_equiv(args: argparse.Namespace) -> int:
    from .simulators import circuits_equivalent

    first = _load_circuit(args.first)
    second = _load_circuit(args.second)
    equivalent = circuits_equivalent(
        first, second, up_to_global_phase=not args.strict
    )
    phase_note = "" if args.strict else " (up to global phase)"
    print(f"{'EQUIVALENT' if equivalent else 'NOT equivalent'}{phase_note}")
    return 0 if equivalent else 1


def _command_fuse(args: argparse.Namespace) -> int:
    from .circuits.optimize import fuse_single_qubit_runs

    circuit = _load_circuit(args.circuit)
    fused = fuse_single_qubit_runs(circuit)
    qasm = fused.to_qasm()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(qasm)
        print(
            f"wrote {args.output}: {circuit.num_gates()} -> {fused.num_gates()} gates"
        )
    else:
        print(qasm)
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from .harness import report_markdown, run_table1b, run_table1c

    reports = [
        run_table1a(
            qubit_range=(4, 8, 12, 16, 20, 32),
            trajectories=args.trajectories,
            timeout=args.timeout,
        ),
        run_table1b(
            qubit_range=(4, 8, 12, 16, 20),
            trajectories=args.trajectories,
            timeout=args.timeout,
        ),
        run_table1c(trajectories=args.trajectories, timeout=args.timeout),
    ]
    text = report_markdown(
        reports,
        title="Stochastic DD simulation — table regeneration",
        notes=(
            "Scaled-down reproduction of the paper's Tables Ia-Ic; see "
            "EXPERIMENTS.md for the shape analysis."
        ),
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "table":
        return _command_table(args)
    if args.command == "report":
        return _command_report(args)
    if args.command == "circuits":
        return _command_circuits()
    if args.command == "dot":
        return _command_dot(args)
    if args.command == "draw":
        return _command_draw(args)
    if args.command == "equiv":
        return _command_equiv(args)
    if args.command == "fuse":
        return _command_fuse(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
