"""Command-line interface: ``repro-sim`` / ``python -m repro``.

Subcommands:

* ``run`` — stochastically simulate an OpenQASM 2.0 file or a library
  circuit under a noise model and print property estimates and the sampled
  outcome histogram;
* ``submit`` / ``status`` / ``result`` / ``serve`` / ``jobs`` / ``monitor``
  — the job-service mode: spool content-addressed jobs into a store, drain
  them with a persistent worker pool (crash-safe via the write-ahead
  journal behind ``serve --resume``), and poll streaming estimates while
  they run — live, with ``monitor`` and the ``serve --metrics-port``
  OpenMetrics endpoint (docs/SERVICE.md, docs/OBSERVABILITY.md,
  docs/ROBUSTNESS.md);
* ``history`` — per-circuit-family run-ledger telemetry: methods, peak DD
  node counts, throughput trend vs the ledger baseline — the history the
  measured dispatch cost model routes on (docs/OBSERVABILITY.md);
* ``cache`` — inspect or clear the content-addressed result store;
* ``stats`` — run a circuit and report engine observability: table hit
  rates, per-trajectory latency histograms, scheduler counters
  (docs/OBSERVABILITY.md); ``--format=openmetrics`` shares the serve
  endpoint's exposition formatter;
* ``profile`` — run with the deterministic DD hot-loop profiler enabled
  and report per-gate / per-DD-op self time plus node-growth attribution;
  ``--flame`` writes folded stacks for flamegraph tooling;
* ``table`` — regenerate one of the paper's tables (Ia/Ib/Ic) at a chosen
  scale, optionally with a ``--metrics`` JSON sidecar;
* ``circuits`` — list the built-in benchmark circuit generators;
* ``dot`` — export a circuit's final-state decision diagram as Graphviz dot.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .circuits import parse_qasm_file
from .circuits.library import QASMBENCH_CIRCUITS, ghz, qft
from .dd import to_dot
from .harness import run_table1a, run_table1b, run_table1c
from .noise import ErrorRates, NoiseModel
from .simulators import DDBackend, execute_circuit
from .stochastic import BasisProbability, IdealFidelity, simulate_stochastic

__all__ = ["main", "build_parser"]


def _load_circuit(spec: str):
    """Resolve a circuit argument: a QASM path or ``name[:qubits]``."""
    if spec.endswith(".qasm"):
        return parse_qasm_file(spec)
    name, _, size = spec.partition(":")
    if name == "ghz":
        return ghz(int(size or 8))
    if name == "qft":
        return qft(int(size or 8))
    if name in QASMBENCH_CIRCUITS:
        return QASMBENCH_CIRCUITS[name][1]()
    raise SystemExit(
        f"unknown circuit {spec!r}: expected a .qasm path, ghz:<n>, qft:<n>, "
        f"or one of {', '.join(sorted(QASMBENCH_CIRCUITS))}"
    )


def _noise_from_args(args: argparse.Namespace) -> NoiseModel:
    if args.noiseless:
        return NoiseModel.noiseless()
    return NoiseModel(
        default=ErrorRates(
            depolarizing=args.depolarizing,
            amplitude_damping=args.damping,
            phase_flip=args.phase_flip,
        )
    )


def _add_property_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fidelity", action="store_true",
        help="estimate fidelity with the noiseless output (measurement-free circuits)",
    )
    parser.add_argument(
        "--probability", action="append", default=[], metavar="BITSTRING",
        help="estimate P(|bitstring>); repeatable",
    )
    parser.add_argument(
        "--pauli", action="append", default=[], metavar="STRING",
        help="estimate a Pauli-string expectation, e.g. ZZIII; repeatable",
    )
    parser.add_argument(
        "--outcome", action="append", default=[], type=int, metavar="VALUE",
        help="estimate P(classical register == VALUE); repeatable",
    )


def _properties_from_args(args: argparse.Namespace) -> List:
    from .stochastic import ClassicalOutcome, PauliExpectation

    properties: List = [BasisProbability(bits) for bits in args.probability]
    properties.extend(PauliExpectation(p) for p in args.pauli)
    properties.extend(ClassicalOutcome(v) for v in args.outcome)
    if args.fidelity:
        properties.append(IdealFidelity())
    return properties


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="result-store directory (default: $REPRO_STORE_DIR or "
        "~/.cache/repro-sim)",
    )


def _open_store(args: argparse.Namespace):
    from .service import ResultStore, default_store_directory

    return ResultStore(directory=args.store or default_store_directory())


def _add_method_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--method", choices=("stochastic", "exact", "auto"), default="stochastic",
        help="execution method: Monte-Carlo trajectory sampling (default), "
        "one-pass exact density-matrix DD evaluation, or cost-model "
        "auto-dispatch between the two (docs/EXACT.md)",
    )


def _add_noise_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--depolarizing", type=float, default=0.001,
        help="depolarization probability per gate/qubit (paper: 0.001)",
    )
    parser.add_argument(
        "--damping", type=float, default=0.002,
        help="amplitude damping (T1) probability (paper: 0.002)",
    )
    parser.add_argument(
        "--phase-flip", type=float, default=0.001,
        help="phase flip (T2) probability (paper: 0.001)",
    )
    parser.add_argument("--noiseless", action="store_true", help="disable all errors")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Stochastic quantum circuit simulation using decision diagrams",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="simulate a circuit stochastically")
    run.add_argument("circuit", help=".qasm file, ghz:<n>, qft:<n>, or a QASMBench name")
    run.add_argument("-M", "--trajectories", type=int, default=1000)
    run.add_argument("-b", "--backend", choices=("dd", "statevector"), default="dd")
    run.add_argument("-w", "--workers", type=int, default=1)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--shots", type=int, default=1, help="histogram samples per trajectory")
    run.add_argument("--timeout", type=float, default=None)
    _add_method_argument(run)
    _add_property_arguments(run)
    _add_noise_arguments(run)

    submit = subparsers.add_parser(
        "submit", help="spool a simulation job for a `serve` batch runner"
    )
    submit.add_argument("circuit", help=".qasm file, ghz:<n>, qft:<n>, or a QASMBench name")
    submit.add_argument("-M", "--trajectories", type=int, default=1000)
    submit.add_argument("-b", "--backend", choices=("dd", "statevector"), default="dd")
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--shots", type=int, default=1, help="histogram samples per trajectory")
    submit.add_argument("--timeout", type=float, default=None)
    _add_method_argument(submit)
    _add_property_arguments(submit)
    _add_noise_arguments(submit)
    _add_store_argument(submit)

    status = subparsers.add_parser(
        "status", help="poll a job's streaming estimates (key prefix accepted)"
    )
    status.add_argument("key", help="job key (or unique prefix) from `submit`")
    _add_store_argument(status)

    result = subparsers.add_parser(
        "result", help="print a finished job's full result (key prefix accepted)"
    )
    result.add_argument("key", help="job key (or unique prefix) from `submit`")
    result.add_argument(
        "--wait", action="store_true", help="block until the result is available"
    )
    result.add_argument(
        "--wait-timeout", type=float, default=None, metavar="SECONDS",
        help="give up waiting after this many seconds",
    )
    _add_store_argument(result)

    serve = subparsers.add_parser(
        "serve", help="run the batch scheduler over the spooled job queue"
    )
    serve.add_argument("-w", "--workers", type=int, default=2)
    serve.add_argument("--chunk-size", type=int, default=None)
    serve.add_argument("--max-retries", type=int, default=2)
    serve.add_argument(
        "--once", action="store_true",
        help="drain the current queue and exit instead of polling forever",
    )
    serve.add_argument("--poll-interval", type=float, default=0.5)
    serve.add_argument("--max-jobs", type=int, default=None)
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve OpenMetrics text on http://127.0.0.1:PORT/metrics "
        "(0 binds an ephemeral port; the chosen one is logged)",
    )
    serve.add_argument(
        "--events-log", default=None, metavar="PATH",
        help="append JSONL telemetry events (heartbeats, job transitions)",
    )
    serve.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="write a Chrome trace_event JSON per completed job",
    )
    serve.add_argument(
        "--heartbeat-interval", type=float, default=1.0, metavar="SECONDS",
        help="period of the events-log heartbeat (with --events-log)",
    )
    serve.add_argument(
        "--resume", action="store_true",
        help="replay the write-ahead journal on startup and re-enqueue "
        "incomplete jobs with their original chunk plans (bit-identical "
        "to an uninterrupted run; docs/ROBUSTNESS.md)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="on SIGTERM/SIGINT, wait this long for in-flight chunks to "
        "land before checkpointing the rest and exiting",
    )
    serve.add_argument(
        "--lease-duration", type=float, default=30.0, metavar="SECONDS",
        help="chunk ownership lease length; expired leases are reclaimed "
        "and re-dispatched with a new fencing token",
    )
    _add_store_argument(serve)

    jobs = subparsers.add_parser(
        "jobs", help="list resumable work: journal-incomplete, queued, orphaned"
    )
    jobs.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead of text"
    )
    _add_store_argument(jobs)

    history = subparsers.add_parser(
        "history",
        help="per-circuit-family run-ledger history: methods, peak DD nodes, "
        "throughput (feeds the measured dispatch cost model)",
    )
    history.add_argument(
        "--fingerprint", default=None, metavar="FP",
        help="show one family in detail (unique fingerprint prefix), "
        "including its recent raw run records",
    )
    history.add_argument(
        "--trend", action="store_true",
        help="check each family's latest stochastic throughput against its "
        "ledger baseline; a >20%% drop flags a regression (exit 1), "
        "mirroring benchmarks/trend.py",
    )
    history.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead of text"
    )
    _add_store_argument(history)

    monitor = subparsers.add_parser(
        "monitor", help="live terminal view of a queued or running job"
    )
    monitor.add_argument("key", help="job key (or unique prefix) from `submit`")
    monitor.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="refresh period",
    )
    monitor.add_argument(
        "--once", action="store_true", help="print one snapshot and exit"
    )
    monitor.add_argument(
        "--max-seconds", type=float, default=None, metavar="SECONDS",
        help="give up after this long even if the job is still running",
    )
    _add_store_argument(monitor)

    cache = subparsers.add_parser(
        "cache", help="inspect or clear the content-addressed result store"
    )
    cache.add_argument("action", choices=("show", "clear"))
    _add_store_argument(cache)

    stats = subparsers.add_parser(
        "stats", help="simulate a circuit and report engine metrics"
    )
    stats.add_argument("circuit", help=".qasm file, ghz:<n>, qft:<n>, or a QASMBench name")
    stats.add_argument("-M", "--trajectories", type=int, default=100)
    stats.add_argument("-b", "--backend", choices=("dd", "statevector"), default="dd")
    stats.add_argument("-w", "--workers", type=int, default=1)
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument("--shots", type=int, default=1, help="histogram samples per trajectory")
    stats.add_argument("--timeout", type=float, default=None)
    stats.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead of text"
    )
    stats.add_argument(
        "--format", choices=("text", "json", "openmetrics"), default=None,
        help="output format (openmetrics shares the `serve --metrics-port` "
        "endpoint formatter; --json is shorthand for --format=json)",
    )
    stats.add_argument("-o", "--output", default=None, help="output path (default stdout)")
    stats.add_argument(
        "--trace", action="store_true",
        help="include scheduler trace events (parallel runs only)",
    )
    _add_method_argument(stats)
    _add_property_arguments(stats)
    _add_noise_arguments(stats)

    profile = subparsers.add_parser(
        "profile",
        help="run with the DD hot-loop profiler on and report per-gate/per-op time",
    )
    profile.add_argument("circuit", help=".qasm file, ghz:<n>, qft:<n>, or a QASMBench name")
    profile.add_argument("-M", "--trajectories", type=int, default=100)
    profile.add_argument("-b", "--backend", choices=("dd", "statevector"), default="dd")
    profile.add_argument("-w", "--workers", type=int, default=1)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--shots", type=int, default=1, help="histogram samples per trajectory")
    profile.add_argument("--timeout", type=float, default=None)
    profile.add_argument(
        "--flame", default=None, metavar="PATH",
        help="write folded-stack output (flamegraph.pl / speedscope compatible)",
    )
    profile.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="number of hottest frames to print",
    )
    _add_property_arguments(profile)
    _add_noise_arguments(profile)

    chaos = subparsers.add_parser(
        "chaos",
        help="run the seeded fault-injection suite against the service stack",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--faults", default=None, metavar="KINDS",
        help="comma-separated fault kinds (default: a crash/hang/corruption mix; "
             "see docs/ROBUSTNESS.md for the full taxonomy and aliases)",
    )
    chaos.add_argument("-M", "--trajectories", type=int, default=80)
    chaos.add_argument("-n", "--qubits", type=int, default=4)
    chaos.add_argument("-w", "--workers", type=int, default=2)
    chaos.add_argument("--chunk-size", type=int, default=16)
    chaos.add_argument(
        "--chunk-timeout", type=float, default=2.0,
        help="scheduler chunk timeout (bounds how long a `hang` fault stalls)",
    )
    chaos.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead of text"
    )
    chaos.add_argument(
        "--kill-serve", action="store_true",
        help="restart/resume scenario instead of the fault-plan suite: "
        "SIGKILL a live `serve` subprocess mid-job, restart it with "
        "--resume, and assert the final result is bit-identical to an "
        "uninterrupted run (docs/ROBUSTNESS.md)",
    )
    chaos.add_argument(
        "--work-dir", default=None, metavar="DIR",
        help="with --kill-serve: keep stores/journals/event logs here "
        "(CI uploads them as artifacts) instead of a removed tempdir",
    )

    table = subparsers.add_parser("table", help="regenerate a paper table")
    table.add_argument("which", choices=("1a", "1b", "1c"))
    table.add_argument("-M", "--trajectories", type=int, default=None)
    table.add_argument("--timeout", type=float, default=None)
    table.add_argument("-w", "--workers", type=int, default=1)
    table.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="also write a JSON metrics sidecar (hit rates, latency, peak nodes)",
    )

    report = subparsers.add_parser(
        "report", help="regenerate all paper tables as a Markdown report"
    )
    report.add_argument("-M", "--trajectories", type=int, default=10)
    report.add_argument("--timeout", type=float, default=30.0)
    report.add_argument("-o", "--output", default=None, help="output path (default stdout)")

    subparsers.add_parser("circuits", help="list built-in benchmark circuits")

    dot = subparsers.add_parser("dot", help="export a final-state DD as Graphviz dot")
    dot.add_argument("circuit", help=".qasm file, ghz:<n>, qft:<n>, or a QASMBench name")
    dot.add_argument("-o", "--output", default=None, help="output path (default stdout)")

    draw = subparsers.add_parser("draw", help="render a circuit as ASCII art")
    draw.add_argument("circuit", help=".qasm file, ghz:<n>, qft:<n>, or a QASMBench name")

    equiv = subparsers.add_parser(
        "equiv", help="DD-based equivalence check of two circuits"
    )
    equiv.add_argument("first", help="first circuit (.qasm / ghz:<n> / name)")
    equiv.add_argument("second", help="second circuit (.qasm / ghz:<n> / name)")
    equiv.add_argument(
        "--strict", action="store_true", help="require equality including global phase"
    )

    fuse = subparsers.add_parser(
        "fuse", help="fuse single-qubit gate runs and print the optimised QASM"
    )
    fuse.add_argument("circuit", help=".qasm file, ghz:<n>, qft:<n>, or a QASMBench name")
    fuse.add_argument("-o", "--output", default=None, help="output path (default stdout)")

    return parser


def _resolve_cli_method(args, circuit, model, properties) -> str:
    """Resolve ``--method`` for one-shot commands (run / stats).

    Mirrors the scheduler's dispatch: a forced ``exact`` on an unsupported
    spec is an error; ``auto`` consults the cost model (and prints the
    decision so the routing is never silent).
    """
    if args.method == "stochastic":
        return "stochastic"
    from .exact import estimate_costs, exact_unsupported_reason

    reason = exact_unsupported_reason(circuit, properties)
    if args.method == "exact":
        if reason is not None:
            raise SystemExit(f"--method exact unsupported: {reason}")
        return "exact"
    if reason is not None:
        print(f"auto dispatch -> stochastic ({reason})")
        return "stochastic"
    decision = estimate_costs(circuit, model, properties, args.trajectories)
    print(decision.render())
    return decision.method


def _command_run(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    properties = _properties_from_args(args)
    model = _noise_from_args(args)
    method = _resolve_cli_method(args, circuit, model, properties)
    if method == "exact":
        from .exact import simulate_exact

        result = simulate_exact(circuit, noise_model=model, properties=properties)
    else:
        result = simulate_stochastic(
            circuit,
            noise_model=model,
            properties=properties,
            trajectories=args.trajectories,
            backend=args.backend,
            workers=args.workers,
            seed=args.seed,
            sample_shots=args.shots,
            timeout=args.timeout,
        )
    print(result.summary())
    return 0


def _command_submit(args: argparse.Namespace) -> int:
    from .service import JobSpec, enqueue_job

    try:
        circuit = _load_circuit(args.circuit)
        spec = JobSpec.build(
            circuit,
            noise_model=_noise_from_args(args),
            properties=_properties_from_args(args),
            trajectories=args.trajectories,
            seed=args.seed,
            backend_kind=args.backend,
            sample_shots=args.shots,
            timeout=args.timeout,
            method=args.method,
        )
    except (OSError, ValueError) as error:
        raise SystemExit(f"cannot submit {args.circuit!r}: {error}")
    store = _open_store(args)
    key, cached = enqueue_job(store, spec)
    if cached:
        print(f"{key}\ncache hit: result already stored, nothing queued")
    else:
        method_note = "" if args.method == "stochastic" else f", method={args.method}"
        print(f"{key}\nqueued {circuit.name} (M={args.trajectories}{method_note}) — "
              f"run `repro-sim serve --store {store.directory}` to execute")
    return 0


def _command_status(args: argparse.Namespace) -> int:
    from .service import query_status

    store = _open_store(args)
    try:
        key = store.resolve_key(args.key)
        print(query_status(store, key).render())
    except KeyError as error:
        raise SystemExit(str(error))
    return 0


def _command_result(args: argparse.Namespace) -> int:
    import time as _time

    store = _open_store(args)
    deadline = (
        None if args.wait_timeout is None else _time.monotonic() + args.wait_timeout
    )
    while True:
        try:
            key = store.resolve_key(args.key)
        except KeyError as error:
            if not args.wait:
                raise SystemExit(str(error))
            key = None
        if key is not None:
            result = store.get(key)
            if result is not None:
                print(result.summary())
                return 0
            if not args.wait:
                print(f"job {key[:16]}… has no final result yet "
                      f"(use --wait, or check `status`)")
                return 1
        if deadline is not None and _time.monotonic() >= deadline:
            print("timed out waiting for the result")
            return 1
        _time.sleep(0.1)


def _command_serve(args: argparse.Namespace) -> int:
    from .service import serve

    store = _open_store(args)
    processed = serve(
        store,
        workers=args.workers,
        once=args.once,
        poll_interval=args.poll_interval,
        chunk_size=args.chunk_size,
        max_retries=args.max_retries,
        max_jobs=args.max_jobs,
        metrics_port=args.metrics_port,
        events_log=args.events_log,
        trace_dir=args.trace_dir,
        heartbeat_interval=args.heartbeat_interval,
        resume=args.resume,
        drain_timeout=args.drain_timeout,
        lease_duration=args.lease_duration,
    )
    print(f"processed {processed} job(s)")
    return 0


def _command_jobs(args: argparse.Namespace) -> int:
    import json as _json

    from .service import list_jobs

    rows = list_jobs(_open_store(args))
    if args.json:
        print(_json.dumps(
            {"schema": "repro.jobs/v1", "jobs": rows}, indent=2, sort_keys=True
        ))
        return 0
    if not rows:
        print("no resumable work (journal clean, queue empty)")
        return 0
    for row in rows:
        done = row.get("completed_trajectories", 0)
        total = row.get("trajectories", 0)
        extra = ""
        if row["source"] == "journal":
            extra = (
                f" chunks={row['completed_chunks']}/{row['planned_chunks']}"
            )
        if "method" in row:
            extra += f" method={row['method']}"
        print(
            f"{row['key'][:16]}… [{row['source']}] "
            f"{row.get('circuit', '?')} {done}/{total} trajectories{extra}"
        )
        if "dispatch" in row:
            print(f"    {row['dispatch']}")
    print(
        f"{len(rows)} job(s); run `repro-sim serve --once --resume` "
        f"to finish them"
    )
    return 0


def _command_history(args: argparse.Namespace) -> int:
    """``repro history`` — the run ledger's per-family view.

    Reads ``<store>/ledger/runs.jsonl`` (``repro.ledger/v1``) read-only and
    reports, per circuit family: run counts by method, observed peak DD
    node sizes (the measured dispatch cost model's inputs), throughput,
    and node-ceiling fallbacks.  ``--trend`` compares each family's latest
    stochastic rate against its histogram-mean baseline and exits 1 when
    any family dropped more than 20% — the same gate ``benchmarks/trend.py``
    applies to the BENCH_*.json series, but against live service history.
    """
    import json as _json

    from .obs.ledger import ledger_path, replay_ledger

    store = _open_store(args)
    if store.directory is None:
        print("history needs a store with an on-disk directory", file=sys.stderr)
        return 2
    state = replay_ledger(ledger_path(store.directory))
    families = []
    for fingerprint in state.order:
        aggregate = state.aggregates[fingerprint]
        if args.fingerprint and not fingerprint.startswith(args.fingerprint):
            continue
        recent = state.recent.get(fingerprint, [])
        latest_rate = None
        for record in reversed(recent):
            if record.get("rec") == "run" and record.get("method") != "exact":
                rate = record.get("trajectories_per_second")
                if isinstance(rate, (int, float)) and rate > 0:
                    latest_rate = float(rate)
                break
        rate_hist = aggregate.rate_hist
        baseline = (
            float(rate_hist["sum"]) / rate_hist["count"]
            if rate_hist["count"] > 0
            else None
        )
        regression = None
        if args.trend and latest_rate is not None and baseline:
            drop = 1.0 - latest_rate / baseline
            regression = {
                "latest": latest_rate,
                "baseline": baseline,
                "drop": drop,
                "regressed": drop > 0.20,
            }
        entry = {
            "fingerprint": fingerprint,
            "qubits": aggregate.qubits,
            "depth": aggregate.depth,
            "runs": aggregate.runs,
            "exact_runs": aggregate.exact_runs,
            "stochastic_runs": aggregate.stochastic_runs,
            "fallbacks": aggregate.fallbacks,
            "exact_peak_nodes": aggregate.exact_peak_nodes,
            "state_peak_nodes": aggregate.state_peak_nodes,
            "fallback_peak_nodes": aggregate.fallback_peak_nodes,
            "median_rate": aggregate.median_rate(),
            "mean_p_clean": aggregate.mean_p_clean(),
            "cpu_seconds": aggregate.cpu_seconds,
            "trajectories": aggregate.trajectories,
            "effective_trajectories": aggregate.effective_trajectories,
        }
        if regression is not None:
            entry["trend"] = regression
        if args.fingerprint:
            entry["recent"] = recent
        families.append(entry)
    regressed = [
        f["fingerprint"] for f in families
        if f.get("trend", {}).get("regressed")
    ]
    if args.json:
        print(_json.dumps(
            {
                "schema": "repro.history/v1",
                "directory": store.directory,
                "families": families,
                "regressions": regressed,
            },
            indent=2, sort_keys=True,
        ))
        return 1 if regressed else 0
    if not families:
        if args.fingerprint:
            print(f"no ledger history matches fingerprint {args.fingerprint!r}")
        else:
            print("no ledger history (run jobs through `repro-sim serve` first)")
        return 0
    for entry in families:
        peaks = []
        if entry["exact_peak_nodes"]:
            peaks.append(f"rho<={entry['exact_peak_nodes']}")
        if entry["state_peak_nodes"]:
            peaks.append(f"state<={entry['state_peak_nodes']}")
        if entry["fallback_peak_nodes"]:
            peaks.append(f"fallback>={entry['fallback_peak_nodes']}")
        line = (
            f"{entry['fingerprint']}  {entry['qubits']}q depth={entry['depth']} "
            f"runs={entry['runs']} (exact={entry['exact_runs']} "
            f"stochastic={entry['stochastic_runs']} "
            f"fallbacks={entry['fallbacks']})"
        )
        if peaks:
            line += "  nodes: " + " ".join(peaks)
        if entry["median_rate"]:
            line += f"  ~{entry['median_rate']:.3g} traj/s"
        print(line)
        trend = entry.get("trend")
        if trend is not None:
            verdict = "REGRESSED" if trend["regressed"] else "ok"
            print(
                f"    trend: latest {trend['latest']:.3g} traj/s vs "
                f"baseline {trend['baseline']:.3g} "
                f"({trend['drop']:+.1%} drop) -> {verdict}"
            )
        if args.fingerprint:
            for record in entry.get("recent", []):
                print(f"    {_json.dumps(record, sort_keys=True)}")
    print(
        f"{len(families)} famil{'y' if len(families) == 1 else 'ies'}; "
        f"measured dispatch uses these peaks "
        f"(REPRO_MEASURED_COST=off to ignore)"
    )
    return 1 if regressed else 0


def _command_monitor(args: argparse.Namespace) -> int:
    import time as _time

    from .service import JobState, query_status

    store = _open_store(args)
    deadline = (
        None if args.max_seconds is None else _time.monotonic() + args.max_seconds
    )
    clear = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""
    while True:
        try:
            status = query_status(store, store.resolve_key(args.key))
        except KeyError as error:
            if args.once:
                raise SystemExit(str(error))
            status = None
            print(f"waiting for job {args.key!r} to appear in the store…")
        if status is not None:
            print(f"{clear}{status.render()}", flush=True)
            if status.state in (JobState.COMPLETED, JobState.FAILED,
                                JobState.CANCELLED):
                return 0 if status.state == JobState.COMPLETED else 1
        if args.once:
            return 0
        if deadline is not None and _time.monotonic() >= deadline:
            print("monitor timed out with the job still running")
            return 1
        _time.sleep(max(0.05, args.interval))


def _command_cache(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {store.directory}")
        return 0
    stats = store.stats()
    print(f"store: {stats['directory']}")
    print(f"  final results: {stats['results']}")
    print(f"  partial checkpoints: {stats['partials']}")
    print(f"  queued jobs: {stats['queued']}")
    print(f"  disk usage: {stats['disk_bytes']} bytes")
    if stats.get("ledger_runs") or stats.get("ledger_bytes"):
        print(
            f"  run ledger: {stats['ledger_runs']} run(s) across "
            f"{stats['ledger_families']} famil"
            f"{'y' if stats['ledger_families'] == 1 else 'ies'} "
            f"({stats['ledger_bytes']} bytes) — see `repro-sim history`"
        )
    if stats.get("corrupt"):
        print(f"  quarantined (corrupt) entries: {stats['corrupt']}")
        for name in store.corrupt_entries():
            print(f"    {name}")
    for key in store.result_keys():
        spec = store.get_spec_dict(key)
        label = spec["circuit_name"] if spec else "?"
        print(f"  {key[:16]}… {label}")
    return 0


def _render_stats(payload: dict) -> str:
    """Human-readable view of a ``repro.stats/v1`` payload."""
    from .obs import format_histogram

    exact = payload.get("method") == "exact"
    lines = [
        f"{payload['circuit']} — {payload['backend']} backend, "
        + ("exact density-matrix method" if exact
           else f"{payload['workers']} worker(s)"),
    ]
    if not exact:
        lines.append(
            f"trajectories: {payload['completed_trajectories']}"
            f"/{payload['requested_trajectories']}"
            + (" [TIMED OUT]" if payload["timed_out"] else "")
        )
    lines.append(
        f"elapsed: {payload['elapsed_seconds']:.3f} s "
        f"(cpu {payload['cpu_seconds']:.3f} s)"
    )
    if payload["peak_nodes"]:
        lines.append(f"peak DD nodes: {payload['peak_nodes']}")
    rates = payload["rates"]
    if rates:
        lines.append("hit rates:")
        lines.extend(f"  {name}: {rates[name]:.3f}" for name in sorted(rates))
    counters = payload["metrics"].get("counters", {})
    service_counters = {
        name: value
        for name, value in sorted(counters.items())
        if name.startswith(
            ("scheduler.", "store.", "errors.fired.", "dd.gc.", "faults.",
             "prefix.", "strata.", "gateplan.", "exact.", "dispatch.")
        )
    }
    if service_counters:
        lines.append("counters:")
        lines.extend(f"  {name}: {value}" for name, value in service_counters.items())
    histograms = payload["metrics"].get("histograms", {})
    for name in ("trajectory.seconds", "property.eval_seconds", "dd.state_nodes"):
        data = histograms.get(name)
        if data and data.get("count"):
            lines.append(f"{name}:")
            lines.extend(format_histogram(data))
    trace = payload.get("trace")
    if trace is not None:
        lines.append(f"trace ({len(trace)} events, newest last):")
        for event in trace[-20:]:
            attrs = " ".join(f"{k}={v}" for k, v in event["attrs"].items())
            lines.append(
                f"  {event['name']} +{1000.0 * event['duration']:.1f}ms {attrs}"
            )
    return "\n".join(lines)


def _command_stats(args: argparse.Namespace) -> int:
    import json as _json

    from .obs import derive_rates
    from .stochastic import StochasticSimulator

    circuit = _load_circuit(args.circuit)
    model = _noise_from_args(args)
    properties = _properties_from_args(args)
    method = _resolve_cli_method(args, circuit, model, properties)
    if method == "exact":
        from .exact import simulate_exact

        result = simulate_exact(circuit, noise_model=model, properties=properties)
        trace = None
    else:
        simulator = StochasticSimulator(backend=args.backend, workers=args.workers)
        try:
            result = simulator.run(
                circuit,
                noise_model=model,
                properties=properties,
                trajectories=args.trajectories,
                seed=args.seed,
                sample_shots=args.shots,
                timeout=args.timeout,
            )
            trace = simulator.trace_events() if args.trace else None
        finally:
            simulator.close()

    metrics = result.metrics
    # Scheduler health counters appear even when nothing went wrong (and
    # even on serial runs): "0 retries, 0 respawns" is itself the report.
    counters = metrics.setdefault("counters", {})
    counters.setdefault("scheduler.retries", 0)
    counters.setdefault("scheduler.worker_respawns", 0)
    # Dispatch routing is reported the same way — always present, so the
    # chosen path (and the never-taken ones, at 0) is in every payload.
    for name in (
        "dispatch.exact",
        "dispatch.stochastic",
        "dispatch.fallback",
        "dispatch.measured",
        "dispatch.worst_case",
    ):
        counters.setdefault(name, 0)
    counters["dispatch." + ("exact" if method == "exact" else "stochastic")] += 1
    if method == "exact":
        counters.setdefault("exact.kraus_applications", 0)
        counters.setdefault("exact.superop_applications", 0)
    payload = {
        "schema": "repro.stats/v1",
        "circuit": circuit.name,
        "backend": args.backend,
        "method": method,
        "workers": args.workers,
        "requested_trajectories": result.requested_trajectories,
        "completed_trajectories": result.completed_trajectories,
        "timed_out": result.timed_out,
        "elapsed_seconds": result.elapsed_seconds,
        "cpu_seconds": result.cpu_seconds,
        "peak_nodes": result.peak_nodes,
        "metrics": metrics,
        "rates": derive_rates(metrics),
    }
    if trace is not None:
        payload["trace"] = trace

    fmt = args.format or ("json" if args.json else "text")
    if fmt == "openmetrics":
        text = _stats_openmetrics(circuit.name, result, payload).rstrip("\n")
    elif fmt == "json":
        text = _json.dumps(payload, indent=2, sort_keys=True)
    else:
        text = _render_stats(payload)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _stats_openmetrics(circuit_name: str, result, payload: dict) -> str:
    """Render a stats run through the serve endpoint's formatter.

    One formatter backs both surfaces, so a one-shot ``repro stats
    --format=openmetrics`` run and a live scrape of ``serve
    --metrics-port`` emit byte-compatible exposition text.
    """
    from .obs import merge_snapshots, to_openmetrics

    snapshot = merge_snapshots(payload["metrics"])  # deep copy
    gauges = snapshot.setdefault("gauges", {})
    gauges["run.elapsed_seconds"] = float(payload["elapsed_seconds"])
    gauges["run.completed_trajectories"] = float(payload["completed_trajectories"])
    if payload["peak_nodes"]:
        gauges["run.peak_nodes"] = float(payload["peak_nodes"])
    gauges.update(payload["rates"])
    labeled = []
    for name, estimate in sorted(result.estimates.items()):
        if estimate.count <= 0:
            continue
        labels = {"property": name, "circuit": circuit_name}
        labeled.append(("run.estimate.mean", labels, estimate.mean))
        labeled.append(
            ("run.estimate.halfwidth", labels, estimate.hoeffding_halfwidth())
        )
    return to_openmetrics(snapshot, labeled)


def _command_profile(args: argparse.Namespace) -> int:
    from .obs import attributed_seconds, folded_lines
    from .obs.profile import PROFILE_ENV

    circuit = _load_circuit(args.circuit)
    properties = _properties_from_args(args)
    previous = os.environ.get(PROFILE_ENV)
    os.environ[PROFILE_ENV] = "on"
    try:
        result = simulate_stochastic(
            circuit,
            noise_model=_noise_from_args(args),
            properties=properties,
            trajectories=args.trajectories,
            backend=args.backend,
            workers=args.workers,
            seed=args.seed,
            sample_shots=args.shots,
            timeout=args.timeout,
        )
    finally:
        if previous is None:
            os.environ.pop(PROFILE_ENV, None)
        else:
            os.environ[PROFILE_ENV] = previous
    profile = result.profile
    if not profile or not profile.get("frames"):
        raise SystemExit(
            "no profile collected (workers inherited REPRO_PROFILE=off?)"
        )
    wall = float(profile.get("wall_seconds", 0.0))
    attributed = attributed_seconds(profile)
    print(
        f"{circuit.name} — {result.completed_trajectories} trajectories, "
        f"{wall:.3f} s profiled span wall time "
        f"({attributed:.3f} s attributed to frames)"
    )
    frames = sorted(
        profile["frames"].items(),
        key=lambda item: item[1]["seconds"],
        reverse=True,
    )
    print(f"hottest frames (self time, top {args.top}):")
    for path, data in frames[: max(1, args.top)]:
        share = data["seconds"] / wall if wall > 0 else 0.0
        print(
            f"  {data['seconds'] * 1000.0:9.2f} ms  {share:6.1%}  "
            f"x{data['count']}  {path}"
        )
    growth = sorted(
        profile.get("nodes", {}).items(),
        key=lambda item: item[1]["growth"],
        reverse=True,
    )
    hot_growth = [(path, data) for path, data in growth if data["growth"] > 0]
    if hot_growth:
        print("DD node growth by frame:")
        for path, data in hot_growth[: max(1, args.top)]:
            print(
                f"  +{data['growth']:8d} nodes (peak {data['peak']})  {path}"
            )
    if args.flame:
        lines = folded_lines(profile)
        with open(args.flame, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"wrote {args.flame} ({len(lines)} folded stacks)")
    return 0


def _command_chaos(args: argparse.Namespace) -> int:
    import json as _json

    from .faults.chaos import DEFAULT_KINDS, run_chaos, run_kill_serve

    if args.kill_serve:
        # The restart/resume scenario wants many small chunks so the
        # SIGKILL lands mid-job; rescale the suite defaults unless the
        # user overrode them explicitly.
        trajectories = 240 if args.trajectories == 80 else args.trajectories
        chunk_size = 4 if args.chunk_size == 16 else args.chunk_size
        report = run_kill_serve(
            seed=args.seed,
            trajectories=trajectories,
            num_qubits=3 if args.qubits == 4 else args.qubits,
            workers=args.workers,
            chunk_size=chunk_size,
            work_dir=args.work_dir,
        )
    else:
        kinds = (
            tuple(name.strip() for name in args.faults.split(",") if name.strip())
            if args.faults
            else DEFAULT_KINDS
        )
        report = run_chaos(
            seed=args.seed,
            kinds=kinds,
            trajectories=args.trajectories,
            num_qubits=args.qubits,
            workers=args.workers,
            chunk_size=args.chunk_size,
            chunk_timeout=args.chunk_timeout,
        )
    if args.json:
        payload = {
            "schema": "repro.chaos/v1",
            "seed": report.seed,
            "kinds": list(report.kinds),
            "trajectories": report.trajectories,
            "plan": report.plan,
            "reference_estimates": report.reference_estimates,
            "pass_estimates": report.pass_estimates,
            "injected": report.injected,
            "recovered": report.recovered,
            "checks": [
                {"name": check.name, "ok": check.ok, "detail": check.detail}
                for check in report.checks
            ],
            "ok": report.ok,
        }
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _command_table(args: argparse.Namespace) -> int:
    import json as _json

    if args.which == "1a":
        report = run_table1a(
            trajectories=args.trajectories or 50,
            timeout=args.timeout or 30.0,
            workers=args.workers,
        )
    elif args.which == "1b":
        report = run_table1b(
            trajectories=args.trajectories or 50,
            timeout=args.timeout or 30.0,
            workers=args.workers,
        )
    else:
        report = run_table1c(
            trajectories=args.trajectories or 20,
            timeout=args.timeout or 60.0,
            workers=args.workers,
        )
    print(report.render())
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            _json.dump(report.metrics_sidecar(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote metrics sidecar {args.metrics}")
    return 0


def _command_circuits() -> int:
    print("built-in circuits (name: paper qubit count):")
    for name, (qubits, _) in sorted(QASMBENCH_CIRCUITS.items()):
        print(f"  {name}: {qubits}")
    print("parameterised: ghz:<n>, qft:<n>")
    return 0


def _command_dot(args: argparse.Namespace) -> int:
    import random

    circuit = _load_circuit(args.circuit)
    backend = DDBackend(circuit.num_qubits)
    execute_circuit(backend, circuit, random.Random(0))
    dot_source = to_dot(backend.state, name=circuit.name.replace("-", "_"))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(dot_source + "\n")
        print(f"wrote {args.output}")
    else:
        print(dot_source)
    return 0


def _command_draw(args: argparse.Namespace) -> int:
    from .circuits.drawing import draw_circuit

    print(draw_circuit(_load_circuit(args.circuit)))
    return 0


def _command_equiv(args: argparse.Namespace) -> int:
    from .simulators import circuits_equivalent

    first = _load_circuit(args.first)
    second = _load_circuit(args.second)
    equivalent = circuits_equivalent(
        first, second, up_to_global_phase=not args.strict
    )
    phase_note = "" if args.strict else " (up to global phase)"
    print(f"{'EQUIVALENT' if equivalent else 'NOT equivalent'}{phase_note}")
    return 0 if equivalent else 1


def _command_fuse(args: argparse.Namespace) -> int:
    from .circuits.optimize import fuse_single_qubit_runs

    circuit = _load_circuit(args.circuit)
    fused = fuse_single_qubit_runs(circuit)
    qasm = fused.to_qasm()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(qasm)
        print(
            f"wrote {args.output}: {circuit.num_gates()} -> {fused.num_gates()} gates"
        )
    else:
        print(qasm)
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from .harness import report_markdown, run_table1b, run_table1c

    reports = [
        run_table1a(
            qubit_range=(4, 8, 12, 16, 20, 32),
            trajectories=args.trajectories,
            timeout=args.timeout,
        ),
        run_table1b(
            qubit_range=(4, 8, 12, 16, 20),
            trajectories=args.trajectories,
            timeout=args.timeout,
        ),
        run_table1c(trajectories=args.trajectories, timeout=args.timeout),
    ]
    text = report_markdown(
        reports,
        title="Stochastic DD simulation — table regeneration",
        notes=(
            "Scaled-down reproduction of the paper's Tables Ia-Ic; see "
            "EXPERIMENTS.md for the shape analysis."
        ),
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    try:
        return _dispatch(build_parser().parse_args(argv))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — the POSIX-polite exit.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _dispatch(args) -> int:
    if args.command == "run":
        return _command_run(args)
    if args.command == "submit":
        return _command_submit(args)
    if args.command == "status":
        return _command_status(args)
    if args.command == "result":
        return _command_result(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "jobs":
        return _command_jobs(args)
    if args.command == "history":
        return _command_history(args)
    if args.command == "monitor":
        return _command_monitor(args)
    if args.command == "cache":
        return _command_cache(args)
    if args.command == "stats":
        return _command_stats(args)
    if args.command == "profile":
        return _command_profile(args)
    if args.command == "chaos":
        return _command_chaos(args)
    if args.command == "table":
        return _command_table(args)
    if args.command == "report":
        return _command_report(args)
    if args.command == "circuits":
        return _command_circuits()
    if args.command == "dot":
        return _command_dot(args)
    if args.command == "draw":
        return _command_draw(args)
    if args.command == "equiv":
        return _command_equiv(args)
    if args.command == "fuse":
        return _command_fuse(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
