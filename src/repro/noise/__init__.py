"""Noise modelling: error channels, noise models, stochastic insertion."""

from .channels import (
    DEPOLARIZING_PAULIS,
    amplitude_damping_kraus,
    depolarizing_kraus,
    phase_flip_kraus,
    validate_kraus,
)
from .model import ErrorRates, NoiseModel
from .stochastic import StochasticErrorApplier, exact_channel_factory

__all__ = [
    "DEPOLARIZING_PAULIS",
    "ErrorRates",
    "NoiseModel",
    "StochasticErrorApplier",
    "amplitude_damping_kraus",
    "depolarizing_kraus",
    "exact_channel_factory",
    "phase_flip_kraus",
    "validate_kraus",
]
