"""Device-calibration-style noise models.

The paper notes (Section II-B1) that "gate errors are highly specific for
each quantum computer and even vary for qubits within the quantum
computer".  This module builds such heterogeneous models:

* :func:`heterogeneous_model` — per-qubit rates drawn deterministically
  around base values with device-like spread (some qubits are simply worse
  than others), mirroring what one would import from a real backend's
  calibration data;
* :func:`from_calibration_table` — build a model from explicit per-qubit
  calibration entries (T1/T2-style dictionaries), the shape vendor APIs
  expose.

Both produce plain :class:`~repro.noise.model.NoiseModel` instances, so
they work with every simulator unchanged.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from .model import ErrorRates, NoiseModel

__all__ = ["heterogeneous_model", "from_calibration_table"]


def _spread(seed: int, qubit: int, salt: int) -> float:
    """Deterministic multiplicative jitter in [0.5, 2.0)."""
    value = (seed * 48271 + qubit * 69621 + salt * 16807) % 9973
    return 0.5 + 1.5 * (value / 9973.0)


def heterogeneous_model(
    num_qubits: int,
    base: Optional[ErrorRates] = None,
    seed: int = 0,
    worst_qubit_factor: float = 4.0,
) -> NoiseModel:
    """A device-like model: every qubit gets its own rates around ``base``.

    One qubit (selected by the seed) is designated the "bad" qubit and gets
    ``worst_qubit_factor`` times the base rates — IBM calibration data
    routinely shows such outliers (paper reference [27], "Not All Qubits
    Are Created Equal").
    """
    if num_qubits < 1:
        raise ValueError("num_qubits must be >= 1")
    if base is None:
        base = NoiseModel.paper_defaults().default
    bad_qubit = seed % num_qubits
    overrides: Dict[int, ErrorRates] = {}
    for qubit in range(num_qubits):
        factor = _spread(seed, qubit, 1)
        if qubit == bad_qubit:
            factor *= worst_qubit_factor
        overrides[qubit] = base.scaled(factor)
    return NoiseModel.build(default=base, qubit_overrides=overrides)


def from_calibration_table(
    calibration: Mapping[int, Mapping[str, float]],
    gate_time_ns: float = 50.0,
    default: Optional[ErrorRates] = None,
) -> NoiseModel:
    """Build a model from per-qubit calibration entries.

    Each entry may contain (all optional):

    * ``"t1_us"`` — relaxation time; converted to a per-gate damping
      probability ``p = 1 - exp(-gate_time / T1)``,
    * ``"t2_us"`` — dephasing time; converted likewise to a phase-flip
      probability,
    * ``"gate_error"`` — used directly as the depolarization probability,
    * ``"readout_error"`` — used directly as the readout rate.

    This is the standard first-order mapping from coherence times to
    per-gate stochastic error rates.
    """
    import math

    if default is None:
        default = ErrorRates()
    overrides: Dict[int, ErrorRates] = {}
    gate_time_us = gate_time_ns / 1000.0
    for qubit, entry in calibration.items():
        damping = default.amplitude_damping
        phase_flip = default.phase_flip
        depolarizing = default.depolarizing
        readout = default.readout
        t1 = entry.get("t1_us")
        if t1:
            if t1 <= 0:
                raise ValueError(f"qubit {qubit}: T1 must be positive")
            damping = 1.0 - math.exp(-gate_time_us / t1)
        t2 = entry.get("t2_us")
        if t2:
            if t2 <= 0:
                raise ValueError(f"qubit {qubit}: T2 must be positive")
            phase_flip = 1.0 - math.exp(-gate_time_us / t2)
        if "gate_error" in entry:
            depolarizing = entry["gate_error"]
        if "readout_error" in entry:
            readout = entry["readout_error"]
        overrides[qubit] = ErrorRates(depolarizing, damping, phase_flip, readout)
    return NoiseModel.build(default=default, qubit_overrides=overrides)
