"""Kraus-operator representations of the paper's error channels.

Section II-B of the paper considers three physically motivated errors:

* **depolarization** (gate error): with probability ``p`` the qubit is
  replaced by a uniformly random Pauli frame — realised by applying I, X, Y
  or Z each with probability ``p/4`` (paper Example 3);
* **amplitude damping** (T1): relaxation of |1> toward |0>, with the
  *state-dependent* branch probabilities of paper Example 6 — note the
  paper's printed ``A_1`` matrix contains a typo (``sqrt(p)`` instead of
  ``sqrt(1-p)``); this module uses the correct Nielsen-Chuang form, which
  is also what the accompanying probabilities in Example 6 imply;
* **phase flip** (T2): with probability ``p`` a Z is applied.

These exact Kraus sets feed both the stochastic insertion (trajectory
branches) and the density-matrix oracle (channel sums), so the two agree in
expectation — the property Theorem 1's validation tests check.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

__all__ = [
    "depolarizing_kraus",
    "amplitude_damping_kraus",
    "phase_flip_kraus",
    "thermal_relaxation_kraus",
    "DEPOLARIZING_PAULIS",
    "TWO_QUBIT_PAULIS",
    "validate_kraus",
]

_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)

#: The four Pauli frames a firing depolarization error chooses among.
DEPOLARIZING_PAULIS: Tuple[np.ndarray, ...] = (_I, _X, _Y, _Z)


def _check_probability(p: float, name: str) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} probability must lie in [0, 1], got {p}")


def depolarizing_kraus(p: float) -> List[np.ndarray]:
    """Kraus operators of the depolarizing channel with firing probability ``p``.

    ``rho -> (1 - 3p/4) rho + (p/4)(X rho X + Y rho Y + Z rho Z)`` — the
    channel induced by applying a uniformly random Pauli with probability
    ``p`` (the I branch merges into the no-error term).
    """
    _check_probability(p, "depolarizing")
    return [
        math.sqrt(1.0 - 3.0 * p / 4.0) * _I,
        math.sqrt(p / 4.0) * _X,
        math.sqrt(p / 4.0) * _Y,
        math.sqrt(p / 4.0) * _Z,
    ]


def amplitude_damping_kraus(p: float) -> List[np.ndarray]:
    """Kraus operators of the amplitude-damping (T1) channel.

    Returned in the order ``[A_no_decay, A_decay]``; the *decay* operator
    ``A_decay = [[0, sqrt(p)], [0, 0]]`` maps |1> to |0> (paper Example 6's
    ``A_0``).
    """
    _check_probability(p, "amplitude damping")
    no_decay = np.array([[1, 0], [0, math.sqrt(1.0 - p)]], dtype=complex)
    decay = np.array([[0, math.sqrt(p)], [0, 0]], dtype=complex)
    return [no_decay, decay]


def phase_flip_kraus(p: float) -> List[np.ndarray]:
    """Kraus operators of the phase-flip (T2) channel."""
    _check_probability(p, "phase flip")
    return [math.sqrt(1.0 - p) * _I, math.sqrt(p) * _Z]


def thermal_relaxation_kraus(
    t1_us: float,
    t2_us: float,
    duration_us: float,
    excited_population: float = 0.0,
) -> List[np.ndarray]:
    """Kraus operators of the combined T1/T2 thermal-relaxation channel.

    The standard first-principles model for idle decoherence over a time
    window ``duration_us``: amplitude damping toward the thermal state
    (|0> for ``excited_population`` = 0) with ``p_reset = 1 - exp(-t/T1)``
    composed with pure dephasing so the total coherence decay matches
    ``exp(-t/T2)``.  Requires the physical constraint ``T2 <= 2 T1``.

    Returned operators (for ``excited_population`` = 0): damping pair plus
    a residual phase-flip pair — five operators with zeros stripped.
    """
    if t1_us <= 0 or t2_us <= 0 or duration_us < 0:
        raise ValueError("T1, T2 must be positive and duration non-negative")
    if t2_us > 2 * t1_us + 1e-12:
        raise ValueError("unphysical relaxation times: T2 must be <= 2*T1")
    if not 0.0 <= excited_population <= 1.0:
        raise ValueError("excited_population must lie in [0, 1]")
    decay = 1.0 - math.exp(-duration_us / t1_us)
    total_dephase = math.exp(-duration_us / t2_us)
    # Coherences decay by sqrt(1-decay) from damping alone; the remainder is
    # pure dephasing with phase-flip probability p_z.
    residual = total_dephase / math.sqrt(1.0 - decay) if decay < 1.0 else 0.0
    residual = min(max(residual, 0.0), 1.0)
    p_z = (1.0 - residual) / 2.0

    cold = math.sqrt(1.0 - excited_population)
    hot = math.sqrt(excited_population)
    operators = [
        # Damping toward |0> (weight: cold).
        cold * np.array([[1, 0], [0, math.sqrt(1 - decay)]], dtype=complex),
        cold * np.array([[0, math.sqrt(decay)], [0, 0]], dtype=complex),
        # Excitation toward |1> (weight: hot).
        hot * np.array([[math.sqrt(1 - decay), 0], [0, 1]], dtype=complex),
        hot * np.array([[0, 0], [math.sqrt(decay), 0]], dtype=complex),
    ]
    operators = [op for op in operators if np.any(np.abs(op) > 0)]
    if p_z > 0.0:
        # Compose the residual dephasing into every operator branch.
        dephased: List[np.ndarray] = []
        z = np.diag([1.0, -1.0]).astype(complex)
        for op in operators:
            dephased.append(math.sqrt(1.0 - p_z) * op)
            dephased.append(math.sqrt(p_z) * z @ op)
        operators = dephased
    return operators


#: The fifteen non-identity two-qubit Pauli pairs used by the correlated
#: (crosstalk) depolarizing error, as (first-qubit, second-qubit) factors.
TWO_QUBIT_PAULIS: Tuple[Tuple[np.ndarray, np.ndarray], ...] = tuple(
    (a, b)
    for a in DEPOLARIZING_PAULIS
    for b in DEPOLARIZING_PAULIS
    if not (a is DEPOLARIZING_PAULIS[0] and b is DEPOLARIZING_PAULIS[0])
)


def validate_kraus(kraus_operators: List[np.ndarray], atol: float = 1e-12) -> bool:
    """Check the completeness relation ``sum_k K^dagger K = I``."""
    total = np.zeros((2, 2), dtype=complex)
    for kraus in kraus_operators:
        total += kraus.conj().T @ kraus
    return bool(np.allclose(total, np.eye(2), atol=atol))
