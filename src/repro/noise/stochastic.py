"""Stochastic error insertion — the paper's Section III realised as a hook.

After every executed gate, for every qubit the gate touched, three error
mechanisms are applied in a fixed order:

1. **depolarization**: with probability ``p`` replace the qubit's Pauli
   frame by a uniformly random one of I, X, Y, Z (Example 3) — the I branch
   is a no-op and skipped;
2. **amplitude damping**: per the model's ``damping_mode`` — either the
   first-order *event* semantics (fire with the state-dependent probability
   ``p * P(1)``, leave the state untouched otherwise; the default, and the
   behaviour the paper's runtime tables imply) or the *exact* two-Kraus
   unravelling of Example 6 (no-decay branch applies the
   ``diag(1, sqrt(1-p))`` tilt; unbiased but DD-hostile — see
   :class:`~repro.noise.model.NoiseModel`);
3. **phase flip**: with probability ``p`` apply Z.

The mechanism order matters only at second order in the rates and is kept
identical in the density-matrix oracle.

The same module builds the channel factory for the oracle; with
``damping_mode="exact"`` the stochastic trajectories average to *precisely*
the channels the oracle applies.  With ``"event"`` the no-fire branch skips
the true channel's ``sqrt(1-p)`` amplitude damping, so averages on
superposition observables deviate at first order in the damping rate (see
:class:`~repro.noise.model.NoiseModel` for the full discussion).
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple

import numpy as np

from ..simulators.base import StateBackend
from .channels import (
    DEPOLARIZING_PAULIS,
    amplitude_damping_kraus,
    depolarizing_kraus,
    phase_flip_kraus,
)
from .model import NoiseModel

__all__ = [
    "StochasticErrorApplier",
    "exact_channel_factory",
    "NoiseSite",
    "build_noise_site",
    "dry_run_site",
]

_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_DECAY = np.array([[0.0, 1.0], [0.0, 0.0]], dtype=complex)


def _noise_ops(backend):
    """The backend's cached noise-operator DDs, or ``None`` (dense paths)."""
    return getattr(backend, "noise_ops", None)


class StochasticErrorApplier:
    """Applies sampled errors to a backend after each gate.

    Instances are callables with the :data:`~repro.simulators.base.ErrorHook`
    signature, so they plug directly into
    :func:`~repro.simulators.base.execute_circuit`.
    """

    def __init__(self, model: NoiseModel, rng: random.Random) -> None:
        self.model = model
        self.rng = rng
        #: Statistics: how many errors of each kind actually fired.
        self.fired = {"depolarizing": 0, "amplitude_damping": 0, "phase_flip": 0}
        # Damping Kraus pairs are cached per rate (they are tiny, but the
        # cache keeps the hot path allocation-free).
        self._damping_cache: dict = {}

    def __call__(
        self, backend: StateBackend, qubits: Tuple[int, ...], gate_name: str
    ) -> None:
        if not self.model.noisy_measure and gate_name in ("measure", "reset"):
            return
        for qubit in qubits:
            rates = self.model.rates_for(gate_name, qubit)
            if rates.is_noiseless:
                continue
            self._apply_depolarizing(backend, qubit, rates.depolarizing)
            self._apply_damping(backend, qubit, rates.amplitude_damping)
            self._apply_phase_flip(backend, qubit, rates.phase_flip)
        if len(qubits) >= 2:
            for pair in zip(qubits, qubits[1:]):
                self._apply_crosstalk(backend, pair, gate_name)

    def before_measure(self, backend: StateBackend, qubit: int) -> None:
        """Readout error: flip the qubit with the slot's ``readout`` rate.

        Called by the executor immediately before a measurement — the
        standard misassignment model (extension beyond the paper's three
        mechanisms).
        """
        rates = self.model.rates_for("measure", qubit)
        if rates.readout <= 0.0 or self.rng.random() >= rates.readout:
            return
        self.fired["readout"] = self.fired.get("readout", 0) + 1
        ops = _noise_ops(backend)
        if ops is not None:
            backend.apply_gate_edge(ops.single_qubit("pauli1", _X, qubit))
        else:
            backend.apply_gate(_X, qubit, {})

    # ------------------------------------------------------------------
    # The three mechanisms
    # ------------------------------------------------------------------

    def _apply_depolarizing(self, backend: StateBackend, qubit: int, p: float) -> None:
        if p <= 0.0 or self.rng.random() >= p:
            return
        pauli_index = self.rng.randrange(4)
        self.fired["depolarizing"] += 1
        if pauli_index == 0:
            return  # the I branch of Example 3 — physically a no-op
        self._apply_pauli(backend, pauli_index, qubit)

    def _apply_pauli(self, backend: StateBackend, pauli_index: int, qubit: int) -> None:
        """Apply a Pauli through the backend's operator cache when it has one."""
        ops = _noise_ops(backend)
        if ops is not None:
            backend.apply_gate_edge(
                ops.single_qubit(f"pauli{pauli_index}", DEPOLARIZING_PAULIS[pauli_index], qubit)
            )
        else:
            backend.apply_gate(DEPOLARIZING_PAULIS[pauli_index], qubit, {})

    def _apply_damping(self, backend: StateBackend, qubit: int, p: float) -> None:
        if p <= 0.0:
            return
        if self.model.damping_mode == "event":
            self._apply_damping_event(backend, qubit, p)
            return
        kraus = self._damping_cache.get(p)
        if kraus is None:
            kraus = amplitude_damping_kraus(p)
            self._damping_cache[p] = kraus
        ops = _noise_ops(backend)
        if ops is not None:
            edges = ops.kraus_pair(f"damping:{p!r}", kraus, qubit)
            chosen = backend.apply_kraus_edges(edges, self.rng)
        else:
            chosen = backend.apply_kraus_branch(kraus, qubit, self.rng)
        if chosen == 1:  # the decay branch actually fired
            self.fired["amplitude_damping"] += 1

    def _apply_damping_event(self, backend: StateBackend, qubit: int, p: float) -> None:
        """T1 error event: decay fires with the state-dependent probability
        ``p * P(qubit = 1)`` (the same firing probability as the exact
        unravelling); the no-decay branch leaves the state untouched.

        The untouched no-fire branch is what keeps decision diagrams on the
        ideal trajectory between rare error events — the property the
        paper's Table I runtimes depend on — at the cost of an O(p)-per-slot
        bias on superposition observables (see NoiseModel.damping_mode).
        """
        p_one = backend.probability_of_one(qubit)
        if p_one <= 0.0 or self.rng.random() >= p * p_one:
            return
        self.fired["amplitude_damping"] += 1
        # Apply the decay operator and renormalise: |1> -> |0> on this
        # qubit, with the register state conditioned accordingly.
        ops = _noise_ops(backend)
        if ops is not None:
            backend.apply_kraus_edges(ops.kraus_pair("decay", (_DECAY,), qubit), self.rng)
        else:
            backend.apply_kraus_branch([_DECAY], qubit, self.rng)

    def _apply_phase_flip(self, backend: StateBackend, qubit: int, p: float) -> None:
        if p <= 0.0 or self.rng.random() >= p:
            return
        self.fired["phase_flip"] += 1
        self._apply_pauli(backend, 3, qubit)

    def _apply_crosstalk(
        self, backend: StateBackend, pair: Tuple[int, int], gate_name: str
    ) -> None:
        """Correlated two-qubit depolarization (crosstalk extension).

        With probability ``p`` a uniformly random two-qubit Pauli (one of
        the 16 products, I (x) I included) replaces the pair's frame —
        the two-qubit analogue of paper Example 3.  The rate resolves on
        the pair's second (target-side) qubit.
        """
        p = self.model.rates_for(gate_name, pair[1]).crosstalk
        if p <= 0.0 or self.rng.random() >= p:
            return
        self.fired["crosstalk"] = self.fired.get("crosstalk", 0) + 1
        index = self.rng.randrange(16)
        if index // 4:
            self._apply_pauli(backend, index // 4, pair[0])
        if index % 4:
            self._apply_pauli(backend, index % 4, pair[1])


# ----------------------------------------------------------------------
# RNG dry-run (the prefix-sharing engine's first-error-site computation)
# ----------------------------------------------------------------------
#
# ``dry_run_site`` MUST consume the trajectory rng *exactly* as
# ``StochasticErrorApplier`` does along the ideal (error-free) prefix: same
# draws, same order, same short-circuits, same ``fired`` tallies.  Any edit
# to the applier's draw structure above must be mirrored here — the
# equivalence gate in tests/stochastic/test_prefix_sharing.py pins the two
# paths bit-identically and will catch a desync.


class NoiseSite:
    """Precomputed draw descriptor for one error-insertion slot.

    ``qubit_draws`` holds ``(depolarizing_p, damping_p, ideal_p_one,
    phase_flip_p)`` per touched qubit; ``ideal_p_one`` is the noiseless
    state's P(qubit = 1) *at this slot* (captured during the instrumented
    ideal execution), which is valid during a dry-run precisely because any
    state-changing event ends the dry-run immediately.  ``crosstalk`` holds
    one rate per adjacent qubit pair.
    """

    __slots__ = ("qubit_draws", "crosstalk")

    def __init__(
        self,
        qubit_draws: Tuple[Tuple[float, float, float, float], ...],
        crosstalk: Tuple[float, ...],
    ) -> None:
        self.qubit_draws = qubit_draws
        self.crosstalk = crosstalk


def build_noise_site(
    model: NoiseModel, gate_name: str, qubits: Tuple[int, ...], ideal_p_one
) -> NoiseSite:
    """Capture one slot's rates (and ideal P(1) values) for later dry-runs.

    ``ideal_p_one`` is a callable ``qubit -> float`` evaluated against the
    ideal state directly after the slot's gate — only consulted for qubits
    with a non-zero damping rate in ``"event"`` mode, matching the lazy
    ``probability_of_one`` read in :meth:`StochasticErrorApplier._apply_damping_event`.
    """
    event_mode = model.damping_mode == "event"
    draws = []
    for qubit in qubits:
        rates = model.rates_for(gate_name, qubit)
        damping = rates.amplitude_damping
        p_one = 0.0
        if damping > 0.0 and event_mode:
            p_one = ideal_p_one(qubit)
        draws.append((rates.depolarizing, damping, p_one, rates.phase_flip))
    crosstalk: Tuple[float, ...] = ()
    if len(qubits) >= 2:
        crosstalk = tuple(
            model.rates_for(gate_name, pair[1]).crosstalk
            for pair in zip(qubits, qubits[1:])
        )
    return NoiseSite(tuple(draws), crosstalk)


def dry_run_site(rng: random.Random, fired: dict, site: NoiseSite, exact_damping: bool) -> bool:
    """Consume one slot's draws; True when the state leaves the ideal prefix.

    No-op events (the depolarizing/crosstalk identity branches, unfired
    mechanisms) tally into ``fired`` and continue; the first state-changing
    event returns immediately — before the extra draws its application
    would consume — so the caller replays it from a checkpoint with the
    real applier.  In ``exact`` damping mode any slot with a non-zero
    damping rate diverges unconditionally: the no-decay Kraus branch tilts
    the state, so even "no event" leaves the ideal prefix.
    """
    for dep_p, damp_p, p_one, phase_p in site.qubit_draws:
        if dep_p > 0.0 and rng.random() < dep_p:
            pauli_index = rng.randrange(4)
            fired["depolarizing"] += 1
            if pauli_index:
                return True
        if damp_p > 0.0:
            if exact_damping:
                return True
            if p_one > 0.0 and rng.random() < damp_p * p_one:
                fired["amplitude_damping"] += 1
                return True
        if phase_p > 0.0 and rng.random() < phase_p:
            fired["phase_flip"] += 1
            return True
    for crosstalk_p in site.crosstalk:
        if crosstalk_p > 0.0 and rng.random() < crosstalk_p:
            fired["crosstalk"] = fired.get("crosstalk", 0) + 1
            index = rng.randrange(16)
            if index:
                return True
    return False


def exact_channel_factory(model: NoiseModel):
    """Channel factory for the density-matrix oracle matching the stochastic
    semantics of :class:`StochasticErrorApplier` exactly (same mechanisms,
    same order).

    Returns a callable ``(gate_name, qubit) -> [kraus_list, ...]`` suitable
    for :meth:`~repro.simulators.density_matrix.DensityMatrixSimulator.run_circuit`.
    """

    def factory(gate_name: str, qubit: int) -> List[Sequence[np.ndarray]]:
        if gate_name == "readout":
            # Pre-measurement readout bit flip (extension; the oracle asks
            # for this slot explicitly before dephasing a measured qubit).
            rates = model.rates_for("measure", qubit)
            if rates.readout > 0.0:
                p = rates.readout
                return [[math.sqrt(1.0 - p) * np.eye(2, dtype=complex), math.sqrt(p) * _X]]
            return []
        if not model.noisy_measure and gate_name in ("measure", "reset"):
            return []
        rates = model.rates_for(gate_name, qubit)
        channels: List[Sequence[np.ndarray]] = []
        if rates.depolarizing > 0.0:
            channels.append(depolarizing_kraus(rates.depolarizing))
        if rates.amplitude_damping > 0.0:
            channels.append(amplitude_damping_kraus(rates.amplitude_damping))
        if rates.phase_flip > 0.0:
            channels.append(phase_flip_kraus(rates.phase_flip))
        return channels

    return factory
