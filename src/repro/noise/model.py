"""Noise models: per-gate / per-qubit error probabilities.

The paper's evaluation (Section V) fixes one global configuration — 0.1 %
depolarization, 0.2 % amplitude damping (T1), 0.1 % phase flip (T2) applied
to every qubit a gate touches — exposed here as
:meth:`NoiseModel.paper_defaults`.  Since real devices have "highly specific"
error rates per gate and qubit (paper Section II-B1), the model also
supports per-gate-name and per-qubit overrides.

Models are immutable and picklable: the stochastic runner ships them to
worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = ["ErrorRates", "NoiseModel"]


@dataclass(frozen=True)
class ErrorRates:
    """Probabilities of the error mechanisms for one gate/qubit slot.

    The first three are the paper's Section II-B mechanisms; ``readout`` is
    an extension modelling measurement misassignment as a bit flip applied
    immediately before the measurement (the standard readout-error model,
    dominant on real devices at the 1-3 % level).
    """

    depolarizing: float = 0.0
    amplitude_damping: float = 0.0
    phase_flip: float = 0.0
    readout: float = 0.0
    crosstalk: float = 0.0

    _FIELDS = (
        "depolarizing",
        "amplitude_damping",
        "phase_flip",
        "readout",
        "crosstalk",
    )

    def __post_init__(self) -> None:
        for name in self._FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} rate must lie in [0, 1], got {value}")

    @property
    def is_noiseless(self) -> bool:
        """True when every rate is zero."""
        return all(getattr(self, name) == 0.0 for name in self._FIELDS)

    def scaled(self, factor: float) -> "ErrorRates":
        """Rates uniformly scaled by ``factor`` (clamped to [0, 1])."""
        clamp = lambda value: min(max(value, 0.0), 1.0)  # noqa: E731
        return ErrorRates(
            clamp(self.depolarizing * factor),
            clamp(self.amplitude_damping * factor),
            clamp(self.phase_flip * factor),
            clamp(self.readout * factor),
            clamp(self.crosstalk * factor),
        )


@dataclass(frozen=True)
class NoiseModel:
    """Error rates with optional per-gate and per-qubit specialisation.

    Resolution order for a (gate, qubit) slot: the per-qubit override wins,
    then the per-gate override, then the default rates.  ``noisy_measure``
    controls whether readout/reset also attract errors (on by default, as
    readout noise dominates on hardware).

    ``damping_mode`` selects the amplitude-damping (T1) semantics:

    * ``"event"`` (default) — with the state-dependent probability
      ``p * P(qubit = 1)`` the qubit decays (normalised ``A0`` applied);
      otherwise the state is **left untouched**.  This is the "mimic the
      error with probability p, leave the state untouched with probability
      1 - p" reading of the paper's Section III.  Decisively, it keeps
      decision diagrams compact: the common no-decay branch stays exactly
      on the ideal trajectory, and the paper's reported runtimes (e.g.
      7 ms per trajectory on ``bv_19``) are only reachable this way.  The
      price is bias: the untouched no-fire branch omits the
      ``sqrt(1-p)`` damping of amplitudes that the true channel applies,
      so ensemble averages on *superposition* observables deviate from the
      exact channel at first order in ``p`` per slot (exact on
      computational basis states).  At the paper's rates (p = 0.002) this
      is well below its epsilon = 0.01 accuracy target for shallow
      circuits, but it is not the unbiased estimator Theorem 1 assumes.
    * ``"exact"`` — the two-Kraus unravelling of the paper's Example 6:
      the no-decay branch applies ``A1 = diag(1, sqrt(1-p))`` and is
      renormalised.  Unbiased (single-run expectations match the
      density-matrix channel exactly, as Theorem 1's proof requires), but
      the per-qubit ``A1`` tilts interleave non-commutatively on shared
      qubits and can blow decision diagrams up exponentially — see
      DESIGN.md.  The exactness tests use this mode.
    """

    default: ErrorRates = field(default_factory=ErrorRates)
    gate_overrides: Tuple[Tuple[str, ErrorRates], ...] = ()
    qubit_overrides: Tuple[Tuple[int, ErrorRates], ...] = ()
    noisy_measure: bool = True
    damping_mode: str = "event"

    def __post_init__(self) -> None:
        if self.damping_mode not in ("event", "exact"):
            raise ValueError(
                f"damping_mode must be 'event' or 'exact', got {self.damping_mode!r}"
            )

    @classmethod
    def paper_defaults(cls, damping_mode: str = "event") -> "NoiseModel":
        """The configuration of the paper's evaluation (Section V)."""
        return cls(
            default=ErrorRates(
                depolarizing=0.001, amplitude_damping=0.002, phase_flip=0.001
            ),
            damping_mode=damping_mode,
        )

    @classmethod
    def noiseless(cls) -> "NoiseModel":
        """All-zero rates (ideal hardware)."""
        return cls()

    @classmethod
    def uniform(
        cls,
        depolarizing: float = 0.0,
        amplitude_damping: float = 0.0,
        phase_flip: float = 0.0,
        damping_mode: str = "event",
    ) -> "NoiseModel":
        """Uniform global rates."""
        return cls(
            default=ErrorRates(depolarizing, amplitude_damping, phase_flip),
            damping_mode=damping_mode,
        )

    @classmethod
    def build(
        cls,
        default: ErrorRates,
        gate_overrides: Optional[Mapping[str, ErrorRates]] = None,
        qubit_overrides: Optional[Mapping[int, ErrorRates]] = None,
        noisy_measure: bool = True,
        damping_mode: str = "event",
    ) -> "NoiseModel":
        """Convenience constructor accepting plain dicts for the overrides."""
        return cls(
            default=default,
            gate_overrides=tuple(sorted((gate_overrides or {}).items())),
            qubit_overrides=tuple(sorted((qubit_overrides or {}).items())),
            noisy_measure=noisy_measure,
            damping_mode=damping_mode,
        )

    def with_damping_mode(self, damping_mode: str) -> "NoiseModel":
        """Copy of this model with a different T1 unravelling."""
        return NoiseModel(
            default=self.default,
            gate_overrides=self.gate_overrides,
            qubit_overrides=self.qubit_overrides,
            noisy_measure=self.noisy_measure,
            damping_mode=damping_mode,
        )

    def rates_for(self, gate_name: str, qubit: int) -> ErrorRates:
        """Resolve the error rates for one gate/qubit slot."""
        for override_qubit, rates in self.qubit_overrides:
            if override_qubit == qubit:
                return rates
        for override_gate, rates in self.gate_overrides:
            if override_gate == gate_name:
                return rates
        return self.default

    @property
    def is_noiseless(self) -> bool:
        """True when no slot can ever produce an error."""
        return (
            self.default.is_noiseless
            and all(rates.is_noiseless for _, rates in self.gate_overrides)
            and all(rates.is_noiseless for _, rates in self.qubit_overrides)
        )

    def scaled(self, factor: float) -> "NoiseModel":
        """All rates scaled by ``factor`` (used by error-rate sweep studies)."""
        return NoiseModel(
            default=self.default.scaled(factor),
            gate_overrides=tuple(
                (name, rates.scaled(factor)) for name, rates in self.gate_overrides
            ),
            qubit_overrides=tuple(
                (qubit, rates.scaled(factor)) for qubit, rates in self.qubit_overrides
            ),
            noisy_measure=self.noisy_measure,
            damping_mode=self.damping_mode,
        )
