"""Persistent per-circuit-family run ledger (``repro.ledger/v1``).

The journal (:mod:`repro.service.journal`) records what the service *was
doing*; the ledger records what running it *cost*.  It is an append-only
JSONL file under the store work directory where the scheduler writes one
``run`` record per finished job — method, observed peak decision-diagram
node counts, cpu/wall seconds, (effective) trajectories per second,
``p_clean``, achieved half-widths — plus a ``fallback`` record whenever an
exact run trips its node ceiling mid-flight.  Records are keyed by a
**structural circuit-family fingerprint** (:func:`circuit_fingerprint`):
qubit count, depth, gate histogram, and noise-model family, deliberately
*invariant* across seeds, trajectory budgets, and epsilon/delta targets —
the axis along which history generalises, unlike the content-addressed job
key which changes whenever any of those change.

The payoff is the **measured dispatch cost model**
(:class:`repro.exact.cost.MeasuredCostModel`): the worst-case ``4**n`` /
``2**n`` representation sizes the hybrid dispatcher scores with are
replaced, for families with recorded history, by the peak node counts
actually observed — the ROADMAP item "feed back observed ``peak_rho_nodes``
per circuit family from the store so dispatch learns that GHZ-class rho
stays small and exact keeps winning far past the dense boundary".

Durability follows the journal's rules exactly:

* appends are flushed and ``fsync``'d before returning (configurable
  interval), shed during a degraded-mode cooldown after a failed write
  (``ledger.write.errors`` / ``ledger.degraded.skipped``);
* replay distrusts a **torn tail** — the final line is skipped whenever the
  file does not end in a newline, even if it happens to parse
  (``ledger.replay.torn_skipped``); undecodable interior lines are skipped
  and counted (``ledger.replay.bad_skipped``), never fatal;
* rotation is atomic (tmp + fsync + ``os.replace``) and *compacts history
  instead of discarding it*: raw ``run`` records are folded into one
  mergeable per-fingerprint ``aggregate`` record (counts plus fixed-bucket
  histograms, associative exactly like
  :func:`repro.obs.metrics.merge_snapshots`), keeping a bounded window of
  recent raw records per family for trend display.

Record taxonomy (one JSON object per line, ``"rec"`` discriminates):

=============  ==========================================================
``header``     ``{"rec","schema"}`` — first line after creation/rotation
``run``        one finished job: ``{"rec","job","fp","method","qubits",
               "depth","peak_nodes","cpu_seconds","elapsed_seconds",
               "trajectories","effective_trajectories",
               "trajectories_per_second","p_clean","halfwidths"}``
``fallback``   node-ceiling misprediction: ``{"rec","job","fp","nodes",
               "ceiling"}`` — fed back so dispatch learns
``aggregate``  rotation product: ``{"rec","fp","agg":{...}}``
=============  ==========================================================

Fault-injection sites (see :mod:`repro.faults`): ``torn-ledger`` truncates
the file mid-record after an append and ``enospc-ledger`` fails the append
with ``ENOSPC``; both match on ``operation=<record type>``.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import threading
import time
from typing import Dict, IO, List, Mapping, Optional, Sequence, Tuple

from .metrics import MetricsRegistry, NODE_BUCKETS, _remap_counts

__all__ = [
    "FamilyAggregate",
    "LEDGER_SCHEMA",
    "LedgerState",
    "RATE_BUCKETS",
    "RunLedger",
    "circuit_fingerprint",
    "ledger_path",
    "replay_ledger",
]

#: Ledger record schema; bump when the record layout changes.
LEDGER_SCHEMA = "repro.ledger/v1"

#: Default rotation threshold: compact once the file outgrows this.
DEFAULT_MAX_BYTES = 4 * 1024 * 1024

#: Seconds the ledger sheds writes after a failed append (ENOSPC etc.).
DEFAULT_DEGRADED_COOLDOWN = 5.0

#: Raw run/fallback records kept per family through a rotation (older ones
#: survive only inside the family's aggregate record).
DEFAULT_RECENT_RECORDS = 8

#: Throughput bucket upper bounds in trajectories/second (powers of two
#: spanning sub-1/s exact passes to ~10^7/s effective stratified rates; an
#: implicit +inf bucket follows).  Fixed bounds keep merges associative.
RATE_BUCKETS: Tuple[float, ...] = tuple(float(2.0**k) for k in range(-6, 24))


def ledger_path(store_directory: str) -> str:
    """Canonical ledger location inside a store directory."""
    return os.path.join(store_directory, "ledger", "runs.jsonl")


# ---------------------------------------------------------------------------
# Circuit-family fingerprint
# ---------------------------------------------------------------------------


def _noise_family(model) -> Optional[Dict[str, object]]:
    """Structural description of a noise model: which mechanisms can fire.

    Only the *set* of active mechanisms (any non-zero rate across the
    default and every gate/qubit override) plus the semantic switches enter
    the fingerprint — not the rates themselves.  Families are about diagram
    *structure*: which Kraus branches exist determines how rho can grow,
    while scaling a rate changes only how often trajectories branch.
    """
    if model is None:
        return None
    sources = [model.default]
    sources.extend(rates for _, rates in model.gate_overrides)
    sources.extend(rates for _, rates in model.qubit_overrides)
    fields = type(model.default)._FIELDS
    mechanisms = sorted(
        name
        for name in fields
        if any(getattr(rates, name) > 0.0 for rates in sources)
    )
    return {
        "damping_mode": model.damping_mode,
        "mechanisms": mechanisms,
        "noisy_measure": bool(model.noisy_measure),
    }


def circuit_fingerprint(circuit, model=None, backend_kind: str = "dd") -> str:
    """Stable structural identity of a (circuit, noise, backend) family.

    Built from qubit count, circuit depth, the gate histogram
    (:meth:`~repro.circuits.circuit.QuantumCircuit.count_ops`), the noise
    family, and the backend kind — and from nothing else.  Two jobs that
    differ only in seed, trajectory budget, epsilon/delta, or method share
    a fingerprint, which is exactly what lets one job's observed node
    counts inform the next job's dispatch decision.
    """
    payload = {
        "backend": backend_kind,
        "depth": circuit.depth(),
        "gates": dict(sorted(circuit.count_ops().items())),
        "noise": _noise_family(model),
        "qubits": circuit.num_qubits,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Mergeable per-family aggregates
# ---------------------------------------------------------------------------


def _empty_hist(bounds: Sequence[float]) -> Dict[str, object]:
    return {
        "bounds": [float(b) for b in bounds],
        "counts": [0] * (len(bounds) + 1),
        "sum": 0.0,
        "count": 0,
    }


def _hist_observe(hist: Dict[str, object], value: float) -> None:
    import bisect

    bounds = hist["bounds"]
    hist["counts"][bisect.bisect_left(bounds, value)] += 1
    hist["sum"] = float(hist["sum"]) + value
    hist["count"] = int(hist["count"]) + 1


def _hist_merge(into: Dict[str, object], other: Dict[str, object]) -> None:
    """Element-wise histogram sum, padding onto the bounds union when the
    layouts differ (associative — mirrors :func:`metrics.merge_snapshots`)."""
    other_bounds = [float(b) for b in other["bounds"]]
    if into["bounds"] != other_bounds:
        union = sorted(set(into["bounds"]) | set(other_bounds))
        into["counts"] = [
            a + b
            for a, b in zip(
                _remap_counts(into["bounds"], into["counts"], union),
                _remap_counts(other_bounds, other["counts"], union),
            )
        ]
        into["bounds"] = union
    else:
        into["counts"] = [a + b for a, b in zip(into["counts"], other["counts"])]
    into["sum"] = float(into["sum"]) + float(other["sum"])
    into["count"] = int(into["count"]) + int(other["count"])


def _hist_quantile(hist: Dict[str, object], q: float) -> float:
    """Bucket-resolution quantile (upper bound of the bucket holding ``q``)."""
    total = int(hist["count"])
    if total <= 0:
        return 0.0
    target = max(1, int(-(-q * total // 1)))
    bounds = list(hist["bounds"]) + [float("inf")]
    seen = 0
    for bound, count in zip(bounds, hist["counts"]):
        seen += count
        if seen >= target:
            return bound
    return bounds[-1]


class FamilyAggregate:
    """Mergeable telemetry summary of every recorded run of one family.

    All state is sums, maxima, and fixed-bucket histograms, so
    :meth:`merge` is associative and commutative — aggregates from any
    partition of the record stream (including rotation-written
    ``aggregate`` records re-merged with later raw runs) fold to the same
    result in any order.
    """

    __slots__ = (
        "fingerprint", "qubits", "depth", "runs",
        "exact_runs", "stochastic_runs", "fallbacks",
        "exact_peak_nodes", "state_peak_nodes", "fallback_peak_nodes",
        "exact_nodes_hist", "state_nodes_hist", "rate_hist",
        "cpu_seconds", "elapsed_seconds",
        "trajectories", "effective_trajectories",
        "p_clean_sum", "p_clean_count",
    )

    def __init__(self, fingerprint: str) -> None:
        self.fingerprint = fingerprint
        self.qubits = 0
        self.depth = 0
        self.runs = 0
        self.exact_runs = 0
        self.stochastic_runs = 0
        self.fallbacks = 0
        #: Peak rho-DD nodes over exact runs / state-DD nodes over
        #: stochastic runs / rho nodes at the moment a ceiling tripped.
        self.exact_peak_nodes = 0
        self.state_peak_nodes = 0
        self.fallback_peak_nodes = 0
        self.exact_nodes_hist = _empty_hist(NODE_BUCKETS)
        self.state_nodes_hist = _empty_hist(NODE_BUCKETS)
        #: Effective trajectories/second per stochastic run (quantile-able).
        self.rate_hist = _empty_hist(RATE_BUCKETS)
        self.cpu_seconds = 0.0
        self.elapsed_seconds = 0.0
        self.trajectories = 0
        self.effective_trajectories = 0.0
        self.p_clean_sum = 0.0
        self.p_clean_count = 0

    # -- folding raw records ------------------------------------------------

    def observe_run(self, record: Mapping[str, object]) -> None:
        self.runs += 1
        self.qubits = max(self.qubits, int(record.get("qubits", 0)))
        self.depth = max(self.depth, int(record.get("depth", 0)))
        peak = int(record.get("peak_nodes", 0))
        method = str(record.get("method", "stochastic"))
        if method == "exact":
            self.exact_runs += 1
            if peak > 0:
                self.exact_peak_nodes = max(self.exact_peak_nodes, peak)
                _hist_observe(self.exact_nodes_hist, float(peak))
        else:
            self.stochastic_runs += 1
            if peak > 0:
                self.state_peak_nodes = max(self.state_peak_nodes, peak)
                _hist_observe(self.state_nodes_hist, float(peak))
            rate = record.get("trajectories_per_second")
            if isinstance(rate, (int, float)) and rate > 0.0:
                _hist_observe(self.rate_hist, float(rate))
        self.cpu_seconds += float(record.get("cpu_seconds", 0.0) or 0.0)
        self.elapsed_seconds += float(record.get("elapsed_seconds", 0.0) or 0.0)
        self.trajectories += int(record.get("trajectories", 0) or 0)
        self.effective_trajectories += float(
            record.get("effective_trajectories", 0.0) or 0.0
        )
        p_clean = record.get("p_clean")
        if isinstance(p_clean, (int, float)):
            self.p_clean_sum += float(p_clean)
            self.p_clean_count += 1

    def observe_fallback(self, record: Mapping[str, object]) -> None:
        self.fallbacks += 1
        nodes = int(record.get("nodes", 0) or 0)
        if nodes > 0:
            self.fallback_peak_nodes = max(self.fallback_peak_nodes, nodes)

    # -- associative merge --------------------------------------------------

    def merge(self, other: "FamilyAggregate") -> None:
        self.qubits = max(self.qubits, other.qubits)
        self.depth = max(self.depth, other.depth)
        self.runs += other.runs
        self.exact_runs += other.exact_runs
        self.stochastic_runs += other.stochastic_runs
        self.fallbacks += other.fallbacks
        self.exact_peak_nodes = max(self.exact_peak_nodes, other.exact_peak_nodes)
        self.state_peak_nodes = max(self.state_peak_nodes, other.state_peak_nodes)
        self.fallback_peak_nodes = max(
            self.fallback_peak_nodes, other.fallback_peak_nodes
        )
        _hist_merge(self.exact_nodes_hist, other.exact_nodes_hist)
        _hist_merge(self.state_nodes_hist, other.state_nodes_hist)
        _hist_merge(self.rate_hist, other.rate_hist)
        self.cpu_seconds += other.cpu_seconds
        self.elapsed_seconds += other.elapsed_seconds
        self.trajectories += other.trajectories
        self.effective_trajectories += other.effective_trajectories
        self.p_clean_sum += other.p_clean_sum
        self.p_clean_count += other.p_clean_count

    # -- derived views ------------------------------------------------------

    def mean_p_clean(self) -> Optional[float]:
        if self.p_clean_count == 0:
            return None
        return self.p_clean_sum / self.p_clean_count

    def median_rate(self) -> float:
        """Bucket-resolution median effective throughput (trend baseline)."""
        return _hist_quantile(self.rate_hist, 0.5)

    def to_dict(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "qubits": self.qubits,
            "depth": self.depth,
            "runs": self.runs,
            "exact_runs": self.exact_runs,
            "stochastic_runs": self.stochastic_runs,
            "fallbacks": self.fallbacks,
            "exact_peak_nodes": self.exact_peak_nodes,
            "state_peak_nodes": self.state_peak_nodes,
            "fallback_peak_nodes": self.fallback_peak_nodes,
            "exact_nodes_hist": {
                "bounds": list(self.exact_nodes_hist["bounds"]),
                "counts": list(self.exact_nodes_hist["counts"]),
                "sum": self.exact_nodes_hist["sum"],
                "count": self.exact_nodes_hist["count"],
            },
            "state_nodes_hist": {
                "bounds": list(self.state_nodes_hist["bounds"]),
                "counts": list(self.state_nodes_hist["counts"]),
                "sum": self.state_nodes_hist["sum"],
                "count": self.state_nodes_hist["count"],
            },
            "rate_hist": {
                "bounds": list(self.rate_hist["bounds"]),
                "counts": list(self.rate_hist["counts"]),
                "sum": self.rate_hist["sum"],
                "count": self.rate_hist["count"],
            },
            "cpu_seconds": self.cpu_seconds,
            "elapsed_seconds": self.elapsed_seconds,
            "trajectories": self.trajectories,
            "effective_trajectories": self.effective_trajectories,
            "p_clean_sum": self.p_clean_sum,
            "p_clean_count": self.p_clean_count,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FamilyAggregate":
        aggregate = cls(str(data.get("fingerprint", "")))
        aggregate.qubits = int(data.get("qubits", 0))
        aggregate.depth = int(data.get("depth", 0))
        aggregate.runs = int(data.get("runs", 0))
        aggregate.exact_runs = int(data.get("exact_runs", 0))
        aggregate.stochastic_runs = int(data.get("stochastic_runs", 0))
        aggregate.fallbacks = int(data.get("fallbacks", 0))
        aggregate.exact_peak_nodes = int(data.get("exact_peak_nodes", 0))
        aggregate.state_peak_nodes = int(data.get("state_peak_nodes", 0))
        aggregate.fallback_peak_nodes = int(data.get("fallback_peak_nodes", 0))
        for attr, default_bounds in (
            ("exact_nodes_hist", NODE_BUCKETS),
            ("state_nodes_hist", NODE_BUCKETS),
            ("rate_hist", RATE_BUCKETS),
        ):
            raw = data.get(attr)
            if isinstance(raw, Mapping) and raw.get("bounds"):
                setattr(aggregate, attr, {
                    "bounds": [float(b) for b in raw["bounds"]],
                    "counts": [int(c) for c in raw["counts"]],
                    "sum": float(raw.get("sum", 0.0)),
                    "count": int(raw.get("count", 0)),
                })
            else:
                setattr(aggregate, attr, _empty_hist(default_bounds))
        aggregate.cpu_seconds = float(data.get("cpu_seconds", 0.0))
        aggregate.elapsed_seconds = float(data.get("elapsed_seconds", 0.0))
        aggregate.trajectories = int(data.get("trajectories", 0))
        aggregate.effective_trajectories = float(
            data.get("effective_trajectories", 0.0)
        )
        aggregate.p_clean_sum = float(data.get("p_clean_sum", 0.0))
        aggregate.p_clean_count = int(data.get("p_clean_count", 0))
        return aggregate


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


class LedgerState:
    """Replayed ledger state: per-family aggregates + recent raw records.

    ``run``/``fallback`` records written by a live process fold into their
    family's aggregate *unless* flagged ``"folded": true`` — the marker
    rotation stamps on the raw records it carries over, whose telemetry
    already lives inside the family's ``aggregate`` record (re-folding them
    would double count).
    """

    def __init__(self, recent_limit: int = DEFAULT_RECENT_RECORDS) -> None:
        self.recent_limit = recent_limit
        self.aggregates: Dict[str, FamilyAggregate] = {}
        self.recent: Dict[str, List[Dict[str, object]]] = {}
        self.order: List[str] = []

    def _family(self, fingerprint: str) -> FamilyAggregate:
        aggregate = self.aggregates.get(fingerprint)
        if aggregate is None:
            aggregate = FamilyAggregate(fingerprint)
            self.aggregates[fingerprint] = aggregate
            self.order.append(fingerprint)
        return aggregate

    def apply(self, record: Dict[str, object]) -> None:
        kind = record.get("rec")
        if kind == "header":
            return
        fingerprint = record.get("fp")
        if not isinstance(fingerprint, str) or not fingerprint:
            return
        if kind == "aggregate":
            payload = record.get("agg")
            if isinstance(payload, Mapping):
                incoming = FamilyAggregate.from_dict(payload)
                incoming.fingerprint = fingerprint
                self._family(fingerprint).merge(incoming)
            return
        if kind not in ("run", "fallback"):
            return
        family = self._family(fingerprint)
        if not record.get("folded"):
            if kind == "run":
                family.observe_run(record)
            else:
                family.observe_fallback(record)
        window = self.recent.setdefault(fingerprint, [])
        window.append(dict(record))
        if len(window) > self.recent_limit:
            del window[: len(window) - self.recent_limit]

    def total_runs(self) -> int:
        return sum(a.runs for a in self.aggregates.values())


def _fold_lines(
    raw: bytes,
    metrics: Optional[MetricsRegistry] = None,
    recent_limit: int = DEFAULT_RECENT_RECORDS,
) -> LedgerState:
    """Fold ledger bytes into replayed state, skipping torn records.

    Mirrors the journal's replay contract: the final line is distrusted
    whenever the file does not end in a newline — even structurally valid
    JSON can be a truncation that happens to parse — and undecodable
    interior lines are skipped and counted, never fatal.
    """
    state = LedgerState(recent_limit=recent_limit)
    if not raw:
        return state
    lines = raw.split(b"\n")
    trailing_complete = raw.endswith(b"\n")
    if trailing_complete:
        lines = lines[:-1]  # the split artifact after the final newline
    for position, line in enumerate(lines):
        if not line.strip():
            continue
        last = position == len(lines) - 1
        try:
            record = json.loads(line.decode("utf-8"))
            if not isinstance(record, dict):
                raise ValueError("record is not a JSON object")
        except (ValueError, UnicodeDecodeError):
            if metrics is not None:
                name = (
                    "ledger.replay.torn_skipped"
                    if last and not trailing_complete
                    else "ledger.replay.bad_skipped"
                )
                metrics.counter(name).inc()
            continue
        if last and not trailing_complete:
            if metrics is not None:
                metrics.counter("ledger.replay.torn_skipped").inc()
            continue
        if metrics is not None:
            metrics.counter("ledger.replay.records").inc()
        state.apply(record)
    return state


def replay_ledger(
    path: str,
    metrics: Optional[MetricsRegistry] = None,
    recent_limit: int = DEFAULT_RECENT_RECORDS,
) -> LedgerState:
    """Replay a ledger file read-only; missing files replay to empty state."""
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError:
        return LedgerState(recent_limit=recent_limit)
    return _fold_lines(raw, metrics, recent_limit)


# ---------------------------------------------------------------------------
# Append side
# ---------------------------------------------------------------------------


class RunLedger:
    """Append-side of the run ledger: fsync'd writes, atomic compaction.

    Opening a ledger replays whatever previous processes left behind, so
    :meth:`aggregates` immediately answers "what does history say about
    this circuit family?".  The open also rotates, folding old raw records
    into per-family ``aggregate`` records so replay cost stays bounded
    while no observation is ever lost.
    """

    def __init__(
        self,
        path: str,
        fsync_interval: float = 0.0,
        max_bytes: int = DEFAULT_MAX_BYTES,
        degraded_cooldown: float = DEFAULT_DEGRADED_COOLDOWN,
        metrics: Optional[MetricsRegistry] = None,
        recent_records: int = DEFAULT_RECENT_RECORDS,
    ) -> None:
        self.path = path
        self.fsync_interval = fsync_interval
        self.max_bytes = max_bytes
        self.degraded_cooldown = degraded_cooldown
        self.recent_records = recent_records
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        for name in (
            "ledger.records.written",
            "ledger.write.errors",
            "ledger.degraded.skipped",
            "ledger.rotations",
            "ledger.replay.records",
            "ledger.replay.torn_skipped",
            "ledger.replay.bad_skipped",
        ):
            self.metrics.counter(name)
        self._lock = threading.RLock()
        self._handle: Optional[IO[bytes]] = None
        self._last_fsync = 0.0
        self._degraded_until = 0.0
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            raw = b""
        self._state = _fold_lines(raw, self.metrics, recent_records)
        # Rotate on open: compacts raw history into aggregates and leaves a
        # clean, fully newline-terminated file to append to.
        self._rotate_locked()

    # -- record appends ----------------------------------------------------

    def record_run(
        self,
        key: str,
        fingerprint: str,
        method: str,
        qubits: int,
        depth: int,
        peak_nodes: int,
        cpu_seconds: float,
        elapsed_seconds: float,
        trajectories: int,
        effective_trajectories: float,
        trajectories_per_second: float,
        p_clean: Optional[float] = None,
        halfwidths: Optional[Dict[str, float]] = None,
    ) -> None:
        """Append one finished job's run profile."""
        record: Dict[str, object] = {
            "rec": "run",
            "job": key,
            "fp": fingerprint,
            "method": method,
            "qubits": qubits,
            "depth": depth,
            "peak_nodes": peak_nodes,
            "cpu_seconds": cpu_seconds,
            "elapsed_seconds": elapsed_seconds,
            "trajectories": trajectories,
            "effective_trajectories": effective_trajectories,
            "trajectories_per_second": trajectories_per_second,
        }
        if p_clean is not None:
            record["p_clean"] = p_clean
        if halfwidths:
            record["halfwidths"] = dict(sorted(halfwidths.items()))
        self._append(record)

    def record_fallback(
        self, key: str, fingerprint: str, nodes: int, ceiling: int
    ) -> None:
        """Append a node-ceiling misprediction so dispatch learns from it."""
        self._append(
            {
                "rec": "fallback",
                "job": key,
                "fp": fingerprint,
                "nodes": nodes,
                "ceiling": ceiling,
            }
        )

    # -- queries -----------------------------------------------------------

    def aggregates(self) -> Dict[str, FamilyAggregate]:
        """Live per-family aggregates (treat as read-only)."""
        with self._lock:
            return dict(self._state.aggregates)

    def family(self, fingerprint: str) -> Optional[FamilyAggregate]:
        with self._lock:
            return self._state.aggregates.get(fingerprint)

    def recent(self, fingerprint: str) -> List[Dict[str, object]]:
        """The family's recent raw records (newest last)."""
        with self._lock:
            return [dict(r) for r in self._state.recent.get(fingerprint, [])]

    @property
    def degraded(self) -> bool:
        """True while appends are being shed after a write failure."""
        return time.monotonic() < self._degraded_until

    def metrics_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Metrics snapshot with live occupancy gauges refreshed."""
        with self._lock:
            self.metrics.gauge("ledger.families").set(
                float(len(self._state.aggregates))
            )
            self.metrics.gauge("ledger.runs.total").set(
                float(self._state.total_runs())
            )
            return self.metrics.snapshot()

    # -- mechanics ---------------------------------------------------------

    def _ensure_open(self) -> IO[bytes]:
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def _append(self, record: Dict[str, object]) -> None:
        line = (
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        with self._lock:
            # The in-memory mirror advances even when the disk write is
            # shed: this process keeps dispatching on fresh history, only
            # crash durability for the shed record is lost (and counted).
            self._state.apply(record)
            now = time.monotonic()
            if now < self._degraded_until:
                self.metrics.counter("ledger.degraded.skipped").inc()
                return
            from ..faults.inject import get_injector

            injector = get_injector()
            try:
                if injector is not None and injector.fire(
                    "enospc-ledger",
                    operation=str(record.get("rec")),
                    job_key=record.get("job"),
                ):
                    raise OSError(errno.ENOSPC, "No space left on device [injected]")
                handle = self._ensure_open()
                handle.write(line)
                handle.flush()
                if self.fsync_interval <= 0.0 or (
                    now - self._last_fsync >= self.fsync_interval
                ):
                    os.fsync(handle.fileno())
                    self._last_fsync = now
            except OSError:
                self.metrics.counter("ledger.write.errors").inc()
                self._degraded_until = now + self.degraded_cooldown
                return
            self.metrics.counter("ledger.records.written").inc()
            if injector is not None and injector.fire(
                "torn-ledger",
                operation=str(record.get("rec")),
                job_key=record.get("job"),
            ):
                self._tear_tail_locked(len(line))
                return
            self._maybe_rotate_for_size_locked()

    def _tear_tail_locked(self, line_length: int) -> None:
        """Simulate a torn write: cut the freshly appended record short."""
        try:
            handle = self._ensure_open()
            handle.flush()
            size = os.path.getsize(self.path)
            with open(self.path, "r+b") as tear:
                tear.truncate(max(0, size - line_length // 2))
            handle.close()
            self._handle = None
        except OSError:
            pass

    def _maybe_rotate_for_size_locked(self) -> None:
        try:
            if os.path.getsize(self.path) > self.max_bytes:
                self._rotate_locked()
        except OSError:
            pass

    def _live_records(self) -> List[Dict[str, object]]:
        """Compacted view: one aggregate per family + its recent raw window.

        Carried-over raw records are stamped ``"folded": true`` — their
        telemetry already lives in the aggregate, so replay keeps them for
        trend display without double counting.
        """
        records: List[Dict[str, object]] = []
        for fingerprint in self._state.order:
            aggregate = self._state.aggregates[fingerprint]
            records.append(
                {
                    "rec": "aggregate",
                    "fp": fingerprint,
                    "agg": aggregate.to_dict(),
                }
            )
            for raw in self._state.recent.get(fingerprint, []):
                carried = dict(raw)
                carried["folded"] = True
                records.append(carried)
        return records

    def _rotate_locked(self) -> None:
        """Atomically rewrite the ledger as aggregates + recent raw records."""
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                header = json.dumps(
                    {"rec": "header", "schema": LEDGER_SCHEMA},
                    sort_keys=True,
                    separators=(",", ":"),
                )
                handle.write((header + "\n").encode("utf-8"))
                for record in self._live_records():
                    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
                    handle.write((line + "\n").encode("utf-8"))
                handle.flush()
                os.fsync(handle.fileno())
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            os.replace(tmp, self.path)
            self.metrics.counter("ledger.rotations").inc()
            # Keep the mirror equal to the rotated file's replay: the raw
            # records written out carry the folded stamp, so the in-memory
            # copies must carry it too.
            for window in self._state.recent.values():
                for record in window:
                    record["folded"] = True
        except OSError:
            self.metrics.counter("ledger.write.errors").inc()
            self._degraded_until = time.monotonic() + self.degraded_cooldown
            try:
                os.remove(tmp)
            except OSError:
                pass

    def flush(self) -> None:
        """Force any buffered bytes to disk (drain path)."""
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                except OSError:
                    self.metrics.counter("ledger.write.errors").inc()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                except OSError:
                    pass
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
