"""Dependency-free metrics primitives: counters, gauges, histograms.

The paper's headline result is a *performance* claim — decision-diagram
trajectories beat dense arrays because the unique and compute tables keep
diagrams compact (Section IV-B) — so the repo needs first-class numbers
explaining *why* a run was fast or slow.  This module provides the
primitives every layer (``repro.dd``, ``repro.stochastic``,
``repro.service``) records into:

* :class:`Counter` — monotonically increasing event counts (cache hits,
  trajectories completed, retries);
* :class:`Gauge` — last-observed level (table occupancy, queue depth);
* :class:`Histogram` — fixed-bucket distributions (per-trajectory latency,
  decision-diagram node counts after each multiply);
* :class:`MetricsRegistry` — a named collection of the above with a
  monotonic :meth:`~MetricsRegistry.timer` helper.

Snapshots are plain JSON-able dictionaries so they can ride inside
:class:`~repro.stochastic.results.StochasticResult` across process
boundaries.  :func:`merge_snapshots` is **associative and commutative**
(counters/histograms sum, gauges take the maximum), which is what lets
chunk metrics merge in any order — exactly like the property estimates —
and still produce one deterministic aggregate.  :func:`delta_snapshots`
subtracts an earlier snapshot from a later one, so a warm worker whose
tables persist across chunks can report only what *this* chunk consumed.
"""

from __future__ import annotations

import bisect
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TIME_BUCKETS",
    "NODE_BUCKETS",
    "merge_snapshots",
    "delta_snapshots",
    "derive_rates",
    "format_histogram",
]

#: Latency bucket upper bounds in seconds (an implicit +inf bucket follows).
TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Node-count bucket upper bounds (powers of two; implicit +inf follows).
NODE_BUCKETS: Tuple[float, ...] = tuple(float(2**k) for k in range(0, 21))


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge for levels")
        self.value += amount


class Gauge:
    """A last-observed level (occupancy, queue depth, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def max(self, value: float) -> None:
        """Record ``value`` only if it exceeds the current level."""
        if value > self.value:
            self.value = value


class Histogram:
    """A fixed-bucket distribution with sum and count.

    ``bounds`` are ascending bucket upper limits; observations above the
    last bound land in an implicit overflow bucket, so ``counts`` has
    ``len(bounds) + 1`` entries.  Fixed bounds keep merges associative:
    two histograms with identical bounds merge by element-wise addition.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be non-empty and ascending")
        self.name = name
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Instruments get-or-create semantics, so call sites never need to
    declare metrics up front; ``registry.counter("x").inc()`` just works.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, bounds: Sequence[float] = TIME_BUCKETS) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        elif instrument.bounds != tuple(float(b) for b in bounds):
            raise ValueError(f"histogram {name!r} re-registered with different bounds")
        return instrument

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a block with the monotonic clock into histogram ``name``."""
        histogram = self.histogram(name, TIME_BUCKETS)
        started = time.perf_counter()
        try:
            yield
        finally:
            histogram.observe(time.perf_counter() - started)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Point-in-time JSON-able view of every registered instrument."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for name, h in sorted(self._histograms.items())
            },
        }


def _histogram_copy(data: Dict[str, object]) -> Dict[str, object]:
    return {
        "bounds": [float(b) for b in data["bounds"]],
        "counts": list(data["counts"]),
        "sum": float(data["sum"]),
        "count": int(data["count"]),
    }


def _remap_counts(
    bounds: Sequence[float], counts: Sequence[int], union: Sequence[float]
) -> List[int]:
    """Remap bucket counts onto a superset bounds list.

    Each original bucket keeps its upper bound, so its count lands in the
    union bucket sharing that bound; the overflow bucket stays overflow.
    The placement depends only on the original bound — never on which other
    snapshots participated — which keeps the padded merge associative.
    """
    index = {bound: i for i, bound in enumerate(union)}
    remapped = [0] * (len(union) + 1)
    for bound, bucket in zip(bounds, counts):
        remapped[index[float(bound)]] += bucket
    remapped[-1] += counts[len(bounds)]
    return remapped


def merge_snapshots(*snapshots: Optional[Dict[str, object]]) -> Dict[str, object]:
    """Associatively merge snapshots into a new one (inputs untouched).

    Counters and histograms add; gauges keep the maximum (so merged gauges
    read as "peak level seen by any contributor").  With a single argument
    this is a deep copy; with none, an empty snapshot.

    Histograms whose bucket sets differ — an old checkpoint written before
    a bucket-layout change, mixed software versions in one pool — are
    *padded* onto the union of their bounds rather than dropped or
    rejected: every observation is preserved (a bucket's count follows its
    upper bound into the union layout), and the padding is associative, so
    merge order still cannot change the aggregate.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            gauges[name] = max(gauges.get(name, value), value)
        for name, data in snapshot.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = _histogram_copy(data)
                continue
            data_bounds = [float(b) for b in data["bounds"]]
            if merged["bounds"] != data_bounds:
                union = sorted(set(merged["bounds"]) | set(data_bounds))
                merged["counts"] = [
                    a + b
                    for a, b in zip(
                        _remap_counts(merged["bounds"], merged["counts"], union),
                        _remap_counts(data_bounds, data["counts"], union),
                    )
                ]
                merged["bounds"] = union
            else:
                merged["counts"] = [
                    a + b for a, b in zip(merged["counts"], data["counts"])
                ]
            merged["sum"] = float(merged["sum"]) + float(data["sum"])
            merged["count"] = int(merged["count"]) + int(data["count"])
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def delta_snapshots(after: Dict[str, object], before: Optional[Dict[str, object]]) -> Dict[str, object]:
    """What happened between two snapshots of the *same* registry.

    Counters and histograms subtract (clamped at zero, so a cleared table
    can never produce negative deltas); gauges report the later level.
    Used by warm workers whose DD package persists across chunks: each
    chunk reports only its own consumption.
    """
    result = merge_snapshots(after)
    if not before:
        return result
    counters = result["counters"]
    for name, value in before.get("counters", {}).items():
        counters[name] = max(0, counters.get(name, 0) - value)
    histograms = result["histograms"]
    for name, data in before.get("histograms", {}).items():
        current = histograms.get(name)
        if current is None or list(current["bounds"]) != list(data["bounds"]):
            continue
        current["counts"] = [
            max(0, a - b) for a, b in zip(current["counts"], data["counts"])
        ]
        current["sum"] = max(0.0, float(current["sum"]) - float(data["sum"]))
        current["count"] = max(0, int(current["count"]) - int(data["count"]))
    return result


def derive_rates(
    snapshot: Optional[Dict[str, object]], duration: Optional[float] = None
) -> Dict[str, float]:
    """Hit rates in [0, 1] for every ``<base>.hits``/``<base>.misses`` pair.

    Produces ``<base>.hit_rate`` entries — the numbers that explain whether
    the unique/compute/complex tables are doing their job (a healthy DD run
    shows compute-table hit rates well above 0.5; a rate near 0 on a slow
    run means the diagrams are not re-visiting structure and memoisation
    is buying nothing).

    With ``duration`` (seconds) every counter additionally yields a
    ``<counter>.per_second`` throughput entry.  A zero or negative duration
    — the zero-duration delta a live exporter can take between two
    back-to-back snapshots — yields 0.0 for every per-second rate, never a
    division error or an infinity.
    """
    if not snapshot:
        return {}
    counters = snapshot.get("counters", {})
    rates: Dict[str, float] = {}
    for name, hits in counters.items():
        if not name.endswith(".hits"):
            continue
        base = name[: -len(".hits")]
        misses = counters.get(base + ".misses")
        if misses is None:
            continue
        total = hits + misses
        rates[base + ".hit_rate"] = (hits / total) if total else 0.0
    if duration is not None:
        seconds = float(duration)
        safe = seconds > 0.0
        for name, value in counters.items():
            rates[name + ".per_second"] = (value / seconds) if safe else 0.0
    return rates


def format_histogram(data: Dict[str, object], indent: str = "  ") -> List[str]:
    """Human-readable lines for one snapshot histogram (empty buckets skipped)."""
    bounds = list(data["bounds"]) + [float("inf")]
    counts = list(data["counts"])
    count = int(data["count"])
    lines = [f"{indent}count={count} sum={float(data['sum']):.6g} "
             f"mean={(float(data['sum']) / count if count else 0.0):.6g}"]
    peak = max(counts) if counts else 0
    for bound, bucket in zip(bounds, counts):
        if bucket == 0:
            continue
        bar = "#" * max(1, round(20 * bucket / peak)) if peak else ""
        label = "+inf" if bound == float("inf") else f"{bound:g}"
        lines.append(f"{indent}<= {label:>8}: {bucket:>8} {bar}")
    return lines
